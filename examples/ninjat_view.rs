//! Ninjat view: visualize an application's concurrent-write pattern
//! the way LANL's Ninjat tool did (report Fig. 15).
//!
//! ```sh
//! cargo run --release --example ninjat_view -- [app] [ranks]
//! cargo run --release --example ninjat_view -- S3D 8
//! ```

use pdsi::workloads::{interleave_factor, render, AppProfile, Trace};

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "FLASH-IO".into());
    let ranks: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let app = AppProfile::by_name(&app_name).unwrap_or_else(|| {
        eprintln!("unknown app {app_name:?}");
        std::process::exit(2);
    });

    let trace = Trace::from_pattern(app.name, &app.pattern(ranks));
    println!(
        "{} with {ranks} ranks — {} writes, {} bytes  (rows: file offset, cols: time, symbol: rank)\n",
        app.name,
        trace.ops.len(),
        trace.total_bytes()
    );
    for row in render(&trace, 78, 22) {
        println!("|{row}|");
    }
    let f = interleave_factor(&trace);
    println!(
        "\ninterleave factor {f:.2} — {}",
        if f > 0.5 {
            "pathological N-1 strided interleaving (PLFS territory)"
        } else {
            "well-formed segmented access"
        }
    );
}
