//! GIGA+ demo: one directory, millions of files, many servers —
//! the Metarates create storm of report Fig. 7, plus a live look at
//! the split bitmap.
//!
//! ```sh
//! cargo run --release --example giga_directories -- [clients] [files_per_client]
//! ```

use pdsi::giga::{run_metarates, GigaDirectory, MetaratesConfig, Scheme};

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let files: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);

    // First: the data structure itself, growing through splits.
    let mut dir = GigaDirectory::new(8, 512);
    for i in 0..50_000 {
        dir.insert(&format!("file.{i:08}"));
    }
    dir.check_invariants();
    println!(
        "directory of {} entries: {} partitions (max depth {}), {} splits, {} entries migrated",
        dir.len(),
        dir.partition_count(),
        dir.bitmap().max_depth(),
        dir.splits(),
        dir.migrated()
    );
    println!("per-server load: {:?}\n", dir.load_by_server());

    // Then: the create-storm timing sweep.
    println!("{clients} clients x {files} creates in one shared directory:");
    println!("{:>8} {:>16} {:>16} {:>9}", "servers", "GIGA+ creates/s", "single-MDS", "speedup");
    for &s in &[1usize, 4, 16, 32] {
        let mut cfg = MetaratesConfig::new(clients, files, s, Scheme::GigaPlus);
        cfg.split_threshold = 256;
        let g = run_metarates(&cfg);
        let base = run_metarates(&MetaratesConfig::new(clients, files, s, Scheme::SingleServer));
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>8.1}x",
            s,
            g.create_rate(),
            base.create_rate(),
            g.create_rate() / base.create_rate()
        );
    }
}
