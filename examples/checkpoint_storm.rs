//! Checkpoint storm: replay an application's N-1 checkpoint through
//! the simulated parallel file system, directly vs through PLFS.
//!
//! ```sh
//! cargo run --release --example checkpoint_storm -- [app] [ranks] [servers]
//! cargo run --release --example checkpoint_storm -- FLASH-IO 512 16
//! ```

use pdsi::pfs::ClusterConfig;
use pdsi::plfs::simadapter::{compare, PlfsSimOptions};
use pdsi::simkit::units::MIB;
use pdsi::workloads::AppProfile;

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "FLASH-IO".into());
    let ranks: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let servers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    let app = AppProfile::by_name(&app_name).unwrap_or_else(|| {
        eprintln!("unknown app {app_name:?}; known:");
        for p in &pdsi::workloads::APP_PROFILES {
            eprintln!("  {}", p.name);
        }
        std::process::exit(2);
    });

    println!(
        "{} checkpoint: {ranks} ranks x {} = {} total, {} writes",
        app.name,
        pdsi::simkit::units::fmt_bytes(app.bytes_per_rank),
        pdsi::simkit::units::fmt_bytes(app.checkpoint_bytes(ranks)),
        app.writes_per_rank() * ranks as u64,
    );
    let pattern = app.pattern(ranks);
    for (name, cfg) in [
        ("PanFS-like", ClusterConfig::panfs_like(servers, MIB)),
        ("Lustre-like", ClusterConfig::lustre_like(servers, MIB)),
        ("GPFS-like", ClusterConfig::gpfs_like(servers, MIB)),
    ] {
        let (direct, plfs, speedup) = compare(cfg, &pattern, &PlfsSimOptions::default());
        println!(
            "{name:<12} direct {:>9.1} MB/s ({} revocations) | PLFS {:>9.1} MB/s | {speedup:.1}x",
            direct.write_bandwidth() / 1e6,
            direct.lock_stats.revocations,
            plfs.write_bandwidth() / 1e6,
        );
    }
}
