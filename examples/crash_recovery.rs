//! Crash recovery: detect → repair → verify.
//!
//! A multi-rank PLFS checkpoint runs over a fault-injecting backend that
//! crash-stops (power loss) partway through, freezing the store at an
//! exact byte state — possibly mid-append, so index and data droppings
//! can be torn. After the "reboot" we run `fsck` to see the damage,
//! `repair` to truncate torn tails and drop dangling extents, and then
//! verify that every write acked (synced) before the crash reads back
//! byte-for-byte. That is the repair invariant: acked data survives any
//! crash point.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use pdsi::plfs::backend::{Backend, MemBackend};
use pdsi::plfs::faults::{FaultPlan, FaultyBackend};
use pdsi::plfs::{fsck, Plfs, PlfsConfig, WriterConfig};
use std::sync::Arc;

const RANKS: u32 = 4;
const RECORD: usize = 512;
const SLOTS: u64 = 64;
const SEED: u64 = 42;

fn config() -> PlfsConfig {
    PlfsConfig {
        hostdirs: 4,
        writer: WriterConfig { data_buffer: 2048, index_flush_every: 4, ..Default::default() },
        ..Default::default()
    }
}

/// Run the checkpoint workload against `fs`, syncing every few records.
/// Returns, per logical slot, the fill byte if that record was acked
/// (its sync succeeded) before the backend froze.
fn run_checkpoint(fs: &Plfs) -> Vec<Option<u8>> {
    let mut acked: Vec<Option<u8>> = vec![None; SLOTS as usize];
    let mut writers: Vec<_> = Vec::new();
    for rank in 0..RANKS {
        match fs.open_writer("/ckpt", rank) {
            Ok(w) => writers.push(w),
            Err(_) => return acked, // crashed while opening: nothing acked
        }
    }
    let mut pending: Vec<Vec<(u64, u8)>> = vec![Vec::new(); RANKS as usize];
    for slot in 0..SLOTS {
        let rank = (slot % RANKS as u64) as usize;
        let fill = (slot % 251) as u8 + 1;
        if writers[rank].write_at(slot * RECORD as u64, &[fill; RECORD]).is_ok() {
            pending[rank].push((slot, fill));
        }
        if slot % 8 == 7 && writers[rank].sync().is_ok() {
            for &(s, f) in &pending[rank] {
                acked[s as usize] = Some(f);
            }
            pending[rank].clear();
        }
    }
    for (rank, w) in writers.into_iter().enumerate() {
        let flushed = std::mem::take(&mut pending[rank]);
        if w.close().is_ok() {
            for (s, f) in flushed {
                acked[s as usize] = Some(f);
            }
        }
    }
    acked
}

fn main() -> std::io::Result<()> {
    // Probe run with no crash to learn the workload's total append volume,
    // then pick a crash point ~60% of the way through.
    let probe = Arc::new(FaultyBackend::new(MemBackend::new(), FaultPlan::none(SEED)));
    run_checkpoint(&Plfs::new(probe.clone() as Arc<dyn Backend>, config()));
    let crash_after = probe.bytes_appended() * 3 / 5;

    println!("== 1. checkpoint under power loss ==");
    let faulty = Arc::new(FaultyBackend::new(
        MemBackend::new(),
        FaultPlan { crash_after_bytes: Some(crash_after), ..FaultPlan::none(SEED) },
    ));
    let fs = Plfs::new(faulty.clone() as Arc<dyn Backend>, config());
    let acked = run_checkpoint(&fs);
    let acked_records = acked.iter().flatten().count();
    println!(
        "backend froze after {crash_after} appended bytes; \
         {acked_records}/{SLOTS} records were acked (synced) before the crash"
    );

    println!("\n== 2. reboot: detect the damage ==");
    faulty.heal(); // power restored — the store serves again, torn tails and all
    let before = fsck::fsck(faulty.as_ref(), "/ckpt", config().hostdirs)?;
    println!(
        "fsck: {} writers, {} index entries, logical EOF {}",
        before.writers, before.entries, before.logical_eof
    );
    for err in &before.errors {
        println!("  damage: {err:?}");
    }
    if before.is_clean() {
        println!("  (crash landed between appends: container is consistent as-is)");
    }

    println!("\n== 3. repair ==");
    let report = fsck::repair(faulty.as_ref(), "/ckpt", config().hostdirs, &Default::default())?;
    for action in &report.actions {
        println!("  {action:?}");
    }
    assert!(report.after.is_clean(), "repair must leave a clean container");
    println!("container clean; logical EOF now {}", report.after.logical_eof);

    println!("\n== 4. verify acked data ==");
    let reader = fs.open_reader("/ckpt")?;
    let data = reader.read_all()?;
    for (slot, fill) in acked.iter().enumerate() {
        let Some(fill) = fill else { continue };
        let start = slot * RECORD;
        assert!(
            data.len() >= start + RECORD && data[start..start + RECORD].iter().all(|b| b == fill),
            "acked record {slot} lost or corrupt"
        );
    }
    println!("all {acked_records} acked records read back byte-for-byte");
    Ok(())
}
