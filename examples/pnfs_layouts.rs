//! pNFS demo: the layout protocol in action, then the scaling story
//! that made it worth a decade of standardization (report §2.2, §5.7).
//!
//! ```sh
//! cargo run --release --example pnfs_layouts
//! ```

use pdsi::pnfs::{run_access, AccessProtocol, IoMode, LayoutError, LayoutManager, ScalingConfig};

fn main() {
    // --- Protocol walk-through -----------------------------------
    let mut mds = LayoutManager::new();
    println!("LAYOUTGET: three clients read file 1 concurrently...");
    for c in 1..=3 {
        let l = mds.layout_get(c, 1, 0, 1 << 30, IoMode::Read).unwrap();
        println!("  client {c} granted READ layout, stateid {}", l.stateid);
    }
    println!("client 9 wants to write the middle...");
    match mds.layout_get(9, 1, 512 << 20, 64 << 20, IoMode::ReadWrite) {
        Err(LayoutError::RecallIssued(sids)) => {
            println!("  conflict: MDS recalled stateids {sids:?}");
            for sid in sids {
                // In this walk-through client c holds stateid c.
                let owner = sid as u32;
                mds.layout_return(owner, sid).unwrap();
                println!("  stateid {sid} returned by client {owner}");
            }
        }
        other => panic!("expected recalls, got {other:?}"),
    }
    let w = mds.layout_get(9, 1, 512 << 20, 64 << 20, IoMode::ReadWrite).unwrap();
    println!("  retry: client 9 granted RW layout, stateid {}", w.stateid);
    mds.layout_commit(9, w.stateid).unwrap();
    assert!(mds.layout_return(9, w.stateid).unwrap());
    println!("  LAYOUTCOMMIT + LAYOUTRETURN: dirty data visible, layout back\n");
    mds.check_invariants();

    // --- Why it matters -------------------------------------------
    println!("aggregate read bandwidth, 8 data servers:");
    println!("{:>9} {:>12} {:>14} {:>9}", "clients", "NFS MB/s", "pNFS MB/s", "speedup");
    for clients in [1usize, 2, 4, 8, 16, 32, 64] {
        let cfg = ScalingConfig { clients, ..Default::default() };
        let nfs = run_access(&cfg, AccessProtocol::Nfs);
        let pnfs = run_access(&cfg, AccessProtocol::Pnfs);
        println!(
            "{clients:>9} {:>12.1} {:>14.1} {:>8.1}x",
            nfs.aggregate_bps / 1e6,
            pnfs.aggregate_bps / 1e6,
            pnfs.aggregate_bps / nfs.aggregate_bps
        );
    }
    println!("\nplain NFS proxies every byte through one server; pNFS clients\ngo to the data servers directly — the NAS bottleneck is gone.");
}
