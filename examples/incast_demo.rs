//! Incast demo: watch synchronized-read goodput collapse as fan-in
//! grows, and the microsecond-RTO fix restore it (report Fig. 9).
//!
//! ```sh
//! cargo run --release --example incast_demo
//! ```

use pdsi::netsim::{run_incast, IncastConfig, RtoPolicy};
use pdsi::simkit::units::ascii_bar;

fn main() {
    println!("1 GbE synchronized reads, 256 KiB SRU, 64-packet switch buffer\n");
    println!("{:>8}  {:<28} {:<28}", "senders", "RTOmin = 200 ms", "RTOmin = 1 ms");
    for &n in &[1usize, 2, 4, 8, 12, 16, 24, 32, 40, 47] {
        let slow = run_incast(&IncastConfig::gbe(n, RtoPolicy::legacy_200ms()));
        let fast = run_incast(&IncastConfig::gbe(n, RtoPolicy::hires_1ms()));
        println!(
            "{:>8}  {:>5.0} Mbps {:<18} {:>5.0} Mbps {:<18}",
            n,
            slow.goodput_bps / 1e6,
            ascii_bar(slow.goodput_bps, 1e9, 18),
            fast.goodput_bps / 1e6,
            ascii_bar(fast.goodput_bps, 1e9, 18),
        );
    }
    println!(
        "\nThe collapse is pure timeout arithmetic: whole-window losses in the\n\
         shared buffer leave no duplicate acks, so the flow idles a full RTO\n\
         while the link sits empty. Shrinking the minimum RTO to 1 ms (high-\n\
         resolution timers) removes the idle time without touching TCP."
    );
}
