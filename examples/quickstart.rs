//! Quickstart: PLFS as real middleware over a local directory.
//!
//! Eight "ranks" (threads) concurrently write one logical checkpoint
//! file in the strided N-1 pattern that breaks parallel file systems;
//! PLFS decouples them into per-rank logs, then reassembles the file on
//! read and flattens it to a plain flat file.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pdsi::plfs::backend::{Backend, DirBackend};
use pdsi::plfs::{Plfs, PlfsConfig};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let root = std::env::temp_dir().join(format!("plfs-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let backend = Arc::new(DirBackend::new(&root)?) as Arc<dyn Backend>;
    let fs = Arc::new(Plfs::new(backend, PlfsConfig::default()));

    let ranks: u32 = 8;
    let records_per_rank: u64 = 64;
    let record: usize = 47 * 1024; // small, unaligned — the hard case

    println!("writing /checkpoint.0 with {ranks} ranks, strided {record}-byte records...");
    fs.create("/checkpoint.0")?;
    std::thread::scope(|s| {
        for rank in 0..ranks {
            let fs = Arc::clone(&fs);
            s.spawn(move || {
                let mut w = fs.open_writer("/checkpoint.0", rank).expect("open");
                for i in 0..records_per_rank {
                    // Record r of the file belongs to rank r % N.
                    let rec_idx = i * ranks as u64 + rank as u64;
                    let payload = vec![(rec_idx % 251) as u8; record];
                    w.write_at(rec_idx * record as u64, &payload).expect("write");
                }
                let stats = w.close().expect("close");
                println!(
                    "  rank {rank}: {} writes, {} data appends (batched), {} index bytes",
                    stats.writes, stats.data_appends, stats.index_bytes
                );
            });
        }
    });

    let reader = fs.open_reader("/checkpoint.0")?;
    println!(
        "read-back: {} writers, {} raw index entries merged into {} extents, size {}",
        reader.stats().writers,
        reader.stats().raw_entries,
        reader.stats().merged_extents,
        reader.size()
    );
    let data = reader.read_all()?;
    for (i, chunk) in data.chunks(record).enumerate() {
        assert!(chunk.iter().all(|&b| b == (i as u64 % 251) as u8), "record {i} corrupt");
    }
    println!("verified {} records byte-for-byte", data.len() / record);

    let n = fs.flatten("/checkpoint.0", "/checkpoint.flat", 1 << 20)?;
    println!("flattened container to /checkpoint.flat ({n} bytes)");
    println!("container lives under {} — inspect the droppings!", root.display());
    Ok(())
}
