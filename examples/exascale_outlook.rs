//! Exascale outlook: the report's fault-tolerance arithmetic
//! (Figs. 4 & 5) as an interactive table — MTTI projection, optimal
//! checkpoint cadence, effective utilization, and the mitigation menu.
//!
//! ```sh
//! cargo run --release --example exascale_outlook -- [moore_months]
//! ```

use pdsi::reliability::{process_pairs_utilization, CheckpointModel, DiskGrowth, ProjectionConfig};
use pdsi::simkit::units::ascii_bar;

fn main() {
    let moore: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24.0);
    let proj = ProjectionConfig::report_baseline(moore);
    let model = CheckpointModel::report_baseline();

    println!("top500 trend: speed 2x/yr from 1 PFLOP in 2008; chips double every {moore} months\n");
    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>11}  utilization",
        "year", "PFLOPs", "chips", "MTTI (h)", "ckpt every"
    );
    for y in 0..=10 {
        let year = 2008.0 + y as f64;
        let mtti_s = proj.mtti_hours(year) * 3600.0;
        let util = model.optimal_utilization(mtti_s);
        println!(
            "{:>6} {:>9.0} {:>10.0} {:>10.2} {:>8.0}min  {:>5.1}% {}",
            year,
            proj.pflops(year),
            proj.chips(year),
            proj.mtti_hours(year),
            model.optimal_interval(mtti_s) / 60.0,
            util * 100.0,
            ascii_bar(util, 1.0, 30),
        );
    }
    if let Some(y) = model.crossing_year(&proj, 0.5) {
        println!("\nutilization crosses 50% in {y} (report: 'before 2014')");
    }
    let d = DiskGrowth::report_numbers();
    println!(
        "keeping storage balanced with +20%/yr disks means {:.0}%/yr more spindles",
        (d.disk_count_growth() - 1.0) * 100.0
    );
    println!(
        "escape hatches: compress checkpoints {:.0}%/yr, or run process pairs at a flat {:.0}%",
        (model.required_compression_per_year(&proj) - 1.0) * 100.0,
        process_pairs_utilization(0.02) * 100.0
    );
}
