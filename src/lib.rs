//! # pdsi — facade over the PDSI reproduction workspace
//!
//! Re-exports every crate in the workspace under one roof, so examples
//! and downstream users can write `use pdsi::plfs::...`.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use argon;
pub use diskmodel;
pub use giga;
pub use miniio;
pub use netsim;
pub use obs;
pub use pfs;
pub use plfs;
pub use pnfs;
pub use reliability;
pub use simkit;
pub use spyglass;
pub use workloads;
