//! End-to-end tests for the causal per-I/O tracing layer: span-tree
//! well-formedness across the whole stack, the pinned critical-path
//! diagnoses from the report, and the Chrome trace-event export.

use obs::trace::{self, Phase, TraceSink};
use pfs::ClusterConfig;
use simkit::units::{KIB, MIB};

fn names(spans: &[obs::trace::SpanRecord]) -> Vec<&str> {
    spans.iter().map(|s| s.name.as_str()).collect()
}

/// The headline scenario: an unaligned strided N-1 checkpoint written
/// directly must attribute the majority of its critical path to
/// stripe-lock wait — the report's diagnosis of the N-1 collapse.
#[test]
fn unaligned_n1_critical_path_is_lock_wait_dominated() {
    let pattern = plfs::strided_n1_pattern(16, 48, 47 * KIB);
    let sink = TraceSink::bounded(1 << 18);
    let mut cfg = ClusterConfig::lustre_like(8, MIB);
    cfg.trace = sink.clone();
    let rep = plfs::run_direct(cfg, &pattern);
    assert!(rep.lock_stats.revocations > 0, "scenario must exercise lock sharing");

    let spans = sink.snapshot();
    assert_eq!(sink.dropped(), 0, "sink too small for the run");
    let stats = trace::validate(&spans).expect("span forest must be well-formed");
    assert!(stats.max_depth >= 2, "expected root -> op -> disk-leaf nesting");

    let attr = trace::critical_path(&spans);
    assert!(
        attr.share(Phase::LockWait) >= 0.5,
        "lock wait must dominate the unaligned N-1 critical path, got {:.2} ({:?})",
        attr.share(Phase::LockWait),
        attr.by_phase
    );
}

/// The friendly pattern: per-rank files with aligned records. No lock
/// sharing, so the critical path collapses onto media transfer.
#[test]
fn aligned_nn_critical_path_is_transfer_plurality() {
    use pfs::{Cluster, Op};
    let clients = 16usize;
    let rec = MIB;
    let streams: Vec<Vec<Op>> = (0..clients)
        .map(|r| {
            let file = 1 + r as u64;
            let mut ops = vec![Op::Create(file)];
            for i in 0..48u64 {
                ops.push(Op::Write { file, offset: i * rec, len: rec });
            }
            ops
        })
        .collect();
    let sink = TraceSink::bounded(1 << 18);
    let mut cfg = ClusterConfig::lustre_like(8, MIB);
    cfg.trace = sink.clone();
    let rep = Cluster::new(cfg).run_phase(&streams);
    assert_eq!(rep.lock_stats.revocations, 0);

    let spans = sink.snapshot();
    trace::validate(&spans).expect("well-formed");
    let attr = trace::critical_path(&spans);
    assert_eq!(
        attr.dominant(),
        Some(Phase::Transfer),
        "aligned N-N should be media-bound, got {:?}",
        attr.by_phase
    );
}

/// One captured trace must cover every layer: PLFS actions, pfs client
/// ops, lock waits, OSD network/disk service, and positioning leaves.
#[test]
fn n1_trace_covers_plfs_pfs_and_disk_layers() {
    let run = pdsi_bench::run_trace("plfs_n1").expect("known experiment");
    trace::validate(&run.spans).expect("merged forest must stay well-formed");
    let names = names(&run.spans);
    for expected in [
        "plfs.rank",        // PLFS layer wrapper (plfs/ half)
        "plfs.data_append", // PLFS action naming
        "plfs.create_dropping",
        "pfs.write",     // pfs client op root
        "lock.wait",     // stripe-lock acquisition (direct/ half)
        "net.send",      // client NIC serialization
        "osd.ingest",    // server-side receive
        "osd.flush",     // write-back drain
        "disk.transfer", // diskmodel leaf
        "disk.seek",
        "mds.create",
    ] {
        assert!(names.contains(&expected), "no {expected:?} span in plfs_n1 trace");
    }
    // The two replay modes stay distinguishable in one export.
    assert!(run.spans.iter().any(|s| s.track.starts_with("direct/client.")));
    assert!(run.spans.iter().any(|s| s.track.starts_with("plfs/plfs.rank.")));
    assert!(run
        .spans
        .iter()
        .any(|s| s.track.starts_with("direct/osd.") && s.track.ends_with(".disk")));
}

/// The functional (non-simulated) write path over a flaky store emits
/// retry and torn-append-recovery spans nested under the write ops.
#[test]
fn functional_write_path_traces_retries_and_torn_recoveries() {
    let run = pdsi_bench::run_trace("plfs_io").expect("known experiment");
    trace::validate(&run.spans).expect("well-formed");
    let retries: Vec<_> = run.spans.iter().filter(|s| s.name == "retry.attempt").collect();
    let torn: Vec<_> = run.spans.iter().filter(|s| s.name == "torn.recovery").collect();
    assert!(!retries.is_empty(), "flaky plan must surface retry.attempt spans");
    assert!(!torn.is_empty(), "flaky plan must surface torn.recovery spans");
    for r in &retries {
        assert_ne!(r.parent, 0, "retry spans attach to their append span");
        assert!(r.labels.iter().any(|(k, _)| k == "attempt"));
        assert!(r.labels.iter().any(|(k, _)| k == "outcome"));
    }
    for t in &torn {
        assert!(t.labels.iter().any(|(k, _)| k == "resumed_at"));
    }
    assert!(names(&run.spans).contains(&"plfs.write_at"));
}

/// The Chrome export is valid JSON (per our own parser), carries one
/// complete event per span, metadata naming every track, and µs
/// timestamps consistent with the span nanoseconds.
#[test]
fn chrome_export_roundtrips_and_matches_spans() {
    let run = pdsi_bench::run_trace("plfs_nn").expect("known experiment");
    let doc = trace::to_chrome(&run.spans);
    let text = obs::json::pretty(&doc);
    let parsed = obs::json::parse(&text).expect("export must be parseable JSON");

    let events = parsed.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents array");
    let xs: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    let ms: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")).collect();
    assert_eq!(xs.len(), run.spans.len(), "one X event per span");
    let track_count =
        run.spans.iter().map(|s| s.track.as_str()).collect::<std::collections::HashSet<_>>().len();
    assert_eq!(ms.len(), track_count + 1, "thread_name per track + process_name");

    // Spot-check the first complete event against its span record.
    let first = xs[0];
    let span = &run.spans[0];
    assert_eq!(first.get("name").and_then(|v| v.as_str()), Some(span.name.as_str()));
    assert_eq!(first.get("cat").and_then(|v| v.as_str()), Some(span.phase.as_str()));
    let ts = first.get("ts").and_then(|v| v.as_f64()).unwrap();
    let dur = first.get("dur").and_then(|v| v.as_f64()).unwrap();
    assert!((ts - span.begin as f64 / 1e3).abs() < 1e-6);
    assert!((dur - (span.end - span.begin) as f64 / 1e3).abs() < 1e-6);
    assert_eq!(
        first.get("args").and_then(|a| a.get("id")).and_then(|v| v.as_i64()),
        Some(span.id as i64)
    );
}

/// Every registered trace experiment runs, validates, and renders.
#[test]
fn all_trace_experiments_run_clean() {
    for (id, _) in pdsi_bench::TRACE_EXPERIMENTS {
        let run = pdsi_bench::run_trace(id).unwrap_or_else(|| panic!("{id} missing"));
        trace::validate(&run.spans).unwrap_or_else(|e| panic!("{id}: {e}"));
        let rendered = run.render();
        assert!(rendered.contains("critical path"), "{id}: no attribution table");
    }
}
