//! Acceptance tests for the sharded checkpoint ingest service and the
//! atomic epoch-reservation bugfix underneath it, through the public
//! `pdsi` facade.
//!
//! The wall-clock shard-scaling gate (the ISSUE's ≥ 3× criterion) runs
//! in release builds only — debug codegen would measure the optimizer,
//! not the service. Everything else here is deterministic and runs in
//! both profiles: epoch-collision stress, canonical-invalidation
//! ordering, and the capture → differential-replay bridge between the
//! concurrent service and the single-writer engine.

use pdsi::plfs::backend::{Backend, MemBackend};
use pdsi::plfs::container::{create_container, epoch_watermark, reserve_session};
use pdsi::plfs::record::OpLogRecorder;
use pdsi::plfs::replay::{differential, ReplayMode, ReplayOptions};
use pdsi::plfs::{pool, ContainerPaths, IngestService, Plfs, PlfsConfig, ServiceConfig};
use pdsi::workloads::oplog::{fill_payload, OpKind};
use pdsi::workloads::swarm::{plan, SwarmConfig, SwarmPlan};
use pdsi::workloads::SizeDist;
use std::collections::BTreeSet;
use std::sync::Arc;

fn mem_fs() -> Plfs {
    Plfs::new(Arc::new(MemBackend::new()) as Arc<dyn Backend>, PlfsConfig::default())
}

fn small_swarm() -> SwarmPlan {
    plan(&SwarmConfig {
        clients: 24,
        ops_per_client: 3,
        size: SizeDist::Uniform { min: 128, max: 1024 },
        seed: 0xe19e,
    })
}

/// The ISSUE's epoch-collision stress: 1000 seeded iterations of
/// concurrent session reservation on one container must never hand two
/// callers the same session. This is the CAS-loop fix for the
/// read-then-compute `session_count` race — before it, two
/// simultaneous opens could mint overlapping stamp epochs and silently
/// corrupt overwrite resolution.
#[test]
fn concurrent_session_reservation_is_collision_free_for_1000_iterations() {
    for iter in 0u64..1000 {
        let contenders = 2 + (iter % 7) as usize; // 2..=8 racers
        let backend = Arc::new(MemBackend::new());
        let paths = ContainerPaths::new("/stress", 2);
        create_container(backend.as_ref(), &paths).unwrap();
        let sessions: Vec<u64> = {
            let results: Vec<std::sync::Mutex<Option<u64>>> =
                (0..contenders).map(|_| std::sync::Mutex::new(None)).collect();
            let barrier = std::sync::Barrier::new(contenders);
            std::thread::scope(|s| {
                for slot in &results {
                    let backend = &backend;
                    let paths = &paths;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait(); // maximize simultaneity
                        let got = reserve_session(backend.as_ref(), paths).unwrap();
                        *slot.lock().unwrap() = Some(got);
                    });
                }
            });
            results.iter().map(|m| m.lock().unwrap().expect("reservation ran")).collect()
        };
        let distinct: BTreeSet<u64> = sessions.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            contenders,
            "iteration {iter}: session collision among {sessions:?}"
        );
        // The watermark readers trust must sit above every minted session.
        let hi = *distinct.iter().next_back().unwrap();
        assert!(
            epoch_watermark(backend.as_ref(), &paths) > hi,
            "iteration {iter}: watermark not past session {hi}"
        );
    }
}

/// The same race through the full `open_writer` path: concurrently
/// opened writers must land on disjoint epochs (observable as the
/// watermark covering one marker per writer), and a record overwritten
/// by all of them must read back as exactly one writer's payload —
/// never a torn mix, which is what colliding stamp epochs produced.
#[test]
fn concurrent_writer_opens_mint_disjoint_epochs() {
    for iter in 0u64..48 {
        let ranks = 2 + (iter % 3) as u32; // 2..=4 concurrent opens
        let backend = Arc::new(MemBackend::new()) as Arc<dyn Backend>;
        let fs = Plfs::new(backend.clone(), PlfsConfig { hostdirs: 2, ..Default::default() });
        let writers: Vec<std::sync::Mutex<Option<pdsi::plfs::Writer>>> =
            (0..ranks).map(|_| std::sync::Mutex::new(None)).collect();
        let barrier = std::sync::Barrier::new(ranks as usize);
        std::thread::scope(|s| {
            for (r, slot) in writers.iter().enumerate() {
                let fs = &fs;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    *slot.lock().unwrap() = Some(fs.open_writer("/race", r as u32).unwrap());
                });
            }
        });
        for (r, slot) in writers.into_iter().enumerate() {
            let mut w = slot.into_inner().unwrap().unwrap();
            w.write_at(0, &[b'A' + r as u8; 64]).unwrap();
            w.close().unwrap();
        }
        let paths = ContainerPaths::new("/race", 2);
        assert!(
            epoch_watermark(backend.as_ref(), &paths) >= ranks as u64,
            "iteration {iter}: fewer epoch markers than concurrent opens"
        );
        let data = fs.open_reader("/race").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 64, "iteration {iter}");
        assert!(
            data.iter().all(|&b| b == data[0]),
            "iteration {iter}: torn overwrite {data:?} — epochs collided"
        );
    }
}

/// Regression for the canonical-index invalidation race: the cached
/// canonical index must be invalidated *before* a new write session
/// becomes visible, so no reader can persist — and no later reader can
/// trust — a canonical that predates the session. Observable ordering:
/// immediately after `open_writer` returns, the canonical is gone; and
/// a canonical persisted by a reader racing the open is stale by epoch
/// watermark, so post-close readers see the new data.
#[test]
fn canonical_cache_is_invalidated_before_a_new_session_is_visible() {
    let backend = Arc::new(MemBackend::new()) as Arc<dyn Backend>;
    let fs = Plfs::new(backend.clone(), PlfsConfig { hostdirs: 2, ..Default::default() });
    let paths = ContainerPaths::new("/canon", 2);

    let mut w = fs.open_writer("/canon", 0).unwrap();
    w.write_at(0, &[1u8; 256]).unwrap();
    w.close().unwrap();
    // A clean read-open persists the canonical cache.
    assert_eq!(fs.open_reader("/canon").unwrap().read_all().unwrap(), vec![1u8; 256]);
    assert!(backend.exists(&paths.canonical_index()), "clean open must persist the canonical");

    // The instant a new writer session is visible, the stale canonical
    // must already be invalidated.
    let mut w2 = fs.open_writer("/canon", 1).unwrap();
    assert!(
        !backend.exists(&paths.canonical_index()),
        "canonical survived past session-open — the invalidation race is back"
    );

    // A reader racing the open may rebuild and persist a canonical that
    // predates the new session's writes...
    assert_eq!(fs.open_reader("/canon").unwrap().read_all().unwrap(), vec![1u8; 256]);
    w2.write_at(0, &[2u8; 256]).unwrap();
    w2.close().unwrap();
    // ...but it is stale by epoch watermark, so a post-close reader
    // must rebuild and see the second session's bytes.
    assert_eq!(
        fs.open_reader("/canon").unwrap().read_all().unwrap(),
        vec![2u8; 256],
        "reader trusted a canonical persisted before the second session"
    );
}

/// The capture bridge: a swarm ingested through the *concurrent*
/// service, recorded by the PR 7 op-log recorder, must (a) land the
/// plan's exact bytes, (b) differential-replay identically under the
/// sequential and as-fast-as-possible schedulers on the single-writer
/// engine, and (c) leave the replayed container byte-identical to the
/// service's own file — the concurrent path and the single-writer path
/// are observationally the same engine.
#[test]
fn service_capture_differentially_replays_against_single_writer_engine() {
    let swarm = small_swarm();
    let recorder = Arc::new(OpLogRecorder::for_file("/swarm"));
    let backend = Arc::new(MemBackend::new()) as Arc<dyn Backend>;
    let fs =
        Plfs::new(backend, PlfsConfig { record: Some(recorder.clone()), ..Default::default() });
    let svc =
        IngestService::start(&fs, "/swarm", ServiceConfig { shards: 4, ..Default::default() })
            .unwrap();
    pool::run_bounded(swarm.per_client.len(), 8, |c| {
        for op in &swarm.per_client[c] {
            svc.write(op.client, op.offset, &op.payload()).unwrap();
        }
    });
    svc.sync().unwrap();
    let service_bytes = fs.open_reader("/swarm").unwrap().read_all().unwrap();
    assert_eq!(service_bytes, swarm.expected_contents(), "service diverged from the plan");
    svc.close().unwrap();

    let capture = recorder.snapshot();
    let writes = capture.ops.iter().filter(|o| o.len > 0).count() as u64;
    assert!(writes >= swarm.total_ops(), "capture missed writes: {writes}");

    let a = mem_fs();
    let b = mem_fs();
    let out = differential(
        &capture,
        &a,
        &ReplayOptions { mode: ReplayMode::Sequential, ..Default::default() },
        &b,
        &ReplayOptions { mode: ReplayMode::Asap, ..Default::default() },
    )
    .unwrap();
    assert!(out.delivered_match(), "replay schedulers delivered different bytes");
    assert!(out.content_match(), "replay schedulers left different container contents");
    assert!(out.identical(), "differential replay diverged: {out:?}");

    // The replayed container must match the capture's own byte-map
    // oracle: canonical payloads of (rank, offset) — rank here is the
    // *shard* that carried the write — applied over the same disjoint
    // geometry the service committed.
    let mut oracle = vec![0u8; swarm.file_size as usize];
    for op in capture.ops.iter().filter(|o| o.op == OpKind::Write && o.len > 0) {
        let lo = op.offset as usize;
        fill_payload(op.rank, op.offset, &mut oracle[lo..lo + op.len as usize]);
    }
    let replayed = a.open_reader("/swarm").unwrap().read_all().unwrap();
    assert_eq!(replayed, oracle, "replayed capture diverged from its byte-map oracle");

    // And the plan itself, driven through ONE writer in the seeded
    // issue order, must land the same bytes the concurrent service did
    // — the service and the single-writer engine are observationally
    // the same store.
    let ref_fs = mem_fs();
    let mut w = ref_fs.open_writer("/ref", 0).unwrap();
    for op in swarm.issue_order(7) {
        w.write_at(op.offset, &op.payload()).unwrap();
    }
    w.close().unwrap();
    assert_eq!(
        ref_fs.open_reader("/ref").unwrap().read_all().unwrap(),
        service_bytes,
        "single-writer reference run diverged from the concurrent service run"
    );
}

/// Deterministic slice of the grid in both profiles: a small swarm
/// through `ingest_cell` must land byte-identical contents, commit
/// every accepted write, and amortize multiple writes per index fsync.
#[test]
fn small_swarm_cell_commits_everything_with_amortized_fsyncs() {
    let swarm = plan(&SwarmConfig {
        clients: 64,
        ops_per_client: 2,
        size: SizeDist::Uniform { min: 512, max: 2048 },
        seed: 0xce11,
    });
    let cell = pdsi_bench::ingest_cell(2, &swarm);
    assert!(cell.contents_ok, "read-back diverged from the plan");
    assert_eq!(cell.ops, swarm.total_ops());
    assert_eq!(cell.committed_ops, cell.ops, "accepted writes never committed");
    assert!(cell.group_commits >= 1);
    assert!(cell.fanin() >= 4.0, "group commit failed to amortize: fan-in {:.1}", cell.fanin());
}

/// `repro ingestscale` must emit the machine-readable results with the
/// schema EXPERIMENTS.md documents.
#[test]
fn ingest_json_has_documented_schema() {
    let swarm = plan(&SwarmConfig {
        clients: 8,
        ops_per_client: 2,
        size: SizeDist::Uniform { min: 256, max: 512 },
        seed: 3,
    });
    let cells = vec![pdsi_bench::ingest_cell(1, &swarm)];
    let v = pdsi_bench::ingest_json_from(&cells);
    let cells = v.get("cells").and_then(|c| c.as_arr()).expect("cells array");
    assert_eq!(cells.len(), 1);
    for c in cells {
        for key in [
            "shards",
            "clients",
            "ops",
            "bytes",
            "wall_ns",
            "group_commits",
            "committed_ops",
            "backpressure_stalls",
            "backpressure_stall_ns",
            "contents_ok",
        ] {
            assert!(c.get(key).and_then(|x| x.as_i64()).is_some(), "cell missing {key}");
        }
        for key in ["bandwidth_bps", "speedup_vs_1shard", "fanin"] {
            assert!(c.get(key).and_then(|x| x.as_f64()).is_some(), "cell missing {key}");
        }
        assert_eq!(c.get("contents_ok").unwrap().as_i64(), Some(1));
    }
}

/// The CI scaling gate: the full 1000-client grid, with the ≥ 3×
/// 8-shard bandwidth and ≥ 8 fan-in criteria. Wall-clock comparison,
/// so release builds only.
#[cfg(not(debug_assertions))]
#[test]
fn ingest_grid_passes_the_scaling_gate() {
    let cells = pdsi_bench::ingest_results();
    let verdict = pdsi_bench::ingest_gate(&cells);
    assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
}
