//! Capture→replay round-trip and differential-replay tests: the
//! op-log subsystem's end-to-end guarantees, checked through the
//! public `pdsi` facade.
//!
//! The oracle is a *byte map* built directly from the op log — apply
//! every write's canonical payload in stamp order — so the replayed
//! container's logical contents are compared against something that
//! never went through PLFS at all.

use pdsi::plfs::backend::{Backend, MemBackend};
use pdsi::plfs::record::OpLogRecorder;
use pdsi::plfs::replay::{content_hash, differential, path_for, replay, ReplayMode, ReplayOptions};
use pdsi::plfs::{FaultPlan, FaultyBackend, Plfs, PlfsConfig, RetryPolicy};
use pdsi::workloads::gen::{generate, GenConfig, Scenario, SCENARIOS};
use pdsi::workloads::oplog::{fill_payload, OpKind, OpLog, OpResult, Shape};
use pdsi::workloads::sample::{ArrivalDist, SizeDist};
use std::collections::HashMap;
use std::sync::Arc;

fn mem_fs() -> Plfs {
    Plfs::new(Arc::new(MemBackend::new()) as Arc<dyn Backend>, PlfsConfig::default())
}

/// Logical file contents the log's writes should produce: canonical
/// payloads applied in stamp order (bigger stamp wins overlaps —
/// exactly the index merge's resolution rule).
fn byte_map_oracle(log: &OpLog) -> HashMap<String, Vec<u8>> {
    let mut writes: Vec<_> =
        log.ops.iter().filter(|o| o.op == OpKind::Write && o.len > 0).collect();
    writes.sort_by_key(|o| match o.result {
        OpResult::Write { stamp } => stamp,
        _ => panic!("generated write without a stamp"),
    });
    let mut files: HashMap<String, Vec<u8>> = HashMap::new();
    for op in writes {
        let f = files.entry(path_for(log, op.rank)).or_default();
        let end = (op.offset + op.len) as usize;
        if f.len() < end {
            f.resize(end, 0);
        }
        fill_payload(op.rank, op.offset, &mut f[op.offset as usize..end]);
    }
    files
}

/// Capture→replay round-trip over the full generator grid: executing
/// a generated log through a *recording* instance and then replaying
/// the capture on a fresh store must reproduce (a) the capture's
/// delivered read bytes and (b) the byte-map oracle's container
/// contents — for every scenario, size/arrival shape, and replay mode.
#[test]
fn capture_replay_round_trip_over_generator_grid() {
    let shapes = [
        (SizeDist::Uniform { min: 512, max: 8192 }, ArrivalDist::Immediate),
        (
            SizeDist::LogNormal { median: 4096, sigma: 1.2, min: 256, max: 32 * 1024 },
            ArrivalDist::Poisson { mean_gap_ns: 20_000 },
        ),
    ];
    for &(_, scenario) in SCENARIOS {
        for (gi, &(size, arrival)) in shapes.iter().enumerate() {
            let cfg =
                GenConfig { ranks: 4, ops_per_rank: 5, size, arrival, seed: 1000 + gi as u64 };
            let log = generate(scenario, &cfg);
            let oracle = byte_map_oracle(&log);

            // Capture: run the generated log through a recording
            // instance (sequential = the reference interleaving). N-N
            // logs need the rank-family recorder.
            let recorder = Arc::new(match log.shape {
                Shape::N1 => OpLogRecorder::new(),
                Shape::NN => OpLogRecorder::for_file_nn(&log.file),
            });
            let capture_backend = Arc::new(MemBackend::new()) as Arc<dyn Backend>;
            let capture_fs = Plfs::new(
                capture_backend,
                PlfsConfig { record: Some(recorder.clone()), ..Default::default() },
            );
            let base = replay(
                &capture_fs,
                &log,
                &ReplayOptions { mode: ReplayMode::Sequential, ..Default::default() },
            )
            .unwrap();
            assert_eq!(base.errors, 0, "{scenario:?}/{gi}: capture errored");
            let capture = recorder.snapshot();
            assert!(!capture.ops.is_empty(), "{scenario:?}/{gi}: capture recorded nothing");
            let capture_content = content_hash(&capture_fs, &log).unwrap();

            // Replay the capture in both scheduled modes on fresh stores.
            for mode in [ReplayMode::Sequential, ReplayMode::Asap] {
                let backend = Arc::new(MemBackend::new()) as Arc<dyn Backend>;
                let fs = Plfs::new(backend.clone(), PlfsConfig::default());
                let out =
                    replay(&fs, &capture, &ReplayOptions { mode, ..Default::default() }).unwrap();
                assert_eq!(out.errors, 0, "{scenario:?}/{gi}/{mode:?}");
                assert_eq!(out.read_mismatches, 0, "{scenario:?}/{gi}/{mode:?}: reads diverged");
                assert_eq!(
                    out.delivered_hash,
                    capture.delivered_hash(),
                    "{scenario:?}/{gi}/{mode:?}: delivered bytes diverged from capture"
                );
                assert_eq!(
                    out.content_hash, capture_content,
                    "{scenario:?}/{gi}/{mode:?}: container contents diverged from capture"
                );

                // Byte-map oracle: the replayed container's logical
                // files match the map, byte for byte.
                let clean = Plfs::new(backend, PlfsConfig::default());
                for (file, want) in &oracle {
                    let r = clean
                        .open_reader(file)
                        .unwrap_or_else(|e| panic!("{scenario:?}/{gi}/{mode:?}: open {file}: {e}"));
                    let got = r.read_all().unwrap();
                    assert_eq!(
                        &got, want,
                        "{scenario:?}/{gi}/{mode:?}: {file} bytes diverged from oracle"
                    );
                }
            }
        }
    }
}

/// Differential satellite: the same log replayed on a clean store and
/// on a store injecting transient faults plus pathological short reads
/// must be observationally identical — the retry layer and the
/// POSIX-correct partial-read handling absorb every injected fault.
#[test]
fn differential_faulty_store_matches_clean_run() {
    let cfg = GenConfig {
        ranks: 6,
        ops_per_rank: 5,
        size: SizeDist::Uniform { min: 700, max: 9000 },
        arrival: ArrivalDist::Immediate,
        seed: 77,
    };
    for &(_, scenario) in
        &[("", Scenario::N1Strided), ("", Scenario::Mixed), ("", Scenario::ReadHeavyRestart)]
    {
        let log = generate(scenario, &cfg);
        let clean = mem_fs();
        let plan = FaultPlan {
            transient_error_rate: 0.06,
            short_read_cap: Some(1500),
            ..FaultPlan::none(91)
        };
        let faulty_store = Arc::new(FaultyBackend::new(MemBackend::new(), plan));
        let mut fcfg = PlfsConfig { retry: RetryPolicy::fast_test(), ..Default::default() };
        fcfg.writer.retry = RetryPolicy::fast_test();
        let faulty = Plfs::new(faulty_store.clone() as Arc<dyn Backend>, fcfg);

        let diff = differential(
            &log,
            &clean,
            &ReplayOptions::default(),
            &faulty,
            &ReplayOptions::default(),
        )
        .unwrap();
        assert!(
            diff.identical(),
            "{scenario:?}: faulty-store replay diverged from clean \
             (delivered={} content={} invariants={})",
            diff.delivered_match(),
            diff.content_match(),
            diff.invariants_match()
        );
        let st = faulty_store.stats();
        assert!(
            st.injected_transient > 0,
            "{scenario:?}: no transient faults injected — differential was vacuous"
        );
    }
}

/// The acceptance bar, pinned as a test: the bench-side 64-rank grid —
/// three modes hash-identical to the capture, three differential
/// engine-config pairs clean, timing-faithful actually paced.
#[test]
fn bench_replay_gate_holds() {
    let summary = pdsi_bench::replay_results();
    assert_eq!(summary.ranks, 64);
    assert!(summary.pairs.len() >= 3, "need >= 3 differential engine-config pairs");
    pdsi_bench::replay_gate(&summary).unwrap();
}

/// Replaying one log twice on independent stores is bit-deterministic:
/// same delivered hash, same content hash, in every mode pairing.
#[test]
fn replay_is_deterministic_across_runs_and_modes() {
    let cfg = GenConfig {
        ranks: 5,
        ops_per_rank: 6,
        size: SizeDist::LogNormal { median: 6000, sigma: 1.0, min: 128, max: 40_000 },
        arrival: ArrivalDist::Burst { burst: 3, intra_gap_ns: 10, inter_gap_ns: 40_000 },
        seed: 13,
    };
    let log = generate(Scenario::Mixed, &cfg);
    let mut seen = Vec::new();
    for mode in [ReplayMode::Asap, ReplayMode::Asap, ReplayMode::Sequential] {
        let out = replay(&mem_fs(), &log, &ReplayOptions { mode, ..Default::default() }).unwrap();
        assert_eq!(out.errors, 0);
        seen.push((out.delivered_hash, out.content_hash));
    }
    assert_eq!(seen[0], seen[1], "same mode, two runs");
    assert_eq!(seen[1], seen[2], "asap vs sequential");
}
