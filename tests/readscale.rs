//! Acceptance tests for the parallel coalescing read engine: at scale
//! it must collapse the per-extent backend reads of a strided N-1
//! restart into per-dropping sweeps, and its output must be
//! byte-identical to the serial per-piece oracle. All op comparisons
//! use logical backend-op counters (deterministic, machine-independent)
//! — wall clock appears only in the release-mode bandwidth gate.

/// The ISSUE's headline number: at 64 ranks x 10k entries/rank the
/// engine must issue at least 4x fewer logical backend reads than the
/// serial per-piece path (it actually achieves one read per dropping —
/// a 10000x reduction), while producing byte-identical output.
#[test]
fn engine_reduces_backend_ops_4x_at_64_ranks_10k_entries() {
    let cell = pdsi_bench::readscale_cell(64, 10_000);
    assert_eq!(cell.entries, 640_000);
    assert!(cell.identical, "engine output must be byte-identical to the serial oracle");
    assert!(cell.serial_ops >= cell.entries as u64, "oracle pays at least one read per extent");
    assert!(
        cell.cold_ops * 4 <= cell.serial_ops,
        "coalescing must reduce logical backend ops >= 4x: serial {} vs engine {}",
        cell.serial_ops,
        cell.cold_ops
    );
    // The strided restart collapses to one batch per dropping.
    assert_eq!(cell.batches, 64);
    assert_eq!(cell.coalesced_bytes, cell.bytes, "every batch merged multiple extents");
}

/// Scaling shape: engine ops grow with ranks (one sweep per dropping),
/// not with entries — 10x the entries per rank must not change the
/// engine's op count while the serial oracle's grows 10x.
#[test]
fn engine_ops_scale_with_droppings_not_entries() {
    let small = pdsi_bench::readscale_cell(16, 100);
    let large = pdsi_bench::readscale_cell(16, 1000);
    assert!(small.identical && large.identical);
    assert_eq!(small.cold_ops, large.cold_ops, "engine ops are per-dropping");
    assert_eq!(large.serial_ops, 10 * small.serial_ops, "serial ops are per-extent");
    assert!(large.warm_ops <= large.cold_ops);
}

/// `repro readscale` must emit the machine-readable results with the
/// schema EXPERIMENTS.md documents.
#[test]
fn readscale_json_has_documented_schema() {
    let cells = vec![pdsi_bench::readscale_cell(4, 100)];
    let v = pdsi_bench::readscale_json_from(&cells);
    let cells = v.get("cells").and_then(|c| c.as_arr()).expect("cells array");
    assert_eq!(cells.len(), 1);
    for c in cells {
        for key in [
            "ranks",
            "per_rank",
            "entries",
            "bytes",
            "serial_ops",
            "cold_ops",
            "warm_ops",
            "batches",
            "coalesced_bytes",
            "serial_wall_ns",
            "cold_wall_ns",
            "warm_wall_ns",
            "identical",
        ] {
            assert!(c.get(key).and_then(|x| x.as_i64()).is_some(), "cell missing {key}");
        }
        assert!(c.get("op_reduction").and_then(|x| x.as_f64()).is_some());
        assert_eq!(c.get("identical").unwrap().as_i64(), Some(1));
    }
}

/// The CI bandwidth gate: the warm engine must not be slower than the
/// serial baseline on the large cell. Wall-clock comparison, so
/// release builds only — debug-mode codegen would measure the
/// optimizer, not the engine.
#[cfg(not(debug_assertions))]
#[test]
fn warm_engine_bandwidth_beats_serial_baseline() {
    let cells = vec![pdsi_bench::readscale_cell(64, 10_000)];
    let verdict = pdsi_bench::readscale_gate(&cells);
    assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
}
