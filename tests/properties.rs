//! Property-based tests over the core data structures and invariants.

use pdsi::diskmodel::{BlockDevice, DevOp, FlashDevice, FtlConfig};
use pdsi::giga::GigaDirectory;
use pdsi::plfs::index::{decode, encode_compressed, encode_raw, IndexEntry, IndexMap};
use pdsi::simkit::stats::Cdf;
use pdsi::workloads::{Trace, TraceOp};
use proptest::prelude::*;

// --------------------------------------------------------- PLFS index

/// Arbitrary write: (logical_offset, length) bounded to keep the naive
/// model small.
fn writes_strategy() -> impl Strategy<Value = Vec<(u32, u16, u8)>> {
    // (offset, len, writer)
    prop::collection::vec((0u32..60_000, 1u16..2_000, 0u8..6), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The IndexMap must agree byte-for-byte with a naive flat-array
    /// last-writer-wins model, for arbitrary overlapping writes.
    #[test]
    fn index_map_matches_naive_model(writes in writes_strategy()) {
        let mut naive: Vec<Option<(u8, u64)>> = vec![None; 64_000];
        let mut entries = Vec::new();
        let mut phys = vec![0u64; 8];
        for (ts, &(off, len, writer)) in writes.iter().enumerate() {
            let (off, len) = (off as u64, len as u64);
            for b in off..off + len {
                // Store writer + the physical byte position it placed.
                naive[b as usize] = Some((writer, phys[writer as usize] + (b - off)));
            }
            entries.push(IndexEntry {
                logical_offset: off,
                length: len,
                physical_offset: phys[writer as usize],
                writer: writer as u32,
                timestamp: ts as u64,
            });
            phys[writer as usize] += len;
        }
        let map = IndexMap::build(entries);
        map.check_invariants();
        // EOF agrees.
        let naive_eof = naive.iter().rposition(|x| x.is_some()).map(|i| i as u64 + 1).unwrap_or(0);
        prop_assert_eq!(map.eof(), naive_eof);
        // Every byte's (writer, physical) agrees.
        for (b, cell) in naive.iter().enumerate() {
            let pieces = map.lookup(b as u64, 1);
            match cell {
                None => {
                    if !pieces.is_empty() {
                        prop_assert!(pieces[0].2.is_none(), "byte {} should be a hole", b);
                    }
                }
                Some((writer, phys_pos)) => {
                    prop_assert_eq!(pieces.len(), 1);
                    let x = pieces[0].2.expect("mapped byte missing");
                    prop_assert_eq!(x.writer, *writer as u32, "byte {}", b);
                    prop_assert_eq!(x.physical, *phys_pos, "byte {}", b);
                }
            }
        }
    }

    /// Raw and compressed encodings always decode to the same entries.
    #[test]
    fn index_encodings_roundtrip(writes in writes_strategy()) {
        let entries: Vec<IndexEntry> = writes
            .iter()
            .enumerate()
            .map(|(ts, &(off, len, writer))| IndexEntry {
                logical_offset: off as u64,
                length: len as u64,
                physical_offset: ts as u64 * 2_000,
                writer: writer as u32,
                timestamp: ts as u64,
            })
            .collect();
        prop_assert_eq!(decode(&encode_raw(&entries)).unwrap(), entries.clone());
        prop_assert_eq!(decode(&encode_compressed(&entries)).unwrap(), entries);
    }

    // ------------------------------------------------------- GIGA+

    /// Random insert/remove sequences preserve GIGA+ invariants and
    /// agree with a HashSet model.
    #[test]
    fn giga_agrees_with_set_model(
        ops in prop::collection::vec((0u16..800, prop::bool::ANY), 1..400),
        servers in 1usize..9,
        threshold in 4usize..64,
    ) {
        let mut dir = GigaDirectory::new(servers, threshold);
        let mut model = std::collections::HashSet::new();
        for (key, insert) in ops {
            let name = format!("n{key}");
            if insert {
                prop_assert_eq!(dir.insert(&name), model.insert(name.clone()));
            } else {
                prop_assert_eq!(dir.remove(&name), model.remove(&name));
            }
        }
        dir.check_invariants();
        prop_assert_eq!(dir.len(), model.len());
        for name in &model {
            prop_assert!(dir.contains(name), "{} lost", name);
        }
    }

    // ------------------------------------------------------- traces

    /// Any trace serializes and parses back identically.
    #[test]
    fn trace_text_roundtrip(
        ops in prop::collection::vec(
            (0u32..64, prop::bool::ANY, 0u64..1_000_000, 1u64..100_000),
            0..100,
        )
    ) {
        let t = Trace {
            app: "prop".into(),
            ranks: 64,
            ops: ops
                .into_iter()
                .map(|(rank, is_write, offset, len)| TraceOp { rank, is_write, offset, len })
                .collect(),
        };
        let parsed = Trace::parse(&t.to_text()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    // ------------------------------------------------------- stats

    /// CDF is monotone and quantiles invert it.
    #[test]
    fn cdf_monotone_and_quantiles_consistent(
        mut xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..200)
    ) {
        let cdf = Cdf::from_samples(xs.clone());
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Monotone in x.
        for w in xs.windows(2) {
            prop_assert!(cdf.at(w[0]) <= cdf.at(w[1]) + 1e-12);
        }
        // quantile(q) has at least q mass at or below it.
        for &q in &[0.1, 0.5, 0.9, 1.0] {
            let v = cdf.quantile(q);
            prop_assert!(cdf.at(v) + 1e-12 >= q);
        }
    }

    // ------------------------------------------------------- FTL

    /// Arbitrary page-write sequences keep the FTL maps consistent and
    /// never lose the free pool.
    #[test]
    fn ftl_invariants_under_random_writes(
        pages in prop::collection::vec(0u64..2048, 1..3000),
        op in 1u32..4,
    ) {
        let mut dev = FlashDevice::new(FtlConfig::from_headline(
            "prop-flash",
            2048 * 4096,
            200.0,
            100.0,
            20.0,
            2.0,
            0.1 * op as f64 + 0.05,
        ));
        for p in pages {
            dev.service(DevOp::write(p * 4096, 4096));
        }
        dev.check_invariants();
        prop_assert!(dev.ftl_stats().write_amplification() >= 1.0);
        prop_assert!(dev.free_pool_blocks() > 0);
    }
}
