//! Property-based tests over the core data structures and invariants.
//!
//! These used to run under `proptest`; they are now driven by the
//! in-tree deterministic PRNG (`simkit::Rng`) so the workspace builds
//! and tests fully offline with zero external dependencies. Each
//! property runs over a fixed set of seeds; a failing seed reproduces
//! exactly.

use pdsi::diskmodel::{BlockDevice, DevOp, FlashDevice, FtlConfig};
use pdsi::giga::GigaDirectory;
use pdsi::plfs::backend::{Backend, MemBackend};
use pdsi::plfs::faults::{FaultPlan, FaultyBackend};
use pdsi::plfs::index::{decode, encode_compressed, encode_raw, IndexEntry, IndexMap};
use pdsi::plfs::retry::RetryPolicy;
use pdsi::plfs::{
    fsck, is_integrity, ContainerPaths, IngestService, Plfs, PlfsConfig, QuarantinePolicy,
    ServiceConfig, WriterConfig, VERIFY_BLOCK,
};
use pdsi::simkit::stats::Cdf;
use pdsi::simkit::Rng;
use pdsi::workloads::{Trace, TraceOp};
use std::sync::Arc;

/// Seeds every property iterates over (64 cases, like the old
/// `ProptestConfig::with_cases(64)`).
const CASES: u64 = 64;

/// One random write workload: `(logical_offset, len, writer)`.
fn random_writes(rng: &mut Rng) -> Vec<(u64, u64, u32)> {
    let n = rng.range_inclusive(1, 59) as usize;
    (0..n)
        .map(|_| (rng.below(60_000), rng.range_inclusive(1, 1_999), rng.below(6) as u32))
        .collect()
}

// --------------------------------------------------------- PLFS index

/// The IndexMap must agree byte-for-byte with a naive flat-array
/// last-writer-wins model, for arbitrary overlapping writes.
#[test]
fn index_map_matches_naive_model() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let writes = random_writes(&mut rng);
        let mut naive: Vec<Option<(u32, u64)>> = vec![None; 64_000];
        let mut entries = Vec::new();
        let mut phys = [0u64; 8];
        for (ts, &(off, len, writer)) in writes.iter().enumerate() {
            for b in off..off + len {
                naive[b as usize] = Some((writer, phys[writer as usize] + (b - off)));
            }
            entries.push(IndexEntry {
                logical_offset: off,
                length: len,
                physical_offset: phys[writer as usize],
                writer,
                timestamp: ts as u64,
            });
            phys[writer as usize] += len;
        }
        let map = IndexMap::build(entries);
        map.check_invariants();
        let naive_eof = naive.iter().rposition(|x| x.is_some()).map(|i| i as u64 + 1).unwrap_or(0);
        assert_eq!(map.eof(), naive_eof, "seed {seed}");
        for (b, cell) in naive.iter().enumerate() {
            let pieces = map.lookup(b as u64, 1);
            match cell {
                None => {
                    if !pieces.is_empty() {
                        assert!(pieces[0].2.is_none(), "seed {seed}: byte {b} should be a hole");
                    }
                }
                Some((writer, phys_pos)) => {
                    assert_eq!(pieces.len(), 1, "seed {seed}");
                    let x = pieces[0].2.expect("mapped byte missing");
                    assert_eq!(x.writer, *writer, "seed {seed}: byte {b}");
                    assert_eq!(x.physical, *phys_pos, "seed {seed}: byte {b}");
                }
            }
        }
    }
}

/// The O(n log n) sweep merge and the old splice merge are two
/// implementations of the same specification: on arbitrary
/// overlapping, out-of-order writes they must produce identical
/// extent lists, and the ghost cost model used by `repro openscale`
/// must charge the splice baseline exactly what the real splice pays.
#[test]
fn sweep_and_splice_merges_agree_with_each_other_and_the_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(7_000 + seed);
        let writes = random_writes(&mut rng);
        let mut naive: Vec<Option<u32>> = vec![None; 64_000];
        let mut entries = Vec::new();
        let mut phys = [0u64; 8];
        for (ts, &(off, len, writer)) in writes.iter().enumerate() {
            for b in off..off + len {
                naive[b as usize] = Some(writer);
            }
            entries.push(IndexEntry {
                logical_offset: off,
                length: len,
                physical_offset: phys[writer as usize],
                writer,
                timestamp: ts as u64,
            });
            phys[writer as usize] += len;
        }
        let sweep = IndexMap::build(entries.clone());
        let splice = IndexMap::build_splice_baseline(entries.clone());
        sweep.check_invariants();
        splice.check_invariants();
        assert_eq!(sweep.extents(), splice.extents(), "seed {seed}: merges disagree");
        assert_eq!(sweep.fragments(), splice.fragments(), "seed {seed}: stamps disagree");
        assert_eq!(
            pdsi::plfs::index::splice_merge_cost(&entries),
            splice.merge_steps(),
            "seed {seed}: ghost cost model drifted from the real splice"
        );
        // Both agree with the byte-level oracle on who owns each byte.
        for map in [&sweep, &splice] {
            for (b, cell) in naive.iter().enumerate() {
                let pieces = map.lookup(b as u64, 1);
                match cell {
                    None => {
                        if !pieces.is_empty() {
                            assert!(pieces[0].2.is_none(), "seed {seed}: byte {b} not a hole");
                        }
                    }
                    Some(writer) => {
                        assert_eq!(pieces[0].2.expect("mapped").writer, *writer, "seed {seed}");
                    }
                }
            }
        }
    }
}

/// Raw and compressed encodings always decode to the same entries.
#[test]
fn index_encodings_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::new(1_000 + seed);
        let entries: Vec<IndexEntry> = random_writes(&mut rng)
            .iter()
            .enumerate()
            .map(|(ts, &(off, len, writer))| IndexEntry {
                logical_offset: off,
                length: len,
                physical_offset: ts as u64 * 2_000,
                writer,
                timestamp: ts as u64,
            })
            .collect();
        assert_eq!(decode(&encode_raw(&entries)).unwrap(), entries, "seed {seed}");
        assert_eq!(decode(&encode_compressed(&entries)).unwrap(), entries, "seed {seed}");
    }
}

// ------------------------------------------------- crash & recovery

/// Model of what the logical file must contain after recovery: the
/// bytes of every write acked (synced) before the crash.
struct AckedModel {
    bytes: Vec<Option<u8>>,
}

impl AckedModel {
    fn assert_readable(&self, fs: &Plfs, seed: u64, tag: &str) {
        let reader = fs.open_reader("/f").expect("container must open after repair");
        let data = reader.read_all().unwrap();
        for (off, cell) in self.bytes.iter().enumerate() {
            if let Some(expect) = cell {
                assert!(
                    off < data.len() && data[off] == *expect,
                    "seed {seed} {tag}: acked byte at {off} lost or corrupt \
                     (got {:?}, want {expect})",
                    data.get(off),
                );
            }
        }
    }
}

/// Deterministic multi-writer workload over a faulty backend. Returns
/// the acked model at the moment the backend froze.
///
/// Writes are disjoint (each record owns its logical slot) so an acked
/// record can never be legitimately superseded by an unacked one —
/// byte-for-byte readback is then an invariant, not a probability.
fn crash_workload(crash_after: u64, seed: u64) -> (Arc<FaultyBackend<MemBackend>>, AckedModel) {
    let faulty = Arc::new(FaultyBackend::new(
        MemBackend::new(),
        FaultPlan { crash_after_bytes: Some(crash_after), ..FaultPlan::none(seed) },
    ));
    let fs = Plfs::new(
        faulty.clone() as Arc<dyn Backend>,
        PlfsConfig {
            hostdirs: 2,
            writer: WriterConfig {
                data_buffer: 128,
                index_flush_every: 4,
                retry: RetryPolicy::none(),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut rng = Rng::new(seed);
    let ranks = 3u32;
    let rec = 16u64;
    let slots = 40u64;
    let mut model = AckedModel { bytes: vec![None; (slots * rec) as usize] };
    let writers: Vec<_> = (0..ranks).filter_map(|r| fs.open_writer("/f", r).ok()).collect();
    let mut writers = writers;
    if writers.len() < ranks as usize {
        return (faulty, model); // crashed during open: nothing acked yet
    }
    let mut pending: Vec<Vec<(u64, u8)>> = vec![Vec::new(); ranks as usize];
    for slot in 0..slots {
        let r = rng.below(ranks as u64) as usize;
        let fill = (rng.below(251) + 1) as u8;
        let off = slot * rec;
        if writers[r].write_at(off, &[fill; 16]).is_ok() {
            pending[r].push((off, fill));
        }
        // Periodic sync = the ack point.
        if rng.chance(0.25) {
            if writers[r].sync().is_ok() {
                for &(o, f) in &pending[r] {
                    for b in 0..rec {
                        model.bytes[(o + b) as usize] = Some(f);
                    }
                }
            }
            pending[r].clear();
        }
    }
    for (r, w) in writers.into_iter().enumerate() {
        let flushed = pending[r].clone();
        if w.close().is_ok() {
            for (o, f) in flushed {
                for b in 0..rec {
                    model.bytes[(o + b) as usize] = Some(f);
                }
            }
        }
    }
    (faulty, model)
}

/// Crash-stop the backend at *every byte boundary* of the tail of the
/// workload, repair, and verify every acked byte reads back.
#[test]
fn crash_repair_preserves_acked_data_at_every_boundary() {
    for seed in [0u64, 7, 42] {
        // Probe run without a crash to learn the total appended bytes.
        let (probe, _) = crash_workload(u64::MAX, seed);
        let total = probe.bytes_appended();
        assert!(total > 0);
        // Sweep crash points: every byte boundary in the final stretch,
        // coarser (but covering) earlier.
        let tail_start = total.saturating_sub(96);
        let mut points: Vec<u64> = (0..tail_start).step_by(61).collect();
        points.extend(tail_start..=total);
        for crash_after in points {
            let (faulty, model) = crash_workload(crash_after, seed);
            faulty.heal();
            let report =
                fsck::repair(faulty.as_ref(), "/f", 2, &fsck::RepairOptions::default()).unwrap();
            assert!(
                report.after.is_clean(),
                "seed {seed} crash@{crash_after}: repair left errors {:?}",
                report.after.errors
            );
            let fs = Plfs::new(
                faulty.clone() as Arc<dyn Backend>,
                PlfsConfig { hostdirs: 2, ..Default::default() },
            );
            model.assert_readable(&fs, seed, &format!("crash@{crash_after}"));
        }
    }
}

/// Four concurrent ranks writing interleaved strided records: rank `r`
/// owns every offset `(j*4 + r) * REC`, so neighbouring records always
/// belong to different ranks (the pathological N-1 signature). Each
/// rank syncs (= ack point) every fourth record. Returns the frozen
/// backend and each rank's independently-tracked acked model.
fn strided_crash_workload(
    crash_after: u64,
    seed: u64,
) -> (Arc<FaultyBackend<MemBackend>>, Vec<AckedModel>) {
    const RANKS: usize = 4;
    const RECORDS: u64 = 16;
    const REC: u64 = 8;
    let faulty = Arc::new(FaultyBackend::new(
        MemBackend::new(),
        FaultPlan { crash_after_bytes: Some(crash_after), ..FaultPlan::none(seed) },
    ));
    let fs = Plfs::new(
        faulty.clone() as Arc<dyn Backend>,
        PlfsConfig {
            hostdirs: 2,
            writer: WriterConfig {
                data_buffer: 64,
                index_flush_every: 3,
                retry: RetryPolicy::none(),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let size = (RECORDS * RANKS as u64 * REC) as usize;
    let mut models: Vec<AckedModel> =
        (0..RANKS).map(|_| AckedModel { bytes: vec![None; size] }).collect();
    let mut writers = Vec::new();
    for r in 0..RANKS as u32 {
        match fs.open_writer("/f", r) {
            Ok(w) => writers.push(w),
            Err(_) => return (faulty, models), // crashed during open
        }
    }
    let mut pending: Vec<Vec<(u64, u8)>> = vec![Vec::new(); RANKS];
    for j in 0..RECORDS {
        for (r, w) in writers.iter_mut().enumerate() {
            let off = (j * RANKS as u64 + r as u64) * REC;
            let fill = 1 + ((r as u64 * 67 + j * 13 + seed) % 251) as u8;
            if w.write_at(off, &[fill; REC as usize]).is_ok() {
                pending[r].push((off, fill));
            }
            if (j + 1) % 4 == 0 {
                if w.sync().is_ok() {
                    for &(o, f) in &pending[r] {
                        for b in 0..REC {
                            models[r].bytes[(o + b) as usize] = Some(f);
                        }
                    }
                }
                pending[r].clear();
            }
        }
    }
    for (r, w) in writers.into_iter().enumerate() {
        let flushed = pending[r].clone();
        if w.close().is_ok() {
            for (o, f) in flushed {
                for b in 0..REC {
                    models[r].bytes[(o + b) as usize] = Some(f);
                }
            }
        }
    }
    (faulty, models)
}

/// Crash-stop the 4-rank interleaved-strided workload at EVERY byte the
/// backend ever appends, repair, and verify each rank's acked records
/// read back intact — acked data must survive no matter where in whose
/// dropping the crash lands.
#[test]
fn strided_four_rank_crash_sweep_preserves_per_rank_acked_data() {
    for seed in [3u64, 19] {
        // Probe run without a crash to learn the total appended bytes.
        let (probe, _) = strided_crash_workload(u64::MAX, seed);
        let total = probe.bytes_appended();
        assert!(total > 0);
        for crash_after in 0..=total {
            let (faulty, models) = strided_crash_workload(crash_after, seed);
            faulty.heal();
            let report =
                fsck::repair(faulty.as_ref(), "/f", 2, &fsck::RepairOptions::default()).unwrap();
            assert!(
                report.after.is_clean(),
                "seed {seed} crash@{crash_after}: repair left errors {:?}",
                report.after.errors
            );
            let fs = Plfs::new(
                faulty.clone() as Arc<dyn Backend>,
                PlfsConfig { hostdirs: 2, ..Default::default() },
            );
            for (r, model) in models.iter().enumerate() {
                model.assert_readable(&fs, seed, &format!("rank {r} crash@{crash_after}"));
            }
        }
    }
}

/// The ingest-service version of the crash workload: clients write
/// disjoint slots through a 2-shard [`IngestService`], with
/// `service.sync()` — the service's durability barrier — as the ack
/// point. Everything acked by a successful barrier goes into the
/// model; writes merely *accepted* (queued) do not.
fn service_crash_workload(
    crash_after: u64,
    seed: u64,
) -> (Arc<FaultyBackend<MemBackend>>, AckedModel) {
    const CLIENTS: u32 = 6;
    const ROUNDS: u64 = 4;
    const REC: u64 = 24;
    let faulty = Arc::new(FaultyBackend::new(
        MemBackend::new(),
        FaultPlan { crash_after_bytes: Some(crash_after), ..FaultPlan::none(seed) },
    ));
    let mut cfg = PlfsConfig {
        hostdirs: 2,
        writer: WriterConfig {
            data_buffer: 128,
            index_flush_every: 4,
            retry: RetryPolicy::none(),
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.retry = RetryPolicy::none();
    let fs = Plfs::new(faulty.clone() as Arc<dyn Backend>, cfg);
    let mut model = AckedModel { bytes: vec![None; (CLIENTS as u64 * ROUNDS * REC) as usize] };
    let svc = match IngestService::start(
        &fs,
        "/f",
        ServiceConfig { shards: 2, batch_ops: 4, ..Default::default() },
    ) {
        Ok(svc) => svc,
        Err(_) => return (faulty, model), // crashed during open: nothing acked
    };
    let mut pending: Vec<(u64, u8)> = Vec::new();
    'rounds: for round in 0..ROUNDS {
        for c in 0..CLIENTS {
            let off = (round * CLIENTS as u64 + c as u64) * REC;
            let fill = 1 + ((c as u64 * 67 + round * 13 + seed) % 250) as u8;
            if svc.write(c, off, &vec![fill; REC as usize]).is_ok() {
                pending.push((off, fill));
            } else {
                break 'rounds; // sticky shard failure: nothing later acks
            }
        }
        if svc.sync().is_ok() {
            for &(o, f) in &pending {
                for b in 0..REC {
                    model.bytes[(o + b) as usize] = Some(f);
                }
            }
            pending.clear();
        } else {
            break;
        }
    }
    // Close may fail (frozen store) — acked data must survive anyway.
    let _ = svc.close();
    (faulty, model)
}

/// Crash-stop the ingest service at append-byte boundaries across the
/// whole workload (every byte in the tail, covering strides earlier),
/// repair, and verify every barriered byte reads back: a service crash
/// loses only data that was accepted but never acked by `sync`.
#[test]
fn service_crash_sweep_preserves_barriered_data() {
    for seed in [1u64, 11] {
        // Probe run without a crash to learn the total appended bytes.
        let (probe, _) = service_crash_workload(u64::MAX, seed);
        let total = probe.bytes_appended();
        assert!(total > 0);
        let tail_start = total.saturating_sub(80);
        let mut points: Vec<u64> = (0..tail_start).step_by(53).collect();
        points.extend(tail_start..=total);
        for crash_after in points {
            let (faulty, model) = service_crash_workload(crash_after, seed);
            faulty.heal();
            let report =
                fsck::repair(faulty.as_ref(), "/f", 2, &fsck::RepairOptions::default()).unwrap();
            assert!(
                report.after.is_clean(),
                "seed {seed} service crash@{crash_after}: repair left errors {:?}",
                report.after.errors
            );
            let fs = Plfs::new(
                faulty.clone() as Arc<dyn Backend>,
                PlfsConfig { hostdirs: 2, ..Default::default() },
            );
            model.assert_readable(&fs, seed, &format!("service crash@{crash_after}"));
        }
    }
}

/// Transient faults below the give-up threshold must be fully masked by
/// the retry policy: the workload completes with zero surfaced errors.
#[test]
fn retry_masks_transient_faults() {
    for seed in 0..16u64 {
        let faulty = Arc::new(FaultyBackend::new(
            MemBackend::new(),
            FaultPlan {
                transient_error_rate: 0.10,
                torn_append_rate: 0.05,
                ..FaultPlan::none(seed)
            },
        ));
        let fs = Plfs::new(
            faulty.clone() as Arc<dyn Backend>,
            PlfsConfig {
                hostdirs: 2,
                writer: WriterConfig {
                    data_buffer: 256,
                    retry: RetryPolicy::fast_test(),
                    ..Default::default()
                },
                retry: RetryPolicy::fast_test(),
                ..Default::default()
            },
        );
        let mut rng = Rng::new(900 + seed);
        for rank in 0..3u32 {
            let mut w = fs.open_writer("/r", rank).expect("open must be retried to success");
            for i in 0..30u64 {
                let off = (i * 3 + rank as u64) * 64;
                let fill = (rng.below(250) + 1) as u8;
                w.write_at(off, &[fill; 64]).expect("write must be masked");
            }
            w.close().expect("close must be masked");
        }
        let r = fs.open_reader("/r").expect("read-side must be masked too");
        let data = r.read_all().expect("reads must be masked");
        assert_eq!(data.len(), 90 * 64, "seed {seed}");
        assert!(faulty.stats().injected_transient > 0, "seed {seed}: plan injected nothing");
    }
}

/// Differential test for the coalescing read engine: over random
/// overlapping, hole-y multi-writer histories, `Reader::read_at` (the
/// parallel batched path) must return byte-identical results to
/// `Reader::read_at_serial` (one backend read per piece) and to a naive
/// last-write-wins byte map — even when the backend injects transient
/// errors and caps every read at a few bytes (forcing the short-read
/// loop on every batch).
#[test]
fn read_engine_matches_serial_oracle_and_byte_map() {
    let mut injected_any = false;
    for seed in 0..CASES {
        let mut rng = Rng::new(6_000 + seed);
        let faulty = Arc::new(FaultyBackend::new(
            MemBackend::new(),
            FaultPlan {
                transient_error_rate: 0.05,
                short_read_cap: Some(7),
                ..FaultPlan::none(seed)
            },
        ));
        let fs = Plfs::new(
            faulty.clone() as Arc<dyn Backend>,
            PlfsConfig {
                hostdirs: 2,
                writer: WriterConfig { retry: RetryPolicy::fast_test(), ..Default::default() },
                retry: RetryPolicy::fast_test(),
                ..Default::default()
            },
        );
        // All writers share one Plfs (one clock), so issue order is
        // timestamp order and a replay-in-order byte map is the truth.
        let writes = random_writes(&mut rng);
        let mut writers: Vec<_> =
            (0..6u32).map(|r| fs.open_writer("/f", r).expect("open masked")).collect();
        let mut naive: Vec<Option<u8>> = vec![None; 64_000];
        for (i, &(off, len, writer)) in writes.iter().enumerate() {
            let fill = 1 + ((i as u64 * 31 + seed) % 250) as u8;
            writers[writer as usize]
                .write_at(off, &vec![fill; len as usize])
                .expect("write masked");
            for b in off..off + len {
                naive[b as usize] = Some(fill);
            }
        }
        for w in writers {
            w.close().expect("close masked");
        }
        let reader = fs.open_reader("/f").expect("open_reader masked");
        // Random windows plus the full file, each read both ways.
        let mut windows: Vec<(u64, usize)> =
            (0..6).map(|_| (rng.below(64_000), rng.range_inclusive(1, 4_000) as usize)).collect();
        let naive_eof = naive.iter().rposition(|x| x.is_some()).map(|i| i as u64 + 1).unwrap_or(0);
        windows.push((0, naive_eof as usize));
        for (off, len) in windows {
            let mut fast = vec![0u8; len];
            let mut slow = vec![0u8; len];
            let n_fast = reader.read_at(off, &mut fast).expect("engine read masked");
            let n_slow = reader.read_at_serial(off, &mut slow).expect("serial read masked");
            assert_eq!(n_fast, n_slow, "seed {seed}: lengths diverge at ({off}, {len})");
            assert_eq!(
                fast[..n_fast],
                slow[..n_slow],
                "seed {seed}: bytes diverge at ({off}, {len})"
            );
            for (j, &got) in fast[..n_fast].iter().enumerate() {
                let want = naive[(off + j as u64) as usize].unwrap_or(0);
                assert_eq!(got, want, "seed {seed}: byte {} wrong", off + j as u64);
            }
        }
        injected_any |= faulty.stats().injected_transient > 0;
    }
    assert!(injected_any, "fault plans injected nothing — engine never saw an error");
}

/// Detection-completeness sweep: flip one seeded bit at *every byte* of
/// every covered file of a multi-writer container — data and index
/// droppings, both checksum sidecars, and the canonical index — and
/// assert the corruption machinery catches 100% of them: `scrub` must
/// report a finding (or flag the canonical cache), and for data bytes
/// verify-on-read must independently fail stop with a typed integrity
/// error.
///
/// The single tolerated exception is a flip inside a sidecar's 4-byte
/// block-size field that leaves the coverage geometry equivalent (a
/// single-entry sidecar whose block size is still >= the covered
/// length: every CRC still covers exactly the same bytes). Those are
/// not detectable *by construction* — nothing observable changed — so
/// the sweep instead proves them harmless: scrub stays fully clean and
/// the whole file reads back byte-identical.
#[test]
fn every_injected_bit_flip_in_covered_regions_is_detected() {
    const RANKS: u32 = 3;
    const REC: u64 = 1500;
    let faulty = Arc::new(FaultyBackend::new(MemBackend::new(), FaultPlan::none(77)));
    let fs = Plfs::new(
        faulty.clone() as Arc<dyn Backend>,
        PlfsConfig { hostdirs: 2, ..Default::default() },
    );
    for r in 0..RANKS {
        let mut w = fs.open_writer("/f", r).unwrap();
        for j in 0..3u64 {
            // > VERIFY_BLOCK bytes per rank, position-dependent fill:
            // multi-entry sidecars whose blocks all hash differently.
            let off = (j * RANKS as u64 + r as u64) * REC;
            let buf: Vec<u8> =
                (0..REC).map(|i| (((off + i) * 7 + r as u64) % 251 + 1) as u8).collect();
            w.write_at(off, &buf).unwrap();
        }
        w.close().unwrap();
    }
    // Clean read-open persists the canonical index and establishes the
    // zero-false-positive baseline.
    let baseline = fs.open_reader("/f").unwrap().read_all().unwrap();
    assert!(fsck::scrub(faulty.as_ref(), "/f", 2).unwrap().is_clean(), "clean container flagged");
    assert!(fsck::fsck(faulty.as_ref(), "/f", 2).unwrap().is_clean());

    let paths = ContainerPaths::new("/f", 2);
    let mut targets: Vec<String> = vec![paths.canonical_index()];
    for r in 0..RANKS {
        targets.extend([
            paths.data_dropping(r),
            paths.index_dropping(r),
            paths.chk_dropping(r),
            paths.index_chk_dropping(r),
        ]);
    }
    let (mut total, mut benign) = (0u64, 0u64);
    for path in &targets {
        let len = faulty.len(path).unwrap();
        assert!(len > 0, "{path} empty — sweep would be vacuous");
        let is_data = path.contains("/data.");
        let is_sidecar = path.contains("/chk.") || path.contains("/chki.");
        for off in 0..len {
            total += 1;
            let mask = 1u8 << (off % 8);
            faulty.set_plan(FaultPlan {
                corrupt_byte_at: Some((path.clone(), off, mask)),
                ..FaultPlan::none(77)
            });
            let report = fsck::scrub(faulty.as_ref(), "/f", 2).unwrap();
            if is_data {
                // Verify-on-read must catch every data flip on its own.
                let err = fs.open_reader("/f").unwrap().read_all().unwrap_err();
                assert!(is_integrity(&err), "{path}@{off}: read served rotten bytes ({err})");
            }
            if !report.is_clean() {
                continue;
            }
            assert!(
                is_sidecar && (9..13).contains(&off),
                "{path}@{off} mask {mask:#04x}: undetected bit flip"
            );
            let reread = fs.open_reader("/f").unwrap().read_all().unwrap();
            assert_eq!(reread, baseline, "{path}@{off}: undetected flip changed read bytes");
            benign += 1;
        }
    }
    faulty.set_plan(FaultPlan::none(77));
    assert!(total > 10_000, "sweep too small to mean anything: {total} bytes");
    assert!(benign <= 4 * RANKS as u64, "benign corner wider than the block-size field: {benign}");
}

/// The engine/oracle differential must survive *corruption*, not just
/// transient faults: with one rotten byte planted in a random data
/// dropping and a zero-fill quarantine, `read_at` and `read_at_serial`
/// must stay byte-identical in both verification orders (whichever path
/// detects first, the verify-once memoization hands the other the same
/// quarantined answer), every delivered byte is either the model's or a
/// zero from the quarantined block, and a fail-stop reader over the
/// same rot either surfaces a typed integrity error or delivers exactly
/// the model bytes — never silently wrong data.
#[test]
fn read_engine_and_serial_oracle_agree_under_corruption() {
    let mut any_quarantined = false;
    for seed in 0..16u64 {
        let mut rng = Rng::new(8_000 + seed);
        let faulty = Arc::new(FaultyBackend::new(MemBackend::new(), FaultPlan::none(seed)));
        let fs = Plfs::new(
            faulty.clone() as Arc<dyn Backend>,
            PlfsConfig { hostdirs: 2, ..Default::default() },
        );
        let writes = random_writes(&mut rng);
        let mut writers: Vec<_> = (0..6u32).map(|r| fs.open_writer("/f", r).unwrap()).collect();
        let mut naive: Vec<Option<u8>> = vec![None; 64_000];
        for (i, &(off, len, writer)) in writes.iter().enumerate() {
            let fill = 1 + ((i as u64 * 31 + seed) % 250) as u8;
            writers[writer as usize].write_at(off, &vec![fill; len as usize]).unwrap();
            for b in off..off + len {
                naive[b as usize] = Some(fill);
            }
        }
        for w in writers {
            w.close().unwrap();
        }
        let naive_eof = naive.iter().rposition(|x| x.is_some()).map(|i| i as u64 + 1).unwrap_or(0);
        // Open every reader while the store is healthy, then plant one
        // rotten byte in a random nonempty data dropping.
        let mut ra = fs.open_reader("/f").unwrap();
        let mut rb = fs.open_reader("/f").unwrap();
        let rc = fs.open_reader("/f").unwrap();
        let rd = fs.open_reader("/f").unwrap();
        let paths = ContainerPaths::new("/f", 2);
        let candidates: Vec<(String, u64)> = (0..6u32)
            .map(|r| paths.data_dropping(r))
            .filter_map(|p| faulty.len(&p).ok().map(|l| (p, l)))
            .filter(|&(_, l)| l > 0)
            .collect();
        let (path, flen) = candidates[rng.below(candidates.len() as u64) as usize].clone();
        let target = rng.below(flen);
        faulty.set_plan(FaultPlan {
            corrupt_byte_at: Some((path, target, 1u8 << rng.below(8))),
            ..FaultPlan::none(seed)
        });
        for (which, reader) in [&mut ra, &mut rb].into_iter().enumerate() {
            reader.set_quarantine(QuarantinePolicy::ZeroFill);
            let mut windows: Vec<(u64, usize)> = (0..4)
                .map(|_| (rng.below(64_000), rng.range_inclusive(1, 4_000) as usize))
                .collect();
            windows.push((0, naive_eof as usize));
            for (off, len) in windows {
                let mut fast = vec![0u8; len];
                let mut slow = vec![0u8; len];
                // Alternate which path verifies first; memoization must
                // hand the other path the same quarantined answer.
                let (n_fast, n_slow) = if which == 0 {
                    let nf = reader.read_at(off, &mut fast).unwrap();
                    (nf, reader.read_at_serial(off, &mut slow).unwrap())
                } else {
                    let ns = reader.read_at_serial(off, &mut slow).unwrap();
                    (reader.read_at(off, &mut fast).unwrap(), ns)
                };
                assert_eq!(n_fast, n_slow, "seed {seed}: lengths diverge at ({off}, {len})");
                assert_eq!(
                    fast[..n_fast],
                    slow[..n_slow],
                    "seed {seed}: paths diverge at ({off}, {len})"
                );
                let mut zeroed = 0usize;
                for (j, &got) in fast[..n_fast].iter().enumerate() {
                    let want = naive[(off + j as u64) as usize].unwrap_or(0);
                    assert!(
                        got == want || got == 0,
                        "seed {seed}: byte {} is neither model nor quarantine zero",
                        off + j as u64
                    );
                    zeroed += (got != want) as usize;
                }
                assert!(
                    zeroed <= VERIFY_BLOCK as usize,
                    "seed {seed}: quarantine zeroed {zeroed} bytes, more than one block"
                );
                any_quarantined |= zeroed > 0;
            }
        }
        // Fail-stop over the same rot: a typed error or the exact model
        // bytes (the rotten byte may be dead — superseded physical
        // bytes are only pulled in by coalescing, never delivered).
        let mut buf = vec![0u8; naive_eof as usize];
        match rc.read_at(0, &mut buf) {
            Err(e) => assert!(is_integrity(&e), "seed {seed}: wrong error class: {e}"),
            Ok(n) => {
                for (j, &got) in buf[..n].iter().enumerate() {
                    assert_eq!(got, naive[j].unwrap_or(0), "seed {seed}: silent wrong byte {j}");
                }
            }
        }
        // Rate-based rot on the data path: fail-stop still never
        // delivers a wrong byte, whether or not a flip lands.
        faulty.set_plan(FaultPlan { bit_flip_rate: 0.0005, ..FaultPlan::none(seed) });
        match rd.read_at(0, &mut buf) {
            Err(e) => assert!(is_integrity(&e), "seed {seed}: wrong error class: {e}"),
            Ok(n) => {
                for (j, &got) in buf[..n].iter().enumerate() {
                    assert_eq!(got, naive[j].unwrap_or(0), "seed {seed}: silent wrong byte {j}");
                }
            }
        }
    }
    assert!(any_quarantined, "no sweep window ever covered the rotten block — test was vacuous");
}

// ------------------------------------------------------- GIGA+

/// Random insert/remove sequences preserve GIGA+ invariants and agree
/// with a HashSet model.
#[test]
fn giga_agrees_with_set_model() {
    for seed in 0..CASES {
        let mut rng = Rng::new(2_000 + seed);
        let servers = rng.range_inclusive(1, 8) as usize;
        let threshold = rng.range_inclusive(4, 63) as usize;
        let nops = rng.range_inclusive(1, 399);
        let mut dir = GigaDirectory::new(servers, threshold);
        let mut model = std::collections::HashSet::new();
        for _ in 0..nops {
            let key = rng.below(800);
            let name = format!("n{key}");
            if rng.chance(0.5) {
                assert_eq!(dir.insert(&name), model.insert(name.clone()), "seed {seed}");
            } else {
                assert_eq!(dir.remove(&name), model.remove(&name), "seed {seed}");
            }
        }
        dir.check_invariants();
        assert_eq!(dir.len(), model.len(), "seed {seed}");
        for name in &model {
            assert!(dir.contains(name), "seed {seed}: {name} lost");
        }
    }
}

// ------------------------------------------------------- traces

/// Any trace serializes and parses back identically.
#[test]
fn trace_text_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::new(3_000 + seed);
        let nops = rng.below(100) as usize;
        let t = Trace {
            app: "prop".into(),
            ranks: 64,
            ops: (0..nops)
                .map(|_| TraceOp {
                    rank: rng.below(64) as u32,
                    is_write: rng.chance(0.5),
                    offset: rng.below(1_000_000),
                    len: rng.range_inclusive(1, 99_999),
                })
                .collect(),
        };
        let parsed = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(parsed, t, "seed {seed}");
    }
}

// ------------------------------------------------------- stats

/// CDF is monotone and quantiles invert it.
#[test]
fn cdf_monotone_and_quantiles_consistent() {
    for seed in 0..CASES {
        let mut rng = Rng::new(4_000 + seed);
        let n = rng.range_inclusive(1, 199) as usize;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0e6, 1.0e6)).collect();
        let cdf = Cdf::from_samples(xs.clone());
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in xs.windows(2) {
            assert!(cdf.at(w[0]) <= cdf.at(w[1]) + 1e-12, "seed {seed}");
        }
        for &q in &[0.1, 0.5, 0.9, 1.0] {
            let v = cdf.quantile(q);
            assert!(cdf.at(v) + 1e-12 >= q, "seed {seed}: quantile({q})");
        }
    }
}

// ------------------------------------------------------- FTL

/// Arbitrary page-write sequences keep the FTL maps consistent and
/// never lose the free pool.
#[test]
fn ftl_invariants_under_random_writes() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(5_000 + seed);
        let op = rng.range_inclusive(1, 3) as u32;
        let mut dev = FlashDevice::new(FtlConfig::from_headline(
            "prop-flash",
            2048 * 4096,
            200.0,
            100.0,
            20.0,
            2.0,
            0.1 * op as f64 + 0.05,
        ));
        let nwrites = rng.range_inclusive(1, 2_999);
        for _ in 0..nwrites {
            dev.service(DevOp::write(rng.below(2048) * 4096, 4096));
        }
        dev.check_invariants();
        assert!(dev.ftl_stats().write_amplification() >= 1.0, "seed {seed}");
        assert!(dev.free_pool_blocks() > 0, "seed {seed}");
    }
}
