//! Acceptance tests for the end-to-end integrity machinery, driven
//! through the same `integrity_results()` run that `repro integrity`
//! exports and CI gates: every injected bit flip in a covered region
//! must be detected, a clean container must never be flagged, and the
//! verified read path must produce byte-identical output.
//!
//! Wall-clock criteria (warm verify overhead) are only asserted in
//! release builds — CI additionally enforces them through
//! `INTEGRITY_GATE=1 repro integrity`.

/// The ISSUE's headline numbers: 100% of injected flips detected by
/// scrub, every sampled data flip fail-stopped by verify-on-read, zero
/// false positives on the clean container, and verified reads
/// byte-identical to unverified ones on every grid cell.
#[test]
fn integrity_sweep_detects_everything_and_never_cries_wolf() {
    let s = pdsi_bench::integrity_results();
    assert!(s.injected > 1_000, "sweep too small to mean anything: {} flips", s.injected);
    assert_eq!(s.detected, s.injected, "scrub missed injected bit flips");
    assert_eq!(s.false_positives, 0, "clean container flagged");
    assert!(s.read_sampled > 0, "no data flips were spot-checked through the read path");
    assert_eq!(s.read_caught, s.read_sampled, "verify-on-read served rotten bytes");
    for c in &s.cells {
        assert!(c.identical, "{} ranks x {}: verified read diverged", c.ranks, c.per_rank);
        assert!(c.verify_blocks > 0, "{} ranks x {}: nothing was verified", c.ranks, c.per_rank);
        assert_eq!(c.verify_bytes, c.bytes, "first read must verify every delivered byte");
    }
    assert!(s.scrub_blocks > 0 && s.scrub_bytes > 0);
    // Wall-clock only means something in release; debug builds skip
    // the timing half of the gate.
    #[cfg(not(debug_assertions))]
    pdsi_bench::integrity_gate(&s).unwrap();
}
