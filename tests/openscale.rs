//! Acceptance tests for the read-open index merge work: the O(n log n)
//! sweep must beat the old splice merge by an order of magnitude at
//! scale, and a warm open must be served entirely from the
//! flattened-index cache. All cost comparisons use logical merge-step
//! counters (deterministic, machine-independent) — never wall clock.

use pdsi::obs::Registry;
use pdsi::plfs::backend::{Backend, MemBackend};
use pdsi::plfs::{Plfs, PlfsConfig};
use std::sync::Arc;

/// The ISSUE's headline number: at 64 ranks x 10k entries/rank the
/// sweep merge costs at least 10x fewer logical steps than the splice
/// baseline (measured on the same worst-case interleaved workload by
/// `repro openscale`'s cell runner).
#[test]
fn sweep_is_10x_cheaper_than_splice_at_64_ranks_10k_entries() {
    let cell = pdsi_bench::openscale_cell(64, 10_000);
    assert_eq!(cell.entries, 640_000);
    assert!(cell.sweep_steps > 0 && cell.splice_steps > 0);
    let speedup = cell.splice_steps as f64 / cell.sweep_steps as f64;
    assert!(
        speedup >= 10.0,
        "sweep must be >= 10x cheaper than splice at 64x10k: \
         sweep {} steps, splice {} steps, ratio {speedup:.1}x",
        cell.sweep_steps,
        cell.splice_steps
    );
}

/// The sweep's cost curve is near-linearithmic while the splice's is
/// quadratic: growing the workload 16x (4k -> 64k entries) must grow
/// sweep steps far less than the ~256x a quadratic algorithm shows.
#[test]
fn sweep_cost_scales_near_linearithmically() {
    let small = pdsi_bench::openscale_cell(4, 1000);
    let large = pdsi_bench::openscale_cell(64, 1000);
    let sweep_growth = large.sweep_steps as f64 / small.sweep_steps as f64;
    let splice_growth = large.splice_steps as f64 / small.splice_steps as f64;
    assert!(sweep_growth < 64.0, "16x entries grew sweep cost {sweep_growth:.0}x — not n log n");
    assert!(
        splice_growth > 100.0,
        "16x entries grew splice cost only {splice_growth:.0}x — baseline lost its quadratic \
         behaviour, the comparison is meaningless"
    );
}

/// A warm open must decode zero raw index entries: everything comes
/// from `canonical.index`. Asserted on the `plfs.index.*` metrics, not
/// just ReadStats, so the claim holds at the registry level CI dumps.
#[test]
fn warm_open_serves_from_cache_with_zero_raw_entries() {
    let backend = Arc::new(MemBackend::new()) as Arc<dyn Backend>;
    let fs = Plfs::new(backend.clone(), PlfsConfig::default());
    let ranks = 8u32;
    let mut writers: Vec<_> = (0..ranks).map(|r| fs.open_writer("/ckpt", r).unwrap()).collect();
    for i in 0..32u64 {
        for (r, w) in writers.iter_mut().enumerate() {
            w.write_at((i * ranks as u64 + r as u64) * 512, &[r as u8; 512]).unwrap();
        }
    }
    for w in writers {
        w.close().unwrap();
    }

    let open = || {
        let reg = Registry::new();
        let fs =
            Plfs::new(backend.clone(), PlfsConfig { metrics: reg.clone(), ..Default::default() });
        (fs.open_reader("/ckpt").unwrap(), reg)
    };

    let (cold, cold_reg) = open();
    assert!(!cold.stats().from_canonical);
    assert_eq!(cold_reg.value("plfs.index.raw_entries"), Some(8 * 32));
    assert_eq!(cold_reg.value("plfs.index.canonical_writes"), Some(1));

    let (warm, warm_reg) = open();
    assert!(warm.stats().from_canonical, "second open must hit the cache");
    assert_eq!(warm.stats().raw_entries, 0);
    assert_eq!(warm_reg.value("plfs.index.raw_entries"), Some(0), "warm open decoded raw entries");
    assert_eq!(warm_reg.value("plfs.index.canonical_hits"), Some(1));
    // The cached view answers reads identically.
    assert_eq!(warm.read_all().unwrap(), cold.read_all().unwrap());
    // And far cheaper: the warm merge only walks already-disjoint
    // fragments (logical-clock comparison again, no wall time).
    assert!(
        warm.stats().merge_steps * 10 <= cold.stats().merge_steps,
        "warm merge ({} steps) should be an order of magnitude under cold ({} steps)",
        warm.stats().merge_steps,
        cold.stats().merge_steps
    );
}

/// `repro openscale` must emit the machine-readable results with the
/// schema EXPERIMENTS.md documents.
#[test]
fn openscale_json_has_documented_schema() {
    let v = pdsi_bench::openscale_json();
    let cells = v.get("cells").and_then(|c| c.as_arr()).expect("cells array");
    assert_eq!(cells.len(), 4);
    for c in cells {
        for key in [
            "ranks",
            "per_rank",
            "entries",
            "sweep_steps",
            "splice_steps",
            "extents",
            "merge_wall_ns",
        ] {
            assert!(c.get(key).and_then(|x| x.as_i64()).is_some(), "cell missing {key}");
        }
        assert!(c.get("speedup").and_then(|x| x.as_f64()).is_some());
    }
    let e2e = v.get("e2e").expect("e2e object");
    for key in [
        "ranks",
        "writes_per_rank",
        "cold_open_ns",
        "warm_open_ns",
        "cold_raw_entries",
        "warm_raw_entries",
        "cold_merge_steps",
        "warm_merge_steps",
        "merged_extents",
    ] {
        assert!(e2e.get(key).and_then(|x| x.as_i64()).is_some(), "e2e missing {key}");
    }
    assert_eq!(e2e.get("warm_raw_entries").unwrap().as_i64(), Some(0));
}
