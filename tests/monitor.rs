//! Acceptance for the continuous-telemetry stack (PR: flight recorder,
//! SLO burn rates, tail-sampled traces):
//!
//! - a clean run of the monitored checkpoint workload produces zero
//!   alerts and samples zero slow-op traces;
//! - an injected OSD outage fires the matching objectives, and every
//!   exemplar trace id attached to those alerts resolves to an event in
//!   the Chrome-trace export of the tail-sampled trees;
//! - live fault injection is visible in exactly the flight-recorder
//!   frames where it was injected — both in the typed frame deltas and
//!   in the exported JSONL timeline;
//! - after an injected crash-stop, the final frames explain what the
//!   system was doing (surfaced write errors + the crash marker).

use pdsi_bench::{monitor_gate, monitorscale_results, run_monitor};

#[test]
fn telemetry_grid_passes_its_own_gate() {
    let s = monitorscale_results();
    let msg = monitor_gate(&s).expect("monitor gate failed");
    assert!(msg.contains("ok"), "{msg}");
}

#[test]
fn clean_run_is_silent_and_degraded_run_fires_with_exemplars() {
    let s = monitorscale_results();

    assert!(s.clean.alerts.is_empty(), "clean run fired alerts: {:?}", s.clean.alerts);
    assert_eq!(s.clean.kept_spans, 0, "clean run tail-sampled spans");
    assert_eq!(s.clean.frames, s.clean.waves + 1);

    use obs::slo::AlertKind;
    for kind in [AlertKind::LatencyBudget, AlertKind::ThroughputFloor] {
        assert!(
            s.degraded.alerts.iter().any(|a| a.kind == kind),
            "degraded run missing a {} alert",
            kind.as_str()
        );
    }
    // Exemplar round-trip: every trace id an alert carries must appear
    // as an event id in the Chrome-trace export of the kept trees.
    assert!(!s.degraded.exemplar_ids.is_empty(), "alerts carry no exemplars");
    for id in &s.degraded.exemplar_ids {
        assert!(
            s.degraded.chrome_ids.contains(id),
            "exemplar trace id {id} absent from the Chrome export"
        );
    }
    assert!(s.degraded.tail_sampled > 0);
    // The degraded run moved the same data, slower: same bytes, later
    // last frame.
    assert_eq!(s.degraded.bytes_written, s.clean.bytes_written);
    assert!(s.degraded.span_ns > s.clean.span_ns);
}

#[test]
fn injected_fault_spike_lands_in_the_frame_where_it_was_injected() {
    let s = monitorscale_results();
    let f = &s.flaky;

    // Frame 0 is the pre-run baseline; frame r+1 covers round r; the
    // final frame covers the crash-stop. Hostile rounds are [3, 5).
    for (i, &n) in f.injected_by_frame.iter().enumerate() {
        let hostile = matches!(i.checked_sub(1), Some(r) if (3..5).contains(&r) && r < f.rounds);
        if hostile {
            assert!(n > 0, "hostile frame {i} shows no transient injections");
        } else {
            assert_eq!(n, 0, "frame {i} shows injections outside hostile rounds");
        }
    }
    // The retry layer masked every injected transient.
    assert_eq!(f.surfaced_before_crash, 0);
    assert!(f.masked_transient > 0);
    assert!(f.alerts.iter().any(|a| a.kind == obs::slo::AlertKind::ErrorBudget));

    // The spike is also visible in the exported JSONL timeline: the
    // hostile frames carry a `faults.injected{kind=transient}` delta.
    let lines: Vec<&str> = f.timeline.lines().collect();
    assert_eq!(lines.len(), f.frames, "one JSONL line per frame");
    for (i, line) in lines.iter().enumerate() {
        obs::json::parse(line).unwrap_or_else(|e| panic!("frame {i} is not valid JSON: {e}"));
        let hostile = matches!(i.checked_sub(1), Some(r) if (3..5).contains(&r) && r < f.rounds);
        assert_eq!(
            line.contains("faults.injected{kind=transient}"),
            hostile,
            "frame {i} JSONL delta presence mismatch: {line}"
        );
    }
}

#[test]
fn crash_stop_forensics_live_in_the_last_frame() {
    let s = monitorscale_results();
    let f = &s.flaky;
    assert!(f.crash_frame_write_errors > 0, "last frame carries no surfaced write errors");
    assert!(f.crash_injected > 0, "crash marker missing from faults.injected{{kind=crash}}");
    // The final JSONL line (what a post-mortem reads) names the error
    // series in its deltas.
    let last = f.timeline.lines().last().expect("timeline");
    assert!(last.contains("plfs.write.errors"), "crash frame deltas: {last}");
}

#[test]
fn monitor_scenarios_drive_and_export() {
    // The CLI path: each scenario renders a dashboard and a timeline.
    for (name, _) in pdsi_bench::MONITOR_SCENARIOS {
        let run = run_monitor(name).expect("scenario failed");
        assert!(!run.dashboard.is_empty());
        assert!(!run.timeline.is_empty());
        for line in run.timeline.lines() {
            obs::json::parse(line).expect("timeline line is JSON");
        }
        if let Some(prom) = &run.prometheus {
            // The exposition must round-trip through the in-repo parser.
            let samples = obs::prom::parse(prom).expect("prometheus text parses");
            assert!(!samples.is_empty());
        }
        match *name {
            "sim-clean" => assert!(run.alerts.is_empty()),
            _ => assert!(!run.alerts.is_empty(), "{name} fired no alerts"),
        }
    }
}
