//! Cross-crate integration tests: the real middleware paths working
//! together — PLFS over an actual directory, h5lite over backends,
//! traces flowing from workload generators through the simulators.

use pdsi::pfs::ClusterConfig;
use pdsi::plfs::backend::{Backend, DirBackend, MemBackend};
use pdsi::plfs::simadapter::{compare, run_direct, PlfsSimOptions};
use pdsi::plfs::{ParallelFile, Plfs, PlfsConfig};
use pdsi::simkit::units::MIB;
use pdsi::workloads::{AppProfile, Trace};
use std::sync::Arc;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("pdsi-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn plfs_on_real_directory_threaded_n1_roundtrip() {
    let root = temp_root("n1");
    let backend = Arc::new(DirBackend::new(&root).unwrap()) as Arc<dyn Backend>;
    let fs = Arc::new(Plfs::new(backend, PlfsConfig { hostdirs: 4, ..Default::default() }));
    let ranks = 6u32;
    let records = 40u64;
    let rec = 4097usize; // deliberately unaligned

    fs.create("/ckpt").unwrap();
    std::thread::scope(|s| {
        for rank in 0..ranks {
            let fs = Arc::clone(&fs);
            s.spawn(move || {
                let mut w = fs.open_writer("/ckpt", rank).unwrap();
                for i in 0..records {
                    let idx = i * ranks as u64 + rank as u64;
                    w.write_at(idx * rec as u64, &vec![(idx % 255) as u8; rec]).unwrap();
                }
                w.close().unwrap();
            });
        }
    });

    let r = fs.open_reader("/ckpt").unwrap();
    assert_eq!(r.size(), ranks as u64 * records * rec as u64);
    let data = r.read_all().unwrap();
    for (idx, chunk) in data.chunks(rec).enumerate() {
        assert!(chunk.iter().all(|&b| b == (idx % 255) as u8), "record {idx}");
    }

    // Flatten and compare against the logical content.
    let n = fs.flatten("/ckpt", "/flat", 123_457).unwrap();
    assert_eq!(n, data.len() as u64);
    let flat = fs.backend().read_all("/flat").unwrap();
    assert_eq!(flat, data);

    // stat fast path after clean close.
    let st = fs.stat("/ckpt").unwrap();
    assert!(st.from_meta);
    assert_eq!(st.size, data.len() as u64);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn plfs_survives_reopen_sessions_on_disk() {
    let root = temp_root("sessions");
    let make_fs = || {
        let backend = Arc::new(DirBackend::new(&root).unwrap()) as Arc<dyn Backend>;
        Plfs::new(backend, PlfsConfig::default())
    };
    {
        let fs = make_fs();
        let mut w = fs.open_writer("/log", 0).unwrap();
        w.write_at(0, b"generation-one........").unwrap();
        w.close().unwrap();
    }
    {
        // A *fresh* Plfs instance (new process, conceptually) overwrites
        // the middle; its session epoch must dominate.
        let fs = make_fs();
        let mut w = fs.open_writer("/log", 0).unwrap();
        w.write_at(11, b"TWO").unwrap();
        w.close().unwrap();
    }
    let fs = make_fs();
    let data = fs.open_reader("/log").unwrap().read_all().unwrap();
    assert_eq!(&data, b"generation-TWO........");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mpiio_collective_over_memory_backend() {
    let plfs =
        Arc::new(Plfs::new(Arc::new(MemBackend::new()) as Arc<dyn Backend>, PlfsConfig::default()));
    let mut f = ParallelFile::open_collective(plfs, "/c", 12).unwrap();
    for rank in 0..12u32 {
        for i in 0..8u64 {
            let idx = i * 12 + rank as u64;
            f.write_at(rank, idx * 100, &[(idx % 91) as u8; 100]).unwrap();
        }
    }
    f.sync_all().unwrap();
    let data = f.read_back().unwrap();
    assert_eq!(data.len(), 12 * 8 * 100);
    for (idx, chunk) in data.chunks(100).enumerate() {
        assert!(chunk.iter().all(|&b| b == (idx % 91) as u8));
    }
    f.close_collective().unwrap();
}

#[test]
fn workload_trace_roundtrips_through_text_and_sim() {
    let app = AppProfile::by_name("Chombo").unwrap();
    let pattern = app.pattern(16);
    let trace = Trace::from_pattern(app.name, &pattern);
    let parsed = Trace::parse(&trace.to_text()).unwrap();
    let recovered = parsed.to_pattern();
    assert_eq!(recovered, pattern);

    // Replaying the recovered pattern is bit-identical to the original.
    let a = run_direct(ClusterConfig::lustre_like(8, MIB), &pattern);
    let b = run_direct(ClusterConfig::lustre_like(8, MIB), &recovered);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.bytes_written, b.bytes_written);
    assert_eq!(a.lock_stats.revocations, b.lock_stats.revocations);
}

#[test]
fn h5lite_over_plfs_flattened_container() {
    // Full stack: write an h5lite container into a memory store, then
    // shovel the same bytes through PLFS (write_at per log) and verify
    // the format still opens from the flattened copy.
    use pdsi::miniio::{H5Reader, H5Writer};
    let staging = MemBackend::new();
    let mut w = H5Writer::create(&staging, "/stage.h5l", 2);
    let ds = w.add_dataset("density", 8, 512);
    let payload: Vec<u8> = (0..4096).map(|i| (i % 253) as u8).collect();
    w.write_elements(ds, 0, &payload);
    w.close().unwrap();
    let bytes = staging.read_all("/stage.h5l").unwrap();

    let fs = Plfs::new(Arc::new(MemBackend::new()) as Arc<dyn Backend>, PlfsConfig::default());
    let mut writer = fs.open_writer("/container.h5l", 0).unwrap();
    // Write it in awkward out-of-order pieces, because we can.
    let mid = bytes.len() / 3;
    writer.write_at(mid as u64, &bytes[mid..]).unwrap();
    writer.write_at(0, &bytes[..mid]).unwrap();
    writer.close().unwrap();
    fs.flatten("/container.h5l", "/flat.h5l", 1 << 16).unwrap();

    let r = H5Reader::open(fs.backend().as_ref(), "/flat.h5l").unwrap();
    assert_eq!(r.datasets()[0].name, "density");
    assert_eq!(r.read_elements(0, 0, 512).unwrap(), payload);
}

#[test]
fn simulated_speedup_is_deterministic_across_runs() {
    let app = AppProfile::by_name("FLASH-IO").unwrap();
    let pattern = app.pattern(64);
    let s1 = compare(ClusterConfig::lustre_like(8, MIB), &pattern, &PlfsSimOptions::default()).2;
    let s2 = compare(ClusterConfig::lustre_like(8, MIB), &pattern, &PlfsSimOptions::default()).2;
    assert_eq!(s1.to_bits(), s2.to_bits(), "simulation must be bit-reproducible");
}

#[test]
fn bytes_conserved_between_direct_and_plfs_modes() {
    let app = AppProfile::by_name("RAGE").unwrap();
    let pattern = app.pattern(32);
    let app_bytes: u64 = pattern.iter().flatten().map(|&(_, l)| l).sum();
    let (direct, plfs, _) =
        compare(ClusterConfig::lustre_like(8, MIB), &pattern, &PlfsSimOptions::default());
    assert_eq!(direct.bytes_written, app_bytes);
    assert!(plfs.bytes_written >= app_bytes, "PLFS lost data bytes");
    assert!(
        plfs.bytes_written < app_bytes + app_bytes / 20,
        "PLFS index overhead should be under 5%: {} vs {app_bytes}",
        plfs.bytes_written
    );
}
