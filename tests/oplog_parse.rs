//! Op-log parser robustness: every malformed input in the fixture
//! corpus yields a *typed* error — never a panic — and valid logs
//! round-trip text→parse→text bit-identically. A seeded fuzz pass
//! mutates a valid log thousands of ways to shake out panics the
//! hand-written corpus misses.

use pdsi::simkit::Rng;
use pdsi::workloads::oplog::{OpLog, OpLogErrorKind, OpResult, Shape};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/oplog/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn valid_fixture_parses_and_round_trips() {
    let text = fixture("valid_small.oplog");
    let log = OpLog::parse(&text).expect("valid fixture must parse");
    assert_eq!(log.file, "/ckpt");
    assert_eq!(log.ranks, 2);
    assert_eq!(log.shape, Shape::N1);
    assert_eq!(log.ops.len(), 10);
    assert!(matches!(log.ops[2].result, OpResult::Write { stamp } if stamp == 1 << 55));
    assert!(
        matches!(log.ops[8].result, OpResult::Read { got: 8192, crc: 0x1a2b_3c4d }),
        "read result column must carry (got, crc)"
    );
    // to_text → parse is the identity on the parsed form.
    let again = OpLog::parse(&log.to_text()).expect("rendered log must re-parse");
    assert_eq!(again, log);
    assert_eq!(again.to_text(), log.to_text());
}

/// Each corpus file fails with exactly the typed error its name says.
type KindMatcher = fn(&OpLogErrorKind) -> bool;

#[test]
fn corpus_yields_typed_errors_not_panics() {
    let cases: &[(&str, KindMatcher)] = &[
        ("empty.oplog", |k| matches!(k, OpLogErrorKind::Empty)),
        ("bad_magic.oplog", |k| matches!(k, OpLogErrorKind::BadMagic(_))),
        ("version_mismatch.oplog", |k| matches!(k, OpLogErrorKind::VersionMismatch { found: 2 })),
        ("truncated_line.oplog", |k| matches!(k, OpLogErrorKind::Truncated { field: "len" })),
        ("unknown_op.oplog", |k| matches!(k, OpLogErrorKind::UnknownOp(op) if op == "frobnicate")),
        ("out_of_order.oplog", |k| {
            matches!(k, OpLogErrorKind::OutOfOrderTimestamp { prev: 100, found: 50 })
        }),
        (
            "bad_field.oplog",
            |k| matches!(k, OpLogErrorKind::BadField { field: "rank", value } if value == "zebra"),
        ),
        ("trailing_fields.oplog", |k| matches!(k, OpLogErrorKind::TrailingFields)),
        ("bad_result.oplog", |k| matches!(k, OpLogErrorKind::BadResult(_))),
    ];
    for (name, want) in cases {
        let err = OpLog::parse(&fixture(name)).expect_err(&format!("{name} must fail to parse"));
        assert!(want(&err.kind), "{name}: wrong error kind {:?} (at line {})", err.kind, err.line);
        // The Display impl names the line — a parse error must point
        // somewhere actionable.
        assert!(err.to_string().contains("line"), "{name}: {err}");
    }
}

/// Error positions are 1-based line numbers into the input.
#[test]
fn errors_carry_the_offending_line_number() {
    let err = OpLog::parse(&fixture("out_of_order.oplog")).unwrap_err();
    assert_eq!(err.line, 4, "second op line is line 4 of the file");
    let err = OpLog::parse(&fixture("bad_magic.oplog")).unwrap_err();
    assert_eq!(err.line, 1);
}

/// Fuzz-ish: thousands of seeded mutations of a valid log — truncation
/// at arbitrary byte positions, byte substitutions, line deletions and
/// duplications — must all return `Ok` or a typed `Err`, never panic.
#[test]
fn mutated_logs_never_panic() {
    let base = fixture("valid_small.oplog");
    let bytes = base.as_bytes();
    let mut rng = Rng::new(0xF00D);
    let printable: &[u8] = b"\t\n #:-0123456789abcdefokwriterds";
    for _ in 0..4000 {
        let mutated: String = match rng.below(4) {
            // Truncate at an arbitrary byte (snap to a char boundary —
            // the corpus is ASCII so every position is one).
            0 => base[..rng.below(bytes.len() as u64 + 1) as usize].to_string(),
            // Substitute one byte with a plausible one.
            1 => {
                let mut b = bytes.to_vec();
                let at = rng.below(b.len() as u64) as usize;
                b[at] = printable[rng.below(printable.len() as u64) as usize];
                String::from_utf8_lossy(&b).into_owned()
            }
            // Delete a whole line.
            2 => {
                let lines: Vec<&str> = base.lines().collect();
                let skip = rng.below(lines.len() as u64) as usize;
                lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, l)| format!("{l}\n"))
                    .collect()
            }
            // Duplicate a line in place (tests timestamp monotonicity
            // and header re-parsing, both of which must stay total).
            _ => {
                let lines: Vec<&str> = base.lines().collect();
                let dup = rng.below(lines.len() as u64) as usize;
                let mut out = String::new();
                for (i, l) in lines.iter().enumerate() {
                    out.push_str(l);
                    out.push('\n');
                    if i == dup {
                        out.push_str(l);
                        out.push('\n');
                    }
                }
                out
            }
        };
        // Ok or typed Err are both fine; a panic fails the test.
        let _ = OpLog::parse(&mutated);
    }
}
