//! Golden-figure regression test: the headline `repro` numbers are
//! pinned against `tests/fixtures/golden.json` with ±10% tolerance.
//!
//! If a change legitimately moves a headline (a better disk model, a
//! fixed simulator bug), regenerate the fixture with
//! `cargo run -p pdsi-bench --bin repro -- golden > tests/fixtures/golden.json`
//! and say why in the commit message.

use pdsi::obs::json::Value;

fn as_f64(v: &Value, key: &str) -> f64 {
    v.get(key)
        .and_then(|x| x.as_f64())
        .unwrap_or_else(|| panic!("missing or non-numeric headline {key:?}"))
}

#[test]
fn headline_numbers_match_golden_fixture_within_10_percent() {
    let fixture = pdsi::obs::json::parse(include_str!("fixtures/golden.json"))
        .expect("fixture must be valid JSON");
    let current = pdsi_bench::headline_numbers();

    let keys: Vec<&String> = match &fixture {
        Value::Obj(pairs) => pairs.iter().map(|(k, _)| k).collect(),
        _ => panic!("fixture must be a JSON object"),
    };
    assert!(!keys.is_empty());
    for key in keys {
        let want = as_f64(&fixture, key);
        let got = as_f64(&current, key);
        let tol = want.abs() * 0.10;
        assert!(
            (got - want).abs() <= tol,
            "headline {key:?} drifted: fixture {want}, current {got} (±10% tolerance); \
             if intentional, regenerate tests/fixtures/golden.json"
        );
    }
    // And nothing silently disappeared from the current set.
    if let Value::Obj(pairs) = &current {
        assert_eq!(pairs.len(), 5, "headline set changed; update fixture and this count");
    }
}
