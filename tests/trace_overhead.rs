//! Guard: tracing left disabled (the default everywhere) must be
//! effectively free.
//!
//! There is no tracing-free build to A/B against — the probes are
//! compiled in — so the guard is synthetic but honest: count how many
//! spans an *enabled* run of a real workload records (the disabled
//! path executes roughly one gate probe per would-be span, plus a few
//! per-op allocs/clones — the census comes out near the span count),
//! measure the disabled probe cost directly with the loop overhead
//! subtracted, and demand the charged total stays under 5% of the
//! workload's untraced wall time.
//!
//! The 5% bound only means something for optimized builds, where the
//! `#[inline]` gates collapse to a predicted branch; debug builds pay
//! un-inlined call overhead on every probe, so there the test only
//! sanity-checks a loose bound.

use obs::trace::{Phase, TraceSink};
use pfs::ClusterConfig;
use simkit::units::{KIB, MIB};
use std::hint::black_box;
use std::time::Instant;

#[test]
fn disabled_tracing_costs_under_five_percent_of_workload() {
    let pattern = plfs::strided_n1_pattern(16, 48, 47 * KIB);

    // Untraced workload wall time, best of three runs.
    let mut wall = std::time::Duration::MAX;
    for _ in 0..3 {
        let cfg = ClusterConfig::lustre_like(8, MIB);
        let t0 = Instant::now();
        let rep = plfs::run_direct(cfg, &pattern);
        wall = wall.min(t0.elapsed());
        black_box(rep.bytes_written);
    }

    // How many spans an *enabled* run of the same workload records.
    let sink = TraceSink::bounded(1 << 18);
    let mut cfg = ClusterConfig::lustre_like(8, MIB);
    cfg.trace = sink.clone();
    plfs::run_direct(cfg, &pattern);
    let spans = sink.len().max(1);
    assert_eq!(sink.dropped(), 0);

    // Disabled-path probe cost: a gate check plus an early-returning
    // record(), minus the cost of the bare measurement loop. Two
    // probes per span over-covers the real call census (the sim does
    // ~one ungated record plus a handful of cheaper enabled()/alloc()
    // probes per executed op, and ops fan out into several spans each).
    let off = TraceSink::disabled();
    let iters: u64 = 2_000_000;
    let t = Instant::now();
    for i in 0..iters {
        black_box(i);
    }
    let baseline = t.elapsed();
    let t = Instant::now();
    for i in 0..iters {
        let s = black_box(&off);
        black_box(s.enabled());
        black_box(s.record("op", Phase::Other, "track", i, i + 1, 0));
    }
    let probes = t.elapsed().saturating_sub(baseline);
    let per_span = probes.as_secs_f64() / iters as f64;
    let disabled_total = per_span * spans as f64;

    let limit = if cfg!(debug_assertions) { 0.50 } else { 0.05 };
    let budget = limit * wall.as_secs_f64();
    assert!(
        disabled_total < budget,
        "disabled tracing would add {:.3} ms over {spans} spans, \
         budget is {:.3} ms ({:.0}% of {:.3} ms workload)",
        disabled_total * 1e3,
        budget * 1e3,
        limit * 100.0,
        wall.as_secs_f64() * 1e3
    );
}
