//! Guard: the flight-recorder probes on the PLFS hot paths must be
//! effectively free when the recorder is disabled (the default
//! everywhere), and a live 100 ms-cadence recorder must stay under a
//! pinned budget.
//!
//! As with `trace_overhead.rs`, there is no probe-free build to A/B
//! against, so the guard is synthetic but honest: run a real
//! checkpoint-write + restart-read workload, measure the per-probe
//! cost of `Recorder::maybe_sample` directly (loop overhead
//! subtracted), charge it for every hot-path probe the workload
//! executes, and demand the total stays under 5% of the workload's
//! wall time (50% in debug builds, where nothing is inlined).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use obs::recorder::Recorder;
use obs::{Clock, Registry};
use plfs::backend::{Backend, MemBackend};
use plfs::{Plfs, PlfsConfig};

const RANKS: u32 = 8;
const WRITES_PER_RANK: u64 = 128;
const RECORD: usize = 16 * 1024;

/// One checkpoint write (strided N-1) and one full read-back through a
/// PLFS instance with the given flight recorder attached.
fn workload(flight: Recorder, clock: Option<Clock>) -> std::time::Duration {
    let cfg = PlfsConfig { flight, clock, ..Default::default() };
    let fs = Plfs::new(Arc::new(MemBackend::new()) as Arc<dyn Backend>, cfg);
    let buf = vec![0x5Au8; RECORD];
    let t0 = Instant::now();
    for r in 0..RANKS {
        let mut w = fs.open_writer("/ckpt", r).unwrap();
        for i in 0..WRITES_PER_RANK {
            let record = i * RANKS as u64 + r as u64;
            w.write_at(record * RECORD as u64, &buf).unwrap();
        }
        w.close().unwrap();
    }
    let reader = fs.open_reader("/ckpt").unwrap();
    black_box(reader.read_all().unwrap().len());
    t0.elapsed()
}

/// The write path probes once per `write_at`, the read path once per
/// chunked `read_at`; two probes per write plus a generous read
/// allowance over-covers the real census.
fn probe_census() -> u64 {
    2 * RANKS as u64 * WRITES_PER_RANK + 256
}

fn per_call_cost(f: impl Fn(u64)) -> f64 {
    let iters: u64 = 2_000_000;
    let t = Instant::now();
    for i in 0..iters {
        black_box(i);
    }
    let baseline = t.elapsed();
    let t = Instant::now();
    for i in 0..iters {
        f(i);
    }
    t.elapsed().saturating_sub(baseline).as_secs_f64() / iters as f64
}

fn limit() -> f64 {
    if cfg!(debug_assertions) {
        0.50
    } else {
        0.05
    }
}

#[test]
fn disabled_flight_recorder_costs_under_five_percent_of_workload() {
    // Untraced workload wall time, best of three runs.
    let mut wall = std::time::Duration::MAX;
    for _ in 0..3 {
        wall = wall.min(workload(Recorder::disabled(), None));
    }

    let off = Recorder::disabled();
    let per_probe = per_call_cost(|_| {
        let r = black_box(&off);
        black_box(r.maybe_sample());
    });
    let total = per_probe * probe_census() as f64;
    let budget = limit() * wall.as_secs_f64();
    assert!(
        total < budget,
        "disabled flight probes would add {:.3} ms over {} probes, \
         budget is {:.3} ms ({:.0}% of {:.3} ms workload)",
        total * 1e3,
        probe_census(),
        budget * 1e3,
        limit() * 100.0,
        wall.as_secs_f64() * 1e3
    );
}

#[test]
fn hundred_ms_cadence_recorder_stays_under_budget() {
    let mut wall = std::time::Duration::MAX;
    for _ in 0..3 {
        wall = wall.min(workload(Recorder::disabled(), None));
    }

    // Not-due probe cost on an *enabled* recorder: a clock read plus a
    // deadline compare (cadence pushed out so the branch never takes).
    let reg = Registry::new();
    reg.counter("plfs.write.ops").add(1);
    let clock = Clock::wall();
    let armed = Recorder::new(&reg, &clock, 1 << 62, 8);
    let per_probe = per_call_cost(|_| {
        let r = black_box(&armed);
        black_box(r.maybe_sample());
    });

    // Cost of actually capturing a frame of a realistically-sized
    // registry (every PLFS series the instrumented run would carry).
    let populated = Registry::new();
    {
        let cfg = PlfsConfig { metrics: populated.clone(), ..Default::default() };
        let fs = Plfs::new(Arc::new(MemBackend::new()) as Arc<dyn Backend>, cfg);
        let mut w = fs.open_writer("/x", 0).unwrap();
        w.write_at(0, b"warm").unwrap();
        w.close().unwrap();
    }
    let sampler = Recorder::new(&populated, &clock, 1, 8);
    let samples: u64 = 512;
    let t = Instant::now();
    for _ in 0..samples {
        black_box(sampler.sample_now());
    }
    let per_sample = t.elapsed().as_secs_f64() / samples as f64;

    // A 100 ms cadence over this workload: every hot-path probe pays
    // the not-due check, plus one full frame capture per elapsed
    // 100 ms window.
    let frames = (wall.as_secs_f64() / 0.1).ceil() + 1.0;
    let total = per_probe * probe_census() as f64 + per_sample * frames;
    let budget = limit() * wall.as_secs_f64();
    assert!(
        total < budget,
        "100 ms-cadence recorder would add {:.3} ms ({} probes at {:.1} ns, \
         {frames} frames at {:.1} us), budget is {:.3} ms ({:.0}% of {:.3} ms workload)",
        total * 1e3,
        probe_census(),
        per_probe * 1e9,
        per_sample * 1e6,
        budget * 1e3,
        limit() * 100.0,
        wall.as_secs_f64() * 1e3
    );
}

#[test]
fn live_recorder_captures_frames_from_the_hot_path() {
    // Integration smoke: with a real (wall-clock, short-cadence)
    // recorder wired through PlfsConfig, the write/read-path probes
    // alone must produce frames — no explicit sample_now anywhere.
    let reg = Registry::new();
    let clock = Clock::wall();
    let flight = Recorder::new(&reg, &clock, 250_000, 1024); // 250 us
    let cfg = PlfsConfig {
        metrics: reg.clone(),
        clock: Some(clock.clone()),
        flight: flight.clone(),
        ..Default::default()
    };
    let fs = Plfs::new(Arc::new(MemBackend::new()) as Arc<dyn Backend>, cfg);
    let buf = vec![0xC3u8; RECORD];
    for r in 0..RANKS {
        let mut w = fs.open_writer("/ckpt", r).unwrap();
        for i in 0..WRITES_PER_RANK {
            let record = i * RANKS as u64 + r as u64;
            w.write_at(record * RECORD as u64, &buf).unwrap();
        }
        w.close().unwrap();
    }
    assert!(flight.enabled());
    assert!(!flight.is_empty(), "no frames captured by hot-path probes");
    // The last frame landed mid-run (whenever the cadence last came
    // due), so it carries some prefix of the write counter.
    let last = flight.frames().pop().unwrap();
    let ops = last.counter("plfs.write.ops").unwrap_or(0);
    assert!(
        (1..=RANKS as u64 * WRITES_PER_RANK).contains(&ops),
        "last frame write counter out of range: {ops}"
    );
}
