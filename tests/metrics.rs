//! Metric-asserting tests: these check the *values* the `obs` layer
//! records, not stdout — proving the stack computed its answers for the
//! right reasons (the PR-1 fault-injection work becomes checkable by
//! invariant instead of by eyeball).

use pdsi::obs::{json, Registry};
use pdsi::plfs::backend::{Backend, MemBackend};
use pdsi::plfs::{Plfs, PlfsConfig};
use std::sync::Arc;

/// The ISSUE's exact masking invariant, on the `repro faults` scenario:
/// with zero surfaced errors, every injected transient must show up as
/// exactly one masked retry and every injected torn append as exactly
/// one torn recovery — counted independently by the injector
/// (`faults.*`) and the retry layer (`retry.*`).
#[test]
fn masked_retries_equal_injected_faults_exactly() {
    let mut injected_any = false;
    for (transient, torn) in [(0.0, 0.0), (0.02, 0.01), (0.10, 0.05)] {
        let (stats, surfaced, reg) = pdsi_bench::faults_masking_run(transient, torn);
        assert_eq!(surfaced, 0, "scenario must mask everything (p_eio={transient}, p_torn={torn})");
        injected_any |= stats.injected_transient + stats.injected_torn > 0;
        // Registry vs injector stats.
        assert_eq!(reg.value("retry.masked_transient"), Some(stats.injected_transient));
        assert_eq!(reg.value("retry.torn_recovered"), Some(stats.injected_torn));
        assert_eq!(reg.value("retry.surfaced"), Some(0));
        // Registry vs registry: the injector also exports its counts.
        assert_eq!(reg.value("retry.masked_transient"), reg.value("faults.injected_transient"));
        assert_eq!(reg.value("retry.torn_recovered"), reg.value("faults.injected_torn"));
    }
    assert!(injected_any, "fault plans injected nothing — the invariant was tested vacuously");
}

/// Every `repro` experiment must emit at least 20 distinct metric
/// series (the stable schema future perf PRs assert against).
#[test]
fn every_experiment_emits_at_least_20_series() {
    for (id, _) in pdsi_bench::EXPERIMENTS {
        let reg = Registry::new();
        pdsi_bench::run_observed(id, &reg).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(
            reg.series_count() >= 20,
            "{id} emitted only {} series (schema floor is 20)",
            reg.series_count()
        );
    }
}

/// End-to-end counter check through the public `Plfs` API: the write
/// and read paths must record exactly what the workload did.
#[test]
fn plfs_counters_track_write_and_read_path() {
    let reg = Registry::new();
    let fs = Plfs::new(
        Arc::new(MemBackend::new()) as Arc<dyn Backend>,
        PlfsConfig { metrics: reg.clone(), ..Default::default() },
    );
    for rank in 0..4u32 {
        let mut w = fs.open_writer("/ckpt", rank).unwrap();
        for i in 0..8u64 {
            w.write_at((i * 4 + rank as u64) * 512, &[rank as u8; 512]).unwrap();
        }
        w.close().unwrap();
    }
    let r = fs.open_reader("/ckpt").unwrap();
    let data = r.read_all().unwrap();
    assert_eq!(data.len(), 4 * 8 * 512);

    assert_eq!(reg.value("plfs.write.ops"), Some(32), "4 ranks x 8 writes");
    assert_eq!(reg.value("plfs.write.bytes"), Some(32 * 512));
    assert_eq!(reg.value("plfs.read.bytes"), Some(4 * 8 * 512));
    assert_eq!(reg.value("plfs.index.raw_entries"), Some(32), "one entry per write");
    let fanin = reg.histogram("plfs.index.merge_fanin");
    assert_eq!(fanin.count(), 1, "one container open");
    assert_eq!(fanin.max(), 4, "four droppings merged");
    // A healthy store still pays one attempt per retried operation.
    assert!(reg.value("retry.attempts").unwrap() > 0);
    assert_eq!(reg.value("retry.surfaced"), Some(0));
}

/// `plfs.read.bytes` counts what a read *delivered*, not what it
/// attempted: a read that surfaces an error must contribute zero, and
/// the counter must equal exactly the bytes handed back once the
/// backend heals.
#[test]
fn read_bytes_counts_only_delivered_bytes() {
    use pdsi::plfs::faults::{FaultPlan, FaultyBackend};
    use pdsi::plfs::retry::RetryPolicy;

    let reg = Registry::new();
    let faulty = Arc::new(FaultyBackend::new(MemBackend::new(), FaultPlan::none(11)));
    let fs = Plfs::new(
        faulty.clone() as Arc<dyn Backend>,
        PlfsConfig { metrics: reg.clone(), retry: RetryPolicy::none(), ..Default::default() },
    );
    let mut w = fs.open_writer("/ckpt", 0).unwrap();
    w.write_at(0, &[7u8; 512]).unwrap();
    w.close().unwrap();

    // Open while healthy (the index must be readable), then break the
    // data path: every backend read now fails and nothing is retried.
    let reader = fs.open_reader("/ckpt").unwrap();
    faulty.set_plan(FaultPlan { transient_error_rate: 1.0, ..FaultPlan::none(11) });
    let mut buf = vec![0u8; 512];
    assert!(reader.read_at(0, &mut buf).is_err(), "unretried faulty read must surface");
    assert_eq!(reg.value("plfs.read.bytes"), Some(0), "failed read delivered nothing");

    faulty.set_plan(FaultPlan::none(11));
    assert_eq!(reader.read_at(0, &mut buf).unwrap(), 512);
    assert_eq!(buf, vec![7u8; 512]);
    assert_eq!(reg.value("plfs.read.bytes"), Some(512), "exactly the delivered bytes");
    assert!(reg.value("plfs.read.backend_ops").unwrap() >= 1);
    assert_eq!(reg.value("plfs.read.batches"), Some(1), "only the delivered read counts");
}

/// Silent corruption is not a transient fault: the retry layer must
/// never "mask" it (a retried read of a rotten sector returns the same
/// rotten bytes), and the reader's typed [`IntegrityError`] must
/// surface on the first detection. Transient I/O errors injected at
/// the same time keep being masked — the two failure classes stay in
/// separate ledgers.
///
/// [`IntegrityError`]: pdsi::plfs::retry::IntegrityError
#[test]
fn corruption_is_never_counted_as_a_masked_transient() {
    use pdsi::plfs::faults::{FaultPlan, FaultyBackend};
    use pdsi::plfs::retry::is_integrity;

    let reg = Registry::new();
    let faulty = Arc::new(FaultyBackend::new(MemBackend::new(), FaultPlan::none(23)));
    let fs = Plfs::new(
        faulty.clone() as Arc<dyn Backend>,
        PlfsConfig { metrics: reg.clone(), ..Default::default() },
    );
    let mut w = fs.open_writer("/ckpt", 0).unwrap();
    w.write_at(0, &[1u8; 2048]).unwrap();
    w.close().unwrap();
    let reader = fs.open_reader("/ckpt").unwrap();

    // Rot one data byte and make the store flaky at the same time:
    // transients must keep getting masked, corruption must surface.
    faulty.set_plan(FaultPlan {
        transient_error_rate: 0.05,
        corrupt_byte_at: Some(("data.0".into(), 100, 0x01)),
        ..FaultPlan::none(23)
    });
    let mut buf = vec![0u8; 2048];
    let err = reader.read_at(0, &mut buf).unwrap_err();
    assert!(is_integrity(&err), "corruption surfaces typed, not as I/O noise: {err}");
    assert_eq!(reg.value("plfs.read.bytes"), Some(0), "nothing delivered");
    assert_eq!(reg.value("plfs.verify.failures"), Some(1));

    faulty.export_into(&reg);
    let stats = faulty.stats();
    assert!(stats.injected_bit_flips >= 1, "the rotten byte was read");
    // Every injected transient was masked by a retry; the bit flips
    // contributed nothing to that ledger.
    assert_eq!(reg.value("retry.masked_transient"), Some(stats.injected_transient));
    assert_eq!(reg.value("retry.surfaced"), Some(0), "retry layer never saw the corruption");
}

/// The JSON dump must round-trip through the hand-rolled parser and
/// preserve every series and its value.
#[test]
fn metrics_json_roundtrips() {
    let reg = Registry::new();
    reg.counter("a.count").add(41);
    reg.gauge_with("b.level", &[("osd", "3")]).set(-7);
    reg.histogram("c.lat").observe(1000);
    let v = json::parse(&reg.to_json()).expect("dump must be valid JSON");
    let series = v.get("series").and_then(|s| s.as_arr()).expect("series array");
    assert_eq!(series.len(), reg.series_count());
    let a = series
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("a.count"))
        .expect("a.count present");
    assert_eq!(a.get("value").and_then(|x| x.as_i64()), Some(41));
}
