//! Cluster-level simulation: N clients driving M object servers
//! through a metadata server and a lock manager.
//!
//! The simulation is causal-order discrete-event: each client executes
//! its operation stream serially; at every step the earliest-ready
//! client proceeds, so resource state (disk head position, FTL pools,
//! lock ownership) is always mutated in global time order.

use crate::layout::{FileId, Layout};
use crate::lockmgr::{LockManager, LockMode, LockStats};
use crate::server::{QueueStats, Server, ServerConfig};
use diskmodel::hdd::{DiskDevice, DiskParams};
use diskmodel::profiles::FlashHeadline;
use diskmodel::{BlockDevice, DeviceStats};
use obs::trace::{Phase, SpanRecord, TraceSink};
use simkit::units::GIB;
use simkit::{SimDuration, SimTime, Timeline};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which device backs each object server.
#[derive(Debug, Clone)]
pub enum DeviceSpec {
    /// Nearline SATA of the given capacity (bytes).
    Sata { capacity: u64 },
    /// 15k SAS of the given capacity (bytes).
    Sas { capacity: u64 },
    /// A Table 1 flash device of the given logical capacity (bytes).
    Flash { headline: FlashHeadline, capacity: u64 },
}

impl DeviceSpec {
    fn build(&self) -> Box<dyn BlockDevice + Send> {
        match self {
            DeviceSpec::Sata { capacity } => {
                Box::new(DiskDevice::new(DiskParams::nearline_sata(*capacity)))
            }
            DeviceSpec::Sas { capacity } => {
                Box::new(DiskDevice::new(DiskParams::sas_15k(*capacity)))
            }
            DeviceSpec::Flash { headline, capacity } => Box::new(headline.device(*capacity)),
        }
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub layout: Layout,
    pub lock_mode: LockMode,
    pub server: ServerConfig,
    pub device: DeviceSpec,
    /// Client NIC bandwidth, bytes/sec.
    pub client_net_bw: f64,
    /// One-way request latency client <-> server.
    pub rpc_latency: SimDuration,
    /// Metadata server service time per create.
    pub mds_create: SimDuration,
    /// Metadata server service time per open of an existing file.
    pub mds_open: SimDuration,
    /// Causal trace sink shared by clients, servers, and the MDS.
    /// Disabled by default; install a bounded sink to capture spans.
    pub trace: TraceSink,
}

impl ClusterConfig {
    /// A Lustre-like deployment: round-robin striping, coherent range
    /// locks at stripe granularity.
    pub fn lustre_like(servers: usize, stripe_size: u64) -> Self {
        ClusterConfig {
            layout: Layout::new(stripe_size, crate::layout::Placement::RoundRobin, servers),
            lock_mode: LockMode::RangeLocks {
                granularity: stripe_size,
                revoke_cost: SimDuration::from_micros(500),
            },
            server: ServerConfig::default(),
            device: DeviceSpec::Sata { capacity: 512 * GIB },
            client_net_bw: 1.0e9,
            rpc_latency: SimDuration::from_micros(30),
            mds_create: SimDuration::from_micros(800),
            mds_open: SimDuration::from_micros(250),
            trace: TraceSink::disabled(),
        }
    }

    /// A GPFS-like deployment: wide round-robin with whole-block token
    /// locks (coarser granularity than the stripe — harsher false
    /// sharing for small strided writers).
    pub fn gpfs_like(servers: usize, block_size: u64) -> Self {
        let mut c = Self::lustre_like(servers, block_size);
        c.lock_mode = LockMode::RangeLocks {
            granularity: 4 * block_size,
            revoke_cost: SimDuration::from_micros(700),
        };
        c
    }

    /// A PanFS-like deployment: RAID-group placement, concurrent-write
    /// mode (no client locks), slightly higher per-op cost.
    pub fn panfs_like(servers: usize, stripe_size: u64) -> Self {
        let mut c = Self::lustre_like(servers, stripe_size);
        c.layout = Layout::new(
            stripe_size,
            crate::layout::Placement::RaidGroups { group_size: servers.min(8) },
            servers,
        );
        c.lock_mode = LockMode::None;
        c.server.rpc_overhead = SimDuration::from_micros(80);
        // Concurrent-write mode bypasses client write-back caching, and
        // per-file RAID makes sub-stripe writes pay read-modify-write.
        c.server.flush_size = 64 << 10;
        c.server.sub_stripe_rmw = 2.5;
        c.server.raid_stripe = stripe_size;
        c
    }
}

/// One client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Create(FileId),
    Open(FileId),
    Write {
        file: FileId,
        offset: u64,
        len: u64,
    },
    Read {
        file: FileId,
        offset: u64,
        len: u64,
    },
    /// Local computation between I/Os.
    Compute(SimDuration),
}

/// Result of running one phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Wall time from phase start until every client finished *and*
    /// all server buffers drained to media (checkpoint durability).
    pub makespan: SimDuration,
    /// Wall time until the last client ack (what an application's
    /// elapsed-time measurement around `close()` without fsync sees).
    pub client_makespan: SimDuration,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub lock_stats: LockStats,
    pub server_device: Vec<DeviceStats>,
    /// Cumulative queue-level counters per server (same order as
    /// `server_device`).
    pub server_queue: Vec<QueueStats>,
    pub mds_ops: u64,
    /// OSD crash/restart events that took effect during this phase.
    pub crashes: usize,
}

impl PhaseReport {
    /// Aggregate durable write bandwidth, bytes/sec.
    pub fn write_bandwidth(&self) -> f64 {
        self.makespan.throughput(self.bytes_written)
    }

    pub fn read_bandwidth(&self) -> f64 {
        self.makespan.throughput(self.bytes_read)
    }

    /// Export this report into a metrics registry under `labels`.
    ///
    /// Aggregate series (`pfs.*`) are always emitted; when `per_osd` is
    /// set, each server additionally gets its own `pfs.osd.*` series
    /// labeled `osd=<index>` with the positioning split and queue
    /// counters. Counters accumulate, so exporting two phases into the
    /// same registry sums them — use distinct labels to keep them apart.
    pub fn export_metrics(&self, reg: &obs::Registry, labels: &[(&str, &str)], per_osd: bool) {
        let c = |name: &str| reg.counter_with(name, labels);
        c("pfs.phase.makespan_ns").add(self.makespan.0);
        c("pfs.phase.client_makespan_ns").add(self.client_makespan.0);
        c("pfs.phase.bytes_written").add(self.bytes_written);
        c("pfs.phase.bytes_read").add(self.bytes_read);
        c("pfs.phase.crashes").add(self.crashes as u64);
        c("pfs.mds.ops").add(self.mds_ops);
        c("pfs.lock.acquisitions").add(self.lock_stats.acquisitions);
        c("pfs.lock.revocations").add(self.lock_stats.revocations);
        c("pfs.lock.wait_ns").add(self.lock_stats.wait_time.0);

        // Cluster-wide positioning split and queueing, summed over OSDs.
        let mut seek = 0u64;
        let mut rotate = 0u64;
        let mut transfer = 0u64;
        let mut busy = 0u64;
        let mut qwait = 0u64;
        for (d, q) in self.server_device.iter().zip(&self.server_queue) {
            seek += d.seek_time.0;
            rotate += d.rotate_time.0;
            transfer += d.transfer_time.0;
            busy += d.busy.0;
            qwait += q.queue_wait.0;
        }
        c("pfs.osd.seek_ns").add(seek);
        c("pfs.osd.rotate_ns").add(rotate);
        c("pfs.osd.transfer_ns").add(transfer);
        c("pfs.osd.busy_ns").add(busy);
        c("pfs.osd.queue_wait_ns").add(qwait);

        if per_osd {
            for (i, (d, q)) in self.server_device.iter().zip(&self.server_queue).enumerate() {
                let osd = i.to_string();
                let mut l: Vec<(&str, &str)> = labels.to_vec();
                l.push(("osd", &osd));
                let c = |name: &str| reg.counter_with(name, &l);
                c("pfs.osd.requests").add(q.requests);
                c("pfs.osd.reads").add(d.reads);
                c("pfs.osd.writes").add(d.writes);
                c("pfs.osd.bytes_read").add(d.bytes_read);
                c("pfs.osd.bytes_written").add(d.bytes_written);
                c("pfs.osd.sequential_hits").add(d.sequential_hits);
                c("pfs.osd.seek_ns").add(d.seek_time.0);
                c("pfs.osd.rotate_ns").add(d.rotate_time.0);
                c("pfs.osd.transfer_ns").add(d.transfer_time.0);
                c("pfs.osd.queue_wait_ns").add(q.queue_wait.0);
                c("pfs.osd.crashes").add(q.crashes);
                c("pfs.osd.downtime_ns").add(q.downtime.0);
                reg.gauge_with("pfs.osd.peak_pending", &l).raise_to(q.peak_pending as i64);
            }
        }
    }
}

/// Trace handle for one executed client op: the root span id of its
/// causal tree plus its simulated interval. Returned (per client, in
/// stream order) by [`Cluster::run_phase_traced`] so adapter layers can
/// graft their own wrapper spans over the cluster-level trees.
#[derive(Debug, Clone, Copy)]
pub struct OpSpanRef {
    /// Root span id in the cluster's trace sink (0 if tracing is off).
    pub span: u64,
    /// When the op became ready to issue.
    pub begin: SimTime,
    /// When the op completed at the client.
    pub end: SimTime,
}

/// A scheduled OSD failure.
#[derive(Debug, Clone, Copy)]
struct CrashEvent {
    server: usize,
    at: SimTime,
    down_for: SimDuration,
}

/// The simulated cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    servers: Vec<Server>,
    locks: LockManager,
    mds: Timeline,
    mds_ops: u64,
    /// Global clock high-water mark across phases.
    now: SimTime,
    /// Scheduled OSD failures not yet applied, sorted by time.
    pending_crashes: Vec<CrashEvent>,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Self {
        let servers = (0..cfg.layout.servers)
            .map(|i| {
                let mut s =
                    Server::new(cfg.server.clone(), cfg.device.build(), cfg.layout.stripe_size);
                s.set_trace(cfg.trace.clone(), i);
                s
            })
            .collect();
        let locks = LockManager::new(cfg.lock_mode);
        Cluster {
            cfg,
            servers,
            locks,
            mds: Timeline::new(),
            mds_ops: 0,
            now: SimTime::ZERO,
            pending_crashes: Vec::new(),
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an OSD crash: `server` stops serving at `at` and comes
    /// back `down_for` later. The event takes effect causally during
    /// `run_phase` — clients keep issuing, work addressed to the dead
    /// server queues behind the outage, and the phase's makespan (and
    /// thus reported bandwidth) degrades accordingly. Events in the
    /// future simply stay pending for later phases.
    pub fn schedule_crash(&mut self, server: usize, at: SimTime, down_for: SimDuration) {
        assert!(server < self.servers.len(), "no such server {server}");
        self.pending_crashes.push(CrashEvent { server, at, down_for });
        self.pending_crashes.sort_by_key(|e| e.at);
    }

    /// Apply every scheduled crash with `at <= t`. Returns how many
    /// fired. Called as simulated time advances so outage reservations
    /// land in causal order with client work.
    fn apply_crashes_up_to(&mut self, t: SimTime) -> usize {
        let mut fired = 0;
        while let Some(e) = self.pending_crashes.first().copied() {
            if e.at > t {
                break;
            }
            self.pending_crashes.remove(0);
            self.servers[e.server].crash(e.at, e.down_for);
            fired += 1;
        }
        fired
    }

    /// Run one phase: every client starts at the current global time
    /// and executes its op stream serially; the phase ends when all
    /// clients are done and all dirty buffers are on media.
    pub fn run_phase(&mut self, streams: &[Vec<Op>]) -> PhaseReport {
        self.run_phase_traced(streams).0
    }

    /// [`Cluster::run_phase`], additionally returning one [`OpSpanRef`]
    /// per executed op (outer index = client, inner = stream order).
    /// With a disabled sink the span ids are all 0 and nothing is
    /// recorded; behaviour and the report are identical either way.
    pub fn run_phase_traced(&mut self, streams: &[Vec<Op>]) -> (PhaseReport, Vec<Vec<OpSpanRef>>) {
        let start = self.now;
        let mut bytes_written = 0u64;
        let mut bytes_read = 0u64;
        let lock_stats_before = self.locks.stats();
        let mds_before = self.mds_ops;

        // Per-client state: next op index, ready time, NIC timeline.
        let mut cursor = vec![0usize; streams.len()];
        let mut links: Vec<Timeline> = streams
            .iter()
            .map(|_| {
                let mut t = Timeline::new();
                t.delay_until(start);
                t
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(c, _)| Reverse((start, c)))
            .collect();
        let mut client_done = start;
        let mut crashes = 0usize;
        let mut op_spans: Vec<Vec<OpSpanRef>> =
            streams.iter().map(|s| Vec::with_capacity(s.len())).collect();

        while let Some(Reverse((ready, c))) = heap.pop() {
            // Fire scheduled OSD failures before any op at or after
            // their instant: ops execute in ready-time order, so the
            // outage reservation lands causally between earlier and
            // later work on the dead server's timelines.
            crashes += self.apply_crashes_up_to(ready);
            let op = streams[c][cursor[c]];
            cursor[c] += 1;
            let (finished, span) =
                self.execute(c, op, ready, &mut links[c], &mut bytes_written, &mut bytes_read);
            op_spans[c].push(OpSpanRef { span, begin: ready, end: finished });
            client_done = client_done.max_of(finished);
            if cursor[c] < streams[c].len() {
                heap.push(Reverse((finished, c)));
            }
        }
        // Failures scheduled before the last ack also delay the drain.
        crashes += self.apply_crashes_up_to(client_done);

        // Drain write-back buffers: checkpoint data must be durable.
        for s in &mut self.servers {
            s.flush_all();
        }
        let drained =
            self.servers.iter().map(|s| s.drained_at()).fold(client_done, SimTime::max_of);
        self.now = drained;

        let mut ls = self.locks.stats();
        let before = lock_stats_before;
        ls.acquisitions -= before.acquisitions;
        ls.revocations -= before.revocations;
        ls.wait_time = ls.wait_time.saturating_sub(before.wait_time);

        let report = PhaseReport {
            makespan: drained.since(start),
            client_makespan: client_done.since(start),
            bytes_written,
            bytes_read,
            lock_stats: ls,
            server_device: self.servers.iter().map(|s| s.device_stats()).collect(),
            server_queue: self.servers.iter().map(|s| s.queue_stats()).collect(),
            mds_ops: self.mds_ops - mds_before,
            crashes,
        };
        (report, op_spans)
    }

    fn execute(
        &mut self,
        client: usize,
        op: Op,
        ready: SimTime,
        link: &mut Timeline,
        bytes_written: &mut u64,
        bytes_read: &mut u64,
    ) -> (SimTime, u64) {
        let trace = self.cfg.trace.clone();
        // Root id is reserved up front so children recorded mid-op can
        // point at it; the root record itself lands once the op's
        // completion time is known.
        let root = trace.alloc();
        let track = if trace.enabled() { format!("client.{client}") } else { String::new() };
        let (name, phase, finished) = match op {
            Op::Compute(d) => ("pfs.compute", Phase::Compute, ready + d),
            Op::Create(_) => {
                self.mds_ops += 1;
                let (mstart, done) =
                    self.mds.reserve(ready + self.cfg.rpc_latency, self.cfg.mds_create);
                trace.record("mds.create", Phase::Mds, "mds", mstart.0, done.0, root);
                ("pfs.create", Phase::Network, done + self.cfg.rpc_latency)
            }
            Op::Open(_) => {
                self.mds_ops += 1;
                let (mstart, done) =
                    self.mds.reserve(ready + self.cfg.rpc_latency, self.cfg.mds_open);
                trace.record("mds.open", Phase::Mds, "mds", mstart.0, done.0, root);
                ("pfs.open", Phase::Network, done + self.cfg.rpc_latency)
            }
            Op::Write { file, offset, len } => {
                *bytes_written += len;
                let (mut start, revoked) = self.locks.acquire(client, file, offset, len, ready);
                let chunks = self.cfg.layout.chunks(file, offset, len);
                if revoked > 0 {
                    // A lock transfer forces the previous holder's dirty
                    // data under the lock to storage before the grant:
                    // the write-back aggregation that saves well-formed
                    // streams is defeated, and the grant waits on disk.
                    for chunk in &chunks {
                        let durable = self.servers[chunk.server].flush_stripe(file, chunk.stripe);
                        start = start.max_of(durable);
                    }
                }
                if trace.enabled() && start > ready {
                    trace.record_labeled(
                        "lock.wait",
                        Phase::LockWait,
                        &track,
                        ready.0,
                        start.0,
                        root,
                        &[("revoked", &revoked.to_string())],
                    );
                }
                let mut completion = start;
                for chunk in chunks {
                    // Client NIC serializes this client's outbound data.
                    let xfer = SimDuration::for_bytes(chunk.len, self.cfg.client_net_bw);
                    let (nic_start, sent) = link.reserve(start, xfer);
                    trace.record("net.send", Phase::Network, &track, nic_start.0, sent.0, root);
                    let ack = self.servers[chunk.server].write_chunk_traced(
                        sent + self.cfg.rpc_latency,
                        file,
                        chunk.stripe,
                        chunk.stripe_offset,
                        chunk.len,
                        root,
                    );
                    completion = completion.max_of(ack + self.cfg.rpc_latency);
                }
                self.locks.release(client, file, offset, len, completion);
                ("pfs.write", Phase::Network, completion)
            }
            Op::Read { file, offset, len } => {
                *bytes_read += len;
                let mut completion = ready;
                for chunk in self.cfg.layout.chunks(file, offset, len) {
                    let got = self.servers[chunk.server].read_chunk_traced(
                        ready + self.cfg.rpc_latency,
                        file,
                        chunk.stripe,
                        chunk.stripe_offset,
                        chunk.len,
                        root,
                    );
                    // Client NIC serializes inbound data.
                    let xfer = SimDuration::for_bytes(chunk.len, self.cfg.client_net_bw);
                    let (rstart, received) = link.reserve(got, xfer);
                    trace.record("net.recv", Phase::Network, &track, rstart.0, received.0, root);
                    completion = completion.max_of(received);
                }
                ("pfs.read", Phase::Network, completion)
            }
        };
        if trace.enabled() {
            trace.push(SpanRecord {
                id: root,
                parent: 0,
                name: name.to_string(),
                phase,
                track,
                begin: ready.0,
                end: finished.0.max(ready.0),
                labels: Vec::new(),
            });
        }
        (finished, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::{KIB, MIB};

    fn n1_strided(clients: usize, writes_per_client: usize, write_size: u64) -> Vec<Vec<Op>> {
        // All clients write file 0 in an interleaved strided pattern:
        // rank r writes records r, r+N, r+2N, ...
        (0..clients)
            .map(|r| {
                let mut ops = vec![Op::Open(0)];
                for i in 0..writes_per_client {
                    let record = (i * clients + r) as u64;
                    ops.push(Op::Write { file: 0, offset: record * write_size, len: write_size });
                }
                ops
            })
            .collect()
    }

    fn n_n(clients: usize, writes_per_client: usize, write_size: u64) -> Vec<Vec<Op>> {
        (0..clients)
            .map(|r| {
                let file = 1 + r as u64;
                let mut ops = vec![Op::Create(file)];
                for i in 0..writes_per_client {
                    ops.push(Op::Write { file, offset: i as u64 * write_size, len: write_size });
                }
                ops
            })
            .collect()
    }

    #[test]
    fn n_to_n_beats_n_to_1_small_strided_on_lustre_like() {
        let cfg = ClusterConfig::lustre_like(8, MIB);
        let mut a = Cluster::new(cfg.clone());
        let r1 = a.run_phase(&n1_strided(16, 64, 47 * KIB));
        let mut b = Cluster::new(cfg);
        let r2 = b.run_phase(&n_n(16, 64, 47 * KIB));
        assert_eq!(r1.bytes_written, r2.bytes_written);
        let speedup = r2.write_bandwidth() / r1.write_bandwidth();
        assert!(speedup > 4.0, "expected big N-N win, got {speedup:.2}x");
        assert!(r1.lock_stats.revocations > 0);
        assert_eq!(r2.lock_stats.revocations, 0);
    }

    #[test]
    fn large_aligned_n1_writes_are_fine() {
        // Stripe-aligned large writes from each rank: no false sharing,
        // N-1 should be within ~2x of N-N.
        let cfg = ClusterConfig::lustre_like(8, MIB);
        let clients = 8;
        let streams: Vec<Vec<Op>> = (0..clients)
            .map(|r| {
                let mut ops = vec![Op::Open(0)];
                for i in 0..16u64 {
                    // Rank-segmented: each rank owns a contiguous region.
                    let offset = (r as u64 * 16 + i) * MIB;
                    ops.push(Op::Write { file: 0, offset, len: MIB });
                }
                ops
            })
            .collect();
        let mut a = Cluster::new(cfg.clone());
        let seg = a.run_phase(&streams);
        let mut b = Cluster::new(cfg);
        let nn = b.run_phase(&n_n(clients, 16, MIB));
        let ratio = nn.write_bandwidth() / seg.write_bandwidth();
        assert!(ratio < 2.5, "aligned N-1 should be competitive, ratio {ratio:.2}");
    }

    #[test]
    fn bandwidth_scales_with_servers() {
        let bw = |servers: usize| {
            let mut c = Cluster::new(ClusterConfig::lustre_like(servers, MIB));
            let r = c.run_phase(&n_n(32, 32, MIB));
            r.write_bandwidth()
        };
        let b4 = bw(4);
        let b16 = bw(16);
        assert!(b16 > 2.0 * b4, "server scaling broken: {b4} -> {b16}");
    }

    #[test]
    fn reads_return_and_cost_time() {
        let mut c = Cluster::new(ClusterConfig::lustre_like(4, MIB));
        let w: Vec<Vec<Op>> =
            vec![vec![Op::Create(9), Op::Write { file: 9, offset: 0, len: 8 * MIB }]];
        c.run_phase(&w);
        let r: Vec<Vec<Op>> = vec![vec![Op::Read { file: 9, offset: 0, len: 8 * MIB }]];
        let rep = c.run_phase(&r);
        assert_eq!(rep.bytes_read, 8 * MIB);
        assert!(rep.makespan > SimDuration::ZERO);
        assert!(rep.read_bandwidth() > 10.0e6);
    }

    #[test]
    fn mds_serializes_creates() {
        let mut c = Cluster::new(ClusterConfig::lustre_like(4, MIB));
        let streams: Vec<Vec<Op>> = (0..64).map(|i| vec![Op::Create(i as u64)]).collect();
        let rep = c.run_phase(&streams);
        assert_eq!(rep.mds_ops, 64);
        // 64 creates at 800us each through one MDS >= 51 ms.
        assert!(rep.makespan >= SimDuration::from_millis(51));
    }

    #[test]
    fn compute_overlaps_nothing_but_advances_time() {
        let mut c = Cluster::new(ClusterConfig::lustre_like(2, MIB));
        let rep = c.run_phase(&[vec![Op::Compute(SimDuration::from_secs(1))]]);
        assert_eq!(rep.makespan, SimDuration::from_secs(1));
    }

    #[test]
    fn phases_accumulate_global_time() {
        let mut c = Cluster::new(ClusterConfig::lustre_like(2, MIB));
        c.run_phase(&[vec![Op::Compute(SimDuration::from_secs(1))]]);
        let t1 = c.now();
        c.run_phase(&[vec![Op::Compute(SimDuration::from_secs(1))]]);
        assert_eq!(c.now(), t1 + SimDuration::from_secs(1));
    }

    #[test]
    fn osd_crash_degrades_bandwidth_but_phase_completes() {
        let cfg = ClusterConfig::lustre_like(8, MIB);
        let streams = n_n(16, 64, MIB);
        let mut healthy = Cluster::new(cfg.clone());
        let h = healthy.run_phase(&streams);
        assert_eq!(h.crashes, 0);

        let mut degraded = Cluster::new(cfg);
        // Kill one OSD shortly into the phase, restart after 5 s.
        degraded.schedule_crash(
            0,
            SimTime::ZERO + SimDuration::from_millis(50),
            SimDuration::from_secs(5),
        );
        let d = degraded.run_phase(&streams);
        assert_eq!(d.crashes, 1);
        assert_eq!(d.bytes_written, h.bytes_written, "no data lost to the outage");
        assert!(
            d.makespan >= h.makespan + SimDuration::from_secs(4),
            "outage not reflected: healthy {} vs degraded {}",
            h.makespan,
            d.makespan
        );
        assert!(d.write_bandwidth() < h.write_bandwidth());
    }

    #[test]
    fn crashed_osd_serves_again_after_restart() {
        let mut c = Cluster::new(ClusterConfig::lustre_like(4, MIB));
        c.schedule_crash(1, SimTime::ZERO, SimDuration::from_secs(2));
        let first = c.run_phase(&n_n(8, 16, MIB));
        assert_eq!(first.crashes, 1);
        // Next phase runs on the restarted server at full speed.
        let second = c.run_phase(&n_n(8, 16, MIB));
        assert_eq!(second.crashes, 0);
        assert!(second.makespan + SimDuration::from_secs(1) < first.makespan);
        assert!(second.write_bandwidth() > first.write_bandwidth());
    }

    #[test]
    fn future_crash_stays_pending_across_phases() {
        let mut c = Cluster::new(ClusterConfig::lustre_like(2, MIB));
        // Scheduled at t=10s: the first (sub-second) phase is untouched.
        c.schedule_crash(0, SimTime::ZERO + SimDuration::from_secs(10), SimDuration::from_secs(3));
        let r1 = c.run_phase(&n_n(4, 8, MIB));
        assert_eq!(r1.crashes, 0);
        // Burn time past the event, then the crash fires.
        let r2 = c.run_phase(&[vec![Op::Compute(SimDuration::from_secs(15))]]);
        assert_eq!(r2.crashes, 1);
    }

    #[test]
    fn traced_phase_produces_valid_span_tree() {
        let mut cfg = ClusterConfig::lustre_like(8, MIB);
        cfg.trace = TraceSink::bounded(1 << 16);
        let sink = cfg.trace.clone();
        let mut c = Cluster::new(cfg);
        let (rep, ops) = c.run_phase_traced(&n1_strided(4, 8, 47 * KIB));
        assert!(rep.bytes_written > 0);
        let spans = sink.snapshot();
        let stats = obs::trace::validate(&spans).expect("well-formed span tree");
        assert!(stats.roots > 0);
        assert!(stats.max_depth >= 2, "expected request -> osd -> disk leaves");
        // Every returned op ref resolves to a recorded root of its interval.
        for r in ops.iter().flatten() {
            let rec = spans.iter().find(|s| s.id == r.span).expect("root recorded");
            assert_eq!(rec.parent, 0);
            assert_eq!(rec.begin, r.begin.0);
            assert_eq!(rec.end, r.end.0);
        }
        // False sharing on the strided N-1 pattern must surface as
        // lock-wait spans, and disk drain as transfer leaves.
        assert!(spans.iter().any(|s| s.name == "lock.wait"));
        assert!(spans.iter().any(|s| s.name == "disk.transfer"));
        assert!(spans.iter().any(|s| s.name == "osd.ingest"));
    }

    #[test]
    fn disabled_trace_changes_nothing() {
        let cfg = ClusterConfig::lustre_like(8, MIB);
        let mut plain = Cluster::new(cfg.clone());
        let base = plain.run_phase(&n1_strided(4, 8, 47 * KIB));
        let mut traced_cfg = cfg;
        traced_cfg.trace = TraceSink::bounded(1 << 16);
        let mut traced = Cluster::new(traced_cfg);
        let (rep, _) = traced.run_phase_traced(&n1_strided(4, 8, 47 * KIB));
        assert_eq!(base.makespan, rep.makespan, "tracing must not perturb the simulation");
        assert_eq!(base.bytes_written, rep.bytes_written);
        assert_eq!(base.lock_stats.revocations, rep.lock_stats.revocations);
    }

    #[test]
    fn panfs_like_has_no_lock_traffic() {
        let mut c = Cluster::new(ClusterConfig::panfs_like(8, MIB));
        let rep = c.run_phase(&n1_strided(8, 32, 47 * KIB));
        assert_eq!(rep.lock_stats.acquisitions, 0);
        assert!(rep.write_bandwidth() > 0.0);
    }
}
