//! # pfs — parallel file system simulator
//!
//! A discrete-event model of the production parallel file systems the
//! PDSI report evaluates against (Lustre-, GPFS-, PanFS-, PVFS-like
//! deployments): object storage servers over mechanical-disk or flash
//! models, three data-placement strategies, a distributed range-lock
//! manager, a metadata server, and a static-survey (`fsstats`) module.
//!
//! The simulator captures the two mechanisms that make N-to-1 strided
//! checkpoint writes pathological on deployed systems — lock false
//! sharing and non-sequential device traffic — which is all PLFS needs
//! to demonstrate its order-of-magnitude reordering win.
//!
//! Entry point: build a [`sim::Cluster`] from a [`sim::ClusterConfig`]
//! and feed it per-client [`sim::Op`] streams via
//! [`sim::Cluster::run_phase`].

pub mod fsstats;
pub mod layout;
pub mod lockmgr;
pub mod server;
pub mod sim;

pub use layout::{Chunk, FileId, Layout, Placement};
pub use lockmgr::{LockManager, LockMode, LockStats};
pub use server::QueueStats;
pub use sim::{Cluster, ClusterConfig, DeviceSpec, Op, OpSpanRef, PhaseReport};
