//! Object storage server model.
//!
//! A server owns one block device and a NIC. Writes are acknowledged
//! once received and buffered (write-back page cache, as on production
//! OSTs); the disk drains asynchronously through a per-file aggregation
//! buffer that coalesces small neighbouring writes into large extents —
//! the behaviour that lets well-formed streams reach media rate while
//! leaving per-request CPU/RPC overhead as the cost small I/O cannot
//! escape.

use crate::layout::FileId;
use diskmodel::{BlockDevice, DevOp, DeviceStats};
use obs::trace::{Phase, TraceSink};
use simkit::{SimDuration, SimTime, Timeline};
use std::collections::HashMap;

/// Tunables for one object storage server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// NIC ingest/egress bandwidth, bytes/sec.
    pub net_bw: f64,
    /// Per-request server CPU cost (RPC decode, allocation, etc.).
    pub rpc_overhead: SimDuration,
    /// Write-back aggregation threshold per file: once this many dirty
    /// bytes accumulate they are flushed as one extent write.
    pub flush_size: u64,
    /// Allocation zone per file: the on-disk allocator reserves
    /// contiguous regions of this size per file (delayed/extent
    /// allocation), so one file's stream stays sequential on media even
    /// when many files are written concurrently.
    pub zone_size: u64,
    /// RAID read-modify-write penalty applied to flushes smaller than
    /// `raid_stripe` (PanFS-style per-file RAID: sub-stripe writes must
    /// read old data+parity and write both back). 1.0 disables.
    pub sub_stripe_rmw: f64,
    /// Physical RAID stripe unit the RMW penalty is judged against.
    pub raid_stripe: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            net_bw: 1.0e9, // 10 GbE-class OST
            rpc_overhead: SimDuration::from_micros(50),
            flush_size: 4 << 20,
            zone_size: 32 << 20,
            sub_stripe_rmw: 1.0,
            raid_stripe: 1 << 20,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    bytes: u64,
    lo: u64,
    hi: u64,
    /// Earliest time the dirty data is fully resident.
    ready: SimTime,
}

/// One object storage server: device + NIC + write-back cache.
pub struct Server {
    cfg: ServerConfig,
    device: Box<dyn BlockDevice + Send>,
    /// Disk busy timeline.
    pub disk: Timeline,
    /// NIC busy timeline.
    pub net: Timeline,
    /// First-touch extent allocator: (file, stripe) -> device offset.
    extents: HashMap<(FileId, u64), u64>,
    /// Per-file allocation zone: (zone base, bytes used within it).
    zones: HashMap<FileId, (u64, u64)>,
    next_alloc: u64,
    stripe_size: u64,
    /// Write-back buffers keyed by (file, stripe) — the lock-unit
    /// granularity at which revocations force data out.
    pending: HashMap<(FileId, u64), Pending>,
    requests: u64,
    crashes: u64,
    downtime: SimDuration,
    /// Cumulative time flush/read disk work waited behind the disk
    /// timeline after its data was ready (queueing, not service).
    queue_wait: SimDuration,
    /// High-water mark of concurrently dirty (file, stripe) buffers.
    peak_pending: usize,
    /// Causal trace sink (disabled by default; see [`Server::set_trace`]).
    trace: TraceSink,
    /// This server's index in the cluster, naming its trace tracks.
    osd: usize,
}

/// Queue-level counters for one server, exported into metrics dumps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueStats {
    /// Chunk requests received (reads + writes).
    pub requests: u64,
    /// Time disk work sat queued behind earlier reservations.
    pub queue_wait: SimDuration,
    /// Peak number of dirty write-back buffers.
    pub peak_pending: usize,
    /// Crash/restart cycles.
    pub crashes: u64,
    /// Total scheduled outage time.
    pub downtime: SimDuration,
}

impl QueueStats {
    /// Counters accumulated since `earlier` (a snapshot of the same
    /// server at a previous wave boundary). This is what live
    /// monitoring feeds to per-interval series: cumulative stats make
    /// a stall invisible once enough history piles up, deltas localize
    /// it to the wave where it happened. `peak_pending` is a
    /// high-water mark, not a counter, so the delta carries the
    /// current peak unchanged.
    pub fn since(&self, earlier: &QueueStats) -> QueueStats {
        QueueStats {
            requests: self.requests.saturating_sub(earlier.requests),
            queue_wait: SimDuration(self.queue_wait.0.saturating_sub(earlier.queue_wait.0)),
            peak_pending: self.peak_pending,
            crashes: self.crashes.saturating_sub(earlier.crashes),
            downtime: SimDuration(self.downtime.0.saturating_sub(earlier.downtime.0)),
        }
    }
}

impl Server {
    pub fn new(cfg: ServerConfig, device: Box<dyn BlockDevice + Send>, stripe_size: u64) -> Self {
        Server {
            cfg,
            device,
            disk: Timeline::new(),
            net: Timeline::new(),
            extents: HashMap::new(),
            zones: HashMap::new(),
            next_alloc: 0,
            stripe_size,
            pending: HashMap::new(),
            requests: 0,
            crashes: 0,
            downtime: SimDuration::ZERO,
            queue_wait: SimDuration::ZERO,
            peak_pending: 0,
            trace: TraceSink::disabled(),
            osd: 0,
        }
    }

    /// Attach a trace sink; `osd` names this server's tracks
    /// (`osd.<i>.net` / `osd.<i>.disk` / `osd.<i>.queue`).
    pub fn set_trace(&mut self, trace: TraceSink, osd: usize) {
        self.trace = trace;
        self.osd = osd;
    }

    /// Record one disk-service span plus its seek/rotate/transfer leaf
    /// children, rescaled so the leaves tile `[start, done)` exactly even
    /// when an upper layer inflated the raw device time (RMW multiplier).
    fn record_disk_spans(
        &self,
        name: &str,
        before: DeviceStats,
        start: SimTime,
        done: SimTime,
        parent: u64,
    ) -> u64 {
        let track = format!("osd.{}.disk", self.osd);
        let split = self.device.stats().split_since(&before).scaled_to(done.since(start));
        let op = self.trace.record(name, Phase::Other, &track, start.0, done.0, parent);
        let mut t = start;
        if !split.seek.is_zero() {
            self.trace.record("disk.seek", Phase::Seek, &track, t.0, (t + split.seek).0, op);
            t += split.seek;
        }
        if !split.rotate.is_zero() {
            self.trace.record("disk.rotate", Phase::Rotate, &track, t.0, (t + split.rotate).0, op);
            t += split.rotate;
        }
        if !split.transfer.is_zero() {
            self.trace.record("disk.transfer", Phase::Transfer, &track, t.0, done.0, op);
        }
        op
    }

    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Queue-level counters (request count, disk queueing delay, peak
    /// write-back depth, crash history).
    pub fn queue_stats(&self) -> QueueStats {
        QueueStats {
            requests: self.requests,
            queue_wait: self.queue_wait,
            peak_pending: self.peak_pending,
            crashes: self.crashes,
            downtime: self.downtime,
        }
    }

    /// Crash/restart cycles this server has been through.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Total scheduled outage time.
    pub fn downtime(&self) -> SimDuration {
        self.downtime
    }

    /// Crash-stop at `at`, restarting `down_for` later: the NIC and
    /// disk accept no new work for the outage window, so everything
    /// queued behind it stalls and the cluster runs degraded.
    ///
    /// Modeling choices, both deliberately on the OSD-friendly side:
    /// in-flight operations complete before the outage takes effect
    /// (the reservation starts once the timelines free up), and
    /// write-back buffers survive the restart — production OSTs journal
    /// the write-back cache in NVRAM, so a restart replays rather than
    /// loses it. Durability of *acked* data is therefore unaffected;
    /// what the crash costs is time.
    pub fn crash(&mut self, at: SimTime, down_for: SimDuration) {
        let (_, _) = self.disk.reserve(at, down_for);
        let (_, _) = self.net.reserve(at, down_for);
        self.crashes += 1;
        self.downtime += down_for;
    }

    /// Device offset holding `stripe` of `file`, allocating a
    /// stripe-sized extent on first touch from the file's current
    /// allocation zone (so a file's successive stripes are contiguous
    /// on media even under concurrent multi-file writes).
    fn extent_of(&mut self, file: FileId, stripe: u64) -> u64 {
        if let Some(&off) = self.extents.get(&(file, stripe)) {
            return off;
        }
        let zone_size = self.cfg.zone_size.max(self.stripe_size);
        let need_new_zone = match self.zones.get(&file) {
            Some(&(_, used)) => used + self.stripe_size > zone_size,
            None => true,
        };
        if need_new_zone {
            assert!(
                self.next_alloc + zone_size <= self.device.capacity(),
                "server device full: raise simulated capacity"
            );
            self.zones.insert(file, (self.next_alloc, 0));
            self.next_alloc += zone_size;
        }
        let zone = self.zones.get_mut(&file).unwrap();
        let off = zone.0 + zone.1;
        zone.1 += self.stripe_size;
        self.extents.insert((file, stripe), off);
        off
    }

    /// Receive a write chunk. Returns the ack time (data buffered).
    /// Disk work is deferred into the aggregation buffer.
    pub fn write_chunk(
        &mut self,
        ready: SimTime,
        file: FileId,
        stripe: u64,
        stripe_offset: u64,
        len: u64,
    ) -> SimTime {
        self.write_chunk_traced(ready, file, stripe, stripe_offset, len, 0)
    }

    /// [`Server::write_chunk`] with the issuing request's span id so the
    /// server-side ingest span lands under the client's causal tree.
    pub fn write_chunk_traced(
        &mut self,
        ready: SimTime,
        file: FileId,
        stripe: u64,
        stripe_offset: u64,
        len: u64,
        parent: u64,
    ) -> SimTime {
        self.requests += 1;
        let xfer = SimDuration::for_bytes(len, self.cfg.net_bw) + self.cfg.rpc_overhead;
        let (nstart, received) = self.net.reserve(ready, xfer);
        if self.trace.enabled() {
            let track = format!("osd.{}.net", self.osd);
            self.trace.record("osd.ingest", Phase::Network, &track, nstart.0, received.0, parent);
        }
        let base = self.extent_of(file, stripe);
        let lo = base + stripe_offset;
        let hi = lo + len;
        let flush_size = self.cfg.flush_size;
        let e = self.pending.entry((file, stripe)).or_insert(Pending {
            bytes: 0,
            lo,
            hi,
            ready: received,
        });
        e.bytes += len;
        e.lo = e.lo.min(lo);
        e.hi = e.hi.max(hi);
        e.ready = e.ready.max_of(received);
        let dirty = e.bytes;
        self.peak_pending = self.peak_pending.max(self.pending.len());
        if dirty >= flush_size {
            self.flush_stripe(file, stripe);
        }
        received
    }

    /// Flush one (file, stripe) dirty buffer to disk. Returns the
    /// instant the flushed data is durable (the current disk drain time
    /// if there was nothing to flush).
    pub fn flush_stripe(&mut self, file: FileId, stripe: u64) -> SimTime {
        if let Some(p) = self.pending.remove(&(file, stripe)) {
            // One positioning + transfer of the dirty bytes, capped by
            // the span (overlapping rewrites coalesce; sparse dirty
            // ranges under-count a few intra-flush seeks, which is the
            // right side to err on for a write-back cache).
            let span = p.bytes.min(p.hi - p.lo);
            let before = self.trace.enabled().then(|| self.device.stats());
            let mut svc = self.device.service(DevOp::write(p.lo, span));
            if span < self.cfg.raid_stripe && self.cfg.sub_stripe_rmw > 1.0 {
                svc = svc.mul_f64(self.cfg.sub_stripe_rmw);
            }
            let (start, done) = self.disk.reserve(p.ready, svc);
            self.queue_wait += start.since(p.ready);
            if let Some(before) = before {
                // Flushes are asynchronous write-back drain: they are
                // roots on the disk track, not children of whichever
                // request happened to trip them.
                self.record_disk_spans("osd.flush", before, start, done, 0);
            }
            done
        } else {
            self.disk.free_at()
        }
    }

    /// Flush every dirty stripe of one file. Returns when all of it is
    /// durable.
    pub fn flush_file(&mut self, file: FileId) -> SimTime {
        let mut stripes: Vec<u64> =
            self.pending.keys().filter(|(f, _)| *f == file).map(|(_, s)| *s).collect();
        stripes.sort_unstable();
        let mut done = self.disk.free_at();
        for s in stripes {
            done = done.max_of(self.flush_stripe(file, s));
        }
        done
    }

    /// Flush all dirty buffers (fsync/close at the end of a phase).
    /// Stripes flush in (file, stripe) order so zone-contiguous extents
    /// stream sequentially.
    pub fn flush_all(&mut self) {
        let mut keys: Vec<(FileId, u64)> = self.pending.keys().copied().collect();
        keys.sort_unstable();
        for (f, s) in keys {
            self.flush_stripe(f, s);
        }
    }

    /// Serve a read chunk. Returns the completion time at the client
    /// side of the server (data on the wire).
    pub fn read_chunk(
        &mut self,
        ready: SimTime,
        file: FileId,
        stripe: u64,
        stripe_offset: u64,
        len: u64,
    ) -> SimTime {
        self.read_chunk_traced(ready, file, stripe, stripe_offset, len, 0)
    }

    /// [`Server::read_chunk`] with the issuing request's span id so
    /// queue-wait, disk service, and the return transfer land under the
    /// client's causal tree.
    pub fn read_chunk_traced(
        &mut self,
        ready: SimTime,
        file: FileId,
        stripe: u64,
        stripe_offset: u64,
        len: u64,
        parent: u64,
    ) -> SimTime {
        self.requests += 1;
        // Reads must observe prior buffered writes.
        if self.pending.contains_key(&(file, stripe)) {
            self.flush_stripe(file, stripe);
        }
        let base = self.extent_of(file, stripe);
        let before = self.trace.enabled().then(|| self.device.stats());
        let svc = self.device.service(DevOp::read(base + stripe_offset, len));
        let (start, disk_done) = self.disk.reserve(ready, svc);
        self.queue_wait += start.since(ready);
        let xfer = SimDuration::for_bytes(len, self.cfg.net_bw) + self.cfg.rpc_overhead;
        let (nstart, sent) = self.net.reserve(disk_done, xfer);
        if let Some(before) = before {
            if start > ready {
                let qtrack = format!("osd.{}.queue", self.osd);
                self.trace.record("disk.queue", Phase::Queue, &qtrack, ready.0, start.0, parent);
            }
            self.record_disk_spans("osd.read", before, start, disk_done, parent);
            let ntrack = format!("osd.{}.net", self.osd);
            self.trace.record("osd.send", Phase::Network, &ntrack, nstart.0, sent.0, parent);
        }
        sent
    }

    /// Instant by which all accepted work (net + disk) is complete.
    pub fn drained_at(&self) -> SimTime {
        self.disk.free_at().max_of(self.net.free_at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::hdd::{DiskDevice, DiskParams};
    use simkit::units::{GIB, KIB, MIB};

    fn server() -> Server {
        let dev = DiskDevice::new(DiskParams::nearline_sata(64 * GIB));
        Server::new(ServerConfig::default(), Box::new(dev), MIB)
    }

    #[test]
    fn small_writes_coalesce_before_disk() {
        let mut s = server();
        // 64 writes of 64 KiB into one file across 4 stripes: nothing
        // hits the disk until flush_all, then one write per stripe,
        // streaming sequentially through the file's allocation zone.
        let mut t = SimTime::ZERO;
        for i in 0..64u64 {
            t = s.write_chunk(t, 1, i / 16, (i % 16) * 64 * KIB, 64 * KIB);
        }
        assert_eq!(s.device_stats().writes, 0, "write-back should defer the disk");
        s.flush_all();
        let st = s.device_stats();
        assert_eq!(st.writes, 4, "one coalesced flush per stripe");
        assert_eq!(st.bytes_written, 4 * MIB);
        assert_eq!(st.sequential_hits, 3, "zone allocation keeps stripes contiguous");
    }

    #[test]
    fn flush_all_drains_partial_buffers() {
        let mut s = server();
        s.write_chunk(SimTime::ZERO, 1, 0, 0, 128 * KIB);
        assert_eq!(s.device_stats().writes, 0);
        s.flush_all();
        assert_eq!(s.device_stats().writes, 1);
        assert!(s.drained_at() > SimTime::ZERO);
    }

    #[test]
    fn read_observes_buffered_write() {
        let mut s = server();
        let t = s.write_chunk(SimTime::ZERO, 1, 0, 0, 256 * KIB);
        let done = s.read_chunk(t, 1, 0, 0, 256 * KIB);
        assert!(done > t);
        let st = s.device_stats();
        assert_eq!(st.writes, 1, "read should force the flush first");
        assert_eq!(st.reads, 1);
    }

    #[test]
    fn extents_are_stable_per_stripe() {
        let mut s = server();
        let a = s.extent_of(1, 0);
        let b = s.extent_of(1, 1);
        let a2 = s.extent_of(1, 0);
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn ack_time_reflects_nic_not_disk() {
        let mut s = server();
        let ack = s.write_chunk(SimTime::ZERO, 1, 0, 0, MIB);
        // 1 MiB at 1 GB/s ~ 1.05 ms + 50 us rpc; far below a disk seek +
        // transfer.
        assert!(ack.as_secs_f64() < 0.002, "ack {ack}");
    }

    #[test]
    fn crash_stalls_new_work_but_keeps_buffers() {
        let mut s = server();
        s.write_chunk(SimTime::ZERO, 1, 0, 0, 256 * KIB);
        // Crash for 10 s before the buffer is flushed.
        s.crash(SimTime::ZERO + SimDuration::from_millis(2), SimDuration::from_secs(10));
        assert_eq!(s.crashes(), 1);
        // A write arriving mid-outage acks only after restart.
        let ack =
            s.write_chunk(SimTime::ZERO + SimDuration::from_secs(1), 1, 0, 256 * KIB, 64 * KIB);
        assert!(ack.as_secs_f64() > 10.0, "mid-outage write acked at {ack}");
        // The journaled buffer survives and drains after restart.
        s.flush_all();
        assert_eq!(s.device_stats().writes, 1);
        assert!(s.drained_at().as_secs_f64() > 10.0);
    }

    #[test]
    fn per_request_overhead_accumulates_on_nic() {
        let mut s = server();
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            t = s.write_chunk(t, 1, 0, 0, 16);
        }
        // 1000 requests x 50us rpc = 50 ms minimum.
        assert!(t.as_secs_f64() >= 0.05, "overhead not charged: {t}");
    }
}
