//! Static file-system surveys — the `fsstats` tool.
//!
//! The report's data-collection arm shipped `fsstats`, a static survey
//! tool run against production file systems at rest; Figure 3 plots the
//! CDF of file sizes across eleven non-archival file systems
//! [Dayal-08]. The durable findings: most *files* are small (medians in
//! the tens of kilobytes), while most *bytes* live in a heavy tail of
//! large files — the mixture this module generates and summarizes.

use simkit::dist::{Distribution, LogNormal, Pareto};
use simkit::stats::Cdf;
use simkit::units::{GIB, KIB, MIB};
use simkit::Rng;

/// Parameters describing one surveyed file system's population.
#[derive(Debug, Clone)]
pub struct SurveyProfile {
    pub name: &'static str,
    /// Number of files to synthesize.
    pub files: u64,
    /// Median file size in bytes (lognormal body).
    pub median: f64,
    /// Lognormal sigma (spread of the body).
    pub sigma: f64,
    /// Fraction of files drawn from the heavy Pareto tail.
    pub tail_frac: f64,
    /// Pareto minimum for the tail, bytes.
    pub tail_min: f64,
    /// Pareto tail index (smaller = heavier).
    pub tail_alpha: f64,
}

/// Eleven site profiles standing in for the eleven non-archival file
/// systems of Fig. 3 — scratch volumes skew large, project/home volumes
/// skew small, mirroring the published spread of curves.
pub const SITE_PROFILES: [SurveyProfile; 11] = [
    SurveyProfile {
        name: "lanl-scratch1",
        files: 40_000,
        median: 512.0 * KIB as f64,
        sigma: 2.6,
        tail_frac: 0.02,
        tail_min: 256.0 * MIB as f64,
        tail_alpha: 1.1,
    },
    SurveyProfile {
        name: "lanl-scratch2",
        files: 40_000,
        median: 2.0 * MIB as f64,
        sigma: 2.4,
        tail_frac: 0.03,
        tail_min: 512.0 * MIB as f64,
        tail_alpha: 1.2,
    },
    SurveyProfile {
        name: "lanl-project",
        files: 40_000,
        median: 64.0 * KIB as f64,
        sigma: 2.8,
        tail_frac: 0.01,
        tail_min: 64.0 * MIB as f64,
        tail_alpha: 1.3,
    },
    SurveyProfile {
        name: "pnnl-nwfs",
        files: 40_000,
        median: 128.0 * KIB as f64,
        sigma: 2.5,
        tail_frac: 0.015,
        tail_min: 128.0 * MIB as f64,
        tail_alpha: 1.2,
    },
    SurveyProfile {
        name: "pnnl-home",
        files: 40_000,
        median: 16.0 * KIB as f64,
        sigma: 2.9,
        tail_frac: 0.005,
        tail_min: 32.0 * MIB as f64,
        tail_alpha: 1.4,
    },
    SurveyProfile {
        name: "nersc-scratch",
        files: 40_000,
        median: 1.0 * MIB as f64,
        sigma: 2.7,
        tail_frac: 0.025,
        tail_min: 256.0 * MIB as f64,
        tail_alpha: 1.15,
    },
    SurveyProfile {
        name: "nersc-project",
        files: 40_000,
        median: 96.0 * KIB as f64,
        sigma: 2.6,
        tail_frac: 0.01,
        tail_min: 96.0 * MIB as f64,
        tail_alpha: 1.3,
    },
    SurveyProfile {
        name: "sandia-scratch",
        files: 40_000,
        median: 768.0 * KIB as f64,
        sigma: 2.5,
        tail_frac: 0.02,
        tail_min: 192.0 * MIB as f64,
        tail_alpha: 1.2,
    },
    SurveyProfile {
        name: "psc-scratch",
        files: 40_000,
        median: 384.0 * KIB as f64,
        sigma: 2.4,
        tail_frac: 0.02,
        tail_min: 128.0 * MIB as f64,
        tail_alpha: 1.25,
    },
    SurveyProfile {
        name: "cmu-pdl",
        files: 40_000,
        median: 24.0 * KIB as f64,
        sigma: 3.0,
        tail_frac: 0.008,
        tail_min: 48.0 * MIB as f64,
        tail_alpha: 1.35,
    },
    SurveyProfile {
        name: "anon-corp",
        files: 40_000,
        median: 32.0 * KIB as f64,
        sigma: 2.8,
        tail_frac: 0.006,
        tail_min: 64.0 * MIB as f64,
        tail_alpha: 1.4,
    },
];

/// Aggregated survey results for one file system.
#[derive(Debug, Clone)]
pub struct Survey {
    pub name: String,
    pub file_count: u64,
    pub total_bytes: u64,
    sizes: Vec<f64>,
}

impl Survey {
    /// Run the synthetic survey for `profile` with the given seed.
    pub fn synthesize(profile: &SurveyProfile, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let body = LogNormal::from_median(profile.median, profile.sigma);
        let tail = Pareto { x_min: profile.tail_min, alpha: profile.tail_alpha };
        let mut sizes = Vec::with_capacity(profile.files as usize);
        let mut total = 0u64;
        for _ in 0..profile.files {
            let s = if rng.chance(profile.tail_frac) {
                tail.sample(&mut rng)
            } else {
                body.sample(&mut rng)
            };
            // Files are whole bytes; clamp the tail at 10 TiB to keep
            // totals finite under very heavy tails.
            let s = s.round().clamp(0.0, 10.0 * 1024.0 * GIB as f64);
            total += s as u64;
            sizes.push(s);
        }
        Survey {
            name: profile.name.to_string(),
            file_count: profile.files,
            total_bytes: total,
            sizes,
        }
    }

    /// CDF over file *count* (what Fig. 3 plots).
    pub fn count_cdf(&self) -> Cdf {
        Cdf::from_samples(self.sizes.clone())
    }

    /// CDF over *bytes*: fraction of capacity in files of size <= x.
    /// This is the curve that shows "most bytes are in big files".
    pub fn bytes_cdf_at(&self, x: f64) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        let below: f64 = self.sizes.iter().filter(|&&s| s <= x).sum();
        below / self.total_bytes as f64
    }

    /// Median file size.
    pub fn median(&self) -> f64 {
        self.count_cdf().median()
    }

    /// Standard Fig. 3 sample points: powers of two from 1 B to 1 TiB.
    pub fn standard_points() -> Vec<f64> {
        (0..=40).map(|e| (1u64 << e) as f64).collect()
    }

    /// Render the `(size, count-CDF)` series at the standard points.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.count_cdf().series(&Self::standard_points())
    }
}

/// Survey every site profile (deterministic per-site seeds).
pub fn survey_all_sites(base_seed: u64) -> Vec<Survey> {
    SITE_PROFILES
        .iter()
        .enumerate()
        .map(|(i, p)| Survey::synthesize(p, base_seed.wrapping_add(i as u64 * 0x9E37)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_sites_like_figure3() {
        assert_eq!(SITE_PROFILES.len(), 11);
    }

    #[test]
    fn medians_land_near_profile_median() {
        let p = &SITE_PROFILES[0];
        let s = Survey::synthesize(p, 1);
        let m = s.median();
        // The tail slightly inflates the median; allow a factor of 2.
        assert!(m > p.median / 2.0 && m < p.median * 2.0, "median {m} vs profile {}", p.median);
    }

    #[test]
    fn most_files_small_most_bytes_large() {
        let s = Survey::synthesize(&SITE_PROFILES[0], 2);
        let cdf = s.count_cdf();
        let cutoff = 64.0 * MIB as f64;
        // The classic fsstats shape: the majority of files sit below the
        // cutoff while the majority of bytes sit above it.
        assert!(cdf.at(cutoff) > 0.9, "file-count CDF at 64MiB: {}", cdf.at(cutoff));
        assert!(s.bytes_cdf_at(cutoff) < 0.5, "bytes CDF at 64MiB: {}", s.bytes_cdf_at(cutoff));
    }

    #[test]
    fn series_is_monotone_cdf() {
        let s = Survey::synthesize(&SITE_PROFILES[3], 3);
        let series = s.series();
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF decreased");
        }
        assert!(series.last().unwrap().1 > 0.999);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = Survey::synthesize(&SITE_PROFILES[5], 42);
        let b = Survey::synthesize(&SITE_PROFILES[5], 42);
        assert_eq!(a.total_bytes, b.total_bytes);
    }

    #[test]
    fn survey_all_sites_covers_all_profiles() {
        let all = survey_all_sites(7);
        assert_eq!(all.len(), 11);
        let names: Vec<_> = all.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"nersc-scratch"));
    }
}
