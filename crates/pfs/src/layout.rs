//! Data striping and placement strategies.
//!
//! The report's "Parallel Layout" exploration (§4.2.3) compared the
//! placement strategies of PVFS, PanFS, and Ceph with a trace-driven
//! simulator. We implement the same three families:
//!
//! - **Round-robin** (PVFS/Lustre style): stripe `i` of a file lands on
//!   server `(base + i) mod n`.
//! - **RAID groups** (PanFS style): a file is assigned a group of `g`
//!   servers and round-robins within the group.
//! - **Pseudo-random hash** (Ceph/CRUSH style): stripe placement is a
//!   deterministic hash of `(file, stripe)`, decentralizing placement
//!   state at the cost of occasional transient imbalance.

use simkit::rng::splitmix64;

/// Identifies a file within a simulated cluster.
pub type FileId = u64;

/// How stripes map to object storage servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// PVFS/Lustre-style: round-robin across all servers, starting at a
    /// per-file base offset.
    RoundRobin,
    /// PanFS-style: each file confined to a RAID group of `group_size`
    /// servers.
    RaidGroups { group_size: usize },
    /// Ceph/CRUSH-style pseudo-random placement per stripe.
    Hash,
}

/// Striping geometry plus a placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Stripe unit in bytes (64 KiB – 4 MiB in deployed systems).
    pub stripe_size: u64,
    pub placement: Placement,
    /// Number of object storage servers in the cluster.
    pub servers: usize,
}

/// One contiguous piece of a file request, destined for one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    pub server: usize,
    /// Stripe index within the file (offset / stripe_size).
    pub stripe: u64,
    /// Offset of this chunk within the file.
    pub file_offset: u64,
    /// Offset within the stripe unit.
    pub stripe_offset: u64,
    pub len: u64,
}

impl Layout {
    pub fn new(stripe_size: u64, placement: Placement, servers: usize) -> Self {
        assert!(stripe_size > 0 && servers > 0);
        if let Placement::RaidGroups { group_size } = placement {
            assert!(group_size > 0 && group_size <= servers, "bad RAID group size");
        }
        Layout { stripe_size, placement, servers }
    }

    /// The server that stores `stripe` of `file`.
    pub fn server_of(&self, file: FileId, stripe: u64) -> usize {
        match self.placement {
            Placement::RoundRobin => {
                let base = (file as usize) % self.servers;
                (base + stripe as usize) % self.servers
            }
            Placement::RaidGroups { group_size } => {
                let groups = (self.servers / group_size).max(1);
                let group = (file as usize) % groups;
                group * group_size + (stripe as usize % group_size)
            }
            Placement::Hash => {
                let mut state = file.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(stripe);
                (splitmix64(&mut state) % self.servers as u64) as usize
            }
        }
    }

    /// Split a byte-range request into per-stripe chunks.
    pub fn chunks(&self, file: FileId, offset: u64, len: u64) -> Vec<Chunk> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe = pos / self.stripe_size;
            let stripe_offset = pos % self.stripe_size;
            let in_stripe = (self.stripe_size - stripe_offset).min(end - pos);
            out.push(Chunk {
                server: self.server_of(file, stripe),
                stripe,
                file_offset: pos,
                stripe_offset,
                len: in_stripe,
            });
            pos += in_stripe;
        }
        out
    }

    /// The number of distinct stripes a request touches.
    pub fn stripes_touched(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = offset / self.stripe_size;
        let last = (offset + len - 1) / self.stripe_size;
        last - first + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_request_exactly() {
        let l = Layout::new(1024, Placement::RoundRobin, 4);
        let chunks = l.chunks(1, 1000, 3000);
        let total: u64 = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 3000);
        // Contiguity.
        let mut pos = 1000;
        for c in &chunks {
            assert_eq!(c.file_offset, pos);
            pos += c.len;
        }
        // First chunk is a partial stripe.
        assert_eq!(chunks[0].len, 24);
        assert_eq!(chunks[0].stripe_offset, 1000);
    }

    #[test]
    fn round_robin_rotates_by_file() {
        let l = Layout::new(1024, Placement::RoundRobin, 4);
        assert_eq!(l.server_of(0, 0), 0);
        assert_eq!(l.server_of(0, 1), 1);
        assert_eq!(l.server_of(1, 0), 1);
        assert_eq!(l.server_of(5, 3), 0);
    }

    #[test]
    fn raid_groups_stay_in_group() {
        let l = Layout::new(1024, Placement::RaidGroups { group_size: 3 }, 9);
        for file in 0..20u64 {
            let first = l.server_of(file, 0);
            let group = first / 3;
            for stripe in 0..30 {
                let s = l.server_of(file, stripe);
                assert_eq!(s / 3, group, "file {file} stripe {stripe} left its group");
            }
        }
    }

    #[test]
    fn hash_placement_is_deterministic_and_spread() {
        let l = Layout::new(1024, Placement::Hash, 16);
        let mut counts = [0u32; 16];
        for stripe in 0..16_000 {
            let a = l.server_of(7, stripe);
            let b = l.server_of(7, stripe);
            assert_eq!(a, b);
            counts[a] += 1;
        }
        // Each server should get roughly 1000 stripes.
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "server {i} got {c}");
        }
    }

    #[test]
    fn stripes_touched_counts_boundaries() {
        let l = Layout::new(100, Placement::RoundRobin, 2);
        assert_eq!(l.stripes_touched(0, 100), 1);
        assert_eq!(l.stripes_touched(0, 101), 2);
        assert_eq!(l.stripes_touched(99, 2), 2);
        assert_eq!(l.stripes_touched(50, 0), 0);
    }

    #[test]
    fn zero_length_request_has_no_chunks() {
        let l = Layout::new(1024, Placement::Hash, 4);
        assert!(l.chunks(1, 500, 0).is_empty());
    }
}
