//! Distributed lock manager for shared-file writes.
//!
//! Production parallel file systems keep concurrent writers coherent
//! with distributed range locks (Lustre's LDLM, GPFS's token manager).
//! Locks are granted at coarse granularity — whole stripe/block units —
//! so *false sharing* arises the moment two ranks write different bytes
//! of the same unit: every alternation pays a revoke/grant round trip
//! and the writes serialize through the lock.
//!
//! This is the first of the two mechanisms (with disk seeks) behind the
//! report's observation that N-to-1 small strided checkpoints "can be
//! totally non-scalable on many of SciDAC's deployed parallel file
//! systems" — and the mechanism PLFS removes by giving every process
//! its own log file.

use crate::layout::FileId;
use simkit::{SimDuration, SimTime};
use std::collections::HashMap;

/// Client identifier within a simulation.
pub type ClientId = usize;

/// Locking discipline of the simulated file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// No client-side write locks (PanFS concurrent-write mode /
    /// object-storage semantics). Overlap coherence is the servers'
    /// problem; no revocation traffic.
    None,
    /// Coherent range locks at `granularity`-byte units. Transferring a
    /// unit between clients costs `revoke_cost`.
    RangeLocks { granularity: u64, revoke_cost: SimDuration },
}

#[derive(Debug, Clone, Copy, Default)]
pub struct LockStats {
    pub acquisitions: u64,
    /// Acquisitions that had to revoke another client's lock.
    pub revocations: u64,
    /// Total time requests spent waiting on lock transfers.
    pub wait_time: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct Unit {
    owner: ClientId,
    /// The lock is transferable once the owning write completes.
    held_until: SimTime,
}

/// Tracks lock-unit ownership across all shared files.
#[derive(Debug)]
pub struct LockManager {
    mode: LockMode,
    units: HashMap<(FileId, u64), Unit>,
    stats: LockStats,
}

impl LockManager {
    pub fn new(mode: LockMode) -> Self {
        LockManager { mode, units: HashMap::new(), stats: LockStats::default() }
    }

    pub fn mode(&self) -> LockMode {
        self.mode
    }

    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Acquire every lock unit covering `[offset, offset+len)` of
    /// `file` for `client`, starting no earlier than `ready`.
    ///
    /// Returns the instant the writes may begin plus how many units had
    /// to be revoked from other clients (each revocation forces the
    /// previous holder's dirty data under the lock to storage — the
    /// caller charges that flush). The caller must then call
    /// [`release`](Self::release) with the completion time so the units
    /// become transferable.
    pub fn acquire(
        &mut self,
        client: ClientId,
        file: FileId,
        offset: u64,
        len: u64,
        ready: SimTime,
    ) -> (SimTime, u64) {
        let (granularity, revoke_cost) = match self.mode {
            LockMode::None => return (ready, 0),
            LockMode::RangeLocks { granularity, revoke_cost } => (granularity, revoke_cost),
        };
        if len == 0 {
            return (ready, 0);
        }
        let first = offset / granularity;
        let last = (offset + len - 1) / granularity;
        let mut start = ready;
        let mut revoked = 0u64;
        for unit_idx in first..=last {
            self.stats.acquisitions += 1;
            match self.units.get(&(file, unit_idx)) {
                Some(u) if u.owner != client => {
                    // Revoke: wait until the holder's write completes,
                    // then pay the transfer round trip.
                    self.stats.revocations += 1;
                    revoked += 1;
                    let granted = u.held_until.max_of(start) + revoke_cost;
                    self.stats.wait_time += granted.since(start);
                    start = granted;
                }
                _ => {
                    // Unowned, or already ours: free.
                }
            }
        }
        // Record ownership now; `held_until` is fixed in `release`.
        for unit_idx in first..=last {
            self.units.insert((file, unit_idx), Unit { owner: client, held_until: SimTime::NEVER });
        }
        (start, revoked)
    }

    /// Mark the units covering the range transferable at `done`.
    pub fn release(
        &mut self,
        client: ClientId,
        file: FileId,
        offset: u64,
        len: u64,
        done: SimTime,
    ) {
        let granularity = match self.mode {
            LockMode::None => return,
            LockMode::RangeLocks { granularity, .. } => granularity,
        };
        if len == 0 {
            return;
        }
        let first = offset / granularity;
        let last = (offset + len - 1) / granularity;
        for unit_idx in first..=last {
            if let Some(u) = self.units.get_mut(&(file, unit_idx)) {
                if u.owner == client {
                    u.held_until = done;
                }
            }
        }
    }

    /// Drop all state for a file (delete/close-unlink).
    pub fn forget_file(&mut self, file: FileId) {
        self.units.retain(|(f, _), _| *f != file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> LockManager {
        LockManager::new(LockMode::RangeLocks {
            granularity: 1024,
            revoke_cost: SimDuration::from_millis(1),
        })
    }

    #[test]
    fn uncontended_acquire_is_free() {
        let mut m = mgr();
        let (t, _) = m.acquire(0, 1, 0, 512, SimTime(100));
        assert_eq!(t, SimTime(100));
        assert_eq!(m.stats().revocations, 0);
    }

    #[test]
    fn reacquire_by_owner_is_free() {
        let mut m = mgr();
        let (t0, _) = m.acquire(0, 1, 0, 512, SimTime(0));
        m.release(0, 1, 0, 512, t0 + SimDuration(10));
        let (t1, _) = m.acquire(0, 1, 100, 200, SimTime(50));
        assert_eq!(t1, SimTime(50));
        assert_eq!(m.stats().revocations, 0);
    }

    #[test]
    fn false_sharing_pays_revocation() {
        let mut m = mgr();
        // Client 0 writes bytes [0,100); client 1 writes [100,200) —
        // different bytes, same 1 KiB lock unit.
        let (s0, _) = m.acquire(0, 1, 0, 100, SimTime(0));
        m.release(0, 1, 0, 100, s0 + SimDuration(500));
        let (s1, r1) = m.acquire(1, 1, 100, 100, SimTime(0));
        // Must wait for client 0's write plus the 1 ms revoke.
        assert_eq!(s1, SimTime(500 + 1_000_000));
        assert_eq!(r1, 1);
        assert_eq!(m.stats().revocations, 1);
        assert!(m.stats().wait_time > SimDuration::ZERO);
    }

    #[test]
    fn disjoint_units_do_not_conflict() {
        let mut m = mgr();
        let (s0, _) = m.acquire(0, 1, 0, 1024, SimTime(0));
        m.release(0, 1, 0, 1024, s0 + SimDuration(500));
        let (s1, _) = m.acquire(1, 1, 1024, 1024, SimTime(0));
        assert_eq!(s1, SimTime(0));
        assert_eq!(m.stats().revocations, 0);
    }

    #[test]
    fn separate_files_never_conflict() {
        let mut m = mgr();
        let (s0, _) = m.acquire(0, 1, 0, 100, SimTime(0));
        m.release(0, 1, 0, 100, s0 + SimDuration(500));
        let (s1, _) = m.acquire(1, 2, 0, 100, SimTime(0));
        assert_eq!(s1, SimTime(0));
    }

    #[test]
    fn none_mode_is_always_free() {
        let mut m = LockManager::new(LockMode::None);
        let (s, _) = m.acquire(0, 1, 0, 4096, SimTime(7));
        assert_eq!(s, SimTime(7));
        let (s, _) = m.acquire(1, 1, 0, 4096, SimTime(8));
        assert_eq!(s, SimTime(8));
        assert_eq!(m.stats().acquisitions, 0);
    }

    #[test]
    fn unreleased_lock_blocks_forever_until_released() {
        let mut m = mgr();
        m.acquire(0, 1, 0, 100, SimTime(0));
        // Holder never released: held_until is NEVER, so a competing
        // acquire is pushed effectively to infinity. Release fixes it.
        m.release(0, 1, 0, 100, SimTime(42));
        let (s1, _) = m.acquire(1, 1, 0, 100, SimTime(0));
        assert_eq!(s1, SimTime(42) + SimDuration::from_millis(1));
    }

    #[test]
    fn forget_file_clears_ownership() {
        let mut m = mgr();
        m.acquire(0, 1, 0, 100, SimTime(0));
        m.forget_file(1);
        let (s1, _) = m.acquire(1, 1, 0, 100, SimTime(0));
        assert_eq!(s1, SimTime(0));
    }
}
