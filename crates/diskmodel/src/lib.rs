//! # diskmodel — storage device service-time models
//!
//! The PDSI report's performance arguments all bottom out in device
//! mechanics: mechanical disks stream large sequential transfers well but
//! collapse under small random access (~100 IOPS), while NAND flash reads
//! randomly at phenomenal rates yet degrades under sustained random
//! writes once its pre-erased page pool is exhausted (report §4.2.6,
//! Figs. 11 & 14, Table 1).
//!
//! This crate provides:
//! - [`hdd`]: a mechanical disk model — seek curve, rotational latency,
//!   zoned transfer rates, sequential-stream detection;
//! - [`flash`]: a page-mapped FTL — erase blocks, pre-erased pool,
//!   greedy garbage collection, wear accounting;
//! - [`profiles`]: the five flash devices of Table 1 plus reference
//!   disks, parameterized from the published numbers;
//! - [`device`]: the [`BlockDevice`](device::BlockDevice) trait the
//!   parallel-FS simulator consumes.

pub mod device;
pub mod flash;
pub mod hdd;
pub mod profiles;

pub use device::{BlockDevice, DevOp, DeviceStats, IoKind, ServiceSplit};
pub use flash::{FlashDevice, FtlConfig};
pub use hdd::{DiskDevice, DiskParams};
