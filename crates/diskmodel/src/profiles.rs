//! Device profile library.
//!
//! The five flash devices of report **Table 1** ("Performance
//! Characteristics of the Flash Devices", §5.2.2), parameterized from
//! the published peak bandwidths and 4 KiB IOPS, plus the reference
//! spinning disks the report compares against ("a regular SATA hard
//! drive today can support approximately 80 MB/s or 90 IOPs").
//!
//! Capacities are scaled down by default so simulations that must
//! overwrite the whole device several times (Fig. 14) stay fast; the
//! FTL behaviour depends on the *ratio* of spare to logical capacity,
//! not its absolute size.

use crate::flash::{FlashDevice, FtlConfig};
use crate::hdd::{DiskDevice, DiskParams};
use simkit::units::GIB;

/// A row of Table 1: published headline numbers for one flash device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashHeadline {
    pub name: &'static str,
    pub connection: &'static str,
    pub read_mb_s: f64,
    pub write_mb_s: f64,
    pub read_kiops: f64,
    pub write_kiops: f64,
    /// Estimated spare-capacity fraction (not published; chosen so the
    /// Fig. 14 degradation ordering reproduces: consumer SATA parts
    /// carry little spare flash, enterprise PCIe parts carry a lot).
    pub over_provision: f64,
}

/// Table 1, verbatim headline numbers.
pub const TABLE1: [FlashHeadline; 5] = [
    FlashHeadline {
        name: "Intel X25-M",
        connection: "SATA",
        read_mb_s: 200.0,
        write_mb_s: 100.0,
        read_kiops: 19.1,
        write_kiops: 1.49,
        over_provision: 0.08,
    },
    FlashHeadline {
        name: "OCZ Colossus",
        connection: "SATA",
        read_mb_s: 200.0,
        write_mb_s: 200.0,
        read_kiops: 5.21,
        write_kiops: 1.85,
        over_provision: 0.07,
    },
    FlashHeadline {
        name: "FusionIO ioDrive Duo",
        connection: "PCIe-4x",
        read_mb_s: 800.0,
        write_mb_s: 690.0,
        read_kiops: 107.0,
        write_kiops: 111.0,
        over_provision: 0.35,
    },
    FlashHeadline {
        name: "TMS RamSan20",
        connection: "PCIe-4x",
        read_mb_s: 700.0,
        write_mb_s: 675.0,
        read_kiops: 143.0,
        write_kiops: 156.0,
        over_provision: 0.40,
    },
    FlashHeadline {
        name: "Virident tachION",
        connection: "PCIe-8x",
        read_mb_s: 1200.0,
        write_mb_s: 1200.0,
        read_kiops: 156.0,
        write_kiops: 118.0,
        over_provision: 0.45,
    },
];

impl FlashHeadline {
    /// Instantiate a simulated device with the given logical capacity.
    pub fn device(&self, capacity: u64) -> FlashDevice {
        FlashDevice::new(FtlConfig::from_headline(
            self.name,
            capacity,
            self.read_mb_s,
            self.write_mb_s,
            self.read_kiops,
            self.write_kiops,
            self.over_provision,
        ))
    }
}

/// Reference spinning disk: nearline 7200 rpm SATA (≈80–90 MB/s,
/// ≈90 IOPS).
pub fn reference_sata(capacity_gib: u64) -> DiskDevice {
    DiskDevice::new(DiskParams::nearline_sata(capacity_gib * GIB))
}

/// Enterprise 15k SAS disk as deployed behind checkpoint-tier object
/// servers.
pub fn reference_sas(capacity_gib: u64) -> DiskDevice {
    DiskDevice::new(DiskParams::sas_15k(capacity_gib * GIB))
}

/// Look a Table 1 device up by (case-insensitive) substring.
pub fn flash_by_name(name: &str) -> Option<&'static FlashHeadline> {
    let needle = name.to_ascii_lowercase();
    TABLE1.iter().find(|h| h.name.to_ascii_lowercase().contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BlockDevice, DevOp};
    use simkit::units::MIB;

    #[test]
    fn table1_has_all_five_devices() {
        assert_eq!(TABLE1.len(), 5);
        assert!(flash_by_name("x25").is_some());
        assert!(flash_by_name("fusionio").is_some());
        assert!(flash_by_name("tachion").is_some());
        assert!(flash_by_name("nonexistent").is_none());
    }

    #[test]
    fn each_device_meets_its_headline_read_iops() {
        for h in &TABLE1 {
            let mut d = h.device(64 * MIB);
            let mut total = simkit::SimDuration::ZERO;
            let n = 500u64;
            for i in 0..n {
                let page = (i * 7919) % (64 * MIB / 4096);
                total += d.service(DevOp::read(page * 4096, 4096));
            }
            let kiops = n as f64 / total.as_secs_f64() / 1e3;
            assert!(
                (kiops - h.read_kiops).abs() / h.read_kiops < 0.05,
                "{}: read kIOPS {kiops} vs headline {}",
                h.name,
                h.read_kiops
            );
        }
    }

    #[test]
    fn pcie_devices_outrun_sata_devices() {
        let sata = flash_by_name("x25").unwrap();
        let pcie = flash_by_name("virident").unwrap();
        assert!(pcie.read_mb_s > 5.0 * sata.read_mb_s);
        assert!(pcie.write_kiops > 50.0 * sata.write_kiops);
    }

    #[test]
    fn reference_disk_is_two_orders_below_flash_on_iops() {
        // Report: disks are "closer to 100 IOPS" while flash random
        // reads are phenomenally higher.
        let mut disk = reference_sata(100);
        let cap = disk.capacity();
        let mut total = simkit::SimDuration::ZERO;
        let n = 200u64;
        let mut pos = 0;
        for _ in 0..n {
            pos = (pos + cap / 7 + 13 * MIB) % (cap - 4096);
            total += disk.service(DevOp::read(pos, 4096));
        }
        let disk_iops = n as f64 / total.as_secs_f64();
        let flash_iops = TABLE1[0].read_kiops * 1e3;
        assert!(flash_iops / disk_iops > 100.0);
    }
}
