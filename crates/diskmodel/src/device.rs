//! The block-device abstraction consumed by higher-level simulators.

use simkit::SimDuration;

/// Direction of a device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    Read,
    Write,
}

/// One device-level request: a contiguous extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevOp {
    pub kind: IoKind,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes. Zero-length ops are legal no-ops.
    pub len: u64,
}

impl DevOp {
    pub fn read(offset: u64, len: u64) -> Self {
        DevOp { kind: IoKind::Read, offset, len }
    }

    pub fn write(offset: u64, len: u64) -> Self {
        DevOp { kind: IoKind::Write, offset, len }
    }

    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Cumulative counters maintained by every device model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Total busy time charged.
    pub busy: SimDuration,
    /// Requests that continued a sequential stream (no positioning cost).
    pub sequential_hits: u64,
    /// Busy time spent seeking (arm movement). Zero on flash.
    pub seek_time: SimDuration,
    /// Busy time spent in rotational latency. Zero on flash.
    pub rotate_time: SimDuration,
    /// Busy time that is not positioning: media transfer plus per-request
    /// controller overhead (on flash this also covers FTL/GC work), so
    /// `busy == seek_time + rotate_time + transfer_time` always holds.
    pub transfer_time: SimDuration,
}

impl DeviceStats {
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean service time per op, seconds.
    pub fn mean_service_secs(&self) -> f64 {
        if self.ops() == 0 {
            0.0
        } else {
            self.busy.as_secs_f64() / self.ops() as f64
        }
    }

    /// Achieved IOPS while busy.
    pub fn busy_iops(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.ops() as f64 / s
        }
    }

    /// Achieved bandwidth while busy (bytes/sec).
    pub fn busy_bandwidth(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            (self.bytes_read + self.bytes_written) as f64 / s
        }
    }

    /// Fraction of busy time spent positioning (seek + rotate) rather
    /// than transferring — the quantity the PDSI report calls the small-IO
    /// tax.
    pub fn positioning_fraction(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            (self.seek_time + self.rotate_time).as_secs_f64() / s
        }
    }

    /// Positioning split accumulated since an earlier snapshot —
    /// differencing cumulative counters around one `service()` call
    /// yields that single request's seek/rotate/transfer breakdown
    /// (the leaf spans of a causal trace).
    pub fn split_since(&self, before: &DeviceStats) -> ServiceSplit {
        ServiceSplit {
            seek: self.seek_time.saturating_sub(before.seek_time),
            rotate: self.rotate_time.saturating_sub(before.rotate_time),
            transfer: self.transfer_time.saturating_sub(before.transfer_time),
        }
    }
}

/// One request's service-time breakdown (see [`DeviceStats::split_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceSplit {
    pub seek: SimDuration,
    pub rotate: SimDuration,
    pub transfer: SimDuration,
}

impl ServiceSplit {
    pub fn total(&self) -> SimDuration {
        self.seek + self.rotate + self.transfer
    }

    /// The same proportions rescaled so the parts sum to `target` —
    /// used when a layer above inflates the raw device service time
    /// (e.g. a RAID read-modify-write multiplier) and the leaf spans
    /// must still tile the charged interval exactly.
    pub fn scaled_to(&self, target: SimDuration) -> ServiceSplit {
        let total = self.total().0;
        if total == 0 {
            return ServiceSplit { transfer: target, ..Default::default() };
        }
        let scale = |part: SimDuration| {
            SimDuration((part.0 as u128 * target.0 as u128 / total as u128) as u64)
        };
        let seek = scale(self.seek);
        let rotate = scale(self.rotate);
        ServiceSplit { seek, rotate, transfer: target.saturating_sub(seek + rotate) }
    }
}

/// A storage device that turns a request into a service time.
///
/// Models are stateful: service time depends on head position, FTL pool
/// state, etc., so requests must be submitted in the order the simulated
/// server would issue them.
pub trait BlockDevice {
    /// Charge one request and return its service time.
    fn service(&mut self, op: DevOp) -> SimDuration;

    /// Addressable capacity in bytes.
    fn capacity(&self) -> u64;

    /// Cumulative counters.
    fn stats(&self) -> DeviceStats;

    /// Zero the counters (device state such as head position and FTL
    /// mapping is preserved).
    fn reset_stats(&mut self);

    /// Short human-readable model name.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devop_constructors() {
        let r = DevOp::read(100, 50);
        assert_eq!(r.kind, IoKind::Read);
        assert_eq!(r.end(), 150);
        let w = DevOp::write(0, 10);
        assert_eq!(w.kind, IoKind::Write);
    }

    #[test]
    fn stats_derived_rates() {
        let s = DeviceStats {
            reads: 10,
            writes: 10,
            bytes_read: 1_000_000,
            bytes_written: 1_000_000,
            busy: SimDuration::from_secs(2),
            sequential_hits: 5,
            seek_time: SimDuration::from_secs(1),
            rotate_time: SimDuration::from_millis(500),
            transfer_time: SimDuration::from_millis(500),
        };
        assert_eq!(s.ops(), 20);
        assert!((s.busy_iops() - 10.0).abs() < 1e-9);
        assert!((s.busy_bandwidth() - 1_000_000.0).abs() < 1e-6);
        assert!((s.mean_service_secs() - 0.1).abs() < 1e-12);
        assert!((s.positioning_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn split_since_diffs_one_request() {
        let before = DeviceStats {
            seek_time: SimDuration::from_millis(4),
            rotate_time: SimDuration::from_millis(2),
            transfer_time: SimDuration::from_millis(10),
            ..Default::default()
        };
        let after = DeviceStats {
            seek_time: SimDuration::from_millis(9),
            rotate_time: SimDuration::from_millis(4),
            transfer_time: SimDuration::from_millis(13),
            ..Default::default()
        };
        let split = after.split_since(&before);
        assert_eq!(split.seek, SimDuration::from_millis(5));
        assert_eq!(split.rotate, SimDuration::from_millis(2));
        assert_eq!(split.transfer, SimDuration::from_millis(3));
        assert_eq!(split.total(), SimDuration::from_millis(10));
    }

    #[test]
    fn scaled_split_tiles_the_target_exactly() {
        let split = ServiceSplit {
            seek: SimDuration::from_millis(6),
            rotate: SimDuration::from_millis(2),
            transfer: SimDuration::from_millis(4),
        };
        let scaled = split.scaled_to(SimDuration::from_millis(30));
        assert_eq!(scaled.total(), SimDuration::from_millis(30), "parts must tile the target");
        assert_eq!(scaled.seek, SimDuration::from_millis(15));
        assert_eq!(scaled.rotate, SimDuration::from_millis(5));
        assert_eq!(scaled.transfer, SimDuration::from_millis(10));
        // Degenerate input: everything becomes transfer.
        let empty = ServiceSplit::default().scaled_to(SimDuration::from_millis(7));
        assert_eq!(empty.transfer, SimDuration::from_millis(7));
        assert_eq!(empty.total(), SimDuration::from_millis(7));
    }
}
