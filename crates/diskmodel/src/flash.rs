//! NAND flash device with a page-mapped flash translation layer.
//!
//! Reproduces the flash behaviour the report characterizes (§4.2.6,
//! §5.2.2, Figs. 11 & 14):
//! 1. random reads are phenomenally faster than disk;
//! 2. random writes are slower than random reads;
//! 3. sustained random writing is only fast while the pre-erased page
//!    pool lasts — once depleted, foreground garbage collection exposes
//!    the true cost and throughput drops by up to ~10×;
//! 4. how hard the cliff hits depends on the device's over-provisioned
//!    spare capacity and its cleaning policy.
//!
//! The FTL here is a real page-granularity simulator: a logical→physical
//! map, erase blocks with valid-page counts, a free-block pool, and
//! greedy cost-benefit victim selection. Write amplification is an
//! *output* of the simulation, not a parameter.

use crate::device::{BlockDevice, DevOp, DeviceStats, IoKind};
use simkit::SimDuration;

const UNMAPPED: u32 = u32::MAX;

/// Static configuration of a flash device.
#[derive(Debug, Clone)]
pub struct FtlConfig {
    pub name: String,
    /// Logical (host-visible) capacity in bytes.
    pub capacity: u64,
    /// FTL page size (typically 4 KiB).
    pub page_size: u64,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Physical spare fraction beyond logical capacity (0.07 = 7%).
    pub over_provision: f64,
    /// Service time of one random page read.
    pub read_page: SimDuration,
    /// Service time of one page program (pool available).
    pub program_page: SimDuration,
    /// Erase time of one block.
    pub erase_block: SimDuration,
    /// Interface bandwidth cap for large reads, bytes/sec.
    pub read_bw: f64,
    /// Interface bandwidth cap for large writes, bytes/sec.
    pub write_bw: f64,
    /// GC kicks in when the free pool drops to this many blocks.
    pub gc_low_water: u32,
    /// Independent flash channels: background GC work (relocations,
    /// erases) proceeds in parallel with host traffic on other
    /// channels, so only 1/channels of it lands in the foreground.
    pub channels: u32,
}

impl FtlConfig {
    /// Derive per-page timings from headline device numbers
    /// (peak bandwidth in MB/s and 4 KiB IOPS in thousands), the form
    /// Table 1 quotes.
    #[allow(clippy::too_many_arguments)]
    pub fn from_headline(
        name: &str,
        capacity: u64,
        read_mb_s: f64,
        write_mb_s: f64,
        read_kiops: f64,
        write_kiops: f64,
        over_provision: f64,
    ) -> Self {
        FtlConfig {
            name: name.into(),
            capacity,
            page_size: 4096,
            pages_per_block: 64,
            over_provision,
            read_page: SimDuration::from_secs_f64(1.0 / (read_kiops * 1e3)),
            program_page: SimDuration::from_secs_f64(1.0 / (write_kiops * 1e3)),
            erase_block: SimDuration::from_millis(2),
            read_bw: read_mb_s * 1e6,
            write_bw: write_mb_s * 1e6,
            gc_low_water: 4,
            // High-kIOPS devices get there with many channels; derive a
            // rough channel count from the write rate.
            channels: (write_kiops / 5.0).clamp(1.0, 16.0) as u32,
        }
    }

    fn logical_pages(&self) -> u32 {
        (self.capacity / self.page_size) as u32
    }

    fn physical_blocks(&self) -> u32 {
        let phys_pages = (self.logical_pages() as f64 * (1.0 + self.over_provision)).ceil() as u32;
        phys_pages.div_ceil(self.pages_per_block).max(self.gc_low_water + 2)
    }
}

/// Per-erase-block bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Block {
    valid: u32,
    /// Next unwritten page index within the block; == pages_per_block
    /// means the block is fully programmed.
    cursor: u32,
    erases: u32,
}

/// Cumulative FTL internals (beyond the generic [`DeviceStats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FtlStats {
    pub host_pages_written: u64,
    pub gc_pages_moved: u64,
    pub erases: u64,
    pub foreground_gcs: u64,
}

impl FtlStats {
    /// Write amplification factor observed so far.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            1.0
        } else {
            (self.host_pages_written + self.gc_pages_moved) as f64 / self.host_pages_written as f64
        }
    }
}

/// A flash device: config + FTL state.
pub struct FlashDevice {
    cfg: FtlConfig,
    /// lpn -> ppn map.
    map: Vec<u32>,
    /// ppn -> lpn reverse map (UNMAPPED = invalid/free page).
    rmap: Vec<u32>,
    blocks: Vec<Block>,
    free_blocks: Vec<u32>,
    /// Block receiving host writes.
    active: u32,
    /// Block receiving GC relocations (kept separate from the host
    /// stream, as real FTLs do, so cleaning is self-sustaining).
    gc_active: Option<u32>,
    stats: DeviceStats,
    ftl: FtlStats,
}

impl FlashDevice {
    pub fn new(cfg: FtlConfig) -> Self {
        let lpages = cfg.logical_pages() as usize;
        let nblocks = cfg.physical_blocks();
        let ppages = nblocks as usize * cfg.pages_per_block as usize;
        let blocks = vec![Block { valid: 0, cursor: 0, erases: 0 }; nblocks as usize];
        // All blocks start erased; block 0 is the active write block.
        let free_blocks = (1..nblocks).rev().collect();
        FlashDevice {
            cfg,
            map: vec![UNMAPPED; lpages],
            rmap: vec![UNMAPPED; ppages],
            blocks,
            free_blocks,
            active: 0,
            gc_active: None,
            stats: DeviceStats::default(),
            ftl: FtlStats::default(),
        }
    }

    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl
    }

    /// Blocks currently in the pre-erased pool (excluding the active
    /// write block).
    pub fn free_pool_blocks(&self) -> usize {
        self.free_blocks.len()
    }

    /// Maximum erase count over all blocks (wear hot spot).
    pub fn max_wear(&self) -> u32 {
        self.blocks.iter().map(|b| b.erases).max().unwrap_or(0)
    }

    /// Mean erase count (wear level).
    pub fn mean_wear(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(|b| b.erases as f64).sum::<f64>() / self.blocks.len() as f64
    }

    /// Validate FTL structural invariants (tests/property checks):
    /// map/rmap are mutually consistent, per-block valid counts match,
    /// free-pool blocks are erased, and no block is in the pool twice.
    pub fn check_invariants(&self) {
        let ppb = self.cfg.pages_per_block;
        for (lpn, &ppn) in self.map.iter().enumerate() {
            if ppn != UNMAPPED {
                assert_eq!(self.rmap[ppn as usize], lpn as u32, "map/rmap disagree at lpn {lpn}");
            }
        }
        for (ppn, &lpn) in self.rmap.iter().enumerate() {
            if lpn != UNMAPPED {
                assert_eq!(self.map[lpn as usize], ppn as u32);
            }
        }
        for (b, blk) in self.blocks.iter().enumerate() {
            let valid = (0..ppb)
                .filter(|&p| self.rmap[(b as u32 * ppb + p) as usize] != UNMAPPED)
                .count() as u32;
            assert_eq!(blk.valid, valid, "block {b} valid count drifted");
            assert!(blk.cursor <= ppb);
        }
        let mut seen = std::collections::HashSet::new();
        for &f in &self.free_blocks {
            assert!(seen.insert(f), "block {f} in pool twice");
            assert_eq!(self.blocks[f as usize].cursor, 0, "pool block {f} not erased");
            assert_eq!(self.blocks[f as usize].valid, 0);
            assert_ne!(f, self.active, "active block in the pool");
        }
    }

    fn ppn(&self, block: u32, page: u32) -> u32 {
        block * self.cfg.pages_per_block + page
    }

    fn invalidate(&mut self, lpn: u32) {
        let old = self.map[lpn as usize];
        if old != UNMAPPED {
            self.rmap[old as usize] = UNMAPPED;
            let b = old / self.cfg.pages_per_block;
            self.blocks[b as usize].valid -= 1;
        }
    }

    /// Program `lpn` into the next free page of block `blk_id`,
    /// assuming space is available there.
    fn program_into(&mut self, blk_id: u32, lpn: u32) {
        let blk = &mut self.blocks[blk_id as usize];
        debug_assert!(blk.cursor < self.cfg.pages_per_block, "target block full");
        let page = blk.cursor;
        blk.cursor += 1;
        blk.valid += 1;
        let ppn = self.ppn(blk_id, page);
        self.map[lpn as usize] = ppn;
        self.rmap[ppn as usize] = lpn;
    }

    /// Ensure the host active block has a free page; rotate to a free
    /// block and garbage-collect if the pool is low. Returns the time
    /// charged to the caller for any foreground work.
    fn make_room(&mut self) -> SimDuration {
        let mut t = SimDuration::ZERO;
        if self.blocks[self.active as usize].cursor < self.cfg.pages_per_block {
            return t;
        }
        // Active block is full: refill the pool if it is low, then take
        // a block. Each collect_one() nets at least one block back into
        // the pool (GC relocations have their own write stream), so this
        // loop ticks forward every iteration.
        while self.free_blocks.len() <= self.cfg.gc_low_water as usize {
            t += self.collect_one();
        }
        self.active = self.free_blocks.pop().expect("pool non-empty after GC");
        t
    }

    /// Garbage-collect one victim block. The victim is erased *first*
    /// (its valid pages staged aside), so GC never depletes the free
    /// pool: relocations flow into a dedicated `gc_active` block that
    /// rotates through blocks GC itself freed. Returns the foreground
    /// time cost; net pool effect is >= 0 blocks and exactly
    /// `pages_per_block - moved` reclaimed page slots.
    fn collect_one(&mut self) -> SimDuration {
        self.ftl.foreground_gcs += 1;
        let ppb = self.cfg.pages_per_block;
        // Greedy: fully-programmed block with fewest valid pages.
        // (Erased pool blocks have cursor == 0; the partially-filled
        // gc_active is excluded by the same cursor test until full.)
        let victim = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| *i as u32 != self.active && b.cursor == ppb)
            .min_by_key(|(_, b)| b.valid)
            .map(|(i, _)| i as u32)
            .expect("no GC victim available");
        if self.gc_active == Some(victim) {
            // gc_active just filled and became the least-valid candidate;
            // it must stop being the relocation target.
            self.gc_active = None;
        }
        // Stage the victim's valid pages and erase it.
        let mut staged = Vec::new();
        for page in 0..ppb {
            let ppn = self.ppn(victim, page);
            let lpn = self.rmap[ppn as usize];
            if lpn != UNMAPPED {
                self.rmap[ppn as usize] = UNMAPPED;
                staged.push(lpn);
            }
        }
        let vb = &mut self.blocks[victim as usize];
        vb.valid = 0;
        vb.cursor = 0;
        vb.erases += 1;
        self.ftl.erases += 1;
        self.free_blocks.push(victim);
        // Relocate into the GC write stream.
        let moved = staged.len() as u64;
        for lpn in staged {
            let target = match self.gc_active {
                Some(b) if self.blocks[b as usize].cursor < ppb => b,
                _ => {
                    let b = self.free_blocks.pop().expect("pool empty during GC relocation");
                    self.gc_active = Some(b);
                    b
                }
            };
            self.program_into(target, lpn);
        }
        self.ftl.gc_pages_moved += moved;
        let gc_cost = self.cfg.erase_block + (self.cfg.read_page + self.cfg.program_page) * moved;
        gc_cost / self.cfg.channels.max(1) as u64
    }

    /// Write one logical page, charging programming plus any foreground
    /// GC cost.
    fn write_page(&mut self, lpn: u32) -> SimDuration {
        let mut t = self.make_room();
        self.invalidate(lpn);
        let active = self.active;
        self.program_into(active, lpn);
        self.ftl.host_pages_written += 1;
        t += self.cfg.program_page;
        t
    }

    fn page_range(&self, op: &DevOp) -> (u32, u32) {
        let first = (op.offset / self.cfg.page_size) as u32;
        let last = ((op.end().saturating_sub(1)) / self.cfg.page_size) as u32;
        (first, last)
    }
}

impl BlockDevice for FlashDevice {
    fn service(&mut self, op: DevOp) -> SimDuration {
        debug_assert!(op.end() <= self.cfg.capacity, "op beyond device capacity");
        if op.len == 0 {
            return SimDuration::ZERO;
        }
        let (first, last) = self.page_range(&op);
        let npages = (last - first + 1) as u64;
        let t = match op.kind {
            IoKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += op.len;
                // Per-page latency for small reads; interface bandwidth
                // bounds large transfers (internal channel parallelism).
                let latency = self.cfg.read_page;
                let streaming = SimDuration::for_bytes(op.len, self.cfg.read_bw);
                if npages <= 1 {
                    latency
                } else {
                    latency + streaming
                }
            }
            IoKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += op.len;
                let mut t = SimDuration::ZERO;
                for lpn in first..=last {
                    t += self.write_page(lpn);
                }
                // Multi-page writes stream across channels: charge the
                // larger of FTL cost scaled down by parallelism and the
                // interface-bandwidth time.
                if npages > 1 {
                    let streaming = SimDuration::for_bytes(op.len, self.cfg.write_bw);
                    let per_page_serial = t;
                    // channel parallelism hides per-page program latency
                    // down to the interface rate, but cannot hide GC.
                    let gc_part = per_page_serial.saturating_sub(self.cfg.program_page * npages);
                    t = streaming + gc_part;
                }
                t
            }
        };
        self.stats.busy += t;
        // Flash has no mechanical positioning: the whole service time is
        // transfer (incl. FTL/GC), keeping busy == seek + rotate + transfer.
        self.stats.transfer_time += t;
        t
    }

    fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::MIB;
    use simkit::Rng;

    fn sized_device(capacity: u64, op: f64) -> FlashDevice {
        FlashDevice::new(FtlConfig::from_headline(
            "test-flash",
            capacity,
            200.0,
            100.0,
            19.1,
            1.49,
            op,
        ))
    }

    fn small_device(op: f64) -> FlashDevice {
        // 16 MiB logical keeps tests fast while exercising the FTL.
        sized_device(16 * MIB, op)
    }

    #[test]
    fn fresh_random_write_iops_matches_headline() {
        let mut d = small_device(0.12);
        let mut rng = Rng::new(1);
        let pages = d.cfg.logical_pages() as u64;
        // Write far less than the physical capacity: no GC yet.
        let n = 1000;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            let p = rng.below(pages);
            total += d.service(DevOp::write(p * 4096, 4096));
        }
        let iops = n as f64 / total.as_secs_f64();
        assert!((iops - 1490.0).abs() / 1490.0 < 0.05, "fresh write iops {iops}");
        assert_eq!(d.ftl_stats().gc_pages_moved, 0);
    }

    #[test]
    fn random_read_iops_matches_headline() {
        let mut d = small_device(0.12);
        let mut rng = Rng::new(2);
        let pages = d.cfg.logical_pages() as u64;
        let n = 1000;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            let p = rng.below(pages);
            total += d.service(DevOp::read(p * 4096, 4096));
        }
        let iops = n as f64 / total.as_secs_f64();
        assert!((iops - 19_100.0).abs() / 19_100.0 < 0.05, "read iops {iops}");
    }

    #[test]
    fn sustained_random_writes_hit_gc_cliff() {
        let mut d = small_device(0.12);
        let mut rng = Rng::new(3);
        let pages = d.cfg.logical_pages() as u64;
        let measure = |d: &mut FlashDevice, rng: &mut Rng, n: u64| -> f64 {
            let mut t = SimDuration::ZERO;
            for _ in 0..n {
                let p = rng.below(pages);
                t += d.service(DevOp::write(p * 4096, 4096));
            }
            n as f64 / t.as_secs_f64()
        };
        let fresh = measure(&mut d, &mut rng, 2000);
        // Overwrite the device several times to exhaust the pool.
        for _ in 0..4 {
            measure(&mut d, &mut rng, pages);
        }
        let steady = measure(&mut d, &mut rng, 2000);
        assert!(
            steady < fresh / 3.0,
            "expected a GC cliff: fresh {fresh:.0} vs steady {steady:.0} IOPS"
        );
        assert!(d.ftl_stats().write_amplification() > 1.5);
    }

    #[test]
    fn more_over_provisioning_degrades_less() {
        let run = |op: f64| -> f64 {
            let mut d = small_device(op);
            let mut rng = Rng::new(4);
            let pages = d.cfg.logical_pages() as u64;
            for _ in 0..3 * pages {
                let p = rng.below(pages);
                d.service(DevOp::write(p * 4096, 4096));
            }
            d.ftl_stats().write_amplification()
        };
        let wa_small = run(0.07);
        let wa_big = run(0.45);
        assert!(wa_big < wa_small, "more spare flash should lower WA: {wa_big} !< {wa_small}");
    }

    #[test]
    fn sequential_overwrite_keeps_wa_near_one() {
        let mut d = small_device(0.12);
        let pages = d.cfg.logical_pages() as u64;
        // Three full sequential passes: victims are fully invalid when
        // collected, so almost nothing is moved.
        for _ in 0..3 {
            for p in 0..pages {
                d.service(DevOp::write(p * 4096, 4096));
            }
        }
        let wa = d.ftl_stats().write_amplification();
        assert!(wa < 1.1, "sequential WA should be ~1, got {wa}");
    }

    #[test]
    fn large_reads_run_at_interface_bandwidth() {
        let mut d = small_device(0.12);
        let t = d.service(DevOp::read(0, 8 * MIB));
        let bw = t.throughput(8 * MIB);
        assert!((bw - 200e6).abs() / 200e6 < 0.1, "large read bw {bw}");
    }

    #[test]
    fn wear_stays_roughly_level() {
        let mut d = small_device(0.25);
        let mut rng = Rng::new(5);
        let pages = d.cfg.logical_pages() as u64;
        for _ in 0..4 * pages {
            let p = rng.below(pages);
            d.service(DevOp::write(p * 4096, 4096));
        }
        let max = d.max_wear() as f64;
        let mean = d.mean_wear();
        assert!(mean > 0.0);
        assert!(max / mean < 4.0, "wear imbalance: max {max}, mean {mean}");
    }
}
