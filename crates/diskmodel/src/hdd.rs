//! Mechanical disk model.
//!
//! Service time = positioning (seek + rotational latency) + transfer,
//! with positioning waived when a request continues the previous
//! sequential stream (track-buffer read-ahead / write coalescing). The
//! seek curve is the classic square-root-of-distance model between a
//! track-to-track minimum and a full-stroke maximum; transfer rate
//! interpolates linearly between outer- and inner-zone rates by radial
//! position. These mechanics are what make N-1 strided checkpoints
//! pathological: every interleaved small write from another rank pays a
//! seek, while PLFS's per-rank logs stream at the zone rate.

use crate::device::{BlockDevice, DevOp, DeviceStats, IoKind};
use simkit::SimDuration;

/// Parameters of a mechanical disk.
#[derive(Debug, Clone)]
pub struct DiskParams {
    pub name: String,
    pub capacity: u64,
    /// Track-to-track seek (minimum positioning cost).
    pub seek_min: SimDuration,
    /// Full-stroke seek (maximum).
    pub seek_max: SimDuration,
    /// Spindle speed, rotations per minute.
    pub rpm: u32,
    /// Media rate at the outer diameter, bytes/sec.
    pub rate_outer: f64,
    /// Media rate at the inner diameter, bytes/sec.
    pub rate_inner: f64,
    /// Per-request controller/command overhead.
    pub overhead: SimDuration,
    /// Gap tolerance (bytes) under which a forward request still counts
    /// as sequential — models read-ahead and skip-sequential access.
    pub seq_gap: u64,
}

impl DiskParams {
    /// A 7200 rpm nearline SATA drive circa 2008: ~80 MB/s media rate,
    /// ~90 random IOPS — the reference point quoted in §5.2.2.
    pub fn nearline_sata(capacity: u64) -> Self {
        DiskParams {
            name: "sata-7200".into(),
            capacity,
            seek_min: SimDuration::from_micros(800),
            seek_max: SimDuration::from_millis(16),
            rpm: 7200,
            rate_outer: 90.0e6,
            rate_inner: 45.0e6,
            overhead: SimDuration::from_micros(100),
            seq_gap: 64 << 10,
        }
    }

    /// A 15k rpm enterprise SAS drive (checkpoint-tier storage).
    pub fn sas_15k(capacity: u64) -> Self {
        DiskParams {
            name: "sas-15k".into(),
            capacity,
            seek_min: SimDuration::from_micros(400),
            seek_max: SimDuration::from_millis(7),
            rpm: 15000,
            rate_outer: 120.0e6,
            rate_inner: 70.0e6,
            overhead: SimDuration::from_micros(80),
            seq_gap: 64 << 10,
        }
    }

    /// One full rotation.
    pub fn rotation(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Average rotational latency (half a rotation).
    pub fn avg_rotational_latency(&self) -> SimDuration {
        self.rotation() / 2
    }

    /// Media transfer rate at byte offset `pos` (outer tracks first).
    pub fn rate_at(&self, pos: u64) -> f64 {
        let frac = pos as f64 / self.capacity as f64;
        self.rate_outer + (self.rate_inner - self.rate_outer) * frac
    }

    /// Seek time for a head movement of `dist` bytes of address space.
    pub fn seek_time(&self, dist: u64) -> SimDuration {
        if dist == 0 {
            return SimDuration::ZERO;
        }
        let frac = (dist as f64 / self.capacity as f64).min(1.0);
        let min = self.seek_min.as_secs_f64();
        let max = self.seek_max.as_secs_f64();
        SimDuration::from_secs_f64(min + (max - min) * frac.sqrt())
    }
}

/// A mechanical disk with head-position state.
#[derive(Debug, Clone)]
pub struct DiskDevice {
    params: DiskParams,
    /// Byte address just past the last access (head position proxy).
    head: u64,
    /// Whether the previous request direction, for stream detection.
    last_kind: Option<IoKind>,
    stats: DeviceStats,
}

impl DiskDevice {
    pub fn new(params: DiskParams) -> Self {
        DiskDevice { params, head: 0, last_kind: None, stats: DeviceStats::default() }
    }

    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    fn is_sequential(&self, op: &DevOp) -> bool {
        // Same direction, starting at (or within a small forward gap of)
        // the previous end.
        self.last_kind == Some(op.kind)
            && op.offset >= self.head
            && op.offset - self.head <= self.params.seq_gap
    }
}

impl BlockDevice for DiskDevice {
    fn service(&mut self, op: DevOp) -> SimDuration {
        debug_assert!(op.end() <= self.params.capacity, "op beyond device capacity");
        let mut t = self.params.overhead;
        self.stats.transfer_time += self.params.overhead;
        let sequential = self.is_sequential(&op);
        if sequential {
            self.stats.sequential_hits += 1;
        } else {
            let dist = self.head.abs_diff(op.offset);
            let seek = self.params.seek_time(dist);
            let rotate = self.params.avg_rotational_latency();
            t += seek;
            t += rotate;
            self.stats.seek_time += seek;
            self.stats.rotate_time += rotate;
        }
        if op.len > 0 {
            let xfer = SimDuration::for_bytes(op.len, self.params.rate_at(op.offset));
            t += xfer;
            self.stats.transfer_time += xfer;
        }
        self.head = op.end();
        self.last_kind = Some(op.kind);
        match op.kind {
            IoKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += op.len;
            }
            IoKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += op.len;
            }
        }
        self.stats.busy += t;
        t
    }

    fn capacity(&self) -> u64 {
        self.params.capacity
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    fn name(&self) -> &str {
        &self.params.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::{GIB, MIB};

    fn disk() -> DiskDevice {
        DiskDevice::new(DiskParams::nearline_sata(500 * GIB))
    }

    #[test]
    fn sequential_stream_hits_media_rate() {
        let mut d = disk();
        // Stream 256 MiB in 1 MiB requests from offset 0.
        let chunk = MIB;
        let mut total = SimDuration::ZERO;
        for i in 0..256 {
            total += d.service(DevOp::write(i * chunk, chunk));
        }
        let bw = total.throughput(256 * MIB);
        // Should be close to the outer-zone rate (within overhead slop).
        assert!(bw > 0.8 * 90.0e6, "sequential bw too low: {bw}");
        assert_eq!(d.stats().sequential_hits, 255);
    }

    #[test]
    fn random_small_io_is_about_100_iops() {
        let mut d = disk();
        let cap = d.capacity();
        // 4 KiB ops scattered by a fixed large stride (deterministic
        // "random" pattern that always seeks).
        let mut pos = 0u64;
        let n = 1000;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            pos = (pos + cap / 3 + 7 * MIB) % (cap - 4096);
            total += d.service(DevOp::read(pos, 4096));
        }
        let iops = n as f64 / total.as_secs_f64();
        assert!((50.0..200.0).contains(&iops), "random IOPS {iops} outside disk ballpark");
    }

    #[test]
    fn inner_zone_slower_than_outer() {
        let mut d = disk();
        let t_outer = d.service(DevOp::read(0, 64 * MIB));
        let cap = d.capacity();
        let t_inner = d.service(DevOp::read(cap - 64 * MIB, 64 * MIB));
        assert!(t_inner > t_outer);
    }

    #[test]
    fn seek_time_monotone_in_distance() {
        let p = DiskParams::nearline_sata(500 * GIB);
        let short = p.seek_time(MIB);
        let mid = p.seek_time(100 * GIB);
        let long = p.seek_time(499 * GIB);
        assert!(short < mid && mid < long);
        assert!(long <= p.seek_max + SimDuration::from_micros(1));
    }

    #[test]
    fn direction_change_breaks_stream() {
        let mut d = disk();
        d.service(DevOp::write(0, MIB));
        // A read at the same position is not a sequential continuation.
        d.service(DevOp::read(MIB, MIB));
        assert_eq!(d.stats().sequential_hits, 0);
    }

    #[test]
    fn stats_reset_preserves_position() {
        let mut d = disk();
        d.service(DevOp::write(0, MIB));
        d.reset_stats();
        assert_eq!(d.stats().ops(), 0);
        // Still sequential after reset: head state survived.
        d.service(DevOp::write(MIB, MIB));
        assert_eq!(d.stats().sequential_hits, 1);
    }
}
