//! Seeded workload generators that emit op logs directly.
//!
//! Each [`Scenario`] is a canned builder for one of the checkpoint
//! traffic shapes the PDSI characterization work kept meeting — N-1
//! strided checkpoints, N-N per-rank files, read-heavy restarts, mixed
//! read/write phases, and metadata storms — parameterized by a
//! [`SizeDist`]/[`ArrivalDist`] pair from the shared distribution
//! module and a seed. The output is a plain [`OpLog`]: a generated
//! scenario and a captured run are the same kind of artifact, and both
//! replay through the same engine.
//!
//! Determinism contract: `generate(scenario, cfg)` is a pure function
//! of its arguments. Per-rank randomness comes from `fork`ed
//! [`simkit::Rng`] streams, write stamps are pre-assigned from
//! [`GEN_STAMP_BASE`] in final log order, and payloads are the
//! canonical [`crate::oplog::fill_payload`] bytes — so every replay of
//! a generated log, in any mode at any parallelism, produces identical
//! container contents.

use crate::oplog::{OpKind, OpLog, OpRecord, OpResult, Shape};
use crate::sample::{ArrivalDist, SizeDist};
use simkit::Rng;

/// Base for pre-assigned write stamps in generated logs: far above any
/// capture-clock stamp a real run of plausible size produces, so
/// generated and captured stamps can never collide in one container.
pub const GEN_STAMP_BASE: u64 = 1 << 55;

/// Knobs shared by every scenario builder.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    pub ranks: u32,
    /// Write records per rank (scenarios derive their read/metadata op
    /// counts from this).
    pub ops_per_rank: u32,
    pub size: SizeDist,
    pub arrival: ArrivalDist,
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            ranks: 4,
            ops_per_rank: 8,
            size: SizeDist::Uniform { min: 4096, max: 65536 },
            arrival: ArrivalDist::Poisson { mean_gap_ns: 200_000 },
            seed: 42,
        }
    }
}

/// The canned scenario shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// All ranks interleave records round-robin into one shared file —
    /// the classic strided N-1 checkpoint.
    N1Strided,
    /// Each rank streams sequentially into its own file.
    NN,
    /// A small segmented write phase, then a 3× larger shifted-and-
    /// random read phase — restart with a different decomposition.
    ReadHeavyRestart,
    /// Two write phases with a read phase between and after; the second
    /// write phase overwrites earlier ranges, exercising cross-phase
    /// overlap resolution.
    Mixed,
    /// Open/close/stat churn with tiny writes — metadata-bound traffic.
    MetadataStorm,
}

/// CLI name table.
pub const SCENARIOS: &[(&str, Scenario)] = &[
    ("n1-strided", Scenario::N1Strided),
    ("nn", Scenario::NN),
    ("read-heavy-restart", Scenario::ReadHeavyRestart),
    ("mixed", Scenario::Mixed),
    ("metadata-storm", Scenario::MetadataStorm),
];

impl Scenario {
    pub fn name(self) -> &'static str {
        SCENARIOS.iter().find(|(_, s)| *s == self).map(|(n, _)| *n).unwrap_or("?")
    }

    pub fn by_name(name: &str) -> Option<Scenario> {
        SCENARIOS.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
    }
}

/// Per-rank op accumulator: tracks one rank's arrival clock and pushes
/// records stamped with it.
struct RankStream {
    rank: u32,
    rng: Rng,
    t: u64,
    issued: u64,
    ops: Vec<OpRecord>,
}

impl RankStream {
    fn tick(&mut self, arrival: &ArrivalDist) -> u64 {
        self.t += arrival.next_gap(&mut self.rng, self.issued);
        self.issued += 1;
        self.t
    }

    fn push(&mut self, arrival: &ArrivalDist, op: OpKind, offset: u64, len: u64) {
        let t_ns = self.tick(arrival);
        self.ops.push(OpRecord {
            t_ns,
            rank: self.rank,
            op,
            offset,
            len,
            result: OpResult::Pending,
        });
    }
}

fn streams(cfg: &GenConfig, base_t: u64) -> Vec<RankStream> {
    let mut root = Rng::new(cfg.seed);
    (0..cfg.ranks)
        .map(|r| RankStream {
            rank: r,
            rng: root.fork(r as u64),
            t: base_t,
            issued: 0,
            ops: Vec::new(),
        })
        .collect()
}

/// Drain a phase's streams into `out` and return the time the next
/// phase starts at (strictly after everything in this one, so replay
/// epochs line up with the phase structure).
fn finish_phase(mut ranks: Vec<RankStream>, out: &mut Vec<OpRecord>) -> u64 {
    let end = ranks.iter().map(|s| s.t).max().unwrap_or(0) + 1;
    for s in &mut ranks {
        out.append(&mut s.ops);
    }
    end
}

/// Build the scenario's op log. Pure in `(scenario, cfg)`.
pub fn generate(scenario: Scenario, cfg: &GenConfig) -> OpLog {
    let mut log = match scenario {
        Scenario::N1Strided => gen_n1_strided(cfg),
        Scenario::NN => gen_nn(cfg),
        Scenario::ReadHeavyRestart => gen_restart(cfg),
        Scenario::Mixed => gen_mixed(cfg),
        Scenario::MetadataStorm => gen_storm(cfg),
    };
    log.ranks = cfg.ranks;
    // Global time order (stable: preserves per-rank and cross-rank
    // generation order on ties), then pre-assign write stamps by final
    // log position so every replay resolves overlaps identically.
    log.ops.sort_by_key(|o| o.t_ns);
    for (i, op) in log.ops.iter_mut().enumerate() {
        if op.op == OpKind::Write {
            op.result = OpResult::Write { stamp: GEN_STAMP_BASE + i as u64 };
        }
    }
    log
}

/// Sample every rank's record sizes up front (strided layout needs the
/// full grid before any offset is known).
fn size_grid(cfg: &GenConfig, ranks: &mut [RankStream]) -> Vec<Vec<u64>> {
    ranks
        .iter_mut()
        .map(|s| (0..cfg.ops_per_rank).map(|_| cfg.size.sample(&mut s.rng)).collect())
        .collect()
}

fn gen_n1_strided(cfg: &GenConfig) -> OpLog {
    let mut ops = Vec::new();
    let mut ranks = streams(cfg, 0);
    let sizes = size_grid(cfg, &mut ranks);

    // Strided layout: round j holds record j of every rank, in rank
    // order, packed back to back.
    let mut offsets = vec![vec![0u64; cfg.ops_per_rank as usize]; cfg.ranks as usize];
    let mut base = 0u64;
    for j in 0..cfg.ops_per_rank as usize {
        for r in 0..cfg.ranks as usize {
            offsets[r][j] = base;
            base += sizes[r][j];
        }
    }

    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        s.push(&cfg.arrival, OpKind::OpenWriter, 0, 0);
        for j in 0..cfg.ops_per_rank as usize {
            s.push(&cfg.arrival, OpKind::Write, offsets[r][j], sizes[r][j]);
        }
        s.push(&cfg.arrival, OpKind::Sync, 0, 0);
        s.push(&cfg.arrival, OpKind::CloseWriter, 0, 0);
    }
    let t_read = finish_phase(ranks, &mut ops);

    // Read-back: each rank re-reads its own records.
    let mut ranks = streams(cfg, t_read);
    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        s.push(&cfg.arrival, OpKind::OpenReader, 0, 0);
        for j in 0..cfg.ops_per_rank as usize {
            s.push(&cfg.arrival, OpKind::Read, offsets[r][j], sizes[r][j]);
        }
        s.push(&cfg.arrival, OpKind::CloseReader, 0, 0);
    }
    finish_phase(ranks, &mut ops);
    OpLog { file: "/ckpt-n1".into(), ranks: cfg.ranks, shape: Shape::N1, ops }
}

fn gen_nn(cfg: &GenConfig) -> OpLog {
    let mut ops = Vec::new();
    let mut ranks = streams(cfg, 0);
    let mut extents = vec![0u64; cfg.ranks as usize];
    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        s.push(&cfg.arrival, OpKind::OpenWriter, 0, 0);
        for _ in 0..cfg.ops_per_rank {
            let len = cfg.size.sample(&mut s.rng);
            s.push(&cfg.arrival, OpKind::Write, extents[r], len);
            extents[r] += len;
        }
        s.push(&cfg.arrival, OpKind::CloseWriter, 0, 0);
    }
    let t_read = finish_phase(ranks, &mut ops);

    // Each rank streams its whole file back in record-mean chunks.
    let chunk = (cfg.size.mean().round() as u64).max(1);
    let mut ranks = streams(cfg, t_read);
    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        s.push(&cfg.arrival, OpKind::OpenReader, 0, 0);
        let mut off = 0u64;
        while off < extents[r] {
            let len = chunk.min(extents[r] - off);
            s.push(&cfg.arrival, OpKind::Read, off, len);
            off += len;
        }
        s.push(&cfg.arrival, OpKind::CloseReader, 0, 0);
    }
    finish_phase(ranks, &mut ops);
    OpLog { file: "/ckpt-nn".into(), ranks: cfg.ranks, shape: Shape::NN, ops }
}

fn gen_restart(cfg: &GenConfig) -> OpLog {
    let mut ops = Vec::new();
    let mut ranks = streams(cfg, 0);
    let sizes = size_grid(cfg, &mut ranks);

    // Segmented N-1: rank r's records are contiguous at base[r].
    let seg_total: Vec<u64> = sizes.iter().map(|v| v.iter().sum()).collect();
    let mut bases = vec![0u64; cfg.ranks as usize];
    for r in 1..cfg.ranks as usize {
        bases[r] = bases[r - 1] + seg_total[r - 1];
    }
    let file_size: u64 = seg_total.iter().sum();

    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        s.push(&cfg.arrival, OpKind::OpenWriter, 0, 0);
        let mut off = bases[r];
        for &len in &sizes[r][..cfg.ops_per_rank as usize] {
            s.push(&cfg.arrival, OpKind::Write, off, len);
            off += len;
        }
        s.push(&cfg.arrival, OpKind::CloseWriter, 0, 0);
    }
    let t_read = finish_phase(ranks, &mut ops);

    // Restart under a rotated decomposition: rank r replays rank
    // (r+1) % N's segment, then issues 2× ops of random whole-file
    // reads — 3× the write op count in total.
    let mut ranks = streams(cfg, t_read);
    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        let donor = (r + 1) % cfg.ranks as usize;
        s.push(&cfg.arrival, OpKind::OpenReader, 0, 0);
        let mut off = bases[donor];
        for &len in &sizes[donor][..cfg.ops_per_rank as usize] {
            s.push(&cfg.arrival, OpKind::Read, off, len);
            off += len;
        }
        for _ in 0..2 * cfg.ops_per_rank {
            let len = cfg.size.sample(&mut s.rng).min(file_size.max(1));
            let max_start = file_size.saturating_sub(len);
            let off = if max_start == 0 { 0 } else { s.rng.range_inclusive(0, max_start) };
            s.push(&cfg.arrival, OpKind::Read, off, len);
        }
        s.push(&cfg.arrival, OpKind::CloseReader, 0, 0);
    }
    finish_phase(ranks, &mut ops);
    OpLog { file: "/ckpt-restart".into(), ranks: cfg.ranks, shape: Shape::N1, ops }
}

fn gen_mixed(cfg: &GenConfig) -> OpLog {
    let mut ops = Vec::new();
    let w1 = cfg.ops_per_rank.div_ceil(2);
    let w2 = cfg.ops_per_rank - w1;

    // Phase W1: segmented append.
    let mut ranks = streams(cfg, 0);
    let sizes = size_grid(cfg, &mut ranks);
    let seg_total: Vec<u64> = sizes.iter().map(|v| v[..w1 as usize].iter().sum()).collect();
    let mut bases = vec![0u64; cfg.ranks as usize];
    for r in 1..cfg.ranks as usize {
        bases[r] = bases[r - 1] + seg_total[r - 1];
    }
    let w1_size: u64 = seg_total.iter().sum();
    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        s.push(&cfg.arrival, OpKind::OpenWriter, 0, 0);
        let mut off = bases[r];
        for &len in &sizes[r][..w1 as usize] {
            s.push(&cfg.arrival, OpKind::Write, off, len);
            off += len;
        }
        s.push(&cfg.arrival, OpKind::Sync, 0, 0);
        s.push(&cfg.arrival, OpKind::CloseWriter, 0, 0);
    }
    let t = finish_phase(ranks, &mut ops);

    // Phase R1: random reads over the W1 extent.
    let mut ranks = streams(cfg, t);
    for s in ranks.iter_mut() {
        s.push(&cfg.arrival, OpKind::OpenReader, 0, 0);
        for _ in 0..w1 {
            let len = cfg.size.sample(&mut s.rng).min(w1_size.max(1));
            let max_start = w1_size.saturating_sub(len);
            let off = if max_start == 0 { 0 } else { s.rng.range_inclusive(0, max_start) };
            s.push(&cfg.arrival, OpKind::Read, off, len);
        }
        s.push(&cfg.arrival, OpKind::CloseReader, 0, 0);
    }
    let t = finish_phase(ranks, &mut ops);

    // Phase W2: alternate overwrites of W1 ranges and fresh appends
    // past the W1 extent — the overlap-resolution stressor.
    let mut ranks = streams(cfg, t);
    let mut append_off = w1_size;
    let mut append_offsets = vec![Vec::new(); cfg.ranks as usize];
    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        for j in 0..w2 as usize {
            let len = sizes[r][w1 as usize + j];
            if j % 2 == 0 {
                append_offsets[r].push((append_off, len, true));
                append_off += len;
            } else {
                let max_start = w1_size.saturating_sub(len);
                let off = if max_start == 0 { 0 } else { s.rng.range_inclusive(0, max_start) };
                append_offsets[r].push((off, len, false));
            }
        }
    }
    for s in ranks.iter_mut() {
        let r = s.rank as usize;
        s.push(&cfg.arrival, OpKind::OpenWriter, 0, 0);
        for &(off, len, _) in &append_offsets[r] {
            s.push(&cfg.arrival, OpKind::Write, off, len);
        }
        s.push(&cfg.arrival, OpKind::CloseWriter, 0, 0);
    }
    let t = finish_phase(ranks, &mut ops);

    // Phase R2: stat, then random reads over the full extent.
    let full_size = append_off;
    let mut ranks = streams(cfg, t);
    for s in ranks.iter_mut() {
        s.push(&cfg.arrival, OpKind::Stat, 0, 0);
        s.push(&cfg.arrival, OpKind::OpenReader, 0, 0);
        for _ in 0..cfg.ops_per_rank {
            let len = cfg.size.sample(&mut s.rng).min(full_size.max(1));
            let max_start = full_size.saturating_sub(len);
            let off = if max_start == 0 { 0 } else { s.rng.range_inclusive(0, max_start) };
            s.push(&cfg.arrival, OpKind::Read, off, len);
        }
        s.push(&cfg.arrival, OpKind::CloseReader, 0, 0);
    }
    finish_phase(ranks, &mut ops);
    OpLog { file: "/ckpt-mixed".into(), ranks: cfg.ranks, shape: Shape::N1, ops }
}

fn gen_storm(cfg: &GenConfig) -> OpLog {
    let mut ops = vec![OpRecord {
        t_ns: 0,
        rank: 0,
        op: OpKind::Create,
        offset: 0,
        len: 0,
        result: OpResult::Pending,
    }];
    // Each iteration: open, one tiny write, close, stat — the
    // open/close churn dominating PDSI metadata-storm traces. Writes
    // land segmented (by iteration count) so content stays verifiable.
    let mut ranks = streams(cfg, 1);
    let record = 512u64;
    for s in ranks.iter_mut() {
        let r = s.rank as u64;
        for j in 0..cfg.ops_per_rank as u64 {
            s.push(&cfg.arrival, OpKind::OpenWriter, 0, 0);
            s.push(&cfg.arrival, OpKind::Write, (r * cfg.ops_per_rank as u64 + j) * record, record);
            s.push(&cfg.arrival, OpKind::CloseWriter, 0, 0);
            s.push(&cfg.arrival, OpKind::Stat, 0, 0);
        }
    }
    let t = finish_phase(ranks, &mut ops);
    // Final read-back of each rank's records.
    let mut ranks = streams(cfg, t);
    for s in ranks.iter_mut() {
        let r = s.rank as u64;
        s.push(&cfg.arrival, OpKind::OpenReader, 0, 0);
        s.push(
            &cfg.arrival,
            OpKind::Read,
            r * cfg.ops_per_rank as u64 * record,
            cfg.ops_per_rank as u64 * record,
        );
        s.push(&cfg.arrival, OpKind::CloseReader, 0, 0);
    }
    finish_phase(ranks, &mut ops);
    OpLog { file: "/ckpt-storm".into(), ranks: cfg.ranks, shape: Shape::N1, ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_scenarios() -> Vec<Scenario> {
        SCENARIOS.iter().map(|(_, s)| *s).collect()
    }

    #[test]
    fn every_scenario_emits_a_parseable_roundtrip_log() {
        for sc in all_scenarios() {
            let log = generate(sc, &GenConfig::default());
            assert!(!log.ops.is_empty(), "{sc:?} generated nothing");
            let reparsed = OpLog::parse(&log.to_text()).unwrap();
            assert_eq!(reparsed, log, "{sc:?} text round trip");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig { seed: 7, ..GenConfig::default() };
        for sc in all_scenarios() {
            assert_eq!(generate(sc, &cfg), generate(sc, &cfg), "{sc:?}");
        }
    }

    #[test]
    fn write_stamps_are_unique_and_above_base() {
        for sc in all_scenarios() {
            let log = generate(sc, &GenConfig::default());
            let mut stamps: Vec<u64> = log
                .ops
                .iter()
                .filter_map(|o| match o.result {
                    OpResult::Write { stamp } => Some(stamp),
                    _ => None,
                })
                .collect();
            assert!(!stamps.is_empty());
            assert!(stamps.iter().all(|&s| s >= GEN_STAMP_BASE));
            let n = stamps.len();
            stamps.sort_unstable();
            stamps.dedup();
            assert_eq!(stamps.len(), n, "{sc:?} duplicate stamps");
        }
    }

    #[test]
    fn n1_strided_writes_tile_the_file_exactly() {
        let log = generate(Scenario::N1Strided, &GenConfig::default());
        let mut spans: Vec<(u64, u64)> =
            log.ops.iter().filter(|o| o.op == OpKind::Write).map(|o| (o.offset, o.len)).collect();
        spans.sort_unstable();
        let mut expect = 0u64;
        for (off, len) in spans {
            assert_eq!(off, expect, "gap or overlap at {off}");
            expect = off + len;
        }
        // Interleaved: consecutive rounds alternate ranks.
        assert!(log.shape == Shape::N1);
    }

    #[test]
    fn nn_is_per_rank_sequential() {
        let log = generate(Scenario::NN, &GenConfig::default());
        assert_eq!(log.shape, Shape::NN);
        for r in 0..4u32 {
            let mut expect = 0u64;
            for o in log.ops.iter().filter(|o| o.rank == r && o.op == OpKind::Write) {
                assert_eq!(o.offset, expect);
                expect += o.len;
            }
            assert!(expect > 0, "rank {r} wrote nothing");
        }
    }

    #[test]
    fn restart_is_read_heavy() {
        let log = generate(Scenario::ReadHeavyRestart, &GenConfig::default());
        let writes = log.ops.iter().filter(|o| o.op == OpKind::Write).count();
        let reads = log.ops.iter().filter(|o| o.op == OpKind::Read).count();
        assert_eq!(reads, 3 * writes, "expected 3x read ops, got {reads}/{writes}");
    }

    #[test]
    fn storm_is_metadata_bound() {
        let log = generate(Scenario::MetadataStorm, &GenConfig::default());
        let data_ops =
            log.ops.iter().filter(|o| matches!(o.op, OpKind::Write | OpKind::Read)).count();
        let meta_ops = log.ops.len() - data_ops;
        assert!(meta_ops > 2 * data_ops, "storm not metadata-bound: {meta_ops}/{data_ops}");
        assert!(log.ops.iter().any(|o| o.op == OpKind::Create));
        assert!(log.ops.iter().any(|o| o.op == OpKind::Stat));
    }

    #[test]
    fn mixed_overwrites_earlier_ranges() {
        let log = generate(Scenario::Mixed, &GenConfig::default());
        // Some write in the log starts below the highest preceding
        // write end — an overwrite of already-written bytes.
        let mut high = 0u64;
        let mut saw_overwrite = false;
        for o in log.ops.iter().filter(|o| o.op == OpKind::Write) {
            if o.offset < high {
                saw_overwrite = true;
            }
            high = high.max(o.offset + o.len);
        }
        assert!(saw_overwrite, "mixed scenario never overwrote");
    }

    #[test]
    fn scenario_names_round_trip() {
        for (name, sc) in SCENARIOS {
            assert_eq!(Scenario::by_name(name), Some(*sc));
            assert_eq!(sc.name(), *name);
        }
        assert_eq!(Scenario::by_name("nope"), None);
    }
}
