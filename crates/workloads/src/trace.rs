//! Plain-text I/O trace format (record / replay).
//!
//! LANL released "almost 100 traces from seven different benchmarks
//! and applications" in a simple per-operation format (report §5.3);
//! this module defines the equivalent: a line-oriented text format any
//! tool can grep, with strict parsing and a lossless round trip to the
//! in-memory `Pattern` representation.
//!
//! ```text
//! # pdsi-trace v1
//! # app: FLASH-IO ranks: 4
//! 0 write 0 44249
//! 1 write 44249 44249
//! ...
//! ```

use std::fmt::Write as _;

/// One traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    pub rank: u32,
    pub is_write: bool,
    pub offset: u64,
    pub len: u64,
}

/// A parsed trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    pub app: String,
    pub ranks: u32,
    pub ops: Vec<TraceOp>,
}

/// Parsing failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Build a trace from per-rank write lists (ops interleaved
    /// round-robin across ranks, approximating concurrent issue order).
    pub fn from_pattern(app: &str, pattern: &[Vec<(u64, u64)>]) -> Self {
        let ranks = pattern.len() as u32;
        let most = pattern.iter().map(|v| v.len()).max().unwrap_or(0);
        let mut ops = Vec::new();
        for i in 0..most {
            for (r, list) in pattern.iter().enumerate() {
                if let Some(&(offset, len)) = list.get(i) {
                    ops.push(TraceOp { rank: r as u32, is_write: true, offset, len });
                }
            }
        }
        Trace { app: app.to_string(), ranks, ops }
    }

    /// Recover per-rank write lists (in per-rank issue order).
    pub fn to_pattern(&self) -> Vec<Vec<(u64, u64)>> {
        let mut out = vec![Vec::new(); self.ranks as usize];
        for op in &self.ops {
            if op.is_write {
                out[op.rank as usize].push((op.offset, op.len));
            }
        }
        out
    }

    /// Serialize to the text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# pdsi-trace v1\n");
        let _ = writeln!(s, "# app: {} ranks: {}", self.app, self.ranks);
        for op in &self.ops {
            let kind = if op.is_write { "write" } else { "read" };
            let _ = writeln!(s, "{} {} {} {}", op.rank, kind, op.offset, op.len);
        }
        s
    }

    /// Parse the text format.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines().enumerate();
        let (n0, first) =
            lines.next().ok_or(TraceError { line: 0, message: "empty trace".into() })?;
        if first.trim() != "# pdsi-trace v1" {
            return Err(TraceError { line: n0 + 1, message: format!("bad magic: {first:?}") });
        }
        let mut app = String::new();
        let mut ranks = 0u32;
        let mut ops = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                // Header comment: "# app: NAME ranks: N".
                if let Some(meta) = rest.trim().strip_prefix("app:") {
                    let mut parts = meta.split_whitespace();
                    app = parts.next().unwrap_or("").to_string();
                    if parts.next() == Some("ranks:") {
                        ranks = parts.next().and_then(|x| x.parse().ok()).ok_or(TraceError {
                            line: i + 1,
                            message: "bad ranks header".into(),
                        })?;
                    }
                }
                continue;
            }
            let mut f = line.split_whitespace();
            let err = |m: &str| TraceError { line: i + 1, message: m.into() };
            let rank: u32 =
                f.next().ok_or(err("missing rank"))?.parse().map_err(|_| err("bad rank"))?;
            let kind = f.next().ok_or(err("missing op"))?;
            let is_write = match kind {
                "write" => true,
                "read" => false,
                other => return Err(err(&format!("unknown op {other:?}"))),
            };
            let offset: u64 =
                f.next().ok_or(err("missing offset"))?.parse().map_err(|_| err("bad offset"))?;
            let len: u64 =
                f.next().ok_or(err("missing len"))?.parse().map_err(|_| err("bad len"))?;
            if f.next().is_some() {
                return Err(err("trailing fields"));
            }
            ops.push(TraceOp { rank, is_write, offset, len });
        }
        let max_rank = ops.iter().map(|o| o.rank + 1).max().unwrap_or(0);
        Ok(Trace { app, ranks: ranks.max(max_rank), ops })
    }

    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppProfile;

    #[test]
    fn text_roundtrip() {
        let p = AppProfile::by_name("Chombo").unwrap().pattern(4);
        let t = Trace::from_pattern("Chombo", &p);
        let text = t.to_text();
        let parsed = Trace::parse(&text).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(parsed.to_pattern(), p);
    }

    #[test]
    fn interleaved_issue_order() {
        let p = vec![vec![(0, 1), (10, 1)], vec![(5, 1)]];
        let t = Trace::from_pattern("x", &p);
        let ranks: Vec<u32> = t.ops.iter().map(|o| o.rank).collect();
        assert_eq!(ranks, vec![0, 1, 0]);
    }

    #[test]
    fn parse_rejects_bad_magic() {
        assert!(Trace::parse("hello\n").is_err());
        assert!(Trace::parse("").is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "# pdsi-trace v1\n0 write 0 100\n1 scribble 0 1\n";
        let err = Trace::parse(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("scribble"));
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let text = "# pdsi-trace v1\n# app: demo ranks: 2\n\n0 write 0 10\n# noise\n1 read 0 10\n";
        let t = Trace::parse(text).unwrap();
        assert_eq!(t.app, "demo");
        assert_eq!(t.ranks, 2);
        assert_eq!(t.ops.len(), 2);
        assert!(!t.ops[1].is_write);
    }

    #[test]
    fn ranks_inferred_when_header_missing() {
        let text = "# pdsi-trace v1\n3 write 0 10\n";
        let t = Trace::parse(text).unwrap();
        assert_eq!(t.ranks, 4);
    }

    #[test]
    fn total_bytes_sums() {
        let text = "# pdsi-trace v1\n0 write 0 10\n1 write 10 32\n";
        assert_eq!(Trace::parse(text).unwrap().total_bytes(), 42);
    }
}
