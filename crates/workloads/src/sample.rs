//! The shared seeded distribution module: request-size and arrival
//! sampling used by every workload source in the repo.
//!
//! The PDSI studies fit lognormal request/file sizes (Dayal,
//! CMU-PDL-08-109) and Poisson/bursty arrival processes to observed
//! traffic; `simkit::dist` pins the underlying sampling algorithms.
//! This module wraps them in the two shapes workload generation
//! actually needs — a [`SizeDist`] in bytes and an [`ArrivalDist`] in
//! nanosecond gaps — so the op-log generators ([`crate::gen`]), the
//! trace tooling ([`crate::trace`]), and the bench experiments all
//! draw from one implementation instead of growing ad-hoc samplers.
//!
//! Continuous distributions are rejection-sampled against their
//! `min`/`max` bounds: a draw outside the bounds is discarded and
//! retried, so the accepted distribution is the true conditional
//! (not a clamped pile-up at the edges). A bounded retry budget keeps
//! sampling total; after it is exhausted the draw is clamped, which for
//! any sane parameterization is a never-taken escape hatch.

use simkit::dist::{Distribution, Exponential, LogNormal};
use simkit::Rng;

/// Retries before a rejection sampler gives up and clamps.
const REJECT_BUDGET: u32 = 64;

/// A request-size distribution (bytes, always ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every request exactly `n` bytes.
    Fixed(u64),
    /// Uniform integer in `[min, max]` inclusive.
    Uniform { min: u64, max: u64 },
    /// Lognormal with the given median and log-space sigma,
    /// rejection-sampled into `[min, max]` — the heavy-tailed
    /// checkpoint-record shape the PDSI file-size studies observed.
    LogNormal { median: u64, sigma: f64, min: u64, max: u64 },
}

impl SizeDist {
    /// Draw one size. Never returns 0.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        match *self {
            SizeDist::Fixed(n) => n.max(1),
            SizeDist::Uniform { min, max } => {
                assert!(min <= max, "SizeDist::Uniform min {min} > max {max}");
                rng.range_inclusive(min, max).max(1)
            }
            SizeDist::LogNormal { median, sigma, min, max } => {
                assert!(min <= max, "SizeDist::LogNormal min {min} > max {max}");
                let d = LogNormal::from_median(median as f64, sigma);
                for _ in 0..REJECT_BUDGET {
                    let x = d.sample(rng);
                    if x >= min as f64 && x <= max as f64 {
                        return (x.round() as u64).clamp(min.max(1), max);
                    }
                }
                (d.sample(rng).round() as u64).clamp(min.max(1), max)
            }
        }
    }

    /// Mean of the *unconditioned* distribution (scenario sizing).
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(n) => n as f64,
            SizeDist::Uniform { min, max } => (min + max) as f64 / 2.0,
            SizeDist::LogNormal { median, sigma, .. } => {
                LogNormal::from_median(median as f64, sigma).mean()
            }
        }
    }

    /// Parse a CLI spec: `fixed:N`, `uniform:MIN:MAX`, or
    /// `lognormal:MEDIAN:SIGMA:MIN:MAX`.
    pub fn parse_spec(spec: &str) -> Result<SizeDist, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let int = |s: &str| s.parse::<u64>().map_err(|_| format!("bad integer {s:?} in {spec:?}"));
        let float = |s: &str| s.parse::<f64>().map_err(|_| format!("bad float {s:?} in {spec:?}"));
        match parts.as_slice() {
            ["fixed", n] => Ok(SizeDist::Fixed(int(n)?)),
            ["uniform", min, max] => Ok(SizeDist::Uniform { min: int(min)?, max: int(max)? }),
            ["lognormal", median, sigma, min, max] => Ok(SizeDist::LogNormal {
                median: int(median)?,
                sigma: float(sigma)?,
                min: int(min)?,
                max: int(max)?,
            }),
            _ => Err(format!(
                "unknown size spec {spec:?} (want fixed:N | uniform:MIN:MAX | \
                 lognormal:MEDIAN:SIGMA:MIN:MAX)"
            )),
        }
    }
}

/// Uniform `align`-aligned offset in `[0, span)`: the random-I/O probe
/// shape the device experiments hammer flash/disk models with. Draws
/// exactly one value from `rng`, so swapping an ad-hoc
/// `rng.below(slots) * align` for this helper leaves the stream — and
/// every number derived from it — bit-identical.
pub fn uniform_aligned_offset(rng: &mut Rng, span: u64, align: u64) -> u64 {
    let align = align.max(1);
    rng.below((span / align).max(1)) * align
}

/// An inter-operation arrival process (gaps in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalDist {
    /// Back-to-back issue (gap 0): as fast as the store allows.
    Immediate,
    /// Fixed gap between consecutive ops.
    Fixed(u64),
    /// Poisson process: exponentially-distributed gaps with the given
    /// mean — the memoryless arrival model the PDSI studies default to.
    Poisson { mean_gap_ns: u64 },
    /// Bursty AMR-style traffic: `burst` ops spaced `intra_gap_ns`
    /// apart, then a Poisson-distributed quiet period with mean
    /// `inter_gap_ns` before the next burst.
    Burst { burst: u32, intra_gap_ns: u64, inter_gap_ns: u64 },
}

impl ArrivalDist {
    /// Gap between op `i-1` and op `i` of one issuing stream (`i` is
    /// 0-based; the gap before op 0 staggers stream start).
    pub fn next_gap(&self, rng: &mut Rng, i: u64) -> u64 {
        match *self {
            ArrivalDist::Immediate => 0,
            ArrivalDist::Fixed(gap) => gap,
            ArrivalDist::Poisson { mean_gap_ns } => {
                Exponential::with_mean(mean_gap_ns.max(1) as f64).sample(rng).round() as u64
            }
            ArrivalDist::Burst { burst, intra_gap_ns, inter_gap_ns } => {
                if burst > 0 && i.is_multiple_of(burst as u64) {
                    Exponential::with_mean(inter_gap_ns.max(1) as f64).sample(rng).round() as u64
                } else {
                    intra_gap_ns
                }
            }
        }
    }

    /// Parse a CLI spec: `immediate`, `fixed:NS`, `poisson:MEAN_NS`, or
    /// `burst:K:INTRA_NS:INTER_NS`.
    pub fn parse_spec(spec: &str) -> Result<ArrivalDist, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let int = |s: &str| s.parse::<u64>().map_err(|_| format!("bad integer {s:?} in {spec:?}"));
        match parts.as_slice() {
            ["immediate"] => Ok(ArrivalDist::Immediate),
            ["fixed", ns] => Ok(ArrivalDist::Fixed(int(ns)?)),
            ["poisson", mean] => Ok(ArrivalDist::Poisson { mean_gap_ns: int(mean)? }),
            ["burst", k, intra, inter] => Ok(ArrivalDist::Burst {
                burst: int(k)? as u32,
                intra_gap_ns: int(intra)?,
                inter_gap_ns: int(inter)?,
            }),
            _ => Err(format!(
                "unknown arrival spec {spec:?} (want immediate | fixed:NS | poisson:MEAN_NS | \
                 burst:K:INTRA_NS:INTER_NS)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_uniform_respect_bounds() {
        let mut rng = Rng::new(1);
        assert_eq!(SizeDist::Fixed(4096).sample(&mut rng), 4096);
        let d = SizeDist::Uniform { min: 100, max: 200 };
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((100..=200).contains(&x));
        }
    }

    #[test]
    fn lognormal_rejection_respects_min_max() {
        let d = SizeDist::LogNormal { median: 4096, sigma: 2.0, min: 512, max: 1 << 20 };
        let mut rng = Rng::new(2);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((512..=(1 << 20)).contains(&x), "sample {x} escaped bounds");
        }
    }

    #[test]
    fn lognormal_median_roughly_preserved_inside_wide_bounds() {
        let d = SizeDist::LogNormal { median: 8192, sigma: 1.0, min: 1, max: 1 << 40 };
        let mut rng = Rng::new(3);
        let mut xs: Vec<u64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_unstable();
        let med = xs[xs.len() / 2] as f64;
        assert!((med / 8192.0 - 1.0).abs() < 0.1, "median {med}");
    }

    #[test]
    fn poisson_gaps_have_the_requested_mean() {
        let d = ArrivalDist::Poisson { mean_gap_ns: 1_000_000 };
        let mut rng = Rng::new(4);
        let n = 100_000u64;
        let total: u64 = (0..n).map(|i| d.next_gap(&mut rng, i)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean / 1e6 - 1.0).abs() < 0.02, "mean gap {mean}");
    }

    #[test]
    fn burst_shape_alternates_long_and_short_gaps() {
        let d = ArrivalDist::Burst { burst: 4, intra_gap_ns: 10, inter_gap_ns: 1_000_000 };
        let mut rng = Rng::new(5);
        for i in 0..64u64 {
            let gap = d.next_gap(&mut rng, i);
            if i % 4 == 0 {
                assert!(gap > 1000, "burst boundary gap {gap} too short at {i}");
            } else {
                assert_eq!(gap, 10);
            }
        }
    }

    #[test]
    fn aligned_offset_matches_the_adhoc_form_bit_for_bit() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let pages = 16 * 1024u64;
        for _ in 0..10_000 {
            assert_eq!(uniform_aligned_offset(&mut a, pages * 4096, 4096), b.below(pages) * 4096);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = SizeDist::LogNormal { median: 4096, sigma: 1.5, min: 64, max: 1 << 24 };
        let a: Vec<u64> = {
            let mut rng = Rng::new(9);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = Rng::new(9);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn specs_parse_and_reject() {
        assert_eq!(SizeDist::parse_spec("fixed:4096").unwrap(), SizeDist::Fixed(4096));
        assert_eq!(
            SizeDist::parse_spec("uniform:1:9").unwrap(),
            SizeDist::Uniform { min: 1, max: 9 }
        );
        assert!(SizeDist::parse_spec("lognormal:4096:1.5:64:65536").is_ok());
        assert!(SizeDist::parse_spec("nope:1").is_err());
        assert!(ArrivalDist::parse_spec("poisson:1000").is_ok());
        assert!(ArrivalDist::parse_spec("burst:4:10:1000").is_ok());
        assert!(ArrivalDist::parse_spec("fixed").is_err());
    }
}
