//! Ninjat-style ASCII visualization of concurrent write patterns.
//!
//! LANL's Ninjat tool (report Fig. 15) turns a trace of concurrent
//! writes to one file into an offset-vs-time image colored by rank,
//! making N-1 strided interleavings visually obvious. This is the
//! terminal rendition: columns are issue order, rows are file-offset
//! buckets, and each cell shows the rank that wrote there (the last
//! writer shown when several hit one cell, matching file contents).

use crate::trace::Trace;

/// Character used for rank `r` (36 distinct symbols, then '+').
fn rank_char(r: u32) -> char {
    match r {
        0..=9 => (b'0' + r as u8) as char,
        10..=35 => (b'a' + (r - 10) as u8) as char,
        _ => '+',
    }
}

/// Render the trace as `width` x `height` ASCII rows (top row =
/// highest offsets, like Fig. 15's left panel).
pub fn render(trace: &Trace, width: usize, height: usize) -> Vec<String> {
    assert!(width > 0 && height > 0);
    let writes: Vec<_> = trace.ops.iter().filter(|o| o.is_write).collect();
    if writes.is_empty() {
        return vec![" ".repeat(width); height];
    }
    let max_off = writes.iter().map(|o| o.offset + o.len).max().unwrap();
    let n = writes.len();
    let mut grid = vec![vec![None::<u32>; width]; height];
    for (i, op) in writes.iter().enumerate() {
        let col = i * width / n;
        let row_lo = (op.offset as u128 * height as u128 / max_off as u128) as usize;
        let row_hi =
            (((op.offset + op.len - 1) as u128) * height as u128 / max_off as u128) as usize;
        // Last writer wins, matching what the file would contain.
        for cells in grid.iter_mut().take(row_hi.min(height - 1) + 1).skip(row_lo) {
            cells[col] = Some(op.rank);
        }
    }
    // Top row shows the highest offsets.
    (0..height)
        .rev()
        .map(|row| grid[row].iter().map(|c| c.map(rank_char).unwrap_or(' ')).collect())
        .collect()
}

/// Summarize a trace's access shape: fraction of *offset-adjacent*
/// write pairs that came from different ranks — near 1.0 for N-1
/// strided interleavings, near 0.0 for segmented/N-N patterns. This is
/// the number the Fig. 15 picture lets you eyeball.
pub fn interleave_factor(trace: &Trace) -> f64 {
    let mut writes: Vec<_> = trace.ops.iter().filter(|o| o.is_write).collect();
    if writes.len() < 2 {
        return 0.0;
    }
    writes.sort_by_key(|o| o.offset);
    let pairs = writes.len() - 1;
    let crossings = writes.windows(2).filter(|w| w[0].rank != w[1].rank).count();
    crossings as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppProfile;

    fn strided_trace() -> Trace {
        let p = AppProfile::by_name("FLASH-IO").unwrap().pattern(8);
        Trace::from_pattern("FLASH-IO", &p)
    }

    fn segmented_trace() -> Trace {
        let p = AppProfile::by_name("S3D").unwrap().pattern(8);
        Trace::from_pattern("S3D", &p)
    }

    #[test]
    fn strided_pattern_interleaves_heavily() {
        let f = interleave_factor(&strided_trace());
        assert!(f > 0.9, "strided interleave factor {f}");
    }

    #[test]
    fn segmented_pattern_barely_interleaves() {
        let f = interleave_factor(&segmented_trace());
        assert!(f < 0.25, "segmented interleave factor {f}");
    }

    #[test]
    fn render_has_requested_shape() {
        let rows = render(&strided_trace(), 72, 24);
        assert_eq!(rows.len(), 24);
        assert!(rows.iter().all(|r| r.chars().count() == 72));
    }

    #[test]
    fn strided_render_mixes_ranks_within_rows() {
        let rows = render(&strided_trace(), 64, 16);
        // In a strided pattern most offset rows contain several ranks.
        let mixed = rows
            .iter()
            .filter(|row| {
                let distinct: std::collections::HashSet<char> =
                    row.chars().filter(|c| *c != ' ').collect();
                distinct.len() >= 3
            })
            .count();
        assert!(mixed >= 12, "only {mixed}/16 rows look interleaved");
    }

    #[test]
    fn segmented_render_has_single_rank_rows() {
        let rows = render(&segmented_trace(), 64, 16);
        let pure = rows
            .iter()
            .filter(|row| {
                let distinct: std::collections::HashSet<char> =
                    row.chars().filter(|c| *c != ' ').collect();
                distinct.len() <= 2
            })
            .count();
        assert!(pure >= 12, "only {pure}/16 rows look segmented");
    }

    #[test]
    fn empty_trace_renders_blank() {
        let t = Trace { app: "x".into(), ranks: 0, ops: vec![] };
        let rows = render(&t, 10, 3);
        assert!(rows.iter().all(|r| r.trim().is_empty()));
        assert_eq!(interleave_factor(&t), 0.0);
    }

    #[test]
    fn rank_chars_are_distinct_for_small_ranks() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..36 {
            assert!(seen.insert(rank_char(r)), "collision at rank {r}");
        }
        assert_eq!(rank_char(100), '+');
    }
}
