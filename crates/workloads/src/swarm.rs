//! Checkpoint client swarms: the 1000-client ingest workload.
//!
//! The PDSI characterization's defining load is not four tidy ranks —
//! it is *thousands* of compute clients dumping checkpoint state at
//! once. This module builds that load as a deterministic **plan**: a
//! segmented N-1 layout where client `c` owns one contiguous segment of
//! the shared file and writes it as a run of seeded variable-size
//! records. The plan is pure data (no threads, no I/O), so the same
//! spec can drive the concurrent ingest service, a single-writer
//! reference run, and a replay — and all three are comparable
//! byte-for-byte because payloads come from the canonical
//! [`fill_payload`] function of `(client, absolute offset)`.
//!
//! Determinism contract: [`plan`] is a pure function of its
//! [`SwarmConfig`]. Record sizes come from per-client `fork`ed
//! [`simkit::Rng`] streams, segment bases are the exclusive prefix sum
//! of segment totals, and the issue order ([`SwarmPlan::issue_order`])
//! is a seeded interleave — so any two runs of the same config issue
//! the same ops with the same bytes.

use crate::oplog::{fill_payload, OpKind, OpLog, OpRecord, OpResult, Shape};
use crate::sample::SizeDist;
use simkit::Rng;

/// Knobs for one swarm.
#[derive(Debug, Clone, Copy)]
pub struct SwarmConfig {
    /// Concurrent checkpoint clients.
    pub clients: u32,
    /// Records each client writes into its segment.
    pub ops_per_client: u32,
    /// Record size distribution (sampled per record, per client).
    pub size: SizeDist,
    pub seed: u64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            clients: 64,
            ops_per_client: 4,
            size: SizeDist::Uniform { min: 1024, max: 8192 },
            seed: 1009,
        }
    }
}

/// One planned write: `client` writes `len` bytes at absolute `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwarmOp {
    pub client: u32,
    pub offset: u64,
    pub len: u64,
}

impl SwarmOp {
    /// The canonical payload for this op — a pure function of
    /// `(client, offset)`, chunking-stable, so the service run, the
    /// reference run, and any replay write identical bytes.
    pub fn payload(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.len as usize];
        fill_payload(self.client, self.offset, &mut buf);
        buf
    }
}

/// A fully materialized swarm: every client's ops, the global layout,
/// and a seeded cross-client issue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwarmPlan {
    pub cfg_clients: u32,
    /// `per_client[c]` = client `c`'s ops, in segment order.
    pub per_client: Vec<Vec<SwarmOp>>,
    /// Exclusive file size: segments tile `[0, file_size)` exactly.
    pub file_size: u64,
}

/// Build the swarm plan. Pure in `cfg`.
pub fn plan(cfg: &SwarmConfig) -> SwarmPlan {
    assert!(cfg.clients > 0, "need at least one client");
    let mut root = Rng::new(cfg.seed);
    let mut rngs: Vec<Rng> = (0..cfg.clients as u64).map(|c| root.fork(c)).collect();
    // Sample every client's record sizes first: segment bases need the
    // full grid before any offset is known.
    let sizes: Vec<Vec<u64>> = rngs
        .iter_mut()
        .map(|rng| (0..cfg.ops_per_client).map(|_| cfg.size.sample(rng).max(1)).collect())
        .collect();
    let mut per_client = Vec::with_capacity(cfg.clients as usize);
    let mut base = 0u64;
    for (c, client_sizes) in sizes.iter().enumerate() {
        let mut ops = Vec::with_capacity(client_sizes.len());
        let mut off = base;
        for &len in client_sizes {
            ops.push(SwarmOp { client: c as u32, offset: off, len });
            off += len;
        }
        base = off;
        per_client.push(ops);
    }
    SwarmPlan { cfg_clients: cfg.clients, per_client, file_size: base }
}

impl SwarmPlan {
    pub fn total_ops(&self) -> u64 {
        self.per_client.iter().map(|v| v.len() as u64).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.file_size
    }

    /// Every op in a seeded cross-client interleave: the deterministic
    /// order a single-threaded driver issues in. Fisher–Yates over the
    /// concatenated op list, seeded by `seed`, so two reference runs
    /// interleave identically.
    pub fn issue_order(&self, seed: u64) -> Vec<SwarmOp> {
        let mut ops: Vec<SwarmOp> = self.per_client.iter().flatten().copied().collect();
        let mut rng = Rng::new(seed ^ 0x7377_6172_6d21); // "swarm!"
        for i in (1..ops.len()).rev() {
            let j = rng.range_inclusive(0, i as u64) as usize;
            ops.swap(i, j);
        }
        ops
    }

    /// The bytes the shared file must hold after every client's segment
    /// lands (segments are disjoint, so order is irrelevant).
    pub fn expected_contents(&self) -> Vec<u8> {
        let mut file = vec![0u8; self.file_size as usize];
        for op in self.per_client.iter().flatten() {
            let lo = op.offset as usize;
            fill_payload(op.client, op.offset, &mut file[lo..lo + op.len as usize]);
        }
        file
    }

    /// Project the plan onto an op log (rank = client, results pending)
    /// for the trace/visualization tooling.
    pub fn to_oplog(&self, file: &str) -> OpLog {
        let mut ops: Vec<OpRecord> = Vec::with_capacity(self.total_ops() as usize);
        for (t, op) in self.per_client.iter().flatten().enumerate() {
            ops.push(OpRecord {
                t_ns: t as u64,
                rank: op.client,
                op: OpKind::Write,
                offset: op.offset,
                len: op.len,
                result: OpResult::Pending,
            });
        }
        OpLog { file: file.to_string(), ranks: self.cfg_clients, shape: Shape::N1, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let cfg = SwarmConfig { clients: 37, seed: 5, ..Default::default() };
        assert_eq!(plan(&cfg), plan(&cfg));
        let other = plan(&SwarmConfig { seed: 6, ..cfg });
        assert_ne!(plan(&cfg), other, "seed must matter");
    }

    #[test]
    fn segments_tile_the_file_exactly() {
        let p = plan(&SwarmConfig { clients: 100, ops_per_client: 3, ..Default::default() });
        let mut spans: Vec<(u64, u64)> =
            p.per_client.iter().flatten().map(|o| (o.offset, o.len)).collect();
        spans.sort_unstable();
        let mut expect = 0u64;
        for (off, len) in spans {
            assert_eq!(off, expect, "gap or overlap at {off}");
            expect = off + len;
        }
        assert_eq!(expect, p.file_size);
        assert_eq!(p.total_ops(), 300);
    }

    #[test]
    fn payloads_match_expected_contents() {
        let p = plan(&SwarmConfig { clients: 9, ops_per_client: 2, ..Default::default() });
        let file = p.expected_contents();
        for op in p.per_client.iter().flatten() {
            let lo = op.offset as usize;
            assert_eq!(op.payload(), &file[lo..lo + op.len as usize]);
        }
    }

    #[test]
    fn issue_order_is_a_seeded_permutation() {
        let p = plan(&SwarmConfig { clients: 20, ops_per_client: 5, ..Default::default() });
        let a = p.issue_order(1);
        assert_eq!(a, p.issue_order(1), "same seed, same order");
        assert_ne!(a, p.issue_order(2), "different seed, different order");
        assert_eq!(a.len() as u64, p.total_ops());
        let mut sorted: Vec<u64> = a.iter().map(|o| o.offset).collect();
        sorted.sort_unstable();
        let mut planned: Vec<u64> = p.per_client.iter().flatten().map(|o| o.offset).collect();
        planned.sort_unstable();
        assert_eq!(sorted, planned, "permutation, not resample");
    }

    #[test]
    fn oplog_projection_parses_back() {
        let p = plan(&SwarmConfig { clients: 8, ops_per_client: 2, ..Default::default() });
        let log = p.to_oplog("/swarm");
        assert_eq!(log.ranks, 8);
        assert_eq!(log.ops.len() as u64, p.total_ops());
        let reparsed = OpLog::parse(&log.to_text()).unwrap();
        assert_eq!(reparsed, log);
    }
}
