//! Application I/O profiles.
//!
//! The PDSI data-collection effort characterized and released traces
//! for a battery of DOE codes (report §3.1): S3D, CTH, FLASH-IO,
//! Chombo, GTC, RAGE, QCD, and others. What matters for storage is the
//! *shape* each one writes — N-1 strided small records, N-1 segmented
//! contiguous regions, or N-N per-process files — plus record size and
//! alignment. These profiles generate per-rank `(offset, len)` request
//! lists with those shapes, parameterized so weak scaling keeps
//! bytes-per-rank constant.

/// Per-rank request lists.
pub type Pattern = Vec<Vec<(u64, u64)>>;

/// The shared-file access shape of an application's checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoShape {
    /// Record r of the shared file belongs to rank `r % n`; records are
    /// small and usually unaligned (FLASH, Chombo, QCD).
    StridedN1,
    /// Rank r owns one contiguous region of the shared file, written in
    /// pieces (S3D Fortran I/O, GTC).
    SegmentedN1,
    /// One file per process (CTH, Alegra dump mode).
    NtoN,
}

/// An application's checkpoint I/O profile.
#[derive(Debug, Clone, Copy)]
pub struct AppProfile {
    pub name: &'static str,
    pub shape: IoShape,
    /// Bytes each rank contributes per checkpoint (weak scaling).
    pub bytes_per_rank: u64,
    /// Size of each individual write.
    pub write_size: u64,
    /// Report-quoted PLFS speedup class, for the summary table
    /// ("order of magnitude" for Chombo, "two orders" for FLASH,
    /// 5x-28x for production codes).
    pub paper_speedup_hint: &'static str,
}

/// The seven benchmark/application profiles PLFS was demonstrated with
/// (report §5.3: "three different parallel filesystems ... and seven
/// applications and benchmarks").
pub const APP_PROFILES: [AppProfile; 7] = [
    AppProfile {
        name: "FLASH-IO",
        shape: IoShape::StridedN1,
        bytes_per_rank: 6 << 20,
        write_size: 43 * 1024 + 217, // small, unaligned
        paper_speedup_hint: "~two orders of magnitude",
    },
    AppProfile {
        name: "Chombo",
        shape: IoShape::StridedN1,
        bytes_per_rank: 8 << 20,
        write_size: 37 * 1024 + 511,
        paper_speedup_hint: "~order of magnitude",
    },
    AppProfile {
        name: "QCD",
        shape: IoShape::StridedN1,
        bytes_per_rank: 4 << 20,
        write_size: 96 * 1024,
        paper_speedup_hint: "5x-28x (production)",
    },
    AppProfile {
        name: "RAGE",
        shape: IoShape::StridedN1,
        bytes_per_rank: 12 << 20,
        write_size: 64 * 1024 + 129,
        paper_speedup_hint: "5x-28x (production)",
    },
    AppProfile {
        name: "S3D",
        shape: IoShape::SegmentedN1,
        bytes_per_rank: 10 << 20,
        write_size: 2 << 20,
        paper_speedup_hint: "modest (well-formed already)",
    },
    AppProfile {
        name: "GTC",
        shape: IoShape::SegmentedN1,
        bytes_per_rank: 16 << 20,
        write_size: 4 << 20,
        paper_speedup_hint: "modest (well-formed already)",
    },
    AppProfile {
        name: "CTH",
        shape: IoShape::NtoN,
        bytes_per_rank: 8 << 20,
        write_size: 1 << 20,
        paper_speedup_hint: "~1x (already N-N)",
    },
];

impl AppProfile {
    /// Look a profile up by name.
    pub fn by_name(name: &str) -> Option<&'static AppProfile> {
        APP_PROFILES.iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Writes each rank issues per checkpoint.
    pub fn writes_per_rank(&self) -> u64 {
        self.bytes_per_rank.div_ceil(self.write_size)
    }

    /// Generate one checkpoint's pattern at `ranks` processes.
    /// For `NtoN` the offsets are per-rank-file offsets (each rank's
    /// stream targets its own file).
    pub fn pattern(&self, ranks: u32) -> Pattern {
        let w = self.writes_per_rank();
        match self.shape {
            IoShape::StridedN1 => (0..ranks)
                .map(|r| {
                    (0..w)
                        .map(|i| {
                            let record = i * ranks as u64 + r as u64;
                            (record * self.write_size, self.write_size)
                        })
                        .collect()
                })
                .collect(),
            IoShape::SegmentedN1 => (0..ranks)
                .map(|r| {
                    let base = r as u64 * self.bytes_per_rank;
                    let mut ops = Vec::new();
                    let mut pos = 0;
                    while pos < self.bytes_per_rank {
                        let len = self.write_size.min(self.bytes_per_rank - pos);
                        ops.push((base + pos, len));
                        pos += len;
                    }
                    ops
                })
                .collect(),
            IoShape::NtoN => (0..ranks)
                .map(|_| {
                    let mut ops = Vec::new();
                    let mut pos = 0;
                    while pos < self.bytes_per_rank {
                        let len = self.write_size.min(self.bytes_per_rank - pos);
                        ops.push((pos, len));
                        pos += len;
                    }
                    ops
                })
                .collect(),
        }
    }

    /// Total checkpoint bytes at `ranks` processes.
    pub fn checkpoint_bytes(&self, ranks: u32) -> u64 {
        self.writes_per_rank() * self.write_size * ranks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_profiles_cover_all_shapes() {
        assert_eq!(APP_PROFILES.len(), 7);
        for shape in [IoShape::StridedN1, IoShape::SegmentedN1, IoShape::NtoN] {
            assert!(APP_PROFILES.iter().any(|p| p.shape == shape), "{shape:?} missing");
        }
        assert!(AppProfile::by_name("flash-io").is_some());
        assert!(AppProfile::by_name("nonesuch").is_none());
    }

    #[test]
    fn strided_pattern_is_disjoint_and_complete() {
        let p = AppProfile::by_name("FLASH-IO").unwrap();
        let pat = p.pattern(8);
        let mut all: Vec<(u64, u64)> = pat.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut pos = 0;
        for (o, l) in all {
            assert_eq!(o, pos, "gap/overlap at {pos}");
            pos = o + l;
        }
        assert_eq!(pos, p.checkpoint_bytes(8));
    }

    #[test]
    fn segmented_regions_are_rank_contiguous() {
        let p = AppProfile::by_name("S3D").unwrap();
        let pat = p.pattern(4);
        for (r, ops) in pat.iter().enumerate() {
            let lo = ops.first().unwrap().0;
            let hi = ops.last().map(|&(o, l)| o + l).unwrap();
            assert_eq!(lo, r as u64 * p.bytes_per_rank);
            assert_eq!(hi - lo, p.bytes_per_rank);
            for w in ops.windows(2) {
                assert_eq!(w[0].0 + w[0].1, w[1].0, "segment not contiguous");
            }
        }
    }

    #[test]
    fn nton_ranks_all_start_at_zero() {
        let p = AppProfile::by_name("CTH").unwrap();
        let pat = p.pattern(5);
        for ops in &pat {
            assert_eq!(ops[0].0, 0);
        }
    }

    #[test]
    fn weak_scaling_keeps_bytes_per_rank() {
        let p = AppProfile::by_name("Chombo").unwrap();
        let b8 = p.checkpoint_bytes(8);
        let b64 = p.checkpoint_bytes(64);
        assert_eq!(b64, 8 * b8);
    }

    #[test]
    fn unaligned_profiles_are_actually_unaligned() {
        for p in APP_PROFILES.iter().filter(|p| p.shape == IoShape::StridedN1) {
            if p.name != "QCD" {
                assert_ne!(p.write_size % 4096, 0, "{} should be unaligned", p.name);
            }
        }
    }
}
