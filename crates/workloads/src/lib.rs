//! # workloads — application I/O characterization artifacts
//! (report §3.1–3.2, §5.3, Fig. 15)
//!
//! The PDSI data-collection program produced three reusable artifacts
//! this crate reproduces:
//!
//! - [`apps`]: I/O profiles for the characterized DOE codes (S3D, CTH,
//!   FLASH-IO, Chombo, GTC, RAGE, QCD) as per-rank request-list
//!   generators with the right access *shape* — strided N-1,
//!   segmented N-1, or N-N;
//! - [`trace`]: the released line-oriented trace format, with strict
//!   parsing and lossless pattern round trips;
//! - [`ninjat`]: the Ninjat write-pattern visualizer (Fig. 15),
//!   rendered in ASCII, plus the interleave metric the pictures let
//!   you eyeball.

pub mod apps;
pub mod ninjat;
pub mod trace;

pub use apps::{AppProfile, IoShape, Pattern, APP_PROFILES};
pub use ninjat::{interleave_factor, render};
pub use trace::{Trace, TraceError, TraceOp};
