//! # workloads — application I/O characterization artifacts
//! (report §3.1–3.2, §5.3, Fig. 15)
//!
//! The PDSI data-collection program produced three reusable artifacts
//! this crate reproduces:
//!
//! - [`apps`]: I/O profiles for the characterized DOE codes (S3D, CTH,
//!   FLASH-IO, Chombo, GTC, RAGE, QCD) as per-rank request-list
//!   generators with the right access *shape* — strided N-1,
//!   segmented N-1, or N-N;
//! - [`trace`]: the released line-oriented trace format, with strict
//!   parsing and lossless pattern round trips;
//! - [`ninjat`]: the Ninjat write-pattern visualizer (Fig. 15),
//!   rendered in ASCII, plus the interleave metric the pictures let
//!   you eyeball.
//!
//! Capture & replay adds three more:
//!
//! - [`sample`]: the shared seeded size/arrival distribution module
//!   (lognormal/uniform sizes, Poisson/burst arrivals) every workload
//!   source draws from;
//! - [`oplog`]: the versioned, replayable TSV op-log format — the
//!   capture artifact, with typed parse errors and the delivered-bytes
//!   digest replays are verified against;
//! - [`gen`]: canned scenario builders (N-1 strided, N-N, read-heavy
//!   restart, mixed, metadata storm) that emit op logs directly.

pub mod apps;
pub mod gen;
pub mod ninjat;
pub mod oplog;
pub mod sample;
pub mod swarm;
pub mod trace;

pub use apps::{AppProfile, IoShape, Pattern, APP_PROFILES};
pub use gen::{generate, GenConfig, Scenario, GEN_STAMP_BASE, SCENARIOS};
pub use ninjat::{interleave_factor, render};
pub use oplog::{
    fill_payload, fold_delivered, OpKind, OpLog, OpLogError, OpLogErrorKind, OpRecord, OpResult,
    Shape, DELIVERED_HASH_SEED, OPLOG_MAGIC,
};
pub use sample::{uniform_aligned_offset, ArrivalDist, SizeDist};
pub use swarm::{plan as swarm_plan, SwarmConfig, SwarmOp, SwarmPlan};
pub use trace::{Trace, TraceError, TraceOp};
