//! The PLFS op log: a compact, versioned, replayable record of every
//! operation a workload issued against one logical file.
//!
//! This is the capture half of workload capture & replay (the replay
//! engine lives in `plfs::replay`). The format follows the s3-bench /
//! LANL-trace lineage: one line per operation, tab-separated, greppable,
//! with a versioned header so the format can evolve without silently
//! misreading old logs.
//!
//! ```text
//! # plfs-oplog v1
//! # file: /ckpt ranks: 64 shape: n1
//! # fields: t_ns rank op offset len result
//! 1200<TAB>0<TAB>open<TAB>0<TAB>0<TAB>ok
//! 1320<TAB>0<TAB>write<TAB>0<TAB>47104<TAB>ok:1099511627777
//! 9400<TAB>3<TAB>read<TAB>141312<TAB>47104<TAB>ok:47104:9a0b1c2d
//! ```
//!
//! Fields: timestamp (nanoseconds, nondecreasing in file order), rank,
//! op, logical offset, length, result. The result column is what makes
//! replays verifiable byte-for-byte instead of merely op-for-op:
//!
//! - writes record the index timestamp the write was stamped with
//!   (`ok:<stamp>`), so a replay resolves cross-rank overlaps exactly
//!   as the capture run did, in any replay mode;
//! - reads record the delivered byte count and a CRC32 of the
//!   delivered bytes (`ok:<got>:<crc32hex>`), so a replay can prove it
//!   served the same bytes;
//! - generated (not-yet-executed) ops carry `-`, and surfaced errors
//!   carry `err:<kind>`.
//!
//! Parsing is strict and never panics: every malformed input yields a
//! typed [`OpLogError`] naming the line and failure
//! ([`OpLogErrorKind`]), including truncated lines, unknown ops,
//! out-of-order timestamps, and version-mismatched headers.
//!
//! Write payloads are deliberately *not* stored. Replayable workloads
//! use the canonical deterministic payload ([`fill_payload`]) — a pure
//! function of `(rank, absolute offset)` — so any two replays of a log
//! produce identical container bytes, and a capture that also used
//! canonical payloads (every generator in [`crate::gen`] does) is
//! byte-reproducible end to end.

use crate::trace::{Trace, TraceOp};
use simkit::rng::splitmix64;
use std::fmt::Write as _;

/// First header line of a v1 op log.
pub const OPLOG_MAGIC: &str = "# plfs-oplog v1";

/// The op-log format version this module reads and writes.
pub const OPLOG_VERSION: u32 = 1;

/// One operation kind. The write-side kinds mutate the container; the
/// read-side kinds (`ropen`/`read`/`rclose`/`stat`) only observe it —
/// the replay engine uses that split to place its barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Create the logical file (container).
    Create,
    /// Open a writer session for `rank`.
    OpenWriter,
    /// `write_at(offset, len)`.
    Write,
    /// Flush a writer's buffered data and index.
    Sync,
    /// Close the writer session.
    CloseWriter,
    /// Open a read handle (index merge).
    OpenReader,
    /// `read_at(offset, len)`.
    Read,
    /// Drop the read handle.
    CloseReader,
    /// `stat` the logical file.
    Stat,
    /// Remove the logical file.
    Unlink,
}

impl OpKind {
    /// The on-disk token.
    pub fn token(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::OpenWriter => "open",
            OpKind::Write => "write",
            OpKind::Sync => "sync",
            OpKind::CloseWriter => "close",
            OpKind::OpenReader => "ropen",
            OpKind::Read => "read",
            OpKind::CloseReader => "rclose",
            OpKind::Stat => "stat",
            OpKind::Unlink => "unlink",
        }
    }

    fn from_token(tok: &str) -> Option<OpKind> {
        Some(match tok {
            "create" => OpKind::Create,
            "open" => OpKind::OpenWriter,
            "write" => OpKind::Write,
            "sync" => OpKind::Sync,
            "close" => OpKind::CloseWriter,
            "ropen" => OpKind::OpenReader,
            "read" => OpKind::Read,
            "rclose" => OpKind::CloseReader,
            "stat" => OpKind::Stat,
            "unlink" => OpKind::Unlink,
            _ => return None,
        })
    }

    /// Read-side ops only observe container state; write-side ops
    /// mutate it. The replay engine syncs writers and reopens readers
    /// at every write→read transition.
    pub fn is_read_side(self) -> bool {
        matches!(self, OpKind::OpenReader | OpKind::Read | OpKind::CloseReader | OpKind::Stat)
    }
}

/// The recorded outcome of one op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Generated, not yet executed (`-`): replay fills in the outcome.
    Pending,
    /// Succeeded, nothing further recorded.
    Ok,
    /// A write stamped with this index timestamp — replays reuse it so
    /// overlap resolution matches the capture exactly.
    Write { stamp: u64 },
    /// A read that delivered `got` bytes whose CRC32 was `crc`.
    Read { got: u64, crc: u32 },
    /// The op surfaced an error of this kind.
    Err(String),
}

impl OpResult {
    fn render(&self) -> String {
        match self {
            OpResult::Pending => "-".into(),
            OpResult::Ok => "ok".into(),
            OpResult::Write { stamp } => format!("ok:{stamp}"),
            OpResult::Read { got, crc } => format!("ok:{got}:{crc:08x}"),
            OpResult::Err(kind) => format!("err:{kind}"),
        }
    }
}

/// One op-log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Nanoseconds since capture start (or synthetic generation time).
    /// Nondecreasing in file order — enforced at parse.
    pub t_ns: u64,
    pub rank: u32,
    pub op: OpKind,
    pub offset: u64,
    pub len: u64,
    pub result: OpResult,
}

/// How ranks map to logical files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Shape {
    /// All ranks share one logical file (N-1).
    #[default]
    N1,
    /// Rank `r` owns `<file>.<r>` (N-N).
    NN,
}

/// A parsed (or generated, or captured) op log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpLog {
    /// Logical file path (N-N ranks append `.<rank>`).
    pub file: String,
    pub ranks: u32,
    pub shape: Shape,
    pub ops: Vec<OpRecord>,
}

/// What went wrong at which line. `line` is 1-based; 0 means the input
/// as a whole (e.g. empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLogError {
    pub line: usize,
    pub kind: OpLogErrorKind,
}

/// Typed parse failures — each malformed shape a fuzzer can produce
/// maps to one of these; none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpLogErrorKind {
    /// No input at all.
    Empty,
    /// First line is not an op-log header.
    BadMagic(String),
    /// A well-formed header for a version this parser does not speak.
    VersionMismatch { found: u32 },
    /// Line ended before the named field.
    Truncated { field: &'static str },
    /// Unrecognized op token.
    UnknownOp(String),
    /// A field failed to parse as its type.
    BadField { field: &'static str, value: String },
    /// More fields than the schema has.
    TrailingFields,
    /// Timestamps must be nondecreasing in file order.
    OutOfOrderTimestamp { prev: u64, found: u64 },
    /// Malformed result column.
    BadResult(String),
}

impl std::fmt::Display for OpLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op-log parse error at line {}: ", self.line)?;
        match &self.kind {
            OpLogErrorKind::Empty => write!(f, "empty input"),
            OpLogErrorKind::BadMagic(got) => write!(f, "bad magic {got:?}"),
            OpLogErrorKind::VersionMismatch { found } => {
                write!(f, "op-log version {found} (this build reads v{OPLOG_VERSION})")
            }
            OpLogErrorKind::Truncated { field } => write!(f, "line truncated before {field}"),
            OpLogErrorKind::UnknownOp(tok) => write!(f, "unknown op {tok:?}"),
            OpLogErrorKind::BadField { field, value } => write!(f, "bad {field}: {value:?}"),
            OpLogErrorKind::TrailingFields => write!(f, "trailing fields"),
            OpLogErrorKind::OutOfOrderTimestamp { prev, found } => {
                write!(f, "timestamp {found} goes backwards (previous {prev})")
            }
            OpLogErrorKind::BadResult(value) => write!(f, "bad result column {value:?}"),
        }
    }
}

impl std::error::Error for OpLogError {}

impl OpLog {
    /// Serialize to the versioned TSV text format.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(64 + self.ops.len() * 32);
        s.push_str(OPLOG_MAGIC);
        s.push('\n');
        let shape = match self.shape {
            Shape::N1 => "n1",
            Shape::NN => "nn",
        };
        let _ = writeln!(s, "# file: {} ranks: {} shape: {}", self.file, self.ranks, shape);
        s.push_str("# fields: t_ns rank op offset len result\n");
        for op in &self.ops {
            let _ = writeln!(
                s,
                "{}\t{}\t{}\t{}\t{}\t{}",
                op.t_ns,
                op.rank,
                op.op.token(),
                op.offset,
                op.len,
                op.result.render()
            );
        }
        s
    }

    /// Parse the text format. Strict: every malformed line is a typed
    /// [`OpLogError`]; timestamps must be nondecreasing in file order.
    pub fn parse(text: &str) -> Result<OpLog, OpLogError> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or(OpLogError { line: 0, kind: OpLogErrorKind::Empty })?;
        let first = first.trim_end_matches('\r');
        if first.trim() != OPLOG_MAGIC {
            // A well-formed header for another version is a version
            // mismatch, anything else is bad magic.
            let kind = match first.trim().strip_prefix("# plfs-oplog v") {
                Some(v) => match v.parse::<u32>() {
                    Ok(found) => OpLogErrorKind::VersionMismatch { found },
                    Err(_) => OpLogErrorKind::BadMagic(first.to_string()),
                },
                None => OpLogErrorKind::BadMagic(first.to_string()),
            };
            return Err(OpLogError { line: 1, kind });
        }
        let mut log = OpLog { file: String::new(), ranks: 0, shape: Shape::N1, ops: Vec::new() };
        let mut prev_t = 0u64;
        for (i, raw) in lines {
            let lineno = i + 1;
            let line = raw.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.trim_start().strip_prefix('#') {
                // Header comment: "# file: PATH ranks: N shape: n1|nn".
                let mut parts = rest.split_whitespace().peekable();
                while let Some(key) = parts.next() {
                    match key {
                        "file:" => {
                            log.file = parts
                                .next()
                                .ok_or(OpLogError {
                                    line: lineno,
                                    kind: OpLogErrorKind::Truncated { field: "file" },
                                })?
                                .to_string();
                        }
                        "ranks:" => {
                            let v = parts.next().ok_or(OpLogError {
                                line: lineno,
                                kind: OpLogErrorKind::Truncated { field: "ranks" },
                            })?;
                            log.ranks = v.parse().map_err(|_| OpLogError {
                                line: lineno,
                                kind: OpLogErrorKind::BadField {
                                    field: "ranks",
                                    value: v.to_string(),
                                },
                            })?;
                        }
                        "shape:" => {
                            let v = parts.next().ok_or(OpLogError {
                                line: lineno,
                                kind: OpLogErrorKind::Truncated { field: "shape" },
                            })?;
                            log.shape = match v {
                                "n1" => Shape::N1,
                                "nn" => Shape::NN,
                                other => {
                                    return Err(OpLogError {
                                        line: lineno,
                                        kind: OpLogErrorKind::BadField {
                                            field: "shape",
                                            value: other.to_string(),
                                        },
                                    })
                                }
                            };
                        }
                        _ => break, // free-form comment
                    }
                }
                continue;
            }
            let rec = parse_record(line, lineno)?;
            if rec.t_ns < prev_t {
                return Err(OpLogError {
                    line: lineno,
                    kind: OpLogErrorKind::OutOfOrderTimestamp { prev: prev_t, found: rec.t_ns },
                });
            }
            prev_t = rec.t_ns;
            log.ops.push(rec);
        }
        let max_rank = log.ops.iter().map(|o| o.rank + 1).max().unwrap_or(0);
        log.ranks = log.ranks.max(max_rank);
        Ok(log)
    }

    /// Total logical bytes the write ops move.
    pub fn write_bytes(&self) -> u64 {
        self.ops.iter().filter(|o| o.op == OpKind::Write).map(|o| o.len).sum()
    }

    /// Total logical bytes the read ops request.
    pub fn read_bytes(&self) -> u64 {
        self.ops.iter().filter(|o| o.op == OpKind::Read).map(|o| o.len).sum()
    }

    /// Timestamp span from first to last op (the wall the capture took;
    /// what a timing-faithful replay reproduces).
    pub fn span_ns(&self) -> u64 {
        match (self.ops.first(), self.ops.last()) {
            (Some(a), Some(b)) => b.t_ns.saturating_sub(a.t_ns),
            _ => 0,
        }
    }

    /// Order-sensitive digest of the recorded read outcomes: fold every
    /// `ok:<got>:<crc>` read result, in file order, into one u64. Two
    /// runs delivered identical bytes to identical requests iff their
    /// delivered hashes match. Reads still [`OpResult::Pending`] are
    /// skipped (a generated log hashes to [`DELIVERED_HASH_SEED`]).
    pub fn delivered_hash(&self) -> u64 {
        let mut h = DELIVERED_HASH_SEED;
        for op in &self.ops {
            if let OpResult::Read { got, crc } = op.result {
                h = fold_delivered(h, got, crc);
            }
        }
        h
    }

    /// Project onto the legacy line-oriented trace format (reads and
    /// writes only; timestamps and results are trace-invisible).
    pub fn to_trace(&self) -> Trace {
        let ops = self
            .ops
            .iter()
            .filter(|o| matches!(o.op, OpKind::Write | OpKind::Read))
            .map(|o| TraceOp {
                rank: o.rank,
                is_write: o.op == OpKind::Write,
                offset: o.offset,
                len: o.len,
            })
            .collect();
        Trace { app: self.file.clone(), ranks: self.ranks, ops }
    }

    /// Lift a legacy trace into an op log, assigning timestamps from
    /// `arrival` (one seeded stream per rank via [`simkit::Rng::fork`])
    /// and bracketing each rank with open/close. The result is
    /// replayable like any generated log.
    pub fn from_trace(trace: &Trace, arrival: crate::sample::ArrivalDist, seed: u64) -> OpLog {
        let mut root = simkit::Rng::new(seed);
        let mut rngs: Vec<simkit::Rng> = (0..trace.ranks as u64).map(|r| root.fork(r)).collect();
        let mut t = vec![0u64; trace.ranks as usize];
        let mut issued = vec![0u64; trace.ranks as usize];
        let mut ops: Vec<OpRecord> = Vec::with_capacity(trace.ops.len() + 2 * trace.ranks as usize);
        let mut opened = vec![false; trace.ranks as usize];
        for op in &trace.ops {
            let r = op.rank as usize;
            t[r] += arrival.next_gap(&mut rngs[r], issued[r]);
            issued[r] += 1;
            if op.is_write && !opened[r] {
                opened[r] = true;
                ops.push(OpRecord {
                    t_ns: t[r],
                    rank: op.rank,
                    op: OpKind::OpenWriter,
                    offset: 0,
                    len: 0,
                    result: OpResult::Pending,
                });
            }
            ops.push(OpRecord {
                t_ns: t[r],
                rank: op.rank,
                op: if op.is_write { OpKind::Write } else { OpKind::Read },
                offset: op.offset,
                len: op.len,
                result: OpResult::Pending,
            });
        }
        let t_close = t.iter().copied().max().unwrap_or(0) + 1;
        for (r, was_opened) in opened.iter().enumerate() {
            if *was_opened {
                ops.push(OpRecord {
                    t_ns: t_close,
                    rank: r as u32,
                    op: OpKind::CloseWriter,
                    offset: 0,
                    len: 0,
                    result: OpResult::Pending,
                });
            }
        }
        ops.sort_by_key(|o| o.t_ns);
        OpLog { file: trace.app.clone(), ranks: trace.ranks, shape: Shape::N1, ops }
    }
}

fn parse_record(line: &str, lineno: usize) -> Result<OpRecord, OpLogError> {
    let err = |kind| OpLogError { line: lineno, kind };
    let mut f = line.split('\t');
    let mut field = |name: &'static str| {
        f.next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or(err(OpLogErrorKind::Truncated { field: name }))
    };
    let t_str = field("t_ns")?;
    let rank_str = field("rank")?;
    let op_str = field("op")?;
    let off_str = field("offset")?;
    let len_str = field("len")?;
    let result_str = field("result")?;
    if f.next().is_some() {
        return Err(err(OpLogErrorKind::TrailingFields));
    }
    let int = |field: &'static str, v: &str| {
        v.parse::<u64>().map_err(|_| err(OpLogErrorKind::BadField { field, value: v.to_string() }))
    };
    let t_ns = int("t_ns", t_str)?;
    let rank = int("rank", rank_str)? as u32;
    let op = OpKind::from_token(op_str)
        .ok_or_else(|| err(OpLogErrorKind::UnknownOp(op_str.to_string())))?;
    let offset = int("offset", off_str)?;
    let len = int("len", len_str)?;
    let result = parse_result(op, result_str)
        .ok_or_else(|| err(OpLogErrorKind::BadResult(result_str.to_string())))?;
    Ok(OpRecord { t_ns, rank, op, offset, len, result })
}

fn parse_result(op: OpKind, s: &str) -> Option<OpResult> {
    if s == "-" {
        return Some(OpResult::Pending);
    }
    if let Some(kind) = s.strip_prefix("err:") {
        if kind.is_empty() {
            return None;
        }
        return Some(OpResult::Err(kind.to_string()));
    }
    if s == "ok" {
        // Bare ok is legal for everything except reads, whose whole
        // point is the recorded outcome.
        return if op == OpKind::Read { None } else { Some(OpResult::Ok) };
    }
    let rest = s.strip_prefix("ok:")?;
    match op {
        OpKind::Write => rest.parse::<u64>().ok().map(|stamp| OpResult::Write { stamp }),
        OpKind::Read => {
            let (got_s, crc_s) = rest.split_once(':')?;
            let got = got_s.parse::<u64>().ok()?;
            if crc_s.len() != 8 {
                return None;
            }
            let crc = u32::from_str_radix(crc_s, 16).ok()?;
            Some(OpResult::Read { got, crc })
        }
        _ => None,
    }
}

/// Initial value of the delivered-bytes digest.
pub const DELIVERED_HASH_SEED: u64 = 0x706c_6673_6f70_6c67; // "plfsoplg"

/// Fold one read outcome into the delivered-bytes digest. Order
/// matters: callers fold in op-log file order.
pub fn fold_delivered(h: u64, got: u64, crc: u32) -> u64 {
    let mut s = h ^ got.rotate_left(32) ^ crc as u64;
    splitmix64(&mut s)
}

/// The canonical deterministic write payload: byte `offset + j` of
/// rank `rank`'s logical stream is a pure function of `(rank, position)`.
/// Every generator emits it and the replay engine regenerates it, so
/// two replays of one log produce identical container bytes — and a
/// replay of a capture that used it reproduces the capture's bytes.
pub fn fill_payload(rank: u32, offset: u64, buf: &mut [u8]) {
    let mut pos = offset;
    let mut i = 0usize;
    while i < buf.len() {
        let word_idx = pos >> 3;
        let mut s = word_idx ^ ((rank as u64) << 48) ^ 0x9E37_79B9_7F4A_7C15;
        let word = splitmix64(&mut s);
        let start_byte = (pos & 7) as usize;
        let bytes = word.to_le_bytes();
        let take = (8 - start_byte).min(buf.len() - i);
        buf[i..i + take].copy_from_slice(&bytes[start_byte..start_byte + take]);
        i += take;
        pos += take as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::ArrivalDist;

    fn sample_log() -> OpLog {
        OpLog {
            file: "/ckpt".into(),
            ranks: 2,
            shape: Shape::N1,
            ops: vec![
                OpRecord {
                    t_ns: 10,
                    rank: 0,
                    op: OpKind::OpenWriter,
                    offset: 0,
                    len: 0,
                    result: OpResult::Ok,
                },
                OpRecord {
                    t_ns: 20,
                    rank: 0,
                    op: OpKind::Write,
                    offset: 0,
                    len: 4096,
                    result: OpResult::Write { stamp: 77 },
                },
                OpRecord {
                    t_ns: 20,
                    rank: 1,
                    op: OpKind::Write,
                    offset: 4096,
                    len: 4096,
                    result: OpResult::Pending,
                },
                OpRecord {
                    t_ns: 30,
                    rank: 0,
                    op: OpKind::CloseWriter,
                    offset: 0,
                    len: 0,
                    result: OpResult::Ok,
                },
                OpRecord {
                    t_ns: 40,
                    rank: 0,
                    op: OpKind::Read,
                    offset: 0,
                    len: 8192,
                    result: OpResult::Read { got: 8192, crc: 0xdeadbeef },
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let log = sample_log();
        let text = log.to_text();
        let parsed = OpLog::parse(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn parse_rejects_bad_magic_and_other_versions() {
        let err = OpLog::parse("hello\n").unwrap_err();
        assert!(matches!(err.kind, OpLogErrorKind::BadMagic(_)), "{err}");
        let err = OpLog::parse("").unwrap_err();
        assert_eq!(err.kind, OpLogErrorKind::Empty);
        let err = OpLog::parse("# plfs-oplog v2\n0\t0\twrite\t0\t1\t-\n").unwrap_err();
        assert_eq!(err.kind, OpLogErrorKind::VersionMismatch { found: 2 });
    }

    #[test]
    fn parse_rejects_truncated_unknown_and_out_of_order() {
        let head = "# plfs-oplog v1\n";
        let err = OpLog::parse(&format!("{head}5\t0\twrite\t0\n")).unwrap_err();
        assert_eq!((err.line, err.kind), (2, OpLogErrorKind::Truncated { field: "len" }));
        let err = OpLog::parse(&format!("{head}5\t0\tscribble\t0\t1\t-\n")).unwrap_err();
        assert_eq!(err.kind, OpLogErrorKind::UnknownOp("scribble".into()));
        let err = OpLog::parse(&format!("{head}5\t0\twrite\t0\t1\t-\n3\t0\twrite\t1\t1\t-\n"))
            .unwrap_err();
        assert_eq!(
            (err.line, err.kind),
            (3, OpLogErrorKind::OutOfOrderTimestamp { prev: 5, found: 3 })
        );
        let err = OpLog::parse(&format!("{head}5\t0\twrite\t0\t1\t-\textra\n")).unwrap_err();
        assert_eq!(err.kind, OpLogErrorKind::TrailingFields);
        let err = OpLog::parse(&format!("{head}5\tx\twrite\t0\t1\t-\n")).unwrap_err();
        assert_eq!(err.kind, OpLogErrorKind::BadField { field: "rank", value: "x".into() });
        let err = OpLog::parse(&format!("{head}5\t0\tread\t0\t1\tok\n")).unwrap_err();
        assert_eq!(err.kind, OpLogErrorKind::BadResult("ok".into()));
    }

    #[test]
    fn ranks_inferred_from_ops_when_header_low() {
        let text = "# plfs-oplog v1\n0\t7\twrite\t0\t1\t-\n";
        assert_eq!(OpLog::parse(text).unwrap().ranks, 8);
    }

    #[test]
    fn delivered_hash_is_order_sensitive() {
        let mut a = sample_log();
        let h1 = a.delivered_hash();
        a.ops.push(OpRecord {
            t_ns: 50,
            rank: 1,
            op: OpKind::Read,
            offset: 0,
            len: 1,
            result: OpResult::Read { got: 1, crc: 1 },
        });
        let h2 = a.delivered_hash();
        assert_ne!(h1, h2);
        // Pending reads don't contribute.
        a.ops.push(OpRecord {
            t_ns: 60,
            rank: 1,
            op: OpKind::Read,
            offset: 0,
            len: 1,
            result: OpResult::Pending,
        });
        assert_eq!(a.delivered_hash(), h2);
    }

    #[test]
    fn fill_payload_is_position_stable() {
        // The same absolute range yields the same bytes regardless of
        // how it is chunked — the property replay relies on.
        let mut whole = vec![0u8; 1000];
        fill_payload(3, 177, &mut whole);
        for (start, len) in [(0usize, 100usize), (37, 500), (900, 100)] {
            let mut part = vec![0u8; len];
            fill_payload(3, 177 + start as u64, &mut part);
            assert_eq!(part, whole[start..start + len], "chunk at {start}");
        }
        // Different ranks get different bytes.
        let mut other = vec![0u8; 1000];
        fill_payload(4, 177, &mut other);
        assert_ne!(whole, other);
    }

    #[test]
    fn trace_bridge_roundtrips_reads_and_writes() {
        let log = sample_log();
        let trace = log.to_trace();
        assert_eq!(trace.ops.len(), 3); // 2 writes + 1 read
        let lifted = OpLog::from_trace(&trace, ArrivalDist::Fixed(5), 11);
        // Lifting brackets writers with open/close and keeps the I/O.
        let io: Vec<_> =
            lifted.ops.iter().filter(|o| matches!(o.op, OpKind::Write | OpKind::Read)).collect();
        assert_eq!(io.len(), 3);
        assert!(lifted.ops.iter().any(|o| o.op == OpKind::OpenWriter));
        assert!(lifted.ops.iter().any(|o| o.op == OpKind::CloseWriter));
        // Timestamps nondecreasing → parseable round trip.
        let reparsed = OpLog::parse(&lifted.to_text()).unwrap();
        assert_eq!(reparsed, lifted);
    }
}
