//! # giga — GIGA+ scalable directories
//!
//! Reproduction of GIGA+ (Patil & Gibson; CMU-PDL-08-110 / FAST'11), the
//! PDSI metadata exploration behind report §4.2.2 and Fig. 7: hash
//! partitioning of one huge directory over many servers with
//! *incremental* splitting and *stale-tolerant* client routing, so that
//! concurrent create storms (the UCAR Metarates workload) scale with
//! server count instead of serializing on one metadata server.
//!
//! - [`hashing`]: the split-history bitmap and name hashing.
//! - [`dir`]: the partitioned directory data structure itself, with
//!   checked invariants.
//! - [`simulate`]: Metarates create-storm timing over the real data
//!   structure (Fig. 7 regenerator).

pub mod dir;
pub mod hashing;
pub mod simulate;

pub use dir::GigaDirectory;
pub use hashing::{hash_name, Bitmap};
pub use simulate::{run_metarates, scaling_sweep, MetaratesConfig, MetaratesReport, Scheme};
