//! The GIGA+ directory data structure (functional core).
//!
//! A real, lookup-correct implementation of the partitioned directory:
//! inserts, lookups, removals, and partition splits, with the invariants
//! the FAST'11 paper relies on:
//!
//! 1. every partition id matches the low `depth` bits of every hash it
//!    stores;
//! 2. partitions' hash ranges are disjoint and cover the hash space;
//! 3. a stale-bitmap lookup lands on an *ancestor* of the correct
//!    partition, never a wrong sibling — so forwarding is always local.

use crate::hashing::{hash_name, mask, server_of_partition, Bitmap};
use std::collections::HashMap;

/// One hash-range partition of the directory.
#[derive(Debug, Clone)]
pub struct Partition {
    pub id: u64,
    pub depth: u32,
    /// name -> hash (kept for split redistribution).
    entries: HashMap<String, u64>,
}

impl Partition {
    fn new(id: u64, depth: u32) -> Self {
        Partition { id, depth, entries: HashMap::new() }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A scalable directory: partitions + the authoritative bitmap.
#[derive(Debug, Clone)]
pub struct GigaDirectory {
    partitions: HashMap<u64, Partition>,
    bitmap: Bitmap,
    /// Entries per partition before it splits.
    split_threshold: usize,
    servers: usize,
    splits: u64,
    migrated: u64,
}

impl GigaDirectory {
    pub fn new(servers: usize, split_threshold: usize) -> Self {
        assert!(servers > 0 && split_threshold > 0);
        let mut partitions = HashMap::new();
        partitions.insert(0, Partition::new(0, 0));
        GigaDirectory {
            partitions,
            bitmap: Bitmap::new(),
            split_threshold,
            servers,
            splits: 0,
            migrated: 0,
        }
    }

    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    pub fn len(&self) -> usize {
        self.partitions.values().map(|p| p.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total splits performed.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Total entries migrated by splits.
    pub fn migrated(&self) -> u64 {
        self.migrated
    }

    /// The server currently responsible for `name`.
    pub fn server_of(&self, name: &str) -> usize {
        let p = self.bitmap.partition_of(hash_name(name));
        server_of_partition(p, self.servers)
    }

    /// Insert a name. Returns `false` if it already existed.
    pub fn insert(&mut self, name: &str) -> bool {
        let h = hash_name(name);
        let pid = self.bitmap.partition_of(h);
        let part = self.partitions.get_mut(&pid).expect("bitmap names missing partition");
        if part.entries.contains_key(name) {
            return false;
        }
        part.entries.insert(name.to_string(), h);
        if part.len() > self.split_threshold {
            self.split(pid);
        }
        true
    }

    /// Does the directory contain `name`?
    pub fn contains(&self, name: &str) -> bool {
        let h = hash_name(name);
        let pid = self.bitmap.partition_of(h);
        self.partitions[&pid].entries.contains_key(name)
    }

    /// Remove a name. Returns `true` if present.
    pub fn remove(&mut self, name: &str) -> bool {
        let h = hash_name(name);
        let pid = self.bitmap.partition_of(h);
        self.partitions.get_mut(&pid).map(|p| p.entries.remove(name).is_some()).unwrap_or(false)
    }

    /// Split partition `pid`, moving entries whose next hash bit is 1
    /// into the new sibling.
    fn split(&mut self, pid: u64) {
        let (depth, moved): (u32, Vec<(String, u64)>) = {
            let part = self.partitions.get_mut(&pid).unwrap();
            let d = part.depth;
            let bit = 1u64 << d;
            let mut moved = Vec::new();
            part.entries.retain(|name, &mut h| {
                if h & bit != 0 {
                    moved.push((name.clone(), h));
                    false
                } else {
                    true
                }
            });
            part.depth = d + 1;
            (d, moved)
        };
        let sibling_id = self.bitmap.record_split(pid, depth);
        let mut sibling = Partition::new(sibling_id, depth + 1);
        self.migrated += moved.len() as u64;
        self.splits += 1;
        sibling.entries.extend(moved);
        self.partitions.insert(sibling_id, sibling);
    }

    /// Validate structural invariants (used by tests and proptests).
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        for (id, p) in &self.partitions {
            assert_eq!(*id, p.id);
            assert!(self.bitmap.contains(*id), "partition {id} missing from bitmap");
            for (name, &h) in &p.entries {
                assert_eq!(hash_name(name), h);
                assert_eq!(
                    h & mask(p.depth),
                    *id,
                    "entry {name} in wrong partition {id} (depth {})",
                    p.depth
                );
                // The bitmap must route this hash right back here.
                assert_eq!(self.bitmap.partition_of(h), *id);
            }
            total += p.len();
        }
        assert_eq!(total, self.len());
    }

    /// Per-partition sizes keyed by server — used to verify load spread.
    pub fn load_by_server(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.servers];
        for p in self.partitions.values() {
            load[server_of_partition(p.id, self.servers)] += p.len();
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut d = GigaDirectory::new(4, 100);
        assert!(d.insert("file.0"));
        assert!(!d.insert("file.0"));
        assert!(d.contains("file.0"));
        assert!(!d.contains("file.1"));
        d.check_invariants();
    }

    #[test]
    fn splits_happen_and_lookups_survive() {
        let mut d = GigaDirectory::new(4, 64);
        let names: Vec<String> = (0..10_000).map(|i| format!("f{i:06}")).collect();
        for n in &names {
            assert!(d.insert(n));
        }
        assert!(d.splits() > 0, "no splits at 10k entries with threshold 64");
        assert!(d.partition_count() > 64);
        for n in &names {
            assert!(d.contains(n), "lost {n} after splits");
        }
        d.check_invariants();
    }

    #[test]
    fn removal_works_after_splits() {
        let mut d = GigaDirectory::new(2, 32);
        for i in 0..1000 {
            d.insert(&format!("x{i}"));
        }
        for i in 0..1000 {
            assert!(d.remove(&format!("x{i}")), "missing x{i}");
        }
        assert!(d.is_empty());
        d.check_invariants();
    }

    #[test]
    fn load_spreads_across_servers() {
        let mut d = GigaDirectory::new(8, 64);
        for i in 0..20_000 {
            d.insert(&format!("entry-{i}"));
        }
        let load = d.load_by_server();
        let max = *load.iter().max().unwrap() as f64;
        let min = *load.iter().min().unwrap() as f64;
        assert!(min > 0.0, "a server got nothing: {load:?}");
        assert!(max / min < 3.0, "imbalanced load: {load:?}");
    }

    #[test]
    fn stale_bitmap_routes_to_holder_or_ancestor() {
        let mut d = GigaDirectory::new(4, 16);
        let stale = d.bitmap().clone();
        for i in 0..2000 {
            d.insert(&format!("n{i}"));
        }
        // A lookup with the stale bitmap must land on an ancestor whose
        // id is a prefix (low-bits) of the true partition.
        for i in 0..2000 {
            let h = hash_name(&format!("n{i}"));
            let true_p = d.bitmap().partition_of(h);
            let stale_p = stale.partition_of(h);
            // stale partition id must equal true id's low bits at the
            // stale partition's (shallower or equal) depth.
            let mut matched = false;
            for depth in 0..=64u32 {
                if h & mask(depth) == stale_p {
                    matched = true;
                    break;
                }
                if depth > 0 && h & mask(depth) == true_p {
                    break;
                }
            }
            assert!(matched, "stale route {stale_p} not an ancestor of {true_p}");
        }
    }

    #[test]
    fn migrated_entries_bounded_by_half_per_split() {
        let mut d = GigaDirectory::new(4, 100);
        for i in 0..50_000 {
            d.insert(&format!("m{i}"));
        }
        // Each split moves at most threshold+1 entries (about half on
        // average); migration per split must stay near that bound.
        let per_split = d.migrated() as f64 / d.splits() as f64;
        assert!(per_split <= 101.0, "split moved too much: {per_split}");
        assert!(per_split >= 20.0, "splits suspiciously empty: {per_split}");
    }
}
