//! Metarates-style create-storm timing simulation (Fig. 7).
//!
//! The report's Fig. 7 shows GIGA+ scale/performance under the UCAR
//! Metarates benchmark: many clients concurrently creating files in one
//! directory, versus the single-metadata-server baseline that deployed
//! parallel file systems offered. This module drives the real
//! [`GigaDirectory`] data structure with simulated timing: per-server
//! service timelines, per-client RPC streams, stale-bitmap retries, and
//! split migration costs.

use crate::dir::GigaDirectory;
use crate::hashing::{hash_name, server_of_partition, Bitmap};
use simkit::{SimDuration, SimTime, Timeline};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How directory metadata is spread over servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// GIGA+: incremental splitting, stale client maps, lazy correction.
    GigaPlus,
    /// Everything on one metadata server (the deployed-system baseline).
    SingleServer,
    /// Oracle: clients always address the correct GIGA+ partition
    /// (upper bound — no addressing errors, splits still cost).
    OracleHash,
}

/// Create-storm benchmark configuration.
#[derive(Debug, Clone)]
pub struct MetaratesConfig {
    pub clients: usize,
    pub files_per_client: usize,
    pub servers: usize,
    pub scheme: Scheme,
    /// Entries per partition before splitting.
    pub split_threshold: usize,
    /// Server CPU time per create.
    pub create_cost: SimDuration,
    /// One-way network latency per hop.
    pub rpc: SimDuration,
    /// Server time to migrate one entry during a split.
    pub migrate_per_entry: SimDuration,
}

impl MetaratesConfig {
    pub fn new(clients: usize, files_per_client: usize, servers: usize, scheme: Scheme) -> Self {
        MetaratesConfig {
            clients,
            files_per_client,
            servers,
            scheme,
            split_threshold: 2000,
            create_cost: SimDuration::from_micros(300),
            rpc: SimDuration::from_micros(20),
            migrate_per_entry: SimDuration::from_micros(5),
        }
    }
}

/// Results of one create-storm run.
#[derive(Debug, Clone)]
pub struct MetaratesReport {
    pub makespan: SimDuration,
    pub creates: u64,
    /// Client requests that hit a stale-map server and were re-routed.
    pub addressing_errors: u64,
    pub splits: u64,
    pub partitions: usize,
}

impl MetaratesReport {
    pub fn create_rate(&self) -> f64 {
        self.creates as f64 / self.makespan.as_secs_f64()
    }
}

/// Run the create storm.
pub fn run_metarates(cfg: &MetaratesConfig) -> MetaratesReport {
    assert!(cfg.servers > 0 && cfg.clients > 0);
    let mut dir = GigaDirectory::new(cfg.servers, cfg.split_threshold);
    let mut servers = vec![Timeline::new(); cfg.servers];
    let mut client_maps = vec![Bitmap::new(); cfg.clients];
    let mut addressing_errors = 0u64;

    // Earliest-ready client scheduling.
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> =
        (0..cfg.clients).map(|c| Reverse((SimTime::ZERO, c))).collect();
    let mut next_file = vec![0usize; cfg.clients];
    let mut makespan = SimTime::ZERO;

    while let Some(Reverse((ready, c))) = heap.pop() {
        let i = next_file[c];
        next_file[c] += 1;
        let name = format!("metarates.{c}.{i}");
        let hash = hash_name(&name);

        let done = match cfg.scheme {
            Scheme::SingleServer => {
                let (_, end) = servers[0].reserve(ready + cfg.rpc, cfg.create_cost);
                dir.insert(&name);
                end + cfg.rpc
            }
            Scheme::GigaPlus | Scheme::OracleHash => {
                let true_pid = dir.bitmap().partition_of(hash);
                let true_server = server_of_partition(true_pid, cfg.servers);
                let mut t = ready;
                if cfg.scheme == Scheme::GigaPlus {
                    // Follow the client's stale map; each wrong hop costs
                    // a round trip and returns a bitmap refresh.
                    let mut hops = 0u32;
                    loop {
                        let guess = client_maps[c].partition_of(hash);
                        let guess_server = server_of_partition(guess, cfg.servers);
                        if guess_server == true_server {
                            break;
                        }
                        addressing_errors += 1;
                        hops += 1;
                        t += cfg.rpc * 2;
                        client_maps[c].merge(dir.bitmap());
                        debug_assert!(hops <= 64, "routing loop");
                    }
                }
                let before = dir.splits();
                dir.insert(&name);
                let mut service = cfg.create_cost;
                if dir.splits() > before {
                    // This create triggered a split: the server pays the
                    // migration inline (the paper's incremental split).
                    let moved = cfg.split_threshold as u64 / 2;
                    service += cfg.migrate_per_entry * moved;
                }
                let (_, end) = servers[true_server].reserve(t + cfg.rpc, service);
                end + cfg.rpc
            }
        };

        makespan = makespan.max_of(done);
        if next_file[c] < cfg.files_per_client {
            heap.push(Reverse((done, c)));
        }
    }

    MetaratesReport {
        makespan: makespan.since(SimTime::ZERO),
        creates: (cfg.clients * cfg.files_per_client) as u64,
        addressing_errors,
        splits: dir.splits(),
        partitions: dir.partition_count(),
    }
}

/// Sweep server counts, reporting create rate per point — the Fig. 7
/// series.
pub fn scaling_sweep(
    clients: usize,
    files_per_client: usize,
    server_counts: &[usize],
    scheme: Scheme,
) -> Vec<(usize, f64)> {
    server_counts
        .iter()
        .map(|&s| {
            let cfg = MetaratesConfig::new(clients, files_per_client, s, scheme);
            (s, run_metarates(&cfg).create_rate())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giga_scales_with_servers() {
        let sweep = scaling_sweep(64, 500, &[1, 4, 16], Scheme::GigaPlus);
        let r1 = sweep[0].1;
        let r16 = sweep[2].1;
        assert!(r16 > 5.0 * r1, "GIGA+ should scale: 1 server {r1:.0}/s vs 16 servers {r16:.0}/s");
    }

    #[test]
    fn single_server_does_not_scale() {
        let sweep = scaling_sweep(64, 200, &[1, 16], Scheme::SingleServer);
        let ratio = sweep[1].1 / sweep[0].1;
        assert!(ratio < 1.2, "single-server baseline 'scaled' {ratio:.2}x");
    }

    #[test]
    fn giga_beats_single_server_at_scale() {
        let giga = run_metarates(&MetaratesConfig::new(64, 500, 16, Scheme::GigaPlus));
        let single = run_metarates(&MetaratesConfig::new(64, 500, 16, Scheme::SingleServer));
        assert!(giga.create_rate() > 4.0 * single.create_rate());
    }

    #[test]
    fn stale_maps_cause_bounded_addressing_errors() {
        let rep = run_metarates(&MetaratesConfig::new(32, 1000, 8, Scheme::GigaPlus));
        assert!(rep.addressing_errors > 0, "expected some stale hits");
        // FAST'11 result: addressing errors are a tiny fraction of ops.
        let frac = rep.addressing_errors as f64 / rep.creates as f64;
        assert!(frac < 0.2, "too many addressing errors: {frac}");
    }

    #[test]
    fn oracle_at_least_as_fast_as_giga() {
        let giga = run_metarates(&MetaratesConfig::new(32, 500, 8, Scheme::GigaPlus));
        let oracle = run_metarates(&MetaratesConfig::new(32, 500, 8, Scheme::OracleHash));
        assert!(oracle.create_rate() >= giga.create_rate() * 0.99);
    }

    #[test]
    fn splits_grow_partition_count() {
        let rep = run_metarates(&MetaratesConfig::new(16, 2000, 8, Scheme::GigaPlus));
        assert!(rep.splits > 0);
        assert!(rep.partitions > 8);
    }
}
