//! GIGA+ hash-space partitioning: the split bitmap.
//!
//! GIGA+ (Patil & Gibson, FAST'11; CMU-PDL-08-110) divides a directory's
//! hash space over partitions identified by the *low bits* of the name
//! hash. A partition with id `i` at depth `d` owns every hash whose low
//! `d` bits equal `i`. Splitting `i` at depth `d` creates partition
//! `i + 2^d` at depth `d+1` (taking the hashes whose bit `d` is 1) and
//! deepens `i` to `d+1`. The *bitmap* of existing partition ids is the
//! only state a client needs to address a name — and it tolerates
//! staleness: a stale bitmap addresses the split ancestor, whose server
//! forwards/corrects, so clients never block on split propagation.

/// FNV-1a hash of a file name — stable across runs and platforms.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The split-history bitmap: which partition ids exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    /// bits[i] == true iff partition id `i` exists.
    bits: Vec<bool>,
    /// Maximum depth any partition has reached.
    max_depth: u32,
}

impl Default for Bitmap {
    fn default() -> Self {
        Self::new()
    }
}

impl Bitmap {
    /// A fresh directory: a single partition 0 at depth 0.
    pub fn new() -> Self {
        Bitmap { bits: vec![true], max_depth: 0 }
    }

    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    pub fn partition_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    pub fn contains(&self, id: u64) -> bool {
        (id as usize) < self.bits.len() && self.bits[id as usize]
    }

    /// Record that partition `id` at depth `depth` split, creating
    /// `id + 2^depth`.
    pub fn record_split(&mut self, id: u64, depth: u32) -> u64 {
        debug_assert!(self.contains(id), "splitting unknown partition {id}");
        let sibling = id + (1u64 << depth);
        let need = sibling as usize + 1;
        if self.bits.len() < need {
            self.bits.resize(need, false);
        }
        self.bits[sibling as usize] = true;
        self.max_depth = self.max_depth.max(depth + 1);
        sibling
    }

    /// The partition id this bitmap addresses `hash` to: the deepest
    /// existing partition whose id matches the hash's low bits.
    pub fn partition_of(&self, hash: u64) -> u64 {
        let mut d = self.max_depth;
        loop {
            let id = hash & mask(d);
            if self.contains(id) {
                return id;
            }
            debug_assert!(d > 0, "partition 0 must always exist");
            d -= 1;
        }
    }

    /// Merge knowledge from `other` (used when a server returns a
    /// bitmap update to a stale client).
    pub fn merge(&mut self, other: &Bitmap) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), false);
        }
        for (i, &b) in other.bits.iter().enumerate() {
            if b {
                self.bits[i] = true;
            }
        }
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

#[inline]
pub fn mask(depth: u32) -> u64 {
    if depth >= 64 {
        u64::MAX
    } else {
        (1u64 << depth) - 1
    }
}

/// Round-robin partition-to-server mapping used by GIGA+: partitions
/// spread over servers as they are created.
pub fn server_of_partition(partition: u64, servers: usize) -> usize {
    (partition % servers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bitmap_routes_everything_to_zero() {
        let b = Bitmap::new();
        assert_eq!(b.partition_of(0), 0);
        assert_eq!(b.partition_of(u64::MAX), 0);
        assert_eq!(b.partition_count(), 1);
    }

    #[test]
    fn split_separates_by_bit() {
        let mut b = Bitmap::new();
        let sib = b.record_split(0, 0);
        assert_eq!(sib, 1);
        // Even hashes stay in 0, odd hashes go to 1.
        assert_eq!(b.partition_of(0b100), 0);
        assert_eq!(b.partition_of(0b101), 1);
        assert_eq!(b.partition_count(), 2);
    }

    #[test]
    fn deep_split_tree_routes_consistently() {
        let mut b = Bitmap::new();
        b.record_split(0, 0); // -> 0,1 at depth 1
        b.record_split(0, 1); // -> 0,2 at depth 2
        b.record_split(1, 1); // -> 1,3 at depth 2
        b.record_split(2, 2); // -> 2,6 at depth 3
        for hash in 0..64u64 {
            let p = b.partition_of(hash);
            assert!(b.contains(p));
            // The partition id must match the hash's low bits at *some*
            // depth <= max_depth.
            let ok = (0..=b.max_depth()).any(|d| hash & mask(d) == p);
            assert!(ok, "hash {hash} routed to inconsistent partition {p}");
        }
    }

    #[test]
    fn stale_bitmap_routes_to_ancestor() {
        let mut fresh = Bitmap::new();
        let stale = fresh.clone();
        fresh.record_split(0, 0);
        // Hash 1 now lives in partition 1, but the stale map still says 0
        // — the split *ancestor*, which holds the forwarding state.
        assert_eq!(fresh.partition_of(1), 1);
        assert_eq!(stale.partition_of(1), 0);
    }

    #[test]
    fn merge_brings_client_up_to_date() {
        let mut fresh = Bitmap::new();
        fresh.record_split(0, 0);
        fresh.record_split(1, 1);
        let mut stale = Bitmap::new();
        stale.merge(&fresh);
        assert_eq!(stale, fresh);
    }

    #[test]
    fn hash_is_stable() {
        assert_eq!(hash_name("checkpoint.0001"), hash_name("checkpoint.0001"));
        assert_ne!(hash_name("a"), hash_name("b"));
    }

    #[test]
    fn server_mapping_round_robins() {
        assert_eq!(server_of_partition(0, 4), 0);
        assert_eq!(server_of_partition(5, 4), 1);
        assert_eq!(server_of_partition(7, 4), 3);
    }
}
