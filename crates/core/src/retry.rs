//! Bounded retry with exponential backoff for backend operations.
//!
//! At petascale the storage substrate routinely returns transient
//! errors (`EINTR`/`EAGAIN`, network-store timeouts); middleware that
//! surfaces every one of them to the application makes checkpointing
//! hopeless. [`RetryPolicy`] masks transient failures with bounded
//! exponential backoff and deterministic jitter, and gives up
//! immediately on errors classified as fatal.
//!
//! The delicate case is a **torn append**: the store advanced by an
//! unknown prefix before the error surfaced, so blindly re-appending
//! would duplicate bytes. [`append_at_reliable`] exploits the PLFS
//! ownership rule — each rank is the *only* writer of its droppings —
//! to recover exactly: it re-queries the file length, computes how much
//! of the buffer already landed, and appends only the remaining suffix.

use crate::backend::Backend;
use obs::trace::{Phase, TraceCtx};
use obs::{Counter, Registry};
use std::fmt;
use std::io;
use std::time::Duration;

/// A checksum-verified read observed data that does not match its
/// recorded checksum: silent corruption, detected.
///
/// Always **fatal** to the retry machinery — the store happily serves
/// the same rotten bytes again, so a retry can only mask the corruption
/// and burn the retry budget (see [`classify`]). Carried as the source
/// of an [`io::ErrorKind::InvalidData`] error so it flows through every
/// `io::Result` path unchanged; use [`is_integrity`] to tell it apart
/// from other invalid-data errors (e.g. a bad record tag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityError {
    /// The dropping (or sidecar) holding the bad bytes.
    pub path: String,
    /// Byte offset of the start of the failing verify block.
    pub offset: u64,
    /// Human-readable detail (what was checked, what mismatched).
    pub detail: String,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "integrity violation in {} at byte {}: {}", self.path, self.offset, self.detail)
    }
}

impl std::error::Error for IntegrityError {}

impl IntegrityError {
    /// Wrap into the `io::Error` the read path surfaces.
    pub fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self)
    }
}

/// Does this error carry an [`IntegrityError`] (at any wrap depth the
/// read path produces)?
pub fn is_integrity(err: &io::Error) -> bool {
    err.get_ref().is_some_and(|inner| inner.is::<IntegrityError>())
}

/// Retryability of an I/O error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The operation may succeed if retried (store state unharmed or
    /// recoverable).
    Transient,
    /// Retrying cannot help (missing file, permission, crashed store).
    Fatal,
}

/// Classify an error the way the retry machinery does.
///
/// `Interrupted` (EINTR), `WouldBlock` (EAGAIN) and `TimedOut` are
/// transient; everything else — `NotFound`, `PermissionDenied`,
/// `BrokenPipe` (our crash-stop marker), `InvalidData`, ... — is fatal.
///
/// [`IntegrityError`] is checked *first* and is always fatal, even if a
/// future wrapping ever gave it a retryable kind: re-reading silently
/// corrupted data returns the same corrupted data, so a retry would
/// count the corruption as a masked transient and hide it.
pub fn classify(err: &io::Error) -> ErrorClass {
    if is_integrity(err) {
        return ErrorClass::Fatal;
    }
    match err.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            ErrorClass::Transient
        }
        _ => ErrorClass::Fatal,
    }
}

/// Observable counters for the retry machinery: one clonable bundle of
/// [`Counter`] handles shared by every policy derived from it.
///
/// The counters carry the `retry.*` schema:
///
/// - `retry.attempts` — backend operation attempts issued through the
///   retry layer (first tries included);
/// - `retry.masked_transient` — transient failures absorbed by a retry
///   where the store had *not* advanced;
/// - `retry.torn_recovered` — absorbed append failures where the store
///   *had* advanced (a torn append resumed mid-buffer);
/// - `retry.surfaced` — errors returned to the caller (fatal, or budget
///   exhausted);
/// - `retry.backoff_ns` — cumulative backoff slept, nanoseconds.
///
/// Under zero surfaced errors these tie exactly to the fault injector:
/// `retry.masked_transient == faults.injected_transient` and
/// `retry.torn_recovered == faults.injected_torn`.
#[derive(Debug, Clone)]
pub struct RetryObs {
    pub attempts: Counter,
    pub masked_transient: Counter,
    pub torn_recovered: Counter,
    pub surfaced: Counter,
    pub backoff_ns: Counter,
}

impl RetryObs {
    /// Counters registered in `reg` under the `retry.*` names.
    pub fn registered(reg: &Registry) -> Self {
        RetryObs {
            attempts: reg.counter("retry.attempts"),
            masked_transient: reg.counter("retry.masked_transient"),
            torn_recovered: reg.counter("retry.torn_recovered"),
            surfaced: reg.counter("retry.surfaced"),
            backoff_ns: reg.counter("retry.backoff_ns"),
        }
    }

    /// Standalone counters not attached to any registry (the default for
    /// a bare policy; [`crate::Plfs`] rebinds to its registry on open).
    pub fn detached() -> Self {
        Self::registered(&Registry::new())
    }
}

impl Default for RetryObs {
    fn default() -> Self {
        RetryObs::detached()
    }
}

/// Bounded exponential backoff policy.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub max_retries: u32,
    /// Delay before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter: each delay is scaled by a deterministic factor in
    /// `[1 - jitter, 1]`. 0 disables.
    pub jitter_frac: f64,
    /// Seed mixed into the jitter hash. Two policies with different
    /// seeds sleep *differently* on the same attempt number — the
    /// decorrelation that keeps a swarm of clients retrying after a
    /// shared stall from thundering-herding the backend in lockstep.
    /// Each policy remains individually deterministic.
    pub jitter_seed: u64,
    /// Counter handles this policy records into.
    pub obs: RetryObs,
}

// Equality is over the numeric tuning only: two policies with the same
// budget and delay envelope are equal regardless of where they record
// or which jitter seed decorrelates them.
impl PartialEq for RetryPolicy {
    fn eq(&self, other: &Self) -> bool {
        self.max_retries == other.max_retries
            && self.base_delay == other.base_delay
            && self.max_delay == other.max_delay
            && self.jitter_frac == other.jitter_frac
    }
}

impl Default for RetryPolicy {
    /// Production-flavoured: 4 retries, 5 ms → 80 ms backoff, 50% jitter.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(500),
            jitter_frac: 0.5,
            jitter_seed: 0,
            obs: RetryObs::detached(),
        }
    }
}

impl RetryPolicy {
    /// Never retry: every error surfaces immediately. This is the
    /// pre-fault-injection behaviour and the right choice inside crash
    /// experiments, where a frozen store must not be hammered.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_frac: 0.0,
            jitter_seed: 0,
            obs: RetryObs::detached(),
        }
    }

    /// The same policy recording into `reg` (shares `reg`'s `retry.*`
    /// counters with every other policy bound to it).
    pub fn bound_to(mut self, reg: &Registry) -> Self {
        self.obs = RetryObs::registered(reg);
        self
    }

    /// The same policy with its jitter decorrelated by `seed` (see
    /// [`RetryPolicy::jitter_seed`]). [`crate::Plfs::open_writer`] seeds
    /// each writer's policy with its reserved session so concurrent
    /// clients spread their retries instead of colliding in lockstep.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Aggressive and sleepless, for tests: enough attempts that a
    /// ≤10% transient fault rate is masked with overwhelming
    /// probability (0.1^16 per operation), with zero wall-clock delay.
    pub fn fast_test() -> Self {
        RetryPolicy {
            max_retries: 16,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_frac: 0.0,
            jitter_seed: 0,
            obs: RetryObs::detached(),
        }
    }

    /// Backoff before retry number `attempt` (1-based). Deterministic:
    /// the jitter comes from a hash of `(jitter_seed, attempt)`, not a
    /// global RNG, so identical runs sleep identically — while policies
    /// with different seeds (one per swarm client) sleep out of phase.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.max_delay);
        if self.jitter_frac <= 0.0 {
            return exp;
        }
        // splitmix64 of (seed, attempt) → factor in [1-jitter, 1].
        let mut z = (attempt as u64)
            .wrapping_add(self.jitter_seed.wrapping_mul(0xd6e8_feb8_6659_fd93))
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        let unit = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.jitter_frac * unit;
        exp.mul_f64(factor)
    }

    /// Run `op`, retrying transient failures per the policy. The final
    /// error (transient budget exhausted, or any fatal error) surfaces
    /// unchanged.
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            self.obs.attempts.inc();
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if classify(&e) == ErrorClass::Fatal || attempt >= self.max_retries {
                        self.obs.surfaced.inc();
                        return Err(e);
                    }
                    attempt += 1;
                    self.obs.masked_transient.inc();
                    let d = self.backoff(attempt);
                    if !d.is_zero() {
                        self.obs.backoff_ns.add(d.as_nanos() as u64);
                        std::thread::sleep(d);
                    }
                }
            }
        }
    }
}

/// A [`Backend`] view that retries every *idempotent* operation per a
/// policy. Composite helpers (container creation, dropping discovery)
/// issue dozens of backend calls; retrying them as a unit compounds the
/// per-call fault probability instead of masking it, so the retry must
/// sit at the single-operation level.
///
/// `append` is deliberately NOT retried here: a torn append needs
/// offset-aware resume ([`append_at_reliable`]), and blind re-append
/// would duplicate the landed prefix. `exists` is infallible and passes
/// through.
pub struct RetriedBackend<'a> {
    inner: &'a dyn Backend,
    policy: &'a RetryPolicy,
}

impl<'a> RetriedBackend<'a> {
    pub fn new(inner: &'a dyn Backend, policy: &'a RetryPolicy) -> Self {
        RetriedBackend { inner, policy }
    }
}

impl Backend for RetriedBackend<'_> {
    fn mkdir_all(&self, path: &str) -> io::Result<()> {
        self.policy.run(|| self.inner.mkdir_all(path))
    }

    fn create(&self, path: &str) -> io::Result<()> {
        self.policy.run(|| self.inner.create(path))
    }

    fn create_new(&self, path: &str) -> io::Result<()> {
        // `AlreadyExists` is the *expected* answer for the CAS loser,
        // not a failure: smuggle it through `run` as a success so it is
        // neither retried nor counted in `retry.surfaced` (which must
        // stay zero on a healthy store even while openers race).
        match self.policy.run(|| match self.inner.create_new(path) {
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(Some(e)),
            Err(e) => Err(e),
            Ok(()) => Ok(None),
        })? {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        // Single-shot: see type-level docs.
        self.policy.obs.attempts.inc();
        self.inner.append(path, data).inspect_err(|_| self.policy.obs.surfaced.inc())
    }

    fn read_at(&self, path: &str, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.policy.run(|| self.inner.read_at(path, off, buf))
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        self.policy.run(|| self.inner.len(path))
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        self.policy.run(|| self.inner.list(dir))
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.policy.run(|| self.inner.remove(path))
    }

    fn remove_dir_all(&self, path: &str) -> io::Result<()> {
        self.policy.run(|| self.inner.remove_dir_all(path))
    }
}

/// `len()` that treats a missing file as empty, retried per policy.
pub fn len_or_zero(backend: &dyn Backend, policy: &RetryPolicy, path: &str) -> io::Result<u64> {
    policy.run(|| match backend.len(path) {
        Ok(n) => Ok(n),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    })
}

/// Append `data` to `path` such that, on success, the file holds
/// exactly one copy of `data` starting at `expected_base` — even when
/// attempts tear (land a prefix).
///
/// Requires exclusive ownership of `path` (the PLFS dropping rule) and
/// that the file's length was `expected_base` when this logical append
/// began. Pass `verify_first = true` when a *previous* call for this
/// same buffer failed: the file may already hold a prefix (or all) of
/// `data`, and the call resumes instead of duplicating.
pub fn append_at_reliable(
    backend: &dyn Backend,
    policy: &RetryPolicy,
    path: &str,
    expected_base: u64,
    data: &[u8],
    verify_first: bool,
) -> io::Result<()> {
    append_at_reliable_traced(
        backend,
        policy,
        path,
        expected_base,
        data,
        verify_first,
        &TraceCtx::disabled(),
        "",
        0,
    )
}

/// [`append_at_reliable`] recording each backend attempt (and every
/// torn-append resume) as a child span of `parent` on `track`. Retry
/// spans are how checkpoints that *succeeded but crawled* show their
/// masked-fault tax in a trace.
#[allow(clippy::too_many_arguments)]
pub fn append_at_reliable_traced(
    backend: &dyn Backend,
    policy: &RetryPolicy,
    path: &str,
    expected_base: u64,
    data: &[u8],
    verify_first: bool,
    trace: &TraceCtx,
    track: &str,
    parent: u64,
) -> io::Result<()> {
    let record_attempt = |n: u32, t0: u64, outcome: &str| {
        if trace.enabled() {
            let t1 = trace.clock.now_nanos().max(t0);
            trace.sink.record_labeled(
                "retry.attempt",
                Phase::Retry,
                track,
                t0,
                t1,
                parent,
                &[("attempt", &n.to_string()), ("outcome", outcome)],
            );
        }
    };
    let mut landed = if verify_first {
        recovered_progress(backend, policy, path, expected_base, data.len())?
    } else {
        0
    };
    if landed >= data.len() {
        return Ok(());
    }
    let mut attempt = 0u32;
    loop {
        policy.obs.attempts.inc();
        let t0 = if trace.enabled() { trace.clock.now_nanos() } else { 0 };
        match backend.append(path, &data[landed..]) {
            Ok(off) => {
                if off != expected_base + landed as u64 {
                    policy.obs.surfaced.inc();
                    record_attempt(attempt + 1, t0, "inconsistent");
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "exclusive-append violated on {path}: landed at {off}, \
                             expected {}",
                            expected_base + landed as u64
                        ),
                    ));
                }
                // The common first-try success stays invisible: only
                // actual *re*-tries earn spans, keeping fault-free
                // traces free of per-append noise.
                if attempt > 0 {
                    record_attempt(attempt + 1, t0, "ok");
                }
                return Ok(());
            }
            Err(e) => {
                if classify(&e) == ErrorClass::Fatal || attempt >= policy.max_retries {
                    policy.obs.surfaced.inc();
                    record_attempt(attempt + 1, t0, "surfaced");
                    return Err(e);
                }
                attempt += 1;
                record_attempt(attempt, t0, "absorbed");
                let d = policy.backoff(attempt);
                if !d.is_zero() {
                    policy.obs.backoff_ns.add(d.as_nanos() as u64);
                    std::thread::sleep(d);
                }
                // The failed attempt may have torn: re-measure. If the
                // store advanced, this absorbed failure was a torn append
                // we are now resuming; otherwise it was a plain transient.
                // (Tears always land a nonempty prefix — see
                // `FaultyBackend::append` — so the distinction is exact.)
                let before = landed;
                landed = recovered_progress(backend, policy, path, expected_base, data.len())?;
                if landed > before {
                    policy.obs.torn_recovered.inc();
                    if trace.enabled() {
                        let t = trace.clock.now_nanos();
                        trace.sink.record_labeled(
                            "torn.recovery",
                            Phase::Retry,
                            track,
                            t,
                            t,
                            parent,
                            &[("resumed_at", &landed.to_string())],
                        );
                    }
                } else {
                    policy.obs.masked_transient.inc();
                }
                if landed >= data.len() {
                    return Ok(());
                }
            }
        }
    }
}

/// How many bytes of the current buffer already reached the store.
fn recovered_progress(
    backend: &dyn Backend,
    policy: &RetryPolicy,
    path: &str,
    expected_base: u64,
    buf_len: usize,
) -> io::Result<usize> {
    let cur = len_or_zero(backend, policy, path)?;
    if cur < expected_base {
        policy.obs.surfaced.inc();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{path} shrank under us: len {cur} < expected base {expected_base}"),
        ));
    }
    Ok(((cur - expected_base) as usize).min(buf_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::faults::{FaultPlan, FaultyBackend};

    #[test]
    fn classify_splits_transient_from_fatal() {
        for k in [io::ErrorKind::Interrupted, io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            assert_eq!(classify(&io::Error::new(k, "x")), ErrorClass::Transient);
        }
        for k in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::InvalidData,
        ] {
            assert_eq!(classify(&io::Error::new(k, "x")), ErrorClass::Fatal);
        }
    }

    #[test]
    fn integrity_errors_are_fatal_and_never_retried() {
        let err = IntegrityError {
            path: "/c/hostdir.0/data.3".into(),
            offset: 8192,
            detail: "block CRC mismatch".into(),
        }
        .into_io();
        assert!(is_integrity(&err));
        assert!(!is_integrity(&io::Error::new(io::ErrorKind::InvalidData, "bad tag")));
        assert_eq!(classify(&err), ErrorClass::Fatal);

        // The retry loop must surface it on the first attempt and count
        // nothing as masked.
        let reg = Registry::new();
        let policy = RetryPolicy::fast_test().bound_to(&reg);
        let mut calls = 0;
        let got: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(IntegrityError { path: "/f".into(), offset: 0, detail: "rot".into() }.into_io())
        });
        assert!(is_integrity(&got.unwrap_err()), "identity survives the retry layer");
        assert_eq!(calls, 1, "corrupt data must not be re-read");
        assert_eq!(reg.value("retry.masked_transient"), Some(0));
        assert_eq!(reg.value("retry.surfaced"), Some(1));
    }

    #[test]
    fn run_retries_transient_until_success() {
        let policy = RetryPolicy::fast_test();
        let mut left = 5;
        let got = policy.run(|| {
            if left > 0 {
                left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "flap"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(got.unwrap(), 42);
    }

    #[test]
    fn run_gives_up_after_budget() {
        let policy = RetryPolicy { max_retries: 3, ..RetryPolicy::fast_test() };
        let mut calls = 0;
        let got: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "always"))
        });
        assert_eq!(got.unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls, 4, "first try + 3 retries");
    }

    #[test]
    fn run_fails_fast_on_fatal() {
        let policy = RetryPolicy::fast_test();
        let mut calls = 0;
        let got: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        });
        assert_eq!(got.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls, 1, "fatal errors must not be retried");
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_frac: 0.5,
            jitter_seed: 0,
            obs: RetryObs::detached(),
        };
        for a in 1..=10 {
            let d = p.backoff(a);
            assert_eq!(d, p.backoff(a), "jitter must be deterministic");
            assert!(d <= Duration::from_millis(100));
            assert!(d >= Duration::from_millis(5), "attempt {a}: {d:?}");
        }
        assert!(p.backoff(4) > p.backoff(1));
    }

    /// The anti-thundering-herd property: policies seeded differently
    /// must sleep different amounts on the same attempt (while each
    /// stays within the `[exp·(1-jitter), exp]` envelope and remains
    /// individually deterministic).
    #[test]
    fn jitter_seed_decorrelates_backoff_across_clients() {
        let base = RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_frac: 0.5,
            jitter_seed: 0,
            obs: RetryObs::detached(),
        };
        for attempt in 1..=4u32 {
            let sleeps: std::collections::HashSet<Duration> = (0..64u64)
                .map(|seed| base.clone().with_jitter_seed(seed).backoff(attempt))
                .collect();
            assert!(
                sleeps.len() >= 48,
                "attempt {attempt}: only {} distinct backoffs across 64 seeds — \
                 a swarm would herd",
                sleeps.len()
            );
        }
        // Seeding must not break the envelope or per-policy determinism.
        for seed in [1u64, 7, 1000] {
            let p = base.clone().with_jitter_seed(seed);
            for a in 1..=4 {
                let d = p.backoff(a);
                assert_eq!(d, p.backoff(a));
                assert!(d <= Duration::from_millis(100));
                assert!(d >= Duration::from_millis(5));
            }
        }
    }

    /// A lost `create_new` race through the retried view is a normal
    /// outcome: the `AlreadyExists` must surface to the caller but never
    /// count as `retry.surfaced` or trigger a retry.
    #[test]
    fn retried_create_new_does_not_count_cas_losses() {
        let reg = Registry::new();
        let policy = RetryPolicy::fast_test().bound_to(&reg);
        let b = MemBackend::new();
        let retried = RetriedBackend::new(&b, &policy);
        retried.create_new("/m").unwrap();
        let err = retried.create_new("/m").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(reg.value("retry.surfaced"), Some(0), "a CAS loss is not a failure");
        assert_eq!(reg.value("retry.masked_transient"), Some(0));
        assert_eq!(reg.value("retry.attempts"), Some(2), "one attempt each, no retries");
    }

    #[test]
    fn torn_appends_recovered_without_duplication() {
        // Most appends tear (rate 1.0 would mean no append can ever
        // fully land); recovery must still assemble one exact copy.
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan { torn_append_rate: 0.7, ..FaultPlan::none(11) },
        );
        let policy = RetryPolicy { max_retries: 64, ..RetryPolicy::fast_test() };
        let payload: Vec<u8> = (0..=255u8).collect();
        append_at_reliable(&b, &policy, "/f", 0, &payload, false).unwrap();
        assert_eq!(b.inner().read_all("/f").unwrap(), payload);
        // A second logical append continues cleanly at the new base.
        append_at_reliable(&b, &policy, "/f", 256, b"tail", false).unwrap();
        assert_eq!(b.inner().len("/f").unwrap(), 260);
        assert!(b.stats().injected_torn > 0);
    }

    #[test]
    fn verify_first_resumes_partial_buffer_across_calls() {
        let b = MemBackend::new();
        // A previous failed flush left 3 of 8 bytes on the store.
        b.append("/f", b"abc").unwrap();
        let policy = RetryPolicy::none();
        append_at_reliable(&b, &policy, "/f", 0, b"abcdefgh", true).unwrap();
        assert_eq!(b.read_all("/f").unwrap(), b"abcdefgh");
        // And is a no-op when everything already landed.
        append_at_reliable(&b, &policy, "/f", 0, b"abcdefgh", true).unwrap();
        assert_eq!(b.read_all("/f").unwrap(), b"abcdefgh");
    }

    #[test]
    fn shrunken_file_is_a_fatal_inconsistency() {
        let b = MemBackend::new();
        b.append("/f", b"ab").unwrap();
        let err = append_at_reliable(&b, &RetryPolicy::none(), "/f", 10, b"zz", true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn run_counts_masked_and_surfaced() {
        let reg = Registry::new();
        let policy = RetryPolicy::fast_test().bound_to(&reg);
        let mut left = 3;
        policy
            .run(|| {
                if left > 0 {
                    left -= 1;
                    Err(io::Error::new(io::ErrorKind::Interrupted, "flap"))
                } else {
                    Ok(())
                }
            })
            .unwrap();
        assert_eq!(reg.value("retry.attempts"), Some(4), "3 failures + 1 success");
        assert_eq!(reg.value("retry.masked_transient"), Some(3));
        assert_eq!(reg.value("retry.surfaced"), Some(0));

        let _ = policy.run(|| -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        });
        assert_eq!(reg.value("retry.surfaced"), Some(1));
    }

    #[test]
    fn append_recovery_distinguishes_torn_from_transient() {
        // Torn-only plans: every absorbed failure advanced the store, so
        // each one must count as torn_recovered, never masked_transient.
        let payload: Vec<u8> = (0..200u8).collect();
        let mut torn_seen = 0;
        for seed in 0..16u64 {
            let reg = Registry::new();
            let b = FaultyBackend::new(
                MemBackend::new(),
                FaultPlan { torn_append_rate: 0.6, ..FaultPlan::none(seed) },
            );
            let policy = RetryPolicy { max_retries: 64, ..RetryPolicy::fast_test() }.bound_to(&reg);
            append_at_reliable(&b, &policy, "/f", 0, &payload, false).unwrap();
            assert_eq!(b.inner().read_all("/f").unwrap(), payload);
            let st = b.stats();
            torn_seen += st.injected_torn;
            assert_eq!(reg.value("retry.torn_recovered"), Some(st.injected_torn));
            assert_eq!(reg.value("retry.masked_transient"), Some(st.injected_transient));
            assert_eq!(reg.value("retry.surfaced"), Some(0));
        }
        assert!(torn_seen > 0, "no seed injected a torn append — weak test");

        // Transient-only plans: no absorbed failure advanced the store.
        let mut transient_seen = 0;
        for seed in 0..16u64 {
            let reg = Registry::new();
            let b = FaultyBackend::new(
                MemBackend::new(),
                FaultPlan { transient_error_rate: 0.4, ..FaultPlan::none(seed) },
            );
            let policy = RetryPolicy::fast_test().bound_to(&reg);
            append_at_reliable(&b, &policy, "/g", 0, &payload, false).unwrap();
            let st = b.stats();
            transient_seen += st.injected_transient;
            assert_eq!(reg.value("retry.masked_transient"), Some(st.injected_transient));
            assert_eq!(reg.value("retry.torn_recovered"), Some(0));
        }
        assert!(transient_seen > 0, "no seed injected a transient — weak test");
    }
}
