//! The flattened-index cache (`canonical.index`).
//!
//! Read-open pays PLFS's deferred bill: fetch, decode, and merge every
//! rank's index dropping. The result of that merge — a disjoint extent
//! list — is itself a valid index, so after a successful merge the
//! reader persists it as a `canonical.index` dropping at the container
//! root. The next open loads it instead of re-merging the world, and
//! only merges index bytes that appended *after* the cache's stamp.
//!
//! Staleness is decided by two stamps taken when the merge ran:
//!
//! - the container's **epoch watermark** (one past the highest session
//!   ever reserved; see [`crate::container::epoch_watermark`]): a new
//!   writer session advances it, and [`crate::write::Writer`]
//!   additionally deletes the cache *before* its session becomes
//!   visible (belt and braces — and the ordering matters: a reader
//!   racing the open sees either no cache or a watermark mismatch,
//!   never a stale cache with a matching stamp);
//! - the **covered byte length of every index dropping**: a writer in
//!   a still-open session appends without changing the session count,
//!   so a grown dropping means "decode just the tail"; a shrunk or
//!   vanished one means the world changed under us — rebuild.
//!
//! `fsck` reports a stale cache and `fsck::repair` deletes it (repair
//! rewrites droppings, which silently invalidates any flattened view).
//! Every decode error here is treated as "no cache" by readers — the
//! cache is an optimization, never a correctness dependency.

use crate::backend::Backend;
use crate::container::{discover_droppings, epoch_watermark, ContainerPaths};
use crate::index::{self, GetLe, IndexEntry, PutLe};
use std::io;

/// Magic tag at byte 0 of every canonical index ("PLFSCAN2").
///
/// Version 2 added a content checksum: a CRC32 of every byte after the
/// checksum field, directly after the magic. Version-1 caches (no
/// checksum) fail the magic check and are rebuilt — acceptable because
/// the cache is never a correctness dependency.
pub const CANONICAL_MAGIC: u64 = u64::from_le_bytes(*b"PLFSCAN2");

/// A decoded flattened-index cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalIndex {
    /// The container's epoch watermark when the merge ran (named for
    /// the legacy stamp it generalizes; the wire format is unchanged).
    pub session_count: u64,
    /// `(rank, index dropping byte length)` covered by the merge.
    pub covered: Vec<(u32, u64)>,
    /// The merged extent list as disjoint entries, logical order,
    /// original timestamps preserved (so tails merge correctly).
    pub fragments: Vec<IndexEntry>,
}

fn bad(why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("canonical index: {why}"))
}

impl CanonicalIndex {
    /// Wire format: magic, content CRC32, session count, covered table,
    /// payload length, then the fragments raw-encoded. The CRC covers
    /// every byte after itself, so the stamp-match check can never trust
    /// a silently corrupted cache; the explicit payload length makes a
    /// torn write detectable (the file is created then appended once; a
    /// tear can only shorten it).
    pub fn encode(&self) -> Vec<u8> {
        let payload = index::encode_raw(&self.fragments);
        let mut buf = Vec::with_capacity(32 + self.covered.len() * 12 + payload.len());
        buf.put_u64_le(CANONICAL_MAGIC);
        buf.put_u32_le(0); // CRC placeholder, patched below
        buf.put_u64_le(self.session_count);
        buf.put_u32_le(self.covered.len() as u32);
        for &(rank, len) in &self.covered {
            buf.put_u32_le(rank);
            buf.put_u64_le(len);
        }
        buf.put_u64_le(payload.len() as u64);
        buf.extend_from_slice(&payload);
        let crc = crate::checksum::crc32(&buf[12..]);
        buf[8..12].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    pub fn decode(data: &[u8]) -> io::Result<CanonicalIndex> {
        let mut cur = GetLe::new(data);
        if cur.remaining() < 24 {
            return Err(bad("short header"));
        }
        if cur.get_u64_le() != CANONICAL_MAGIC {
            return Err(bad("bad magic"));
        }
        let stored = cur.get_u32_le();
        if crate::checksum::crc32(cur.rest()) != stored {
            return Err(bad("content checksum mismatch"));
        }
        let session_count = cur.get_u64_le();
        let n = cur.get_u32_le() as usize;
        if cur.remaining() < n * 12 + 8 {
            return Err(bad("short covered table"));
        }
        let mut covered = Vec::with_capacity(n);
        for _ in 0..n {
            let rank = cur.get_u32_le();
            let len = cur.get_u64_le();
            covered.push((rank, len));
        }
        let payload_len = cur.get_u64_le() as usize;
        if cur.remaining() != payload_len {
            return Err(bad("torn payload"));
        }
        let fragments = index::decode(cur.rest()).map_err(|e| bad(&e.to_string()))?;
        Ok(CanonicalIndex { session_count, covered, fragments })
    }
}

/// One index dropping that grew past what a canonical index covered:
/// its tail `[covered, len)` holds the only entries left to merge.
#[derive(Debug, Clone)]
pub struct Tail {
    pub rank: u32,
    pub index_path: String,
    pub covered: u64,
    pub len: u64,
}

/// Validate a decoded canonical index against the container's current
/// state. `Ok(tails)` means usable — merge the listed dropping tails on
/// top (empty = fully warm). `Err(reason)` means stale: discard it.
///
/// `backend` should already mask transient faults (callers pass a
/// retried backend); any hard error is reported as staleness.
pub fn freshness(
    backend: &dyn Backend,
    paths: &ContainerPaths,
    canon: &CanonicalIndex,
) -> Result<Vec<Tail>, String> {
    let session = epoch_watermark(backend, paths);
    if session != canon.session_count {
        return Err(format!("writer sessions advanced ({} -> {session})", canon.session_count));
    }
    let droppings = match discover_droppings(backend, paths) {
        Ok(d) => d,
        Err(e) => return Err(format!("discovery failed: {e}")),
    };
    let mut covered: std::collections::HashMap<u32, u64> = canon.covered.iter().copied().collect();
    let mut tails = Vec::new();
    for (rank, index_path, _) in droppings {
        let len = match backend.len(&index_path) {
            Ok(l) => l,
            Err(e) => return Err(format!("len({index_path}) failed: {e}")),
        };
        let Some(cov) = covered.remove(&rank) else {
            return Err(format!("rank {rank} appeared after the merge"));
        };
        if len < cov {
            return Err(format!("rank {rank} index shrank ({cov} -> {len})"));
        }
        if len > cov {
            tails.push(Tail { rank, index_path, covered: cov, len });
        }
    }
    if let Some((&rank, _)) = covered.iter().next() {
        return Err(format!("rank {rank}'s index dropping vanished"));
    }
    Ok(tails)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(lo: u64, len: u64, phys: u64, writer: u32, ts: u64) -> IndexEntry {
        IndexEntry { logical_offset: lo, length: len, physical_offset: phys, writer, timestamp: ts }
    }

    #[test]
    fn roundtrip() {
        let c = CanonicalIndex {
            session_count: 7,
            covered: vec![(0, 111), (3, 222)],
            fragments: vec![frag(0, 10, 0, 0, 5), frag(10, 20, 0, 3, 9)],
        };
        let enc = c.encode();
        assert_eq!(CanonicalIndex::decode(&enc).unwrap(), c);
    }

    #[test]
    fn roundtrip_empty() {
        let c = CanonicalIndex { session_count: 0, covered: vec![], fragments: vec![] };
        assert_eq!(CanonicalIndex::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn torn_and_garbage_blobs_rejected() {
        let c = CanonicalIndex {
            session_count: 1,
            covered: vec![(0, 37)],
            fragments: vec![frag(0, 10, 0, 0, 5)],
        };
        let enc = c.encode();
        for cut in [0, 5, 19, enc.len() - 1] {
            assert!(CanonicalIndex::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        let mut grown = enc.clone();
        grown.push(0);
        assert!(CanonicalIndex::decode(&grown).is_err(), "trailing junk");
        let mut wrong_magic = enc;
        wrong_magic[0] ^= 0xFF;
        assert!(CanonicalIndex::decode(&wrong_magic).is_err());
    }

    #[test]
    fn any_single_byte_corruption_is_rejected() {
        // Regression: the cache used to be trusted on stamp match
        // alone, so a flipped bit silently poisoned every warm open.
        let c = CanonicalIndex {
            session_count: 3,
            covered: vec![(0, 100), (1, 200), (9, 50)],
            fragments: (0..20).map(|i| frag(i * 32, 16, i * 16, (i % 3) as u32, 100 + i)).collect(),
        };
        let enc = c.encode();
        assert_eq!(CanonicalIndex::decode(&enc).unwrap(), c);
        for pos in 0..enc.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = enc.clone();
                bad[pos] ^= bit;
                assert!(
                    CanonicalIndex::decode(&bad).is_err(),
                    "flip at byte {pos} decoded cleanly"
                );
            }
        }
    }
}
