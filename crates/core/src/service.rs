//! The concurrent checkpoint ingest service.
//!
//! Everything below this module is a *library*: one caller, one
//! [`Writer`] per rank, every `write_at` paying its own backend trip.
//! The paper's workload is the opposite shape — thousands of clients
//! checkpointing into one shared file at once — and the production
//! answer (ParaLog/iFast-style host-side logging) is a service that
//! absorbs parallel traffic into queues and drains them asynchronously.
//!
//! [`IngestService`] is that layer:
//!
//! - **Sharding.** Clients hash onto `shards` independent shards, each
//!   owning its own [`Writer`] (rank = shard id, its own atomically
//!   reserved session) behind its own mutex — no global lock on the
//!   ingest path. A mutex-sharded session table tracks per-client
//!   op/byte counts without serializing unrelated clients.
//! - **Group commit.** Queued writes drain in batches: one
//!   `write_at_stamped` per logical write, then **one** `sync()` (the
//!   index append + flush) amortized across the whole batch. The
//!   fan-in — logical writes per index fsync — is the service's whole
//!   economic argument, exported as `svc.commit.fanin`.
//! - **Bounded backpressure.** Per-shard queues cap both ops and
//!   bytes; a full queue blocks the producer (recorded as
//!   `svc.queue.stalls` / `svc.queue.stall_ns`) instead of growing
//!   without bound.
//! - **External consistency.** Index stamps are taken from the shared
//!   instance clock at *enqueue* time, not drain time, so cross-shard
//!   overwrite resolution follows the order clients issued their
//!   writes regardless of which shard drains first.
//!
//! Durability contract (see `DESIGN.md`): a returned [`write`] is an
//! *accepted* write — queued, stamped, owed to the store. Only a
//! returned [`sync`] (or [`close`]) is a durability barrier: every
//! write accepted before it has been group-committed. After a
//! crash-stop, `fsck::repair` recovers every barriered byte; writes
//! accepted but not yet barriered may be lost (that is what the
//! barrier is *for*).
//!
//! [`write`]: IngestService::write
//! [`sync`]: IngestService::sync
//! [`close`]: IngestService::close

use crate::filesystem::Plfs;
use crate::metrics::PlfsMetrics;
use crate::pool;
use crate::write::Writer;
use obs::trace::Phase;
use obs::{Counter, Gauge, Histogram};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning for one [`IngestService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Independent shards (one writer session each). Aggregate ingest
    /// bandwidth scales with this as long as the backend does.
    pub shards: usize,
    /// Per-shard queue cap in ops; a full queue blocks producers.
    pub queue_ops: usize,
    /// Per-shard queue cap in bytes.
    pub queue_bytes: usize,
    /// Drain a shard as soon as this many ops are queued (the
    /// batch-size half of the group-commit policy).
    pub batch_ops: usize,
    /// Drain whatever is queued at least this often (the
    /// flush-interval half; stragglers never wait longer than this).
    pub flush_interval: Duration,
    /// Worker cap for concurrent shard drains (on [`pool::run_bounded`]).
    pub drain_workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_ops: 1024,
            queue_bytes: 8 << 20,
            batch_ops: 64,
            flush_interval: Duration::from_millis(2),
            drain_workers: pool::available_parallelism(),
        }
    }
}

/// Cumulative service-level counters, returned by [`IngestService::close`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Writes accepted into a queue.
    pub enqueued_ops: u64,
    pub enqueued_bytes: u64,
    /// Writes made durable by a group commit.
    pub committed_ops: u64,
    /// Group commits issued (index fsyncs). Fan-in =
    /// `committed_ops / group_commits`.
    pub group_commits: u64,
    /// Producer blocks on a full queue.
    pub backpressure_stalls: u64,
    /// Total time producers spent blocked, nanoseconds.
    pub backpressure_stall_ns: u64,
    /// Distinct clients seen by the session table.
    pub clients: u64,
}

impl ServiceStats {
    /// Mean logical writes per index fsync.
    pub fn fanin(&self) -> f64 {
        if self.group_commits == 0 {
            0.0
        } else {
            self.committed_ops as f64 / self.group_commits as f64
        }
    }
}

/// One write waiting in a shard queue.
struct QueuedWrite {
    offset: u64,
    data: Vec<u8>,
    /// Index stamp, taken from the instance clock at enqueue time.
    stamp: u64,
    /// Per-shard acceptance sequence number (1-based).
    seq: u64,
}

/// Sticky failure: the first surfaced drain/backpressure error poisons
/// its shard. `io::Error` is not `Clone`, so the kind + message are
/// kept and re-minted for every subsequent caller.
type ShardFailure = (io::ErrorKind, String);

#[derive(Default)]
struct ShardQueue {
    queue: VecDeque<QueuedWrite>,
    bytes: usize,
    /// Sequence of the last accepted write.
    enqueued_seq: u64,
    /// Sequence of the last write made durable by a group commit.
    committed_seq: u64,
    failed: Option<ShardFailure>,
}

struct Shard {
    state: Mutex<ShardQueue>,
    /// Producers blocked on a full queue wait here.
    space: Condvar,
    /// Barrier waiters ([`IngestService::sync`]) wait here.
    done: Condvar,
    /// `None` once [`IngestService::close`] has consumed it.
    writer: Mutex<Option<Writer>>,
    depth: Gauge,
    depth_bytes: Gauge,
    stalls: Counter,
    commits: Counter,
    committed_ops: Counter,
}

/// Supervisor wake state: a generation counter so kicks are never lost
/// between a producer's notify and the supervisor's wait.
#[derive(Default)]
struct WorkState {
    kicks: u64,
    shutdown: bool,
}

struct Inner {
    shards: Vec<Shard>,
    work: Mutex<WorkState>,
    work_cv: Condvar,
    metrics: Arc<PlfsMetrics>,
    cfg: ServiceConfig,
    /// Mutex-sharded session table: client id → (ops, bytes). Sharded
    /// so unrelated clients never contend on registration.
    sessions: Vec<Mutex<HashMap<u32, (u64, u64)>>>,
    enqueued_ops: Counter,
    enqueued_bytes: Counter,
    stall_ns: Counter,
    barriers: Counter,
    fanin: Histogram,
}

const SESSION_TABLE_SHARDS: usize = 16;

impl Inner {
    fn kick(&self) {
        self.work.lock().unwrap().kicks += 1;
        self.work_cv.notify_one();
    }

    fn shard_err(failure: &ShardFailure) -> io::Error {
        io::Error::new(failure.0, failure.1.clone())
    }

    /// Drain one shard: take the whole queue (freeing producers
    /// immediately — the batch is already bounded by the queue caps),
    /// apply every write with its enqueue-time stamp, then issue ONE
    /// sync. That single index append + flush amortized over the batch
    /// is the group commit.
    fn drain(&self, idx: usize) {
        let shard = &self.shards[idx];
        let batch: Vec<QueuedWrite> = {
            let mut st = shard.state.lock().unwrap();
            if st.queue.is_empty() || st.failed.is_some() {
                return;
            }
            st.bytes = 0;
            shard.depth.set(0);
            shard.depth_bytes.set(0);
            let batch = std::mem::take(&mut st.queue).into();
            shard.space.notify_all();
            batch
        };
        let span = self.metrics.trace.start("svc.group_commit", Phase::Transfer, "svc", 0);
        let last_seq = batch.last().map(|q| q.seq).unwrap_or(0);
        let res = (|| -> io::Result<()> {
            let mut guard = shard.writer.lock().unwrap();
            let w = guard.as_mut().ok_or_else(|| {
                io::Error::new(io::ErrorKind::BrokenPipe, "ingest service closed")
            })?;
            for q in &batch {
                w.write_at_stamped(q.offset, &q.data, q.stamp)?;
            }
            w.sync()
        })();
        span.end();
        let mut st = shard.state.lock().unwrap();
        match res {
            Ok(()) => {
                st.committed_seq = st.committed_seq.max(last_seq);
                shard.commits.inc();
                shard.committed_ops.add(batch.len() as u64);
                self.fanin.observe(batch.len() as u64);
            }
            Err(e) => {
                // Sticky: the shard's writer state is unknown past the
                // failure point, so everything after it must surface.
                st.failed = Some((e.kind(), e.to_string()));
                shard.space.notify_all();
            }
        }
        shard.done.notify_all();
    }

    /// Shards with work queued (or a failure barrier waiters must see).
    fn ready_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| {
                let st = self.shards[i].state.lock().unwrap();
                !st.queue.is_empty() && st.failed.is_none()
            })
            .collect()
    }

    fn supervise(self: &Arc<Self>) {
        let mut seen_kicks = 0u64;
        loop {
            {
                let mut ws = self.work.lock().unwrap();
                while ws.kicks == seen_kicks && !ws.shutdown {
                    let (next, timeout) =
                        self.work_cv.wait_timeout(ws, self.cfg.flush_interval).unwrap();
                    ws = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
                seen_kicks = ws.kicks;
                if ws.shutdown {
                    // Final pass below, then exit.
                    drop(ws);
                    let ready = self.ready_shards();
                    let cap = self.cfg.drain_workers.min(ready.len().max(1));
                    pool::run_bounded(ready.len(), cap, |i| self.drain(ready[i]));
                    return;
                }
            }
            let ready = self.ready_shards();
            if ready.is_empty() {
                continue;
            }
            let cap = self.cfg.drain_workers.min(ready.len());
            pool::run_bounded(ready.len(), cap, |i| self.drain(ready[i]));
        }
    }
}

/// A running sharded ingest service over one logical file. See the
/// module docs for the architecture and the durability contract.
pub struct IngestService {
    inner: Arc<Inner>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl IngestService {
    /// Open `shards` writers on `logical` (creating the container if
    /// needed) and start the drain supervisor.
    pub fn start(fs: &Plfs, logical: &str, cfg: ServiceConfig) -> io::Result<IngestService> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.queue_ops > 0 && cfg.queue_bytes > 0, "queue caps must be positive");
        assert!(cfg.batch_ops > 0 && cfg.drain_workers > 0, "batch/worker knobs must be positive");
        let metrics = fs.metrics().clone();
        let reg = metrics.registry.clone();
        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let writer = fs.open_writer(logical, s as u32)?;
            let sl = s.to_string();
            let labels: &[(&str, &str)] = &[("shard", &sl)];
            shards.push(Shard {
                state: Mutex::new(ShardQueue::default()),
                space: Condvar::new(),
                done: Condvar::new(),
                writer: Mutex::new(Some(writer)),
                depth: reg.gauge_with("svc.queue.depth", labels),
                depth_bytes: reg.gauge_with("svc.queue.depth_bytes", labels),
                stalls: reg.counter_with("svc.queue.stalls", labels),
                commits: reg.counter_with("svc.commits", labels),
                committed_ops: reg.counter_with("svc.committed_ops", labels),
            });
        }
        let inner = Arc::new(Inner {
            shards,
            work: Mutex::new(WorkState::default()),
            work_cv: Condvar::new(),
            metrics,
            sessions: (0..SESSION_TABLE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            enqueued_ops: reg.counter("svc.enqueued_ops"),
            enqueued_bytes: reg.counter("svc.enqueued_bytes"),
            stall_ns: reg.counter("svc.queue.stall_ns"),
            barriers: reg.counter("svc.sync.barriers"),
            fanin: reg.histogram("svc.commit.fanin"),
            cfg,
        });
        let sup = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("plfs-ingest-supervisor".into())
                .spawn(move || inner.supervise())
                .map_err(|e| io::Error::other(format!("spawning supervisor: {e}")))?
        };
        Ok(IngestService { inner, supervisor: Some(sup) })
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    fn shard_of(&self, client: u32) -> usize {
        client as usize % self.inner.cfg.shards
    }

    /// Accept one write from `client`. Returns once the write is queued
    /// and stamped (a *queued ack*, not a durability guarantee — see
    /// the module docs); blocks while the client's shard queue is full.
    pub fn write(&self, client: u32, offset: u64, data: &[u8]) -> io::Result<()> {
        let inner = &self.inner;
        let shard = &inner.shards[self.shard_of(client)];
        let cfg = &inner.cfg;
        let mut st = shard.state.lock().unwrap();
        if st.failed.is_none()
            && (st.queue.len() >= cfg.queue_ops || st.bytes + data.len() > cfg.queue_bytes)
        {
            // Backpressure: block rather than buffer without bound. The
            // periodic re-kick guards against a supervisor that went to
            // sleep between our check and its last scan.
            shard.stalls.inc();
            let t0 = Instant::now();
            while st.failed.is_none()
                && (st.queue.len() >= cfg.queue_ops || st.bytes + data.len() > cfg.queue_bytes)
            {
                inner.kick();
                let (next, _) = shard.space.wait_timeout(st, cfg.flush_interval).unwrap();
                st = next;
            }
            inner.stall_ns.add(t0.elapsed().as_nanos() as u64);
        }
        if let Some(f) = &st.failed {
            return Err(Inner::shard_err(f));
        }
        // Stamp at enqueue: overwrite order across shards follows the
        // order clients issued writes, not the order shards drain.
        let stamp = inner.metrics.clock.stamp();
        st.enqueued_seq += 1;
        let seq = st.enqueued_seq;
        st.bytes += data.len();
        st.queue.push_back(QueuedWrite { offset, data: data.to_vec(), stamp, seq });
        let (depth, bytes) = (st.queue.len(), st.bytes);
        let ready = depth >= cfg.batch_ops;
        drop(st);
        shard.depth.set(depth as i64);
        shard.depth_bytes.set(bytes as i64);
        inner.enqueued_ops.inc();
        inner.enqueued_bytes.add(data.len() as u64);
        {
            let mut table = inner.sessions[client as usize % SESSION_TABLE_SHARDS].lock().unwrap();
            let entry = table.entry(client).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += data.len() as u64;
        }
        if ready {
            inner.kick();
        }
        Ok(())
    }

    /// Durability barrier: returns once every write accepted before
    /// this call has been group-committed. An error means at least one
    /// shard failed — its un-committed accepted writes are lost.
    pub fn sync(&self) -> io::Result<()> {
        let inner = &self.inner;
        inner.barriers.inc();
        let span = inner.metrics.trace.start("svc.sync", Phase::Compute, "svc", 0);
        let targets: Vec<u64> =
            inner.shards.iter().map(|s| s.state.lock().unwrap().enqueued_seq).collect();
        inner.kick();
        let mut res = Ok(());
        for (shard, &target) in inner.shards.iter().zip(&targets) {
            let mut st = shard.state.lock().unwrap();
            while st.committed_seq < target && st.failed.is_none() {
                // Re-kick on every timeout: a kick is cheap, a missed
                // wakeup would hang the barrier.
                inner.kick();
                let (next, _) = shard.done.wait_timeout(st, inner.cfg.flush_interval).unwrap();
                st = next;
            }
            if let (Ok(()), Some(f)) = (&res, &st.failed) {
                res = Err(Inner::shard_err(f));
            }
        }
        span.end();
        res
    }

    /// Per-client `(ops, bytes)` from the session table.
    pub fn client_stats(&self, client: u32) -> Option<(u64, u64)> {
        self.inner.sessions[client as usize % SESSION_TABLE_SHARDS]
            .lock()
            .unwrap()
            .get(&client)
            .copied()
    }

    /// Cumulative counters so far.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let mut commits = 0;
        let mut committed = 0;
        let mut stalls = 0;
        for s in &inner.shards {
            commits += s.commits.get();
            committed += s.committed_ops.get();
            stalls += s.stalls.get();
        }
        ServiceStats {
            enqueued_ops: inner.enqueued_ops.get(),
            enqueued_bytes: inner.enqueued_bytes.get(),
            committed_ops: committed,
            group_commits: commits,
            backpressure_stalls: stalls,
            backpressure_stall_ns: inner.stall_ns.get(),
            clients: inner.sessions.iter().map(|m| m.lock().unwrap().len() as u64).sum(),
        }
    }

    /// Final barrier, then shut down: stop the supervisor and close
    /// every shard writer (leaving meta droppings). Returns the final
    /// stats; the first barrier/close error surfaces after shutdown
    /// completes either way.
    pub fn close(mut self) -> io::Result<ServiceStats> {
        let mut res = self.sync();
        self.shutdown();
        for shard in &self.inner.shards {
            if let Some(w) = shard.writer.lock().unwrap().take() {
                let r = w.close();
                if res.is_ok() {
                    if let Err(e) = r {
                        res = Err(e);
                    }
                }
            }
        }
        res.map(|()| self.stats())
    }

    fn shutdown(&mut self) {
        if let Some(h) = self.supervisor.take() {
            {
                let mut ws = self.inner.work.lock().unwrap();
                ws.shutdown = true;
                ws.kicks += 1;
            }
            self.inner.work_cv.notify_one();
            let _ = h.join();
        }
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        // Best-effort: stop the supervisor; writers flush on their own
        // Drop. Errors surface only on explicit sync/close.
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, MemBackend};
    use crate::filesystem::{Plfs, PlfsConfig};
    use obs::Registry;

    fn service_fs(reg: &Registry) -> Plfs {
        Plfs::new(
            Arc::new(MemBackend::new()) as Arc<dyn Backend>,
            PlfsConfig { hostdirs: 4, metrics: reg.clone(), ..Default::default() },
        )
    }

    #[test]
    fn roundtrip_through_service() {
        let reg = Registry::new();
        let fs = service_fs(&reg);
        let svc =
            IngestService::start(&fs, "/ckpt", ServiceConfig { shards: 4, ..Default::default() })
                .unwrap();
        // 64 clients, rank-segmented N-1: client c owns [c*512, c*512+512).
        for c in 0..64u32 {
            svc.write(c, c as u64 * 512, &[c as u8; 512]).unwrap();
        }
        let stats = svc.close().unwrap();
        assert_eq!(stats.enqueued_ops, 64);
        assert_eq!(stats.committed_ops, 64);
        assert_eq!(stats.clients, 64);
        assert!(stats.group_commits >= 1);
        let data = fs.open_reader("/ckpt").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 64 * 512);
        for c in 0..64usize {
            assert!(data[c * 512..(c + 1) * 512].iter().all(|&x| x == c as u8), "client {c}");
        }
    }

    #[test]
    fn later_enqueue_wins_across_shards() {
        // Two clients on different shards overwrite the same range; the
        // enqueue-time stamp, not the drain order, must decide.
        let reg = Registry::new();
        let fs = service_fs(&reg);
        let svc =
            IngestService::start(&fs, "/ow", ServiceConfig { shards: 2, ..Default::default() })
                .unwrap();
        svc.write(0, 0, &[b'a'; 64]).unwrap(); // shard 0
        svc.write(1, 16, &[b'b'; 16]).unwrap(); // shard 1, later stamp
        svc.close().unwrap();
        let data = fs.open_reader("/ow").unwrap().read_all().unwrap();
        assert_eq!(&data[..16], &[b'a'; 16][..]);
        assert_eq!(&data[16..32], &[b'b'; 16][..]);
        assert_eq!(&data[32..], &[b'a'; 32][..]);
    }

    #[test]
    fn group_commit_amortizes_index_syncs() {
        let reg = Registry::new();
        let fs = service_fs(&reg);
        let svc = IngestService::start(
            &fs,
            "/gc",
            ServiceConfig {
                shards: 1,
                batch_ops: 1 << 30, // only the barrier drains
                flush_interval: Duration::from_secs(3600),
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..256u64 {
            svc.write(0, i * 128, &[1u8; 128]).unwrap();
        }
        svc.sync().unwrap();
        let stats = svc.close().unwrap();
        assert_eq!(stats.committed_ops, 256);
        assert_eq!(stats.group_commits, 1, "one barrier, one fsync");
        assert!(stats.fanin() >= 256.0);
    }

    #[test]
    fn backpressure_blocks_instead_of_growing() {
        let reg = Registry::new();
        let fs = service_fs(&reg);
        let svc = IngestService::start(
            &fs,
            "/bp",
            ServiceConfig { shards: 1, queue_ops: 8, batch_ops: 8, ..Default::default() },
        )
        .unwrap();
        // Far more writes than the queue holds: every one must be
        // accepted (blocking, not erroring), and the stall counter must
        // show the queue actually filled.
        for i in 0..512u64 {
            svc.write(0, i * 64, &[2u8; 64]).unwrap();
        }
        let stats = svc.close().unwrap();
        assert_eq!(stats.committed_ops, 512);
        assert!(stats.backpressure_stalls > 0, "queue of 8 never filled under 512 writes");
        assert_eq!(fs.open_reader("/bp").unwrap().read_all().unwrap().len(), 512 * 64);
    }

    #[test]
    fn sync_is_a_durability_barrier() {
        let reg = Registry::new();
        let fs = service_fs(&reg);
        let svc = IngestService::start(
            &fs,
            "/bar",
            ServiceConfig {
                shards: 2,
                batch_ops: 1 << 30,
                flush_interval: Duration::from_secs(3600),
                ..Default::default()
            },
        )
        .unwrap();
        for c in 0..8u32 {
            svc.write(c, c as u64 * 256, &[3u8; 256]).unwrap();
        }
        svc.sync().unwrap();
        // Everything accepted before the barrier is now readable even
        // though the service is still open.
        let data = fs.open_reader("/bar").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 8 * 256);
        svc.close().unwrap();
    }

    #[test]
    fn shard_failure_is_sticky_and_surfaces() {
        use crate::faults::{FaultPlan, FaultyBackend};
        use crate::retry::RetryPolicy;
        let reg = Registry::new();
        let faulty = Arc::new(FaultyBackend::new(MemBackend::new(), FaultPlan::none(7)));
        let mut cfg = PlfsConfig { hostdirs: 4, metrics: reg.clone(), ..Default::default() };
        cfg.retry = RetryPolicy::none();
        cfg.writer.retry = RetryPolicy::none();
        let fs = Plfs::new(faulty.clone() as Arc<dyn Backend>, cfg);
        let svc =
            IngestService::start(&fs, "/crash", ServiceConfig { shards: 1, ..Default::default() })
                .unwrap();
        svc.write(0, 0, &[4u8; 128]).unwrap();
        svc.sync().unwrap();
        faulty.crash_now();
        svc.write(0, 128, &[4u8; 128]).unwrap(); // accepted into the queue
        assert!(svc.sync().is_err(), "barrier must surface the crash");
        // Sticky: later writes fail fast instead of queueing forever.
        let mut failed = false;
        for i in 2..64u64 {
            if svc.write(0, i * 128, &[4u8; 128]).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "shard failure must eventually surface on write");
        assert!(svc.close().is_err());
    }

    #[test]
    fn service_emits_per_shard_metrics() {
        let reg = Registry::new();
        let fs = service_fs(&reg);
        let svc =
            IngestService::start(&fs, "/m", ServiceConfig { shards: 2, ..Default::default() })
                .unwrap();
        for c in 0..32u32 {
            svc.write(c, c as u64 * 64, &[5u8; 64]).unwrap();
        }
        svc.close().unwrap();
        assert_eq!(reg.value("svc.enqueued_ops"), Some(32));
        assert_eq!(reg.value("svc.enqueued_bytes"), Some(32 * 64));
        let committed: u64 = (0..2)
            .map(|s| {
                reg.value_with("svc.committed_ops", &[("shard", &s.to_string())])
                    .unwrap_or_else(|| panic!("missing per-shard committed_ops for shard {s}"))
            })
            .sum();
        assert_eq!(committed, 32);
        assert!(reg.histogram("svc.commit.fanin").count() >= 1);
    }
}
