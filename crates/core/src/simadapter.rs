//! Bridge from PLFS to the `pfs` cluster simulator — the performance
//! half of the reproduction.
//!
//! Functional correctness of PLFS runs over real backends
//! ([`crate::backend::DirBackend`]); *bandwidth* numbers (Fig. 8, the
//! 5×–100× speedup table) come from replaying the same application
//! write pattern through the simulated parallel file system two ways:
//!
//! - **direct**: all ranks write the one shared file, exactly as the
//!   application intended — strided small writes, lock false sharing,
//!   the works;
//! - **through PLFS**: each rank writes its private data dropping
//!   sequentially, plus its index dropping appends, plus the container's
//!   metadata creates — everything PLFS actually does, including its
//!   overheads.

use obs::trace::Phase;
use pfs::{Cluster, ClusterConfig, Op, PhaseReport};

/// A logical-file write pattern: per-rank lists of `(offset, len)`.
pub type Pattern = Vec<Vec<(u64, u64)>>;

/// File id used for the shared logical file in direct mode.
const SHARED_FILE: u64 = 0;

/// Byte cost of one raw index record on the wire (see `index.rs`).
const INDEX_RECORD: u64 = crate::index::RAW_RECORD_BYTES as u64 + 1;

/// Knobs for the PLFS-mode replay.
#[derive(Debug, Clone)]
pub struct PlfsSimOptions {
    /// Writers buffer data and emit appends of at most this size
    /// (mirrors `WriterConfig::data_buffer`; 0 = one append per write).
    pub data_buffer: u64,
    /// Index entries buffered per index append.
    pub index_flush_every: u64,
    /// Pattern-compress the index (shrinks index appends for strided
    /// patterns).
    pub compress_index: bool,
    /// hostdir spread (container subdirectory creates).
    pub hostdirs: u32,
}

impl Default for PlfsSimOptions {
    fn default() -> Self {
        PlfsSimOptions {
            data_buffer: 1 << 20,
            index_flush_every: 4096,
            compress_index: true,
            hostdirs: 32,
        }
    }
}

/// Replay `pattern` as the application would: one shared file.
pub fn run_direct(cluster_cfg: ClusterConfig, pattern: &Pattern) -> PhaseReport {
    let streams: Vec<Vec<Op>> = pattern
        .iter()
        .map(|ops| {
            let mut v = Vec::with_capacity(ops.len() + 1);
            v.push(Op::Open(SHARED_FILE));
            v.extend(ops.iter().map(|&(offset, len)| Op::Write { file: SHARED_FILE, offset, len }));
            v
        })
        .collect();
    let mut cluster = Cluster::new(cluster_cfg);
    cluster.run_phase(&streams)
}

/// Replay `pattern` as PLFS transforms it: per-rank logs + index
/// droppings + container metadata.
///
/// Container droppings are created with stripe count 1 (the PLFS
/// deployment default): each rank's log lives wholly on one object
/// server, assigned round-robin by file id, so every server sees a few
/// purely sequential streams instead of slivers of every file.
pub fn run_plfs(
    mut cluster_cfg: ClusterConfig,
    pattern: &Pattern,
    opt: &PlfsSimOptions,
) -> PhaseReport {
    // Stripe count 1: a stripe unit larger than any dropping keeps each
    // log file wholly on the server its id round-robins to.
    cluster_cfg.layout =
        pfs::Layout::new(1 << 30, pfs::Placement::RoundRobin, cluster_cfg.layout.servers);
    let mut streams: Vec<Vec<Op>> = Vec::with_capacity(pattern.len());
    // PLFS action naming each op, parallel to `streams` — used to graft
    // layer-level wrapper spans over the cluster-level trace.
    let mut kinds: Vec<Vec<&'static str>> = Vec::with_capacity(pattern.len());
    for (rank, ops) in pattern.iter().enumerate() {
        // File ids: rank's data dropping and index dropping.
        let data_file = 1 + 2 * rank as u64;
        let index_file = 2 + 2 * rank as u64;
        let mut v = Vec::with_capacity(ops.len() / 4 + 4);
        let mut k = Vec::with_capacity(ops.len() / 4 + 4);
        // Rank 0 creates the container skeleton (hostdirs); every
        // rank creates its two droppings. Hostdir creates are
        // directory ops charged at the MDS like creates.
        if rank == 0 {
            for _ in 0..opt.hostdirs.min(8) {
                v.push(Op::Create(u64::MAX - 1)); // container subdirs
                k.push("plfs.container_mkdir");
            }
        }
        v.push(Op::Create(data_file));
        k.push("plfs.create_dropping");
        v.push(Op::Create(index_file));
        k.push("plfs.create_dropping");

        // Data: writes become appends at the rank's private log
        // cursor, coalesced into buffer-sized appends.
        let mut cursor = 0u64;
        let mut buffered = 0u64;
        let mut index_entries = 0u64;
        let mut index_appends = 0u64;
        for &(_, len) in ops {
            buffered += len;
            index_entries += 1;
            if opt.data_buffer == 0 {
                v.push(Op::Write { file: data_file, offset: cursor, len });
                k.push("plfs.data_append");
                cursor += len;
                buffered = 0;
            } else if buffered >= opt.data_buffer {
                v.push(Op::Write { file: data_file, offset: cursor, len: buffered });
                k.push("plfs.data_append");
                cursor += buffered;
                buffered = 0;
            }
            if index_entries >= opt.index_flush_every {
                index_appends += 1;
                index_entries = 0;
            }
        }
        if buffered > 0 {
            v.push(Op::Write { file: data_file, offset: cursor, len: buffered });
            k.push("plfs.data_append");
        }
        if index_entries > 0 {
            index_appends += 1;
        }
        // Index appends: tiny sequential writes to the index file.
        // Pattern compression collapses a whole strided run into a
        // handful of records.
        let entries_total = ops.len() as u64;
        let index_bytes = if opt.compress_index {
            // one pattern record (~49B) per flush, conservatively x4.
            index_appends * 4 * INDEX_RECORD
        } else {
            entries_total * INDEX_RECORD
        };
        let mut ipos = 0u64;
        let per_append = (index_bytes / index_appends.max(1)).max(1);
        for _ in 0..index_appends.max(1) {
            v.push(Op::Write { file: index_file, offset: ipos, len: per_append });
            k.push("plfs.index_append");
            ipos += per_append;
        }
        streams.push(v);
        kinds.push(k);
    }
    let trace = cluster_cfg.trace.clone();
    let mut cluster = Cluster::new(cluster_cfg);
    let (report, op_spans) = cluster.run_phase_traced(&streams);
    if trace.enabled() {
        // Graft the PLFS layer over the cluster-level trees: one span
        // per rank, one wrapper per op naming the PLFS action, with the
        // pfs request root re-parented underneath. Wrapper intervals
        // equal the op intervals, so the tree stays well-formed and the
        // critical path flows through unchanged.
        for (rank, refs) in op_spans.iter().enumerate() {
            if refs.is_empty() {
                continue;
            }
            let track = format!("plfs.rank.{rank}");
            let begin = refs[0].begin.0;
            let end = refs.iter().map(|r| r.end.0).max().unwrap_or(begin);
            let rank_span = trace.record("plfs.rank", Phase::Other, &track, begin, end, 0);
            for (r, kind) in refs.iter().zip(&kinds[rank]) {
                let w = trace.record(kind, Phase::Other, &track, r.begin.0, r.end.0, rank_span);
                trace.reparent(r.span, w);
            }
        }
    }
    report
}

/// Replay the restart read-back of `pattern` as the application would:
/// every rank re-reads its own records from the one shared file —
/// strided small reads scattering across every server's disk.
pub fn run_direct_restart(cluster_cfg: ClusterConfig, pattern: &Pattern) -> PhaseReport {
    let streams: Vec<Vec<Op>> = pattern
        .iter()
        .map(|ops| {
            let mut v = Vec::with_capacity(ops.len() + 1);
            v.push(Op::Open(SHARED_FILE));
            v.extend(ops.iter().map(|&(offset, len)| Op::Read { file: SHARED_FILE, offset, len }));
            v
        })
        .collect();
    let mut cluster = Cluster::new(cluster_cfg);
    cluster.run_phase(&streams)
}

/// Replay the same restart as the PLFS read engine issues it: the
/// coalescing planner turns each rank's interleaved records into a few
/// large sequential sweeps of that rank's data dropping (chunked at
/// `coalesce_chunk`), preceded by one index-dropping fetch per rank at
/// open time. Droppings keep the stripe-1 placement of [`run_plfs`].
pub fn run_plfs_restart(
    mut cluster_cfg: ClusterConfig,
    pattern: &Pattern,
    opt: &PlfsSimOptions,
    coalesce_chunk: u64,
) -> PhaseReport {
    cluster_cfg.layout =
        pfs::Layout::new(1 << 30, pfs::Placement::RoundRobin, cluster_cfg.layout.servers);
    let chunk = coalesce_chunk.max(1);
    let mut streams: Vec<Vec<Op>> = Vec::with_capacity(pattern.len());
    for (rank, ops) in pattern.iter().enumerate() {
        let data_file = 1 + 2 * rank as u64;
        let index_file = 2 + 2 * rank as u64;
        let total: u64 = ops.iter().map(|&(_, len)| len).sum();
        let mut v = Vec::with_capacity((total / chunk) as usize + 3);
        v.push(Op::Open(data_file));
        // Open-time index fetch (sized as run_plfs wrote it).
        let index_bytes =
            if opt.compress_index { 4 * INDEX_RECORD } else { ops.len() as u64 * INDEX_RECORD };
        v.push(Op::Read { file: index_file, offset: 0, len: index_bytes.max(1) });
        // Coalesced data reads: the dropping is one contiguous run.
        let mut off = 0u64;
        while off < total {
            let len = chunk.min(total - off);
            v.push(Op::Read { file: data_file, offset: off, len });
            off += len;
        }
        streams.push(v);
    }
    let mut cluster = Cluster::new(cluster_cfg);
    cluster.run_phase(&streams)
}

/// Convenience: run both restart modes on fresh clusters and return
/// `(direct, plfs, speedup)` for the read bandwidth.
pub fn compare_restart(
    cluster_cfg: ClusterConfig,
    pattern: &Pattern,
    opt: &PlfsSimOptions,
) -> (PhaseReport, PhaseReport, f64) {
    let direct = run_direct_restart(cluster_cfg.clone(), pattern);
    let plfs = run_plfs_restart(cluster_cfg, pattern, opt, crate::read::READ_CHUNK as u64);
    let speedup = plfs.read_bandwidth() / direct.read_bandwidth();
    (direct, plfs, speedup)
}

/// Convenience: run both modes on fresh clusters and return
/// `(direct, plfs, speedup)` for the durable write bandwidth.
pub fn compare(
    cluster_cfg: ClusterConfig,
    pattern: &Pattern,
    opt: &PlfsSimOptions,
) -> (PhaseReport, PhaseReport, f64) {
    let direct = run_direct(cluster_cfg.clone(), pattern);
    let plfs = run_plfs(cluster_cfg, pattern, opt);
    let speedup = plfs.write_bandwidth() / direct.write_bandwidth();
    (direct, plfs, speedup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpiio::{segmented_n1_pattern, strided_n1_pattern};
    use simkit::units::{KIB, MIB};

    /// Not a correctness test: prints the speedup landscape so the
    /// thresholds in the real tests can be set honestly.
    /// Run with: cargo test -p plfs probe_speedups -- --ignored --nocapture
    #[test]
    #[ignore]
    fn probe_speedups() {
        for &servers in &[8usize, 16, 32] {
            for &ranks in &[8u32, 32, 128, 512] {
                let pattern = strided_n1_pattern(ranks, 64, 47 * KIB);
                let cfg = ClusterConfig::lustre_like(servers, MIB);
                let (d, p, s) = compare(cfg, &pattern, &PlfsSimOptions::default());
                println!(
                    "servers={servers:3} ranks={ranks:4}: direct {:8.1} MB/s  plfs {:8.1} MB/s  speedup {s:6.2}x (revocations {})",
                    d.write_bandwidth() / 1e6,
                    p.write_bandwidth() / 1e6,
                    d.lock_stats.revocations,
                );
            }
        }
    }

    #[test]
    fn plfs_mode_trace_grafts_layer_spans() {
        let pattern = strided_n1_pattern(4, 16, 47 * KIB);
        let mut cfg = ClusterConfig::lustre_like(4, MIB);
        cfg.trace = obs::trace::TraceSink::bounded(1 << 16);
        let sink = cfg.trace.clone();
        run_plfs(cfg, &pattern, &PlfsSimOptions::default());
        let spans = sink.snapshot();
        obs::trace::validate(&spans).expect("grafted tree stays well-formed");
        assert!(spans.iter().any(|s| s.name == "plfs.rank"));
        assert!(spans.iter().any(|s| s.name == "plfs.create_dropping"));
        // The pfs request roots were re-parented under PLFS wrappers, so
        // the layers chain plfs -> pfs -> osd in one causal tree.
        let w = spans.iter().find(|s| s.name == "plfs.data_append").unwrap();
        let req = spans.iter().find(|s| s.parent == w.id).expect("pfs root under wrapper");
        assert_eq!(req.name, "pfs.write");
        assert!(spans.iter().any(|s| s.name == "osd.ingest"));
    }

    #[test]
    fn plfs_dominates_on_small_strided_lustre_like() {
        // The win grows with job size (as in the report); at 512 ranks
        // over 16 servers the simulated gap is ~8x.
        let pattern = strided_n1_pattern(512, 64, 47 * KIB);
        let cfg = ClusterConfig::lustre_like(16, MIB);
        let (direct, plfs, speedup) = compare(cfg, &pattern, &PlfsSimOptions::default());
        assert!(direct.bytes_written <= plfs.bytes_written + plfs.bytes_written / 2);
        assert!(
            speedup > 5.5,
            "expected order-of-magnitude PLFS win, got {speedup:.1}x \
             (direct {:.1} MB/s, plfs {:.1} MB/s)",
            direct.write_bandwidth() / 1e6,
            plfs.write_bandwidth() / 1e6
        );
    }

    #[test]
    fn plfs_roughly_neutral_on_large_segmented() {
        // Well-formed I/O: PLFS shouldn't hurt much (report: helps most
        // for unaligned/strided, neutral for friendly patterns).
        let pattern = segmented_n1_pattern(16, 64 * MIB, 4 * MIB);
        let cfg = ClusterConfig::lustre_like(8, MIB);
        let (_, _, speedup) = compare(cfg, &pattern, &PlfsSimOptions::default());
        assert!(
            speedup > 0.5 && speedup < 6.0,
            "segmented speedup should be modest, got {speedup:.2}x"
        );
    }

    #[test]
    fn plfs_write_volume_includes_index_overhead() {
        let pattern = strided_n1_pattern(4, 16, 64 * KIB);
        let cfg = ClusterConfig::lustre_like(4, MIB);
        let app_bytes: u64 = pattern.iter().flatten().map(|&(_, l)| l).sum();
        let rep = run_plfs(cfg, &pattern, &PlfsSimOptions::default());
        assert!(rep.bytes_written >= app_bytes, "lost data bytes");
        assert!(
            rep.bytes_written < app_bytes + app_bytes / 10,
            "index overhead should be tiny: {} vs {app_bytes}",
            rep.bytes_written
        );
    }

    #[test]
    fn uncompressed_index_costs_more() {
        let pattern = strided_n1_pattern(8, 256, 4 * KIB);
        let cfg = ClusterConfig::lustre_like(4, MIB);
        let comp = run_plfs(cfg.clone(), &pattern, &PlfsSimOptions::default());
        let raw = run_plfs(
            cfg,
            &pattern,
            &PlfsSimOptions { compress_index: false, ..Default::default() },
        );
        assert!(raw.bytes_written > comp.bytes_written);
    }

    #[test]
    fn coalesced_restart_beats_direct_strided_readback() {
        // Restart of a strided N-1 checkpoint: direct re-reads scatter
        // small requests over every server; the coalesced engine sweeps
        // each dropping sequentially.
        let pattern = strided_n1_pattern(128, 64, 47 * KIB);
        let app_bytes: u64 = pattern.iter().flatten().map(|&(_, l)| l).sum();
        let cfg = ClusterConfig::lustre_like(8, MIB);
        let (direct, plfs, speedup) = compare_restart(cfg, &pattern, &PlfsSimOptions::default());
        assert_eq!(direct.bytes_read, app_bytes);
        assert!(plfs.bytes_read >= app_bytes, "engine reads all data plus indices");
        assert!(
            speedup > 1.5,
            "coalesced restart should beat direct strided read-back, got {speedup:.2}x \
             (direct {:.1} MB/s, plfs {:.1} MB/s)",
            direct.read_bandwidth() / 1e6,
            plfs.read_bandwidth() / 1e6
        );
    }

    #[test]
    fn plfs_wins_grow_with_scale() {
        let cfg = || ClusterConfig::lustre_like(16, MIB);
        let small =
            compare(cfg(), &strided_n1_pattern(32, 64, 47 * KIB), &PlfsSimOptions::default()).2;
        let large =
            compare(cfg(), &strided_n1_pattern(512, 64, 47 * KIB), &PlfsSimOptions::default()).2;
        assert!(
            large > 1.5 * small,
            "N-1 pain (and the PLFS win) should grow with ranks: {small:.1}x -> {large:.1}x"
        );
    }
}
