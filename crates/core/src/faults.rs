//! Deterministic fault injection for the storage backend.
//!
//! The PDSI report's reliability chapter argues that a petascale
//! machine is *always* partially failed: transient I/O errors, torn
//! writes, and node losses are the steady state, not the exception.
//! This module makes those failures reproducible: [`FaultyBackend`]
//! wraps any [`Backend`] and injects faults from a seeded [`FaultPlan`],
//! so every crash-recovery scenario in the test suite replays
//! bit-for-bit from its seed.
//!
//! Three fault classes are modeled:
//!
//! - **transient errors** (`EIO`/`EAGAIN`-style): the operation fails
//!   but the store is untouched; a retry may succeed. Mapped to
//!   [`io::ErrorKind::Interrupted`] / [`io::ErrorKind::WouldBlock`] /
//!   [`io::ErrorKind::TimedOut`], which [`crate::retry::classify`]
//!   treats as retryable.
//! - **torn appends**: only a prefix of the buffer reaches the store
//!   before the error surfaces — the on-store state advanced, the
//!   caller doesn't know by how much. This is what a power cut mid
//!   `write(2)` leaves behind and what
//!   [`crate::retry::append_reliable`] recovers from.
//! - **crash-stop**: once the cumulative appended-byte budget is
//!   exhausted, the backend freezes at that exact byte state; every
//!   subsequent operation fails until [`FaultyBackend::heal`] simulates
//!   a reboot. Sweeping the budget over every byte boundary of a
//!   workload exhaustively enumerates all power-loss states.

use crate::backend::Backend;
use obs::{Counter, Registry};
use simkit::Rng;
use std::io;
use std::sync::Mutex;

/// Seeded description of the faults to inject.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// PRNG seed: two runs with the same plan inject identical faults.
    pub seed: u64,
    /// Probability that any fallible operation fails transiently
    /// (store untouched).
    pub transient_error_rate: f64,
    /// Probability that an append lands only a random prefix and then
    /// fails transiently.
    pub torn_append_rate: f64,
    /// Crash-stop once this many bytes (cumulative, across all files)
    /// have been appended: the append crossing the budget is truncated
    /// at exactly the budget and the backend freezes.
    pub crash_after_bytes: Option<u64>,
    /// Clamp every `read_at` to at most this many bytes per call —
    /// the POSIX-`pread` short-read behaviour real stores exhibit under
    /// load. `Some(1)` is the pathological one-byte-at-a-time store the
    /// read path must tolerate. Not an error: the data is correct, just
    /// delivered in slivers.
    pub short_read_cap: Option<usize>,
    /// Probability that any given *stored byte* has silently rotted:
    /// reads of it return a bit-flipped value, with no error. Whether a
    /// byte is rotten is a pure function of `(seed, path, offset)` — the
    /// same byte is corrupt on every read path that touches it (engine,
    /// oracle, cache fill, scrub), which is what lets differential tests
    /// agree under corruption. The store's real content is untouched.
    pub bit_flip_rate: f64,
    /// Deterministically corrupt one exact byte: `(path suffix, byte
    /// offset, XOR mask)`. Reads of files whose path ends with the
    /// suffix see the byte at that offset XORed with the mask (`0`
    /// normalizes to `0x01` so the target is never a silent no-op).
    /// Composes with `bit_flip_rate`; targeting beats rate for the
    /// detection-completeness sweep, which must hit *every* byte once.
    pub corrupt_byte_at: Option<(String, u64, u8)>,
}

impl FaultPlan {
    /// A plan that injects nothing (base for struct-update syntax).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_error_rate: 0.0,
            torn_append_rate: 0.0,
            crash_after_bytes: None,
            short_read_cap: None,
            bit_flip_rate: 0.0,
            corrupt_byte_at: None,
        }
    }

    /// A mildly hostile storage substrate: occasional transient errors
    /// and rare torn appends, no crash.
    pub fn flaky(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_error_rate: 0.05,
            torn_append_rate: 0.02,
            crash_after_bytes: None,
            short_read_cap: None,
            bit_flip_rate: 0.0,
            corrupt_byte_at: None,
        }
    }
}

/// Counters for what was actually injected.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Fallible operations that reached the wrapper.
    pub ops: u64,
    /// Transient errors injected (store untouched).
    pub injected_transient: u64,
    /// Torn appends injected (prefix landed, then error).
    pub injected_torn: u64,
    /// Operations rejected because the backend was crash-stopped.
    pub rejected_while_crashed: u64,
    /// 1 once the crash budget fired (or `crash_now` was called).
    pub crashes: u64,
    /// Corrupted bytes *served*: every read of a rotten byte counts, so
    /// the same byte read twice counts twice (it models observations,
    /// not distinct bad sectors).
    pub injected_bit_flips: u64,
}

/// Live counter handles incremented *at the injection site*, so a
/// flight-recorder frame taken mid-run shows the fault in the interval
/// it actually happened (the end-of-run [`FaultyBackend::export_into`]
/// dump can't). All series share the name `faults.injected`, split by a
/// `kind` label — distinct from the `faults.injected_*` export names,
/// so binding live counters and exporting at the end never double-books
/// a series.
#[derive(Debug, Clone)]
pub struct FaultObs {
    pub transient: Counter,
    pub torn: Counter,
    pub bit_flips: Counter,
    pub crashes: Counter,
    pub rejected: Counter,
}

impl FaultObs {
    /// Counters registered in `reg` as `faults.injected{kind=...}`.
    pub fn registered(reg: &Registry) -> Self {
        let kind = |k| reg.counter_with("faults.injected", &[("kind", k)]);
        FaultObs {
            transient: kind("transient"),
            torn: kind("torn"),
            bit_flips: kind("bit_flip"),
            crashes: kind("crash"),
            rejected: kind("rejected"),
        }
    }
}

struct FaultState {
    rng: Rng,
    plan: FaultPlan,
    appended: u64,
    crashed: bool,
    stats: FaultStats,
    obs: Option<FaultObs>,
}

impl FaultState {
    fn note_transient(&mut self) {
        self.stats.injected_transient += 1;
        if let Some(o) = &self.obs {
            o.transient.inc();
        }
    }

    fn note_torn(&mut self) {
        self.stats.injected_torn += 1;
        if let Some(o) = &self.obs {
            o.torn.inc();
        }
    }

    fn note_crash(&mut self) {
        self.crashed = true;
        self.stats.crashes += 1;
        if let Some(o) = &self.obs {
            o.crashes.inc();
        }
    }

    fn note_rejected(&mut self) {
        self.stats.rejected_while_crashed += 1;
        if let Some(o) = &self.obs {
            o.rejected.inc();
        }
    }
}

/// A [`Backend`] wrapper injecting faults per a [`FaultPlan`].
///
/// The wrapper is deterministic: the fault sequence depends only on the
/// plan's seed and the order of operations. Concurrent callers
/// serialize on an internal mutex for the *decision*, so a
/// multi-threaded workload still gets a well-defined (if
/// schedule-dependent) fault stream.
pub struct FaultyBackend<B: Backend> {
    inner: B,
    state: Mutex<FaultState>,
}

fn crashed_error() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "backend crash-stopped (power loss)")
}

impl<B: Backend> FaultyBackend<B> {
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultyBackend {
            inner,
            state: Mutex::new(FaultState {
                rng: Rng::new(plan.seed),
                plan,
                appended: 0,
                crashed: false,
                stats: FaultStats::default(),
                obs: None,
            }),
        }
    }

    /// The wrapped backend (e.g. to inspect the frozen byte state).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Total bytes appended through the wrapper so far (the coordinate
    /// system `crash_after_bytes` budgets against).
    pub fn bytes_appended(&self) -> u64 {
        self.state.lock().unwrap().appended
    }

    /// Injection counters.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().unwrap().stats
    }

    /// Export the injection counters into a metrics registry as the
    /// `faults.*` series. Counters accumulate, so export once per
    /// backend (or use labels to keep backends apart).
    pub fn export_into(&self, reg: &obs::Registry) {
        self.export_into_labeled(reg, &[]);
    }

    /// [`Self::export_into`] with extra labels on every series.
    pub fn export_into_labeled(&self, reg: &obs::Registry, labels: &[(&str, &str)]) {
        let st = self.stats();
        reg.counter_with("faults.ops", labels).add(st.ops);
        reg.counter_with("faults.injected_transient", labels).add(st.injected_transient);
        reg.counter_with("faults.injected_torn", labels).add(st.injected_torn);
        reg.counter_with("faults.rejected_while_crashed", labels).add(st.rejected_while_crashed);
        reg.counter_with("faults.crashes", labels).add(st.crashes);
        reg.counter_with("faults.injected_bit_flips", labels).add(st.injected_bit_flips);
    }

    /// Record every *future* injection live into `reg` as the
    /// `faults.injected{kind=...}` series (see [`FaultObs`]). Unlike
    /// [`Self::export_into`], which dumps totals once at the end,
    /// live counters move at the moment of injection — which is what
    /// lets a flight-recorder frame localize a fault burst in time.
    pub fn bind_obs(&self, reg: &Registry) {
        self.state.lock().unwrap().obs = Some(FaultObs::registered(reg));
    }

    /// Has the crash-stop fired?
    pub fn is_crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Crash-stop immediately, regardless of the byte budget.
    pub fn crash_now(&self) {
        let mut st = self.state.lock().unwrap();
        if !st.crashed {
            st.note_crash();
        }
    }

    /// Simulate a reboot: the store becomes reachable again in exactly
    /// the byte state it froze in. The crash budget is disarmed so
    /// recovery tooling can write; transient/torn rates stay armed.
    pub fn heal(&self) {
        let mut st = self.state.lock().unwrap();
        st.crashed = false;
        st.plan.crash_after_bytes = None;
    }

    /// Replace the plan mid-flight (keeps the crash state and byte
    /// count; reseeds the PRNG from the new plan).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut st = self.state.lock().unwrap();
        st.rng = Rng::new(plan.seed);
        st.plan = plan;
    }

    /// Gate a non-append operation: fail if crashed, else maybe inject
    /// a transient error.
    fn gate(&self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.stats.ops += 1;
        if st.crashed {
            st.note_rejected();
            return Err(crashed_error());
        }
        let p = st.plan.transient_error_rate;
        if p > 0.0 && st.rng.chance(p) {
            st.note_transient();
            return Err(transient_error(&mut st.rng));
        }
        Ok(())
    }
}

/// SplitMix64 finalizer — the per-byte rot decision must be a pure
/// function of `(seed, path, offset)`, independent of the shared RNG
/// stream, so every read path observes the same corruption.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn path_hash(seed: u64, path: &str) -> u64 {
    let mut h = mix64(seed ^ 0x5DEE_CE66_D1CE_5BBD);
    for chunk in path.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Is the byte at `offset` rotten, and if so which bit flips?
fn rot_bit(path_h: u64, offset: u64, rate: f64) -> Option<u8> {
    let r = mix64(path_h ^ offset);
    // 53 high bits → uniform in [0, 1).
    let u = (r >> 11) as f64 / (1u64 << 53) as f64;
    (u < rate).then_some(1u8 << (r & 7))
}

fn transient_error(rng: &mut Rng) -> io::Error {
    let kind = match rng.below(3) {
        0 => io::ErrorKind::Interrupted, // EINTR-style
        1 => io::ErrorKind::WouldBlock,  // EAGAIN-style
        _ => io::ErrorKind::TimedOut,    // network store hiccup
    };
    io::Error::new(kind, "injected transient fault")
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn mkdir_all(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.mkdir_all(path)
    }

    fn create(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.create(path)
    }

    fn create_new(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.create_new(path)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        let mut st = self.state.lock().unwrap();
        st.stats.ops += 1;
        if st.crashed {
            st.note_rejected();
            return Err(crashed_error());
        }
        // Crash budget: the append crossing it lands exactly up to the
        // budget, then the backend freezes.
        if let Some(budget) = st.plan.crash_after_bytes {
            if st.appended + data.len() as u64 > budget {
                let room = (budget - st.appended) as usize;
                if room > 0 {
                    self.inner.append(path, &data[..room])?;
                    st.appended += room as u64;
                }
                st.note_crash();
                return Err(crashed_error());
            }
        }
        // Torn append: a random *nonempty* strict prefix lands, then the
        // error. Guaranteeing progress keeps torn faults observably
        // distinct from plain transients (the file grew), which is what
        // lets the retry layer classify its recoveries exactly. A 1-byte
        // append cannot tear — it degrades to a plain transient below.
        let torn = st.plan.torn_append_rate;
        if torn > 0.0 && !data.is_empty() && st.rng.chance(torn) {
            if data.len() >= 2 {
                let prefix = 1 + st.rng.below(data.len() as u64 - 1) as usize;
                self.inner.append(path, &data[..prefix])?;
                st.appended += prefix as u64;
                st.note_torn();
            } else {
                st.note_transient();
            }
            return Err(transient_error(&mut st.rng));
        }
        // Plain transient: nothing lands.
        let p = st.plan.transient_error_rate;
        if p > 0.0 && st.rng.chance(p) {
            st.note_transient();
            return Err(transient_error(&mut st.rng));
        }
        let off = self.inner.append(path, data)?;
        st.appended += data.len() as u64;
        Ok(off)
    }

    fn read_at(&self, path: &str, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.gate()?;
        let (cap, seed, rate, target) = {
            let st = self.state.lock().unwrap();
            (
                st.plan.short_read_cap,
                st.plan.seed,
                st.plan.bit_flip_rate,
                st.plan.corrupt_byte_at.clone(),
            )
        };
        let n = match cap {
            Some(cap) => buf.len().min(cap.max(1)),
            None => buf.len(),
        };
        let got = self.inner.read_at(path, off, &mut buf[..n])?;
        if rate > 0.0 || target.is_some() {
            let ph = path_hash(seed, path);
            let targeted = target.as_ref().filter(|(suffix, _, _)| path.ends_with(suffix.as_str()));
            let mut flipped = 0u64;
            for (i, byte) in buf[..got].iter_mut().enumerate() {
                let abs = off + i as u64;
                if let Some((_, t_off, mask)) = targeted {
                    if *t_off == abs {
                        *byte ^= if *mask == 0 { 0x01 } else { *mask };
                        flipped += 1;
                        continue;
                    }
                }
                if rate > 0.0 {
                    if let Some(bit) = rot_bit(ph, abs, rate) {
                        *byte ^= bit;
                        flipped += 1;
                    }
                }
            }
            if flipped > 0 {
                let mut st = self.state.lock().unwrap();
                st.stats.injected_bit_flips += flipped;
                if let Some(o) = &st.obs {
                    o.bit_flips.add(flipped);
                }
            }
        }
        Ok(got)
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        self.gate()?;
        self.inner.len(path)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        self.gate()?;
        self.inner.list(dir)
    }

    fn exists(&self, path: &str) -> bool {
        // Infallible in the trait; a crashed store answers from its
        // frozen state.
        self.inner.exists(path)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.remove(path)
    }

    fn remove_dir_all(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.remove_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn no_faults_is_transparent() {
        let b = FaultyBackend::new(MemBackend::new(), FaultPlan::none(1));
        b.mkdir_all("/d").unwrap();
        b.append("/d/f", b"hello").unwrap();
        assert_eq!(b.read_all("/d/f").unwrap(), b"hello");
        assert_eq!(b.bytes_appended(), 5);
        assert_eq!(b.stats().injected_transient, 0);
    }

    #[test]
    fn crash_budget_freezes_exact_byte_state() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan { crash_after_bytes: Some(7), ..FaultPlan::none(1) },
        );
        b.append("/f", b"abcde").unwrap(); // 5 bytes, within budget
        let err = b.append("/f", b"fghij").unwrap_err(); // crosses at 7
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(b.is_crashed());
        // Frozen: reads fail too.
        assert!(b.len("/f").is_err());
        // Reboot: exactly 7 bytes are there.
        b.heal();
        assert_eq!(b.read_all("/f").unwrap(), b"abcdefg");
        assert_eq!(b.stats().crashes, 1);
    }

    #[test]
    fn crash_now_rejects_everything_until_heal() {
        let b = FaultyBackend::new(MemBackend::new(), FaultPlan::none(3));
        b.append("/f", b"x").unwrap();
        b.crash_now();
        assert!(b.append("/f", b"y").is_err());
        assert!(b.list("/").is_err());
        assert!(b.stats().rejected_while_crashed >= 2);
        b.heal();
        b.append("/f", b"y").unwrap();
        assert_eq!(b.read_all("/f").unwrap(), b"xy");
    }

    #[test]
    fn transient_rate_injects_deterministically() {
        let run = |seed| {
            let b = FaultyBackend::new(
                MemBackend::new(),
                FaultPlan { transient_error_rate: 0.3, ..FaultPlan::none(seed) },
            );
            let mut failures = Vec::new();
            for i in 0..100 {
                failures.push(b.append("/f", &[i as u8]).is_err());
            }
            failures
        };
        assert_eq!(run(9), run(9), "same seed must inject identically");
        assert_ne!(run(9), run(10), "different seeds must differ");
        let n_fail = run(9).iter().filter(|&&x| x).count();
        assert!((10..60).contains(&n_fail), "rate wildly off: {n_fail}/100");
    }

    #[test]
    fn torn_append_lands_a_strict_prefix() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan { torn_append_rate: 1.0, ..FaultPlan::none(5) },
        );
        let err = b.append("/f", b"0123456789").unwrap_err();
        assert!(crate::retry::classify(&err) == crate::retry::ErrorClass::Transient);
        let landed = b.inner().len("/f").unwrap_or(0);
        assert!(landed < 10, "torn append must not land everything");
        assert!(landed >= 1, "torn append must land a nonempty prefix");
        assert_eq!(b.stats().injected_torn, 1);
        assert_eq!(b.bytes_appended(), landed);
    }

    #[test]
    fn torn_appends_always_make_progress() {
        // Every injected tear lands at least one byte — the property the
        // retry layer relies on to tell torn from plain-transient.
        for seed in 0..32 {
            let b = FaultyBackend::new(
                MemBackend::new(),
                FaultPlan { torn_append_rate: 1.0, ..FaultPlan::none(seed) },
            );
            let before = b.inner().len("/f").unwrap_or(0);
            b.append("/f", b"abcdef").unwrap_err();
            let after = b.inner().len("/f").unwrap_or(0);
            assert!(after > before, "seed {seed}: tear landed nothing");
            assert!(after - before < 6, "seed {seed}: tear landed everything");
        }
    }

    #[test]
    fn one_byte_appends_degrade_to_plain_transient() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan { torn_append_rate: 1.0, ..FaultPlan::none(2) },
        );
        b.append("/f", b"x").unwrap_err();
        let st = b.stats();
        assert_eq!(st.injected_torn, 0);
        assert_eq!(st.injected_transient, 1);
        assert_eq!(b.inner().len("/f").unwrap_or(0), 0, "store untouched");
    }

    #[test]
    fn bit_flips_are_deterministic_per_byte() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan { bit_flip_rate: 0.1, ..FaultPlan::none(11) },
        );
        let clean: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        b.append("/f", &clean).unwrap();
        // Same corruption no matter how the region is read.
        let whole = b.read_all("/f").unwrap();
        let mut pieces = vec![0u8; 2000];
        for (i, chunk) in pieces.chunks_mut(63).enumerate() {
            let got = b.read_at("/f", (i * 63) as u64, chunk).unwrap();
            assert_eq!(got, chunk.len());
        }
        assert_eq!(whole, pieces, "rot must not depend on read slicing");
        let rotten = whole.iter().zip(&clean).filter(|(a, b)| a != b).count();
        assert!((50..400).contains(&rotten), "rate wildly off: {rotten}/2000");
        assert!(b.stats().injected_bit_flips >= rotten as u64 * 2);
        // Other files rot independently.
        b.set_plan(FaultPlan { bit_flip_rate: 0.1, ..FaultPlan::none(11) });
        b.append("/g", &clean).unwrap();
        let other = b.read_all("/g").unwrap();
        assert_ne!(whole, other, "per-path rot must differ");
    }

    #[test]
    fn corrupt_byte_at_targets_one_exact_byte() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan {
                corrupt_byte_at: Some(("data.3".to_string(), 5, 0x40)),
                ..FaultPlan::none(4)
            },
        );
        b.append("/c/hostdir.0/data.3", &[0u8; 16]).unwrap();
        b.append("/c/hostdir.0/index.3", &[0u8; 16]).unwrap();
        let data = b.read_all("/c/hostdir.0/data.3").unwrap();
        let mut want = vec![0u8; 16];
        want[5] = 0x40;
        assert_eq!(data, want, "exactly byte 5 of the target flips");
        assert_eq!(b.read_all("/c/hostdir.0/index.3").unwrap(), vec![0u8; 16]);
        assert_eq!(b.stats().injected_bit_flips, 1);
    }

    #[test]
    fn bound_obs_counts_injections_live() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan { transient_error_rate: 1.0, ..FaultPlan::none(7) },
        );
        let reg = obs::Registry::new();
        b.bind_obs(&reg);
        let live = reg.counter_with("faults.injected", &[("kind", "transient")]);
        assert_eq!(live.get(), 0);
        let _ = b.append("/f", b"xy");
        assert_eq!(live.get(), 1, "live counter moves at the injection site");
        b.crash_now();
        let _ = b.list("/");
        assert_eq!(reg.counter_with("faults.injected", &[("kind", "crash")]).get(), 1);
        assert_eq!(reg.counter_with("faults.injected", &[("kind", "rejected")]).get(), 1);
        // The end-of-run export still works and lands on distinct names.
        b.export_into(&reg);
        assert_eq!(reg.value("faults.injected_transient"), Some(1));
    }

    #[test]
    fn export_into_mirrors_stats() {
        let b = FaultyBackend::new(
            MemBackend::new(),
            FaultPlan { transient_error_rate: 0.5, ..FaultPlan::none(7) },
        );
        for i in 0..50 {
            let _ = b.append("/f", &[i as u8, i as u8]);
        }
        let reg = obs::Registry::new();
        b.export_into(&reg);
        let st = b.stats();
        assert_eq!(reg.value("faults.ops"), Some(st.ops));
        assert_eq!(reg.value("faults.injected_transient"), Some(st.injected_transient));
        assert!(st.injected_transient > 0);
    }
}
