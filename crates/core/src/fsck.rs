//! Container integrity checking (`plfs_check` in the original tools).
//!
//! A PLFS container is many independent droppings; partial writes,
//! truncated logs, or lost index records after a crash show up as
//! specific, locally-detectable inconsistencies. `fsck` verifies:
//!
//! 1. the container skeleton (access marker, openhosts/meta dirs);
//! 2. every index dropping decodes cleanly;
//! 3. every index entry's physical extent lies within its data
//!    dropping (no dangling pointers);
//! 4. data droppings have no unindexed tail beyond the highest indexed
//!    byte (orphaned bytes — harmless but reported);
//! 5. writers that left data but no index (unreadable data), and
//!    stale `openhosts` droppings from sessions that never closed.
//!
//! [`repair`] fixes what [`fsck`] finds, preserving the crash-recovery
//! invariant: **every write acknowledged (synced) before the crash
//! reads back byte-for-byte afterwards**. The writer flushes data
//! before index, so a torn index tail or an unindexed data tail always
//! belongs to writes that were never acked — truncating them is safe.

use crate::backend::Backend;
use crate::canonical::{freshness, CanonicalIndex};
use crate::checksum::{crc32, parse_chk, CHK_HEADER_BYTES};
use crate::container::{discover_droppings, is_container, ContainerPaths};
use crate::index::{decode, decode_prefix, encode_raw, IndexEntry};
use crate::pool;
use std::io;

/// One detected problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckError {
    NotAContainer,
    /// Index dropping failed to decode (offset of failure unknown —
    /// the tail after the last good record is unreadable).
    CorruptIndex {
        rank: u32,
        detail: String,
    },
    /// An index entry points outside its data dropping.
    DanglingExtent {
        rank: u32,
        physical_end: u64,
        data_len: u64,
    },
    /// Data bytes beyond anything the index references.
    OrphanedData {
        rank: u32,
        orphaned_bytes: u64,
    },
    /// A data dropping exists with no index dropping at all.
    MissingIndex {
        rank: u32,
    },
    /// An openhosts dropping from a session that never closed.
    StaleOpenSession {
        name: String,
    },
    /// The flattened-index cache no longer matches the droppings (or is
    /// undecodable). Not fatal: readers ignore a bad cache and rebuild,
    /// but `repair` removes it.
    StaleCanonicalIndex {
        detail: String,
    },
}

/// The full report.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    pub writers: usize,
    pub entries: usize,
    pub logical_eof: u64,
    pub errors: Vec<FsckError>,
    /// Per rank: dropping bytes (data + index) not covered by a
    /// checksum sidecar — legacy sessions, checksumming disabled, or a
    /// crash before the sidecar flush. Informational, never an error:
    /// uncovered bytes read fine, they just can't be verified. Use
    /// [`scrub`] to checksum-walk what *is* covered.
    pub uncovered: Vec<(u32, u64)>,
}

impl FsckReport {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Errors that make some logical bytes unreadable (vs. cosmetic).
    pub fn fatal_count(&self) -> usize {
        self.errors
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    FsckError::NotAContainer
                        | FsckError::CorruptIndex { .. }
                        | FsckError::DanglingExtent { .. }
                        | FsckError::MissingIndex { .. }
                )
            })
            .count()
    }
}

/// Check a container.
pub fn fsck(backend: &dyn Backend, logical: &str, hostdirs: u32) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    if !is_container(backend, logical) {
        report.errors.push(FsckError::NotAContainer);
        return Ok(report);
    }
    let paths = ContainerPaths::new(logical, hostdirs);

    // Stale open sessions.
    if let Ok(names) = backend.list(&paths.openhosts_dir()) {
        for name in names {
            report.errors.push(FsckError::StaleOpenSession { name });
        }
    }

    // Index/data cross-checks.
    let droppings = discover_droppings(backend, &paths)?;
    report.writers = droppings.len();
    let mut indexed_ranks = std::collections::HashSet::new();
    for (rank, idx_path, data_path) in &droppings {
        indexed_ranks.insert(*rank);
        let blob = backend.read_all(idx_path)?;
        let entries = match decode(&blob) {
            Ok(e) => e,
            Err(err) => {
                report
                    .errors
                    .push(FsckError::CorruptIndex { rank: *rank, detail: err.to_string() });
                continue;
            }
        };
        report.entries += entries.len();
        let data_len = backend.len(data_path).unwrap_or(0);
        let mut highest_physical = 0u64;
        for e in &entries {
            let phys_end = e.physical_offset + e.length;
            highest_physical = highest_physical.max(phys_end);
            report.logical_eof = report.logical_eof.max(e.logical_offset + e.length);
            if phys_end > data_len {
                report.errors.push(FsckError::DanglingExtent {
                    rank: *rank,
                    physical_end: phys_end,
                    data_len,
                });
            }
        }
        if data_len > highest_physical {
            report.errors.push(FsckError::OrphanedData {
                rank: *rank,
                orphaned_bytes: data_len - highest_physical,
            });
        }
        let unc = uncovered_bytes(backend, data_path, &paths.chk_dropping(*rank))
            + uncovered_bytes(backend, idx_path, &paths.index_chk_dropping(*rank));
        if unc > 0 {
            report.uncovered.push((*rank, unc));
        }
    }

    // Data droppings with no index at all.
    for entry in backend.list(paths.base())? {
        if !entry.starts_with("hostdir.") {
            continue;
        }
        let dir = format!("{}/{entry}", paths.base());
        for name in backend.list(&dir)? {
            if let Some(rank) = name.strip_prefix("data.").and_then(|r| r.parse::<u32>().ok()) {
                if !indexed_ranks.contains(&rank) {
                    report.errors.push(FsckError::MissingIndex { rank });
                }
            }
        }
    }

    // Flattened-index cache consistency (see `crate::canonical`).
    let canonical_path = paths.canonical_index();
    if backend.exists(&canonical_path) {
        let stale = match backend
            .read_all(&canonical_path)
            .map_err(|e| e.to_string())
            .and_then(|blob| CanonicalIndex::decode(&blob).map_err(|e| e.to_string()))
        {
            Ok(canon) => freshness(backend, &paths, &canon).err(),
            Err(e) => Some(e),
        };
        if let Some(detail) = stale {
            report.errors.push(FsckError::StaleCanonicalIndex { detail });
        }
    }
    Ok(report)
}

// ----------------------------------------------------------------- scrub

/// Bytes of `covered` that `sidecar` does not checksum (whole file when
/// the sidecar is absent or unparseable). O(sidecar), never O(data).
fn uncovered_bytes(backend: &dyn Backend, covered: &str, sidecar: &str) -> u64 {
    let clen = backend.len(covered).unwrap_or(0);
    let Ok(blob) = backend.read_all(sidecar) else {
        return clen;
    };
    match parse_chk(&blob) {
        Ok((block, crcs)) => clen.saturating_sub((crcs.len() as u64 * block).min(clen)),
        Err(_) => clen,
    }
}

/// Loop short reads until `buf` is full.
fn read_exact_at(backend: &dyn Backend, path: &str, off: u64, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let got = backend.read_at(path, off + filled as u64, &mut buf[filled..])?;
        if got == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("{path} truncated at {}", off + filled as u64),
            ));
        }
        filled += got;
    }
    Ok(())
}

/// One corrupt region [`scrub`] found. `path` is the file whose bytes
/// can't be trusted: the covered dropping for a checksum mismatch, the
/// sidecar itself when it is unparseable or claims coverage past EOF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    pub rank: u32,
    pub path: String,
    pub offset: u64,
    pub len: u64,
}

/// What a full-container checksum walk found.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    pub ranks: usize,
    /// Checksum blocks walked (data + index droppings).
    pub checked_blocks: u64,
    /// Bytes those blocks cover.
    pub checked_bytes: u64,
    pub findings: Vec<ScrubFinding>,
    /// Per rank: bytes no sidecar covers (same as [`FsckReport`]).
    pub uncovered: Vec<(u32, u64)>,
    /// `canonical.index` exists but fails its content checksum /
    /// decode. Not load-bearing (readers rebuild), but worth surfacing:
    /// it is the only corruption the cache's own CRC can see.
    pub canonical_corrupt: bool,
}

impl ScrubReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && !self.canonical_corrupt
    }
}

/// Per-rank scrub accumulator.
#[derive(Default)]
struct RankScrub {
    blocks: u64,
    bytes: u64,
    uncovered: u64,
    findings: Vec<ScrubFinding>,
}

/// Blocks per scrub read: 4 MiB chunks at the default block size, so
/// the walk streams instead of materializing whole droppings.
const SCRUB_BLOCKS_PER_READ: usize = 1024;

/// Checksum-walk one covered/sidecar pair, appending findings.
fn scrub_pair(
    backend: &dyn Backend,
    rank: u32,
    covered: &str,
    sidecar: &str,
    out: &mut RankScrub,
) -> io::Result<()> {
    let clen = backend.len(covered).unwrap_or(0);
    if !backend.exists(sidecar) {
        out.uncovered += clen;
        return Ok(());
    }
    let blob = backend.read_all(sidecar)?;
    let Ok((block, crcs)) = parse_chk(&blob) else {
        out.findings.push(ScrubFinding {
            rank,
            path: sidecar.to_string(),
            offset: 0,
            len: blob.len() as u64,
        });
        out.uncovered += clen;
        return Ok(());
    };
    let mut k = 0usize;
    while k < crcs.len() {
        let bstart = k as u64 * block;
        if bstart >= clen {
            // The sidecar claims coverage of bytes that don't exist:
            // the sidecar (not the dropping) is the corrupt artifact.
            out.findings.push(ScrubFinding {
                rank,
                path: sidecar.to_string(),
                offset: CHK_HEADER_BYTES as u64 + 4 * k as u64,
                len: 4 * (crcs.len() - k) as u64,
            });
            break;
        }
        let nblocks = (crcs.len() - k).min(SCRUB_BLOCKS_PER_READ);
        let want = (nblocks as u64 * block).min(clen - bstart) as usize;
        let mut buf = vec![0u8; want];
        read_exact_at(backend, covered, bstart, &mut buf)?;
        for j in 0..nblocks {
            let s = (j as u64 * block) as usize;
            if s >= want {
                break; // entries past EOF: caught on the next iteration
            }
            let e = (s + block as usize).min(want);
            out.blocks += 1;
            out.bytes += (e - s) as u64;
            if crc32(&buf[s..e]) != crcs[k + j] {
                out.findings.push(ScrubFinding {
                    rank,
                    path: covered.to_string(),
                    offset: bstart + s as u64,
                    len: (e - s) as u64,
                });
            }
        }
        k += nblocks;
    }
    out.uncovered += clen.saturating_sub((crcs.len() as u64 * block).min(clen));
    Ok(())
}

/// Full-container checksum walk: verify every sidecar-covered block of
/// every data and index dropping, one bounded worker per rank (same
/// pool the read engine fans out on). Unlike verify-on-read, which only
/// checks blocks a read touches, scrub proves (or indicts) the whole
/// container — run it periodically to catch latent sector rot before a
/// restart depends on the bytes.
pub fn scrub(backend: &dyn Backend, logical: &str, hostdirs: u32) -> io::Result<ScrubReport> {
    if !is_container(backend, logical) {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{logical}: not a PLFS container"),
        ));
    }
    let paths = ContainerPaths::new(logical, hostdirs);
    let droppings = discover_droppings(backend, &paths)?;
    let jobs: Vec<(u32, [(String, String); 2])> = droppings
        .iter()
        .map(|(rank, idx_path, data_path)| {
            (
                *rank,
                [
                    (data_path.clone(), paths.chk_dropping(*rank)),
                    (idx_path.clone(), paths.index_chk_dropping(*rank)),
                ],
            )
        })
        .collect();
    let cap = pool::available_parallelism();
    let (results, _) = pool::run_bounded(jobs.len(), cap, |i| {
        let (rank, pairs) = &jobs[i];
        let mut out = RankScrub::default();
        for (covered, sidecar) in pairs {
            scrub_pair(backend, *rank, covered, sidecar, &mut out)?;
        }
        Ok::<(u32, RankScrub), io::Error>((*rank, out))
    });

    let mut report = ScrubReport { ranks: jobs.len(), ..Default::default() };
    for r in results {
        let (rank, out) = r?;
        report.checked_blocks += out.blocks;
        report.checked_bytes += out.bytes;
        report.findings.extend(out.findings);
        if out.uncovered > 0 {
            report.uncovered.push((rank, out.uncovered));
        }
    }
    report.uncovered.sort_unstable();

    let canonical_path = paths.canonical_index();
    if backend.exists(&canonical_path) {
        report.canonical_corrupt = backend
            .read_all(&canonical_path)
            .ok()
            .and_then(|blob| CanonicalIndex::decode(&blob).ok())
            .is_none();
    }
    Ok(report)
}

// ---------------------------------------------------------------- repair

/// Repair knobs.
#[derive(Debug, Clone, Default)]
pub struct RepairOptions {
    /// Instead of discarding orphaned (unindexed) data bytes,
    /// synthesize index entries that expose them at the end of the
    /// logical file. Their original logical offsets are unknowable —
    /// this is forensic salvage, off by default.
    pub salvage_orphans: bool,
    /// Scrub each dropping first and truncate it at its first
    /// checksum-mismatched block, salvaging the verified prefix and
    /// letting the later passes drop the index entries that pointed
    /// into the cut tail. Destructive (corrupt bytes might still be
    /// wanted forensically), off by default.
    pub truncate_corrupt_tails: bool,
}

/// One mutation `repair` performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairAction {
    /// Cut an undecodable tail off an index dropping (a torn index
    /// flush from an unacked sync).
    TruncatedIndexTail { rank: u32, dropped_bytes: u64 },
    /// Dropped index entries pointing past the end of their data
    /// dropping (index flushed, data never fully landed — unacked).
    TrimmedDanglingExtents { rank: u32, dropped_entries: usize },
    /// Cut unindexed bytes off the end of a data dropping (a torn data
    /// flush from an unacked sync).
    TruncatedOrphanTail { rank: u32, dropped_bytes: u64 },
    /// Removed a data dropping that had no index dropping at all.
    RemovedUnindexedData { rank: u32 },
    /// Synthesized an index entry exposing orphaned bytes at the end of
    /// the logical file (salvage mode).
    SalvagedOrphan { rank: u32, bytes: u64, logical_offset: u64 },
    /// Removed an openhosts dropping left by a session that died.
    ClearedStaleSession { name: String },
    /// Removed a flattened-index cache that was stale, undecodable, or
    /// invalidated by the repairs above (rewriting a dropping silently
    /// breaks any cached merge of it).
    DroppedStaleCanonical,
    /// Cut a dropping at its first checksum-mismatched block
    /// ([`RepairOptions::truncate_corrupt_tails`]); the verified prefix
    /// survives, later passes reconcile the index.
    TruncatedCorruptTail { rank: u32, dropped_bytes: u64 },
    /// Removed a checksum sidecar that was unparseable, orphaned (its
    /// covered dropping is gone), or invalidated wholesale by a rewrite
    /// of the covered file. CRCs are never recomputed from bytes repair
    /// can't vouch for — the dropping reads as "uncovered" until the
    /// next writer session rebuilds its sidecar.
    RemovedChecksumSidecar { rank: u32 },
    /// Dropped sidecar entries that no longer match the covered file
    /// (coverage past EOF after a truncation, or a torn trailing
    /// partial entry).
    TrimmedChecksumTail { rank: u32, dropped_entries: usize },
}

/// What `repair` found and did.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Container state before repair.
    pub before: FsckReport,
    /// Container state after repair (clean unless the container was
    /// unrecognizable).
    pub after: FsckReport,
    pub actions: Vec<RepairAction>,
}

/// Rewrite `path` keeping only its first `keep` bytes. The [`Backend`]
/// trait has no truncate, so this is read–remove–re-append; droppings
/// are small relative to the data they index, and crash repair is not
/// a hot path.
fn truncate_file(backend: &dyn Backend, path: &str, keep: u64) -> io::Result<()> {
    let data = backend.read_all(path)?;
    if keep as usize >= data.len() {
        return Ok(());
    }
    backend.remove(path)?;
    backend.create(path)?;
    if keep > 0 {
        backend.append(path, &data[..keep as usize])?;
    }
    Ok(())
}

/// Offset of the first checksum-mismatched block of `covered`, or
/// `None` when everything verifiable verifies (absent/unparseable
/// sidecars verify nothing — sidecar reconciliation handles those).
fn first_corrupt_block(
    backend: &dyn Backend,
    covered: &str,
    sidecar: &str,
) -> io::Result<Option<u64>> {
    let Ok(blob) = backend.read_all(sidecar) else {
        return Ok(None);
    };
    let Ok((block, crcs)) = parse_chk(&blob) else {
        return Ok(None);
    };
    let clen = backend.len(covered).unwrap_or(0);
    let mut k = 0usize;
    while k < crcs.len() {
        let bstart = k as u64 * block;
        if bstart >= clen {
            break;
        }
        let nblocks = (crcs.len() - k).min(SCRUB_BLOCKS_PER_READ);
        let want = (nblocks as u64 * block).min(clen - bstart) as usize;
        let mut buf = vec![0u8; want];
        read_exact_at(backend, covered, bstart, &mut buf)?;
        for j in 0..nblocks {
            let s = (j as u64 * block) as usize;
            if s >= want {
                break;
            }
            let e = (s + block as usize).min(want);
            if crc32(&buf[s..e]) != crcs[k + j] {
                return Ok(Some(bstart + s as u64));
            }
        }
        k += nblocks;
    }
    Ok(None)
}

/// Reconcile one checksum sidecar with its covered file after the
/// repair passes rewrote droppings. Entries are only ever *dropped* —
/// recomputing a CRC from bytes repair can't vouch for would launder
/// corruption into "verified". `modified` says the covered file was
/// rewritten this run: then the boundary partial-block entry (a
/// close-time tail CRC) is dropped too, since the tail it hashed may
/// not be the tail that survived.
fn reconcile_sidecar(
    backend: &dyn Backend,
    rank: u32,
    covered: &str,
    sidecar: &str,
    modified: bool,
    actions: &mut Vec<RepairAction>,
) -> io::Result<()> {
    if !backend.exists(sidecar) {
        return Ok(());
    }
    if !backend.exists(covered) {
        backend.remove(sidecar)?;
        actions.push(RepairAction::RemovedChecksumSidecar { rank });
        return Ok(());
    }
    let blob = backend.read_all(sidecar)?;
    let Ok((block, crcs)) = parse_chk(&blob) else {
        backend.remove(sidecar)?;
        actions.push(RepairAction::RemovedChecksumSidecar { rank });
        return Ok(());
    };
    let clen = backend.len(covered).unwrap_or(0);
    let mut keep = crcs.len();
    while keep > 0 {
        let k = (keep - 1) as u64;
        if (k + 1) * block <= clen {
            break; // full block: always valid to keep
        }
        if k * block < clen && !modified && keep == crcs.len() {
            break; // untouched file's own close-time tail CRC
        }
        keep -= 1;
    }
    let want_len = CHK_HEADER_BYTES + 4 * keep;
    if keep == crcs.len() && blob.len() == want_len {
        return Ok(()); // consistent, no torn trailing bytes either
    }
    if keep == 0 {
        backend.remove(sidecar)?;
        actions.push(RepairAction::RemovedChecksumSidecar { rank });
        return Ok(());
    }
    truncate_file(backend, sidecar, want_len as u64)?;
    actions.push(RepairAction::TrimmedChecksumTail { rank, dropped_entries: crcs.len() - keep });
    Ok(())
}

/// Repair a crashed container in place.
///
/// Fix order matters — each step can only expose problems a later step
/// handles:
///
/// 0. (opt-in) truncate droppings at their first checksum-mismatched
///    block — the cut tail becomes torn/dangling state for 1–3;
/// 1. truncate torn index tails to the last fully-decodable record;
/// 2. drop index entries whose extents dangle past their data dropping
///    (rewriting that index dropping);
/// 3. truncate (or, in salvage mode, index) unindexed data tails;
/// 4. remove (or salvage) data droppings that have no index dropping;
/// 5. clear stale `openhosts` sessions, then reconcile checksum
///    sidecars with whatever the passes above rewrote (entries are
///    only dropped, never recomputed).
///
/// Everything removed was, by the writer's data-before-index flush
/// ordering, never acknowledged; acked bytes survive verbatim.
pub fn repair(
    backend: &dyn Backend,
    logical: &str,
    hostdirs: u32,
    opts: &RepairOptions,
) -> io::Result<RepairReport> {
    let before = fsck(backend, logical, hostdirs)?;
    let mut actions = Vec::new();
    if before.errors.contains(&FsckError::NotAContainer) {
        // Nothing we can do without a container skeleton.
        return Ok(RepairReport { after: before.clone(), before, actions });
    }
    let paths = ContainerPaths::new(logical, hostdirs);
    let droppings = discover_droppings(backend, &paths)?;

    // Which ranks' data/index files this run rewrites — their sidecars'
    // close-time tail CRCs are reconciled at the end.
    let mut data_mod = std::collections::HashSet::new();
    let mut index_mod = std::collections::HashSet::new();

    // Pass 0 (opt-in): salvage the verified prefix of corrupt
    // droppings. Cutting at the first bad block turns silent corruption
    // into the torn-tail / dangling-extent shapes passes 1–3 already
    // repair.
    if opts.truncate_corrupt_tails {
        for (rank, idx_path, data_path) in &droppings {
            let pairs = [
                (data_path.as_str(), paths.chk_dropping(*rank), &mut data_mod),
                (idx_path.as_str(), paths.index_chk_dropping(*rank), &mut index_mod),
            ];
            for (covered, sidecar, modified) in pairs {
                if let Some(first_bad) = first_corrupt_block(backend, covered, &sidecar)? {
                    let clen = backend.len(covered).unwrap_or(0);
                    truncate_file(backend, covered, first_bad)?;
                    modified.insert(*rank);
                    actions.push(RepairAction::TruncatedCorruptTail {
                        rank: *rank,
                        dropped_bytes: clen - first_bad,
                    });
                }
            }
        }
    }

    // Passes 1–3 per writer; remember each writer's surviving entries
    // so salvage can place orphans past the global logical EOF.
    let mut kept_all: Vec<(u32, String, String, Vec<IndexEntry>, u64)> = Vec::new();
    let mut logical_eof = 0u64;
    let mut max_ts = 0u64;
    for (rank, idx_path, data_path) in droppings {
        let blob = backend.read_all(&idx_path)?;
        let (mut entries, consumed) = decode_prefix(&blob);
        if consumed < blob.len() {
            truncate_file(backend, &idx_path, consumed as u64)?;
            actions.push(RepairAction::TruncatedIndexTail {
                rank,
                dropped_bytes: (blob.len() - consumed) as u64,
            });
        }
        let data_len = backend.len(&data_path).unwrap_or(0);
        let n_before = entries.len();
        entries.retain(|e| e.physical_offset + e.length <= data_len);
        if entries.len() < n_before {
            let encoded = encode_raw(&entries);
            backend.remove(&idx_path)?;
            backend.create(&idx_path)?;
            if !encoded.is_empty() {
                backend.append(&idx_path, &encoded)?;
            }
            actions.push(RepairAction::TrimmedDanglingExtents {
                rank,
                dropped_entries: n_before - entries.len(),
            });
        }
        for e in &entries {
            logical_eof = logical_eof.max(e.logical_offset + e.length);
            max_ts = max_ts.max(e.timestamp);
        }
        kept_all.push((rank, idx_path, data_path, entries, data_len));
    }

    // Pass 3: orphaned data tails.
    for (rank, idx_path, data_path, entries, data_len) in &kept_all {
        let highest = entries.iter().map(|e| e.physical_offset + e.length).max().unwrap_or(0);
        if *data_len > highest {
            let orphaned = data_len - highest;
            if opts.salvage_orphans {
                let entry = IndexEntry {
                    logical_offset: logical_eof,
                    length: orphaned,
                    physical_offset: highest,
                    writer: *rank,
                    timestamp: max_ts + 1,
                };
                backend.append(idx_path, &encode_raw(&[entry]))?;
                actions.push(RepairAction::SalvagedOrphan {
                    rank: *rank,
                    bytes: orphaned,
                    logical_offset: logical_eof,
                });
                logical_eof += orphaned;
            } else {
                truncate_file(backend, data_path, highest)?;
                actions.push(RepairAction::TruncatedOrphanTail {
                    rank: *rank,
                    dropped_bytes: orphaned,
                });
            }
        }
    }

    // Pass 4: data droppings with no index dropping at all.
    let indexed: std::collections::HashSet<u32> = kept_all.iter().map(|(r, ..)| *r).collect();
    for entry in backend.list(paths.base())? {
        if !entry.starts_with("hostdir.") {
            continue;
        }
        let dir = format!("{}/{entry}", paths.base());
        for name in backend.list(&dir)? {
            let Some(rank) = name.strip_prefix("data.").and_then(|r| r.parse::<u32>().ok()) else {
                continue;
            };
            if indexed.contains(&rank) {
                continue;
            }
            let data_path = format!("{dir}/{name}");
            let bytes = backend.len(&data_path).unwrap_or(0);
            if opts.salvage_orphans && bytes > 0 {
                let entry = IndexEntry {
                    logical_offset: logical_eof,
                    length: bytes,
                    physical_offset: 0,
                    writer: rank,
                    timestamp: max_ts + 1,
                };
                backend.append(&paths.index_dropping(rank), &encode_raw(&[entry]))?;
                actions.push(RepairAction::SalvagedOrphan {
                    rank,
                    bytes,
                    logical_offset: logical_eof,
                });
                logical_eof += bytes;
            } else {
                backend.remove(&data_path)?;
                actions.push(RepairAction::RemovedUnindexedData { rank });
            }
        }
    }

    // Pass 5: sessions that never closed.
    if let Ok(names) = backend.list(&paths.openhosts_dir()) {
        for name in names {
            backend.remove(&format!("{}/{name}", paths.openhosts_dir()))?;
            actions.push(RepairAction::ClearedStaleSession { name });
        }
    }

    // Sidecar reconciliation. Prefix-preserving truncations invalidate
    // at most the close-time tail CRC (`*_mod`); a wholesale index
    // re-encode (dangling-extent trim) invalidates every `chki` block,
    // so that sidecar is removed outright.
    let mut index_rewritten = std::collections::HashSet::new();
    for a in &actions {
        match a {
            RepairAction::TruncatedIndexTail { rank, .. } => {
                index_mod.insert(*rank);
            }
            RepairAction::TrimmedDanglingExtents { rank, .. } => {
                index_rewritten.insert(*rank);
            }
            RepairAction::TruncatedOrphanTail { rank, .. } => {
                data_mod.insert(*rank);
            }
            RepairAction::SalvagedOrphan { rank, .. } => {
                // The index grew (tail CRC stale) and bytes beyond the
                // data sidecar's close-time coverage became live — the
                // data tail CRC hashed a shorter tail than now exists.
                index_mod.insert(*rank);
                data_mod.insert(*rank);
            }
            _ => {}
        }
    }
    for entry in backend.list(paths.base())? {
        if !entry.starts_with("hostdir.") {
            continue;
        }
        let dir = format!("{}/{entry}", paths.base());
        for name in backend.list(&dir)? {
            let (rank, covered, modified, rewritten) = if let Some(r) =
                name.strip_prefix("chki.").and_then(|r| r.parse::<u32>().ok())
            {
                (
                    r,
                    format!("{dir}/index.{r}"),
                    index_mod.contains(&r),
                    index_rewritten.contains(&r),
                )
            } else if let Some(r) = name.strip_prefix("chk.").and_then(|r| r.parse::<u32>().ok()) {
                (r, format!("{dir}/data.{r}"), data_mod.contains(&r), false)
            } else {
                continue;
            };
            let sidecar = format!("{dir}/{name}");
            if rewritten {
                backend.remove(&sidecar)?;
                actions.push(RepairAction::RemovedChecksumSidecar { rank });
                continue;
            }
            reconcile_sidecar(backend, rank, &covered, &sidecar, modified, &mut actions)?;
        }
    }

    // Pass 6: the flattened-index cache. Runs last because the passes
    // above rewrite droppings and change the session count — both
    // silently invalidate a cached merge. An already-stale or
    // undecodable cache goes too; a fresh one on an untouched
    // container is kept.
    let canonical_path = paths.canonical_index();
    if backend.exists(&canonical_path) {
        let fresh = backend
            .read_all(&canonical_path)
            .ok()
            .and_then(|blob| CanonicalIndex::decode(&blob).ok())
            .map(|canon| freshness(backend, &paths, &canon).is_ok())
            .unwrap_or(false);
        if !actions.is_empty() || !fresh {
            backend.remove(&canonical_path)?;
            actions.push(RepairAction::DroppedStaleCanonical);
        }
    }

    let after = fsck(backend, logical, hostdirs)?;
    Ok(RepairReport { before, after, actions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::filesystem::{Plfs, PlfsConfig};
    use std::sync::Arc;

    fn setup() -> (Plfs, Arc<MemBackend>) {
        let b = Arc::new(MemBackend::new());
        let fs = Plfs::new(
            b.clone() as Arc<dyn Backend>,
            PlfsConfig { hostdirs: 4, ..Default::default() },
        );
        (fs, b)
    }

    fn healthy(fs: &Plfs) {
        for rank in 0..3 {
            let mut w = fs.open_writer("/f", rank).unwrap();
            w.write_at(rank as u64 * 1000, &[rank as u8; 1000]).unwrap();
            w.close().unwrap();
        }
    }

    #[test]
    fn clean_container_passes() {
        let (fs, b) = setup();
        healthy(&fs);
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.is_clean(), "{:?}", rep.errors);
        assert_eq!(rep.writers, 3);
        assert_eq!(rep.entries, 3);
        assert_eq!(rep.logical_eof, 3000);
    }

    #[test]
    fn not_a_container_detected() {
        let (_, b) = setup();
        let rep = fsck(b.as_ref(), "/nope", 4).unwrap();
        assert_eq!(rep.errors, vec![FsckError::NotAContainer]);
        assert_eq!(rep.fatal_count(), 1);
    }

    #[test]
    fn truncated_index_detected() {
        let (fs, b) = setup();
        healthy(&fs);
        // Chop the last byte off rank 1's index dropping.
        let p = crate::container::ContainerPaths::new("/f", 4).index_dropping(1);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        b.append(&p, &blob[..blob.len() - 1]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::CorruptIndex { rank: 1, .. })));
        assert!(rep.fatal_count() >= 1);
    }

    #[test]
    fn truncated_data_is_a_dangling_extent() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).data_dropping(2);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        b.append(&p, &blob[..500]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::DanglingExtent { rank: 2, data_len: 500, .. })));
    }

    #[test]
    fn unindexed_tail_is_orphaned_data() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).data_dropping(0);
        b.append(&p, &[0u8; 77]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::OrphanedData { rank: 0, orphaned_bytes: 77 })));
        // Orphans are not fatal: the logical file still reads.
        assert_eq!(rep.fatal_count(), 0);
    }

    #[test]
    fn data_without_index_detected() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        b.append(&paths.data_dropping(9), b"lost").unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.contains(&FsckError::MissingIndex { rank: 9 }));
    }

    #[test]
    fn crashed_session_leaves_stale_openhosts() {
        let (fs, b) = setup();
        let mut w = fs.open_writer("/f", 0).unwrap();
        w.write_at(0, &[1; 10]).unwrap();
        w.sync().unwrap();
        std::mem::forget(w); // simulate a crash: no close, no cleanup
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::StaleOpenSession { .. })));
        assert_eq!(rep.fatal_count(), 0, "data is all indexed, just unclosed");
    }

    // ------------------------------------------------------------ repair

    #[test]
    fn repair_on_clean_container_is_a_noop() {
        let (fs, b) = setup();
        healthy(&fs);
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.before.is_clean());
        assert!(rep.after.is_clean());
        assert!(rep.actions.is_empty());
    }

    #[test]
    fn repair_truncates_torn_index_tail() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).index_dropping(1);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        // Whole index + 3 bytes of a torn next record.
        b.append(&p, &blob).unwrap();
        b.append(&p, &[1, 0, 0]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep
            .actions
            .contains(&RepairAction::TruncatedIndexTail { rank: 1, dropped_bytes: 3 }));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        // Acked data still reads back.
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 3000);
        assert!(data[1000..2000].iter().all(|&x| x == 1));
    }

    #[test]
    fn repair_trims_dangling_extents_and_orphan_tails() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        // Rank 2's data dropping lost its second half.
        let dp = paths.data_dropping(2);
        let blob = b.read_all(&dp).unwrap();
        b.remove(&dp).unwrap();
        b.append(&dp, &blob[..500]).unwrap();
        // Rank 0's data dropping grew an unindexed tail.
        b.append(&paths.data_dropping(0), &[9u8; 33]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep
            .actions
            .contains(&RepairAction::TrimmedDanglingExtents { rank: 2, dropped_entries: 1 }));
        assert!(rep
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::TruncatedOrphanTail { rank: 0, .. })));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        // Rank 2's partially-landed write is gone; rank 0/1 survive.
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 2000);
        assert!(data[..1000].iter().all(|&x| x == 0));
        assert!(data[1000..].iter().all(|&x| x == 1));
    }

    #[test]
    fn repair_removes_unindexed_data_and_stale_sessions() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        b.append(&paths.data_dropping(9), b"lost").unwrap();
        b.create(&paths.open_dropping(5, 3)).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.actions.contains(&RepairAction::RemovedUnindexedData { rank: 9 }));
        assert!(rep.actions.iter().any(|a| matches!(a, RepairAction::ClearedStaleSession { .. })));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert!(!b.exists(&paths.data_dropping(9)));
    }

    #[test]
    fn repair_salvage_mode_keeps_orphan_bytes_readable() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        b.append(&paths.data_dropping(0), &[7u8; 50]).unwrap();
        b.append(&paths.data_dropping(9), &[8u8; 20]).unwrap();
        let rep = repair(
            b.as_ref(),
            "/f",
            4,
            &RepairOptions { salvage_orphans: true, ..Default::default() },
        )
        .unwrap();
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert_eq!(
            rep.actions.iter().filter(|a| matches!(a, RepairAction::SalvagedOrphan { .. })).count(),
            2
        );
        // Salvaged bytes appear past the original EOF, original data intact.
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 3000 + 50 + 20);
        assert!(data[2000..3000].iter().all(|&x| x == 2));
        assert_eq!(data[3000..3050], [7u8; 50][..]);
        assert_eq!(data[3050..], [8u8; 20][..]);
    }

    #[test]
    fn corrupt_canonical_reported_and_repair_drops_it() {
        let (fs, b) = setup();
        healthy(&fs);
        // A read-open persists the flattened-index cache...
        let _ = fs.open_reader("/f").unwrap();
        let paths = crate::container::ContainerPaths::new("/f", 4);
        assert!(b.exists(&paths.canonical_index()));
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.is_clean(), "fresh cache is not an error: {:?}", rep.errors);
        // ...which trailing junk turns into detectable corruption.
        b.append(&paths.canonical_index(), &[0xFF]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::StaleCanonicalIndex { .. })));
        assert_eq!(rep.fatal_count(), 0, "the cache is never load-bearing");
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.actions.contains(&RepairAction::DroppedStaleCanonical));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert!(!b.exists(&paths.canonical_index()));
    }

    #[test]
    fn repair_keeps_fresh_canonical_but_drops_it_when_droppings_change() {
        let (fs, b) = setup();
        healthy(&fs);
        let _ = fs.open_reader("/f").unwrap();
        let paths = crate::container::ContainerPaths::new("/f", 4);
        // Clean container, fresh cache: repair must not touch it.
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.actions.is_empty(), "{:?}", rep.actions);
        assert!(b.exists(&paths.canonical_index()));
        // An orphaned data tail leaves the index droppings untouched, so
        // the cache still looks fresh — but repair rewrites the data
        // dropping, so the cache must go with it.
        b.append(&paths.data_dropping(0), &[9u8; 21]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::TruncatedOrphanTail { rank: 0, .. })));
        assert!(rep.actions.contains(&RepairAction::DroppedStaleCanonical));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert!(!b.exists(&paths.canonical_index()));
    }

    #[test]
    fn repair_not_a_container_reports_without_touching() {
        let (_, b) = setup();
        let rep = repair(b.as_ref(), "/nope", 4, &RepairOptions::default()).unwrap();
        assert_eq!(rep.after.errors, vec![FsckError::NotAContainer]);
        assert!(rep.actions.is_empty());
    }

    // ------------------------------------------------------------- scrub

    fn flip_byte(b: &MemBackend, path: &str, offset: usize, mask: u8) {
        let mut blob = b.read_all(path).unwrap();
        blob[offset] ^= mask;
        b.remove(path).unwrap();
        b.create(path).unwrap();
        b.append(path, &blob).unwrap();
    }

    #[test]
    fn scrub_clean_container_finds_nothing() {
        let (fs, b) = setup();
        healthy(&fs);
        let rep = scrub(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.is_clean(), "{:?}", rep.findings);
        assert_eq!(rep.ranks, 3);
        assert!(rep.uncovered.is_empty(), "{:?}", rep.uncovered);
        // 3 ranks × (one 1000-byte data block + one index block).
        assert_eq!(rep.checked_blocks, 6);
        assert!(rep.checked_bytes > 3000);
        assert!(!rep.canonical_corrupt);
    }

    #[test]
    fn scrub_finds_a_single_flipped_data_bit() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        flip_byte(&b, &paths.data_dropping(1), 500, 0x01);
        let rep = scrub(b.as_ref(), "/f", 4).unwrap();
        assert_eq!(
            rep.findings,
            vec![ScrubFinding { rank: 1, path: paths.data_dropping(1), offset: 0, len: 1000 }]
        );
        // fsck's structural checks can't see it — that's scrub's job.
        assert!(fsck(b.as_ref(), "/f", 4).unwrap().is_clean());
    }

    #[test]
    fn scrub_reports_unparseable_sidecar_as_finding_and_uncovered() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        flip_byte(&b, &paths.chk_dropping(0), 0, 0xFF); // break the magic
        let rep = scrub(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.findings.iter().any(|f| f.rank == 0 && f.path == paths.chk_dropping(0)));
        assert!(rep.uncovered.iter().any(|&(r, bytes)| r == 0 && bytes == 1000));
    }

    #[test]
    fn scrub_flags_corrupt_canonical_cache() {
        let (fs, b) = setup();
        healthy(&fs);
        let _ = fs.open_reader("/f").unwrap();
        let paths = crate::container::ContainerPaths::new("/f", 4);
        assert!(!scrub(b.as_ref(), "/f", 4).unwrap().canonical_corrupt);
        flip_byte(&b, &paths.canonical_index(), 30, 0x04);
        assert!(scrub(b.as_ref(), "/f", 4).unwrap().canonical_corrupt);
    }

    #[test]
    fn unchecksummed_containers_scrub_clean_but_report_uncovered() {
        let b = Arc::new(MemBackend::new());
        let fs = Plfs::new(
            b.clone() as Arc<dyn Backend>,
            PlfsConfig {
                hostdirs: 4,
                writer: crate::write::WriterConfig { checksum: false, ..Default::default() },
                ..Default::default()
            },
        );
        let mut w = fs.open_writer("/f", 0).unwrap();
        w.write_at(0, &[7u8; 2000]).unwrap();
        w.close().unwrap();
        let rep = scrub(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.is_clean());
        assert_eq!(rep.checked_blocks, 0);
        assert_eq!(rep.uncovered.len(), 1);
        assert!(rep.uncovered[0].1 > 2000, "data + index bytes all uncovered");
        let fr = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(fr.is_clean(), "uncovered is informational: {:?}", fr.errors);
        assert_eq!(fr.uncovered, rep.uncovered);
    }

    #[test]
    fn repair_reconciles_sidecars_after_truncations() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        // Rank 0 grows an unindexed tail: repair truncates the data
        // dropping back, which invalidates the close-time tail CRC.
        b.append(&paths.data_dropping(0), &[9u8; 33]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::TruncatedOrphanTail { rank: 0, .. })));
        assert!(rep.actions.contains(&RepairAction::RemovedChecksumSidecar { rank: 0 }));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        // The repaired container scrubs clean and reads clean.
        assert!(scrub(b.as_ref(), "/f", 4).unwrap().is_clean());
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 3000);
    }

    #[test]
    fn repair_truncate_corrupt_tails_salvages_verified_prefix() {
        let (fs, b) = setup();
        let mut w = fs.open_writer("/g", 0).unwrap();
        for i in 0..10u64 {
            w.write_at(i * 1000, &[i as u8; 1000]).unwrap();
        }
        w.close().unwrap();
        let paths = crate::container::ContainerPaths::new("/g", 4);
        // Rot a byte in the third checksum block (bytes 8192..10000).
        flip_byte(&b, &paths.data_dropping(0), 9000, 0x20);
        // Fail-stop default: the read surfaces the corruption.
        let r = fs.open_reader("/g").unwrap();
        assert!(r.read_all().is_err());
        // Repair with tail truncation: the verified prefix survives.
        let rep = repair(
            b.as_ref(),
            "/g",
            4,
            &RepairOptions { truncate_corrupt_tails: true, ..Default::default() },
        )
        .unwrap();
        assert!(rep
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::TruncatedCorruptTail { rank: 0, dropped_bytes } if *dropped_bytes == 10000 - 8192)));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert!(scrub(b.as_ref(), "/g", 4).unwrap().is_clean());
        // Writes fully inside the verified prefix read back verbatim
        // (verification on); the cut tail reads as a hole.
        let data = fs.open_reader("/g").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 8000, "entries past the cut were trimmed");
        for i in 0..8u64 {
            assert!(
                data[(i * 1000) as usize..((i + 1) * 1000) as usize].iter().all(|&x| x == i as u8),
                "write {i} must survive"
            );
        }
    }
}
