//! Container integrity checking (`plfs_check` in the original tools).
//!
//! A PLFS container is many independent droppings; partial writes,
//! truncated logs, or lost index records after a crash show up as
//! specific, locally-detectable inconsistencies. `fsck` verifies:
//!
//! 1. the container skeleton (access marker, openhosts/meta dirs);
//! 2. every index dropping decodes cleanly;
//! 3. every index entry's physical extent lies within its data
//!    dropping (no dangling pointers);
//! 4. data droppings have no unindexed tail beyond the highest indexed
//!    byte (orphaned bytes — harmless but reported);
//! 5. writers that left data but no index (unreadable data), and
//!    stale `openhosts` droppings from sessions that never closed.
//!
//! [`repair`] fixes what [`fsck`] finds, preserving the crash-recovery
//! invariant: **every write acknowledged (synced) before the crash
//! reads back byte-for-byte afterwards**. The writer flushes data
//! before index, so a torn index tail or an unindexed data tail always
//! belongs to writes that were never acked — truncating them is safe.

use crate::backend::Backend;
use crate::canonical::{freshness, CanonicalIndex};
use crate::container::{discover_droppings, is_container, ContainerPaths};
use crate::index::{decode, decode_prefix, encode_raw, IndexEntry};
use std::io;

/// One detected problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckError {
    NotAContainer,
    /// Index dropping failed to decode (offset of failure unknown —
    /// the tail after the last good record is unreadable).
    CorruptIndex {
        rank: u32,
        detail: String,
    },
    /// An index entry points outside its data dropping.
    DanglingExtent {
        rank: u32,
        physical_end: u64,
        data_len: u64,
    },
    /// Data bytes beyond anything the index references.
    OrphanedData {
        rank: u32,
        orphaned_bytes: u64,
    },
    /// A data dropping exists with no index dropping at all.
    MissingIndex {
        rank: u32,
    },
    /// An openhosts dropping from a session that never closed.
    StaleOpenSession {
        name: String,
    },
    /// The flattened-index cache no longer matches the droppings (or is
    /// undecodable). Not fatal: readers ignore a bad cache and rebuild,
    /// but `repair` removes it.
    StaleCanonicalIndex {
        detail: String,
    },
}

/// The full report.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    pub writers: usize,
    pub entries: usize,
    pub logical_eof: u64,
    pub errors: Vec<FsckError>,
}

impl FsckReport {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Errors that make some logical bytes unreadable (vs. cosmetic).
    pub fn fatal_count(&self) -> usize {
        self.errors
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    FsckError::NotAContainer
                        | FsckError::CorruptIndex { .. }
                        | FsckError::DanglingExtent { .. }
                        | FsckError::MissingIndex { .. }
                )
            })
            .count()
    }
}

/// Check a container.
pub fn fsck(backend: &dyn Backend, logical: &str, hostdirs: u32) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    if !is_container(backend, logical) {
        report.errors.push(FsckError::NotAContainer);
        return Ok(report);
    }
    let paths = ContainerPaths::new(logical, hostdirs);

    // Stale open sessions.
    if let Ok(names) = backend.list(&paths.openhosts_dir()) {
        for name in names {
            report.errors.push(FsckError::StaleOpenSession { name });
        }
    }

    // Index/data cross-checks.
    let droppings = discover_droppings(backend, &paths)?;
    report.writers = droppings.len();
    let mut indexed_ranks = std::collections::HashSet::new();
    for (rank, idx_path, data_path) in &droppings {
        indexed_ranks.insert(*rank);
        let blob = backend.read_all(idx_path)?;
        let entries = match decode(&blob) {
            Ok(e) => e,
            Err(err) => {
                report
                    .errors
                    .push(FsckError::CorruptIndex { rank: *rank, detail: err.to_string() });
                continue;
            }
        };
        report.entries += entries.len();
        let data_len = backend.len(data_path).unwrap_or(0);
        let mut highest_physical = 0u64;
        for e in &entries {
            let phys_end = e.physical_offset + e.length;
            highest_physical = highest_physical.max(phys_end);
            report.logical_eof = report.logical_eof.max(e.logical_offset + e.length);
            if phys_end > data_len {
                report.errors.push(FsckError::DanglingExtent {
                    rank: *rank,
                    physical_end: phys_end,
                    data_len,
                });
            }
        }
        if data_len > highest_physical {
            report.errors.push(FsckError::OrphanedData {
                rank: *rank,
                orphaned_bytes: data_len - highest_physical,
            });
        }
    }

    // Data droppings with no index at all.
    for entry in backend.list(paths.base())? {
        if !entry.starts_with("hostdir.") {
            continue;
        }
        let dir = format!("{}/{entry}", paths.base());
        for name in backend.list(&dir)? {
            if let Some(rank) = name.strip_prefix("data.").and_then(|r| r.parse::<u32>().ok()) {
                if !indexed_ranks.contains(&rank) {
                    report.errors.push(FsckError::MissingIndex { rank });
                }
            }
        }
    }

    // Flattened-index cache consistency (see `crate::canonical`).
    let canonical_path = paths.canonical_index();
    if backend.exists(&canonical_path) {
        let stale = match backend
            .read_all(&canonical_path)
            .map_err(|e| e.to_string())
            .and_then(|blob| CanonicalIndex::decode(&blob).map_err(|e| e.to_string()))
        {
            Ok(canon) => freshness(backend, &paths, &canon).err(),
            Err(e) => Some(e),
        };
        if let Some(detail) = stale {
            report.errors.push(FsckError::StaleCanonicalIndex { detail });
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------- repair

/// Repair knobs.
#[derive(Debug, Clone, Default)]
pub struct RepairOptions {
    /// Instead of discarding orphaned (unindexed) data bytes,
    /// synthesize index entries that expose them at the end of the
    /// logical file. Their original logical offsets are unknowable —
    /// this is forensic salvage, off by default.
    pub salvage_orphans: bool,
}

/// One mutation `repair` performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairAction {
    /// Cut an undecodable tail off an index dropping (a torn index
    /// flush from an unacked sync).
    TruncatedIndexTail { rank: u32, dropped_bytes: u64 },
    /// Dropped index entries pointing past the end of their data
    /// dropping (index flushed, data never fully landed — unacked).
    TrimmedDanglingExtents { rank: u32, dropped_entries: usize },
    /// Cut unindexed bytes off the end of a data dropping (a torn data
    /// flush from an unacked sync).
    TruncatedOrphanTail { rank: u32, dropped_bytes: u64 },
    /// Removed a data dropping that had no index dropping at all.
    RemovedUnindexedData { rank: u32 },
    /// Synthesized an index entry exposing orphaned bytes at the end of
    /// the logical file (salvage mode).
    SalvagedOrphan { rank: u32, bytes: u64, logical_offset: u64 },
    /// Removed an openhosts dropping left by a session that died.
    ClearedStaleSession { name: String },
    /// Removed a flattened-index cache that was stale, undecodable, or
    /// invalidated by the repairs above (rewriting a dropping silently
    /// breaks any cached merge of it).
    DroppedStaleCanonical,
}

/// What `repair` found and did.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Container state before repair.
    pub before: FsckReport,
    /// Container state after repair (clean unless the container was
    /// unrecognizable).
    pub after: FsckReport,
    pub actions: Vec<RepairAction>,
}

/// Rewrite `path` keeping only its first `keep` bytes. The [`Backend`]
/// trait has no truncate, so this is read–remove–re-append; droppings
/// are small relative to the data they index, and crash repair is not
/// a hot path.
fn truncate_file(backend: &dyn Backend, path: &str, keep: u64) -> io::Result<()> {
    let data = backend.read_all(path)?;
    if keep as usize >= data.len() {
        return Ok(());
    }
    backend.remove(path)?;
    backend.create(path)?;
    if keep > 0 {
        backend.append(path, &data[..keep as usize])?;
    }
    Ok(())
}

/// Repair a crashed container in place.
///
/// Fix order matters — each step can only expose problems a later step
/// handles:
///
/// 1. truncate torn index tails to the last fully-decodable record;
/// 2. drop index entries whose extents dangle past their data dropping
///    (rewriting that index dropping);
/// 3. truncate (or, in salvage mode, index) unindexed data tails;
/// 4. remove (or salvage) data droppings that have no index dropping;
/// 5. clear stale `openhosts` sessions.
///
/// Everything removed was, by the writer's data-before-index flush
/// ordering, never acknowledged; acked bytes survive verbatim.
pub fn repair(
    backend: &dyn Backend,
    logical: &str,
    hostdirs: u32,
    opts: &RepairOptions,
) -> io::Result<RepairReport> {
    let before = fsck(backend, logical, hostdirs)?;
    let mut actions = Vec::new();
    if before.errors.contains(&FsckError::NotAContainer) {
        // Nothing we can do without a container skeleton.
        return Ok(RepairReport { after: before.clone(), before, actions });
    }
    let paths = ContainerPaths::new(logical, hostdirs);
    let droppings = discover_droppings(backend, &paths)?;

    // Passes 1–3 per writer; remember each writer's surviving entries
    // so salvage can place orphans past the global logical EOF.
    let mut kept_all: Vec<(u32, String, String, Vec<IndexEntry>, u64)> = Vec::new();
    let mut logical_eof = 0u64;
    let mut max_ts = 0u64;
    for (rank, idx_path, data_path) in droppings {
        let blob = backend.read_all(&idx_path)?;
        let (mut entries, consumed) = decode_prefix(&blob);
        if consumed < blob.len() {
            truncate_file(backend, &idx_path, consumed as u64)?;
            actions.push(RepairAction::TruncatedIndexTail {
                rank,
                dropped_bytes: (blob.len() - consumed) as u64,
            });
        }
        let data_len = backend.len(&data_path).unwrap_or(0);
        let n_before = entries.len();
        entries.retain(|e| e.physical_offset + e.length <= data_len);
        if entries.len() < n_before {
            let encoded = encode_raw(&entries);
            backend.remove(&idx_path)?;
            backend.create(&idx_path)?;
            if !encoded.is_empty() {
                backend.append(&idx_path, &encoded)?;
            }
            actions.push(RepairAction::TrimmedDanglingExtents {
                rank,
                dropped_entries: n_before - entries.len(),
            });
        }
        for e in &entries {
            logical_eof = logical_eof.max(e.logical_offset + e.length);
            max_ts = max_ts.max(e.timestamp);
        }
        kept_all.push((rank, idx_path, data_path, entries, data_len));
    }

    // Pass 3: orphaned data tails.
    for (rank, idx_path, data_path, entries, data_len) in &kept_all {
        let highest = entries.iter().map(|e| e.physical_offset + e.length).max().unwrap_or(0);
        if *data_len > highest {
            let orphaned = data_len - highest;
            if opts.salvage_orphans {
                let entry = IndexEntry {
                    logical_offset: logical_eof,
                    length: orphaned,
                    physical_offset: highest,
                    writer: *rank,
                    timestamp: max_ts + 1,
                };
                backend.append(idx_path, &encode_raw(&[entry]))?;
                actions.push(RepairAction::SalvagedOrphan {
                    rank: *rank,
                    bytes: orphaned,
                    logical_offset: logical_eof,
                });
                logical_eof += orphaned;
            } else {
                truncate_file(backend, data_path, highest)?;
                actions.push(RepairAction::TruncatedOrphanTail {
                    rank: *rank,
                    dropped_bytes: orphaned,
                });
            }
        }
    }

    // Pass 4: data droppings with no index dropping at all.
    let indexed: std::collections::HashSet<u32> = kept_all.iter().map(|(r, ..)| *r).collect();
    for entry in backend.list(paths.base())? {
        if !entry.starts_with("hostdir.") {
            continue;
        }
        let dir = format!("{}/{entry}", paths.base());
        for name in backend.list(&dir)? {
            let Some(rank) = name.strip_prefix("data.").and_then(|r| r.parse::<u32>().ok()) else {
                continue;
            };
            if indexed.contains(&rank) {
                continue;
            }
            let data_path = format!("{dir}/{name}");
            let bytes = backend.len(&data_path).unwrap_or(0);
            if opts.salvage_orphans && bytes > 0 {
                let entry = IndexEntry {
                    logical_offset: logical_eof,
                    length: bytes,
                    physical_offset: 0,
                    writer: rank,
                    timestamp: max_ts + 1,
                };
                backend.append(&paths.index_dropping(rank), &encode_raw(&[entry]))?;
                actions.push(RepairAction::SalvagedOrphan {
                    rank,
                    bytes,
                    logical_offset: logical_eof,
                });
                logical_eof += bytes;
            } else {
                backend.remove(&data_path)?;
                actions.push(RepairAction::RemovedUnindexedData { rank });
            }
        }
    }

    // Pass 5: sessions that never closed.
    if let Ok(names) = backend.list(&paths.openhosts_dir()) {
        for name in names {
            backend.remove(&format!("{}/{name}", paths.openhosts_dir()))?;
            actions.push(RepairAction::ClearedStaleSession { name });
        }
    }

    // Pass 6: the flattened-index cache. Runs last because the passes
    // above rewrite droppings and change the session count — both
    // silently invalidate a cached merge. An already-stale or
    // undecodable cache goes too; a fresh one on an untouched
    // container is kept.
    let canonical_path = paths.canonical_index();
    if backend.exists(&canonical_path) {
        let fresh = backend
            .read_all(&canonical_path)
            .ok()
            .and_then(|blob| CanonicalIndex::decode(&blob).ok())
            .map(|canon| freshness(backend, &paths, &canon).is_ok())
            .unwrap_or(false);
        if !actions.is_empty() || !fresh {
            backend.remove(&canonical_path)?;
            actions.push(RepairAction::DroppedStaleCanonical);
        }
    }

    let after = fsck(backend, logical, hostdirs)?;
    Ok(RepairReport { before, after, actions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::filesystem::{Plfs, PlfsConfig};
    use std::sync::Arc;

    fn setup() -> (Plfs, Arc<MemBackend>) {
        let b = Arc::new(MemBackend::new());
        let fs = Plfs::new(
            b.clone() as Arc<dyn Backend>,
            PlfsConfig { hostdirs: 4, ..Default::default() },
        );
        (fs, b)
    }

    fn healthy(fs: &Plfs) {
        for rank in 0..3 {
            let mut w = fs.open_writer("/f", rank).unwrap();
            w.write_at(rank as u64 * 1000, &[rank as u8; 1000]).unwrap();
            w.close().unwrap();
        }
    }

    #[test]
    fn clean_container_passes() {
        let (fs, b) = setup();
        healthy(&fs);
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.is_clean(), "{:?}", rep.errors);
        assert_eq!(rep.writers, 3);
        assert_eq!(rep.entries, 3);
        assert_eq!(rep.logical_eof, 3000);
    }

    #[test]
    fn not_a_container_detected() {
        let (_, b) = setup();
        let rep = fsck(b.as_ref(), "/nope", 4).unwrap();
        assert_eq!(rep.errors, vec![FsckError::NotAContainer]);
        assert_eq!(rep.fatal_count(), 1);
    }

    #[test]
    fn truncated_index_detected() {
        let (fs, b) = setup();
        healthy(&fs);
        // Chop the last byte off rank 1's index dropping.
        let p = crate::container::ContainerPaths::new("/f", 4).index_dropping(1);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        b.append(&p, &blob[..blob.len() - 1]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::CorruptIndex { rank: 1, .. })));
        assert!(rep.fatal_count() >= 1);
    }

    #[test]
    fn truncated_data_is_a_dangling_extent() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).data_dropping(2);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        b.append(&p, &blob[..500]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::DanglingExtent { rank: 2, data_len: 500, .. })));
    }

    #[test]
    fn unindexed_tail_is_orphaned_data() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).data_dropping(0);
        b.append(&p, &[0u8; 77]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::OrphanedData { rank: 0, orphaned_bytes: 77 })));
        // Orphans are not fatal: the logical file still reads.
        assert_eq!(rep.fatal_count(), 0);
    }

    #[test]
    fn data_without_index_detected() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        b.append(&paths.data_dropping(9), b"lost").unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.contains(&FsckError::MissingIndex { rank: 9 }));
    }

    #[test]
    fn crashed_session_leaves_stale_openhosts() {
        let (fs, b) = setup();
        let mut w = fs.open_writer("/f", 0).unwrap();
        w.write_at(0, &[1; 10]).unwrap();
        w.sync().unwrap();
        std::mem::forget(w); // simulate a crash: no close, no cleanup
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::StaleOpenSession { .. })));
        assert_eq!(rep.fatal_count(), 0, "data is all indexed, just unclosed");
    }

    // ------------------------------------------------------------ repair

    #[test]
    fn repair_on_clean_container_is_a_noop() {
        let (fs, b) = setup();
        healthy(&fs);
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.before.is_clean());
        assert!(rep.after.is_clean());
        assert!(rep.actions.is_empty());
    }

    #[test]
    fn repair_truncates_torn_index_tail() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).index_dropping(1);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        // Whole index + 3 bytes of a torn next record.
        b.append(&p, &blob).unwrap();
        b.append(&p, &[1, 0, 0]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep
            .actions
            .contains(&RepairAction::TruncatedIndexTail { rank: 1, dropped_bytes: 3 }));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        // Acked data still reads back.
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 3000);
        assert!(data[1000..2000].iter().all(|&x| x == 1));
    }

    #[test]
    fn repair_trims_dangling_extents_and_orphan_tails() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        // Rank 2's data dropping lost its second half.
        let dp = paths.data_dropping(2);
        let blob = b.read_all(&dp).unwrap();
        b.remove(&dp).unwrap();
        b.append(&dp, &blob[..500]).unwrap();
        // Rank 0's data dropping grew an unindexed tail.
        b.append(&paths.data_dropping(0), &[9u8; 33]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep
            .actions
            .contains(&RepairAction::TrimmedDanglingExtents { rank: 2, dropped_entries: 1 }));
        assert!(rep
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::TruncatedOrphanTail { rank: 0, .. })));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        // Rank 2's partially-landed write is gone; rank 0/1 survive.
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 2000);
        assert!(data[..1000].iter().all(|&x| x == 0));
        assert!(data[1000..].iter().all(|&x| x == 1));
    }

    #[test]
    fn repair_removes_unindexed_data_and_stale_sessions() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        b.append(&paths.data_dropping(9), b"lost").unwrap();
        b.create(&paths.open_dropping(5, 3)).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.actions.contains(&RepairAction::RemovedUnindexedData { rank: 9 }));
        assert!(rep.actions.iter().any(|a| matches!(a, RepairAction::ClearedStaleSession { .. })));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert!(!b.exists(&paths.data_dropping(9)));
    }

    #[test]
    fn repair_salvage_mode_keeps_orphan_bytes_readable() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        b.append(&paths.data_dropping(0), &[7u8; 50]).unwrap();
        b.append(&paths.data_dropping(9), &[8u8; 20]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions { salvage_orphans: true }).unwrap();
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert_eq!(
            rep.actions.iter().filter(|a| matches!(a, RepairAction::SalvagedOrphan { .. })).count(),
            2
        );
        // Salvaged bytes appear past the original EOF, original data intact.
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 3000 + 50 + 20);
        assert!(data[2000..3000].iter().all(|&x| x == 2));
        assert_eq!(data[3000..3050], [7u8; 50][..]);
        assert_eq!(data[3050..], [8u8; 20][..]);
    }

    #[test]
    fn corrupt_canonical_reported_and_repair_drops_it() {
        let (fs, b) = setup();
        healthy(&fs);
        // A read-open persists the flattened-index cache...
        let _ = fs.open_reader("/f").unwrap();
        let paths = crate::container::ContainerPaths::new("/f", 4);
        assert!(b.exists(&paths.canonical_index()));
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.is_clean(), "fresh cache is not an error: {:?}", rep.errors);
        // ...which trailing junk turns into detectable corruption.
        b.append(&paths.canonical_index(), &[0xFF]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::StaleCanonicalIndex { .. })));
        assert_eq!(rep.fatal_count(), 0, "the cache is never load-bearing");
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.actions.contains(&RepairAction::DroppedStaleCanonical));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert!(!b.exists(&paths.canonical_index()));
    }

    #[test]
    fn repair_keeps_fresh_canonical_but_drops_it_when_droppings_change() {
        let (fs, b) = setup();
        healthy(&fs);
        let _ = fs.open_reader("/f").unwrap();
        let paths = crate::container::ContainerPaths::new("/f", 4);
        // Clean container, fresh cache: repair must not touch it.
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep.actions.is_empty(), "{:?}", rep.actions);
        assert!(b.exists(&paths.canonical_index()));
        // An orphaned data tail leaves the index droppings untouched, so
        // the cache still looks fresh — but repair rewrites the data
        // dropping, so the cache must go with it.
        b.append(&paths.data_dropping(0), &[9u8; 21]).unwrap();
        let rep = repair(b.as_ref(), "/f", 4, &RepairOptions::default()).unwrap();
        assert!(rep
            .actions
            .iter()
            .any(|a| matches!(a, RepairAction::TruncatedOrphanTail { rank: 0, .. })));
        assert!(rep.actions.contains(&RepairAction::DroppedStaleCanonical));
        assert!(rep.after.is_clean(), "{:?}", rep.after.errors);
        assert!(!b.exists(&paths.canonical_index()));
    }

    #[test]
    fn repair_not_a_container_reports_without_touching() {
        let (_, b) = setup();
        let rep = repair(b.as_ref(), "/nope", 4, &RepairOptions::default()).unwrap();
        assert_eq!(rep.after.errors, vec![FsckError::NotAContainer]);
        assert!(rep.actions.is_empty());
    }
}
