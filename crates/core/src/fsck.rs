//! Container integrity checking (`plfs_check` in the original tools).
//!
//! A PLFS container is many independent droppings; partial writes,
//! truncated logs, or lost index records after a crash show up as
//! specific, locally-detectable inconsistencies. `fsck` verifies:
//!
//! 1. the container skeleton (access marker, openhosts/meta dirs);
//! 2. every index dropping decodes cleanly;
//! 3. every index entry's physical extent lies within its data
//!    dropping (no dangling pointers);
//! 4. data droppings have no unindexed tail beyond the highest indexed
//!    byte (orphaned bytes — harmless but reported);
//! 5. writers that left data but no index (unreadable data), and
//!    stale `openhosts` droppings from sessions that never closed.

use crate::backend::Backend;
use crate::container::{discover_droppings, is_container, ContainerPaths};
use crate::index::decode;
use std::io;

/// One detected problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckError {
    NotAContainer,
    /// Index dropping failed to decode (offset of failure unknown —
    /// the tail after the last good record is unreadable).
    CorruptIndex { rank: u32, detail: String },
    /// An index entry points outside its data dropping.
    DanglingExtent { rank: u32, physical_end: u64, data_len: u64 },
    /// Data bytes beyond anything the index references.
    OrphanedData { rank: u32, orphaned_bytes: u64 },
    /// A data dropping exists with no index dropping at all.
    MissingIndex { rank: u32 },
    /// An openhosts dropping from a session that never closed.
    StaleOpenSession { name: String },
}

/// The full report.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    pub writers: usize,
    pub entries: usize,
    pub logical_eof: u64,
    pub errors: Vec<FsckError>,
}

impl FsckReport {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Errors that make some logical bytes unreadable (vs. cosmetic).
    pub fn fatal_count(&self) -> usize {
        self.errors
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    FsckError::NotAContainer
                        | FsckError::CorruptIndex { .. }
                        | FsckError::DanglingExtent { .. }
                        | FsckError::MissingIndex { .. }
                )
            })
            .count()
    }
}

/// Check a container.
pub fn fsck(backend: &dyn Backend, logical: &str, hostdirs: u32) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    if !is_container(backend, logical) {
        report.errors.push(FsckError::NotAContainer);
        return Ok(report);
    }
    let paths = ContainerPaths::new(logical, hostdirs);

    // Stale open sessions.
    if let Ok(names) = backend.list(&paths.openhosts_dir()) {
        for name in names {
            report.errors.push(FsckError::StaleOpenSession { name });
        }
    }

    // Index/data cross-checks.
    let droppings = discover_droppings(backend, &paths)?;
    report.writers = droppings.len();
    let mut indexed_ranks = std::collections::HashSet::new();
    for (rank, idx_path, data_path) in &droppings {
        indexed_ranks.insert(*rank);
        let blob = backend.read_all(idx_path)?;
        let entries = match decode(&blob) {
            Ok(e) => e,
            Err(err) => {
                report
                    .errors
                    .push(FsckError::CorruptIndex { rank: *rank, detail: err.to_string() });
                continue;
            }
        };
        report.entries += entries.len();
        let data_len = backend.len(data_path).unwrap_or(0);
        let mut highest_physical = 0u64;
        for e in &entries {
            let phys_end = e.physical_offset + e.length;
            highest_physical = highest_physical.max(phys_end);
            report.logical_eof = report.logical_eof.max(e.logical_offset + e.length);
            if phys_end > data_len {
                report.errors.push(FsckError::DanglingExtent {
                    rank: *rank,
                    physical_end: phys_end,
                    data_len,
                });
            }
        }
        if data_len > highest_physical {
            report.errors.push(FsckError::OrphanedData {
                rank: *rank,
                orphaned_bytes: data_len - highest_physical,
            });
        }
    }

    // Data droppings with no index at all.
    for entry in backend.list(paths.base())? {
        if !entry.starts_with("hostdir.") {
            continue;
        }
        let dir = format!("{}/{entry}", paths.base());
        for name in backend.list(&dir)? {
            if let Some(rank) = name.strip_prefix("data.").and_then(|r| r.parse::<u32>().ok()) {
                if !indexed_ranks.contains(&rank) {
                    report.errors.push(FsckError::MissingIndex { rank });
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::filesystem::{Plfs, PlfsConfig};
    use std::sync::Arc;

    fn setup() -> (Plfs, Arc<MemBackend>) {
        let b = Arc::new(MemBackend::new());
        let fs = Plfs::new(
            b.clone() as Arc<dyn Backend>,
            PlfsConfig { hostdirs: 4, ..Default::default() },
        );
        (fs, b)
    }

    fn healthy(fs: &Plfs) {
        for rank in 0..3 {
            let mut w = fs.open_writer("/f", rank).unwrap();
            w.write_at(rank as u64 * 1000, &[rank as u8; 1000]).unwrap();
            w.close().unwrap();
        }
    }

    #[test]
    fn clean_container_passes() {
        let (fs, b) = setup();
        healthy(&fs);
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.is_clean(), "{:?}", rep.errors);
        assert_eq!(rep.writers, 3);
        assert_eq!(rep.entries, 3);
        assert_eq!(rep.logical_eof, 3000);
    }

    #[test]
    fn not_a_container_detected() {
        let (_, b) = setup();
        let rep = fsck(b.as_ref(), "/nope", 4).unwrap();
        assert_eq!(rep.errors, vec![FsckError::NotAContainer]);
        assert_eq!(rep.fatal_count(), 1);
    }

    #[test]
    fn truncated_index_detected() {
        let (fs, b) = setup();
        healthy(&fs);
        // Chop the last byte off rank 1's index dropping.
        let p = crate::container::ContainerPaths::new("/f", 4).index_dropping(1);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        b.append(&p, &blob[..blob.len() - 1]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::CorruptIndex { rank: 1, .. })));
        assert!(rep.fatal_count() >= 1);
    }

    #[test]
    fn truncated_data_is_a_dangling_extent() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).data_dropping(2);
        let blob = b.read_all(&p).unwrap();
        b.remove(&p).unwrap();
        b.append(&p, &blob[..500]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::DanglingExtent { rank: 2, data_len: 500, .. })));
    }

    #[test]
    fn unindexed_tail_is_orphaned_data() {
        let (fs, b) = setup();
        healthy(&fs);
        let p = crate::container::ContainerPaths::new("/f", 4).data_dropping(0);
        b.append(&p, &[0u8; 77]).unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::OrphanedData { rank: 0, orphaned_bytes: 77 })));
        // Orphans are not fatal: the logical file still reads.
        assert_eq!(rep.fatal_count(), 0);
    }

    #[test]
    fn data_without_index_detected() {
        let (fs, b) = setup();
        healthy(&fs);
        let paths = crate::container::ContainerPaths::new("/f", 4);
        b.append(&paths.data_dropping(9), b"lost").unwrap();
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.contains(&FsckError::MissingIndex { rank: 9 }));
    }

    #[test]
    fn crashed_session_leaves_stale_openhosts() {
        let (fs, b) = setup();
        let mut w = fs.open_writer("/f", 0).unwrap();
        w.write_at(0, &[1; 10]).unwrap();
        w.sync().unwrap();
        std::mem::forget(w); // simulate a crash: no close, no cleanup
        let rep = fsck(b.as_ref(), "/f", 4).unwrap();
        assert!(rep.errors.iter().any(|e| matches!(e, FsckError::StaleOpenSession { .. })));
        assert_eq!(rep.fatal_count(), 0, "data is all indexed, just unclosed");
    }
}
