//! The PLFS write path.
//!
//! Each writing process gets a [`Writer`]: every `write_at` appends the
//! bytes to the rank's private data dropping and queues one index
//! entry. Nothing is ever overwritten and no two processes touch the
//! same backing file — the transformation that turns an N-1 strided
//! checkpoint into N independent sequential streams.
//!
//! Small-write batching (a post-PDSI PLFS extension, report §1.1 item 4)
//! is built in: data is staged in a local buffer and appended to the
//! backing store in large chunks; correctness is unaffected because
//! physical offsets are assigned from the writer's private cursor.

use crate::backend::Backend;
use crate::container::ContainerPaths;
use crate::index::{encode_compressed, encode_raw, IndexEntry};
use crate::metrics::PlfsMetrics;
use crate::retry::{append_at_reliable_traced, len_or_zero, RetryPolicy};
use obs::trace::Phase;
use std::io;
use std::sync::Arc;

/// Writer-side knobs.
#[derive(Debug, Clone)]
pub struct WriterConfig {
    /// Stage data locally and append in chunks of this size (0 =
    /// write-through).
    pub data_buffer: usize,
    /// Use pattern compression when persisting the index.
    pub compress_index: bool,
    /// Flush the in-memory index every N entries (it always flushes on
    /// sync/close).
    pub index_flush_every: usize,
    /// How hard to mask transient backend errors (see [`crate::retry`]).
    pub retry: RetryPolicy,
}

impl Default for WriterConfig {
    fn default() -> Self {
        WriterConfig {
            data_buffer: 1 << 20,
            compress_index: true,
            index_flush_every: 4096,
            retry: RetryPolicy::default(),
        }
    }
}

/// Per-writer cumulative counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriterStats {
    pub writes: u64,
    pub bytes: u64,
    pub data_appends: u64,
    pub index_appends: u64,
    pub index_bytes: u64,
}

/// An open write handle for one rank on one container.
pub struct Writer {
    backend: Arc<dyn Backend>,
    paths: ContainerPaths,
    cfg: WriterConfig,
    rank: u32,
    /// Shared instrumentation + monotone stamp source (one per `Plfs`
    /// instance).
    metrics: Arc<PlfsMetrics>,
    /// Next physical offset in the data dropping.
    cursor: u64,
    max_logical: u64,
    buf: Vec<u8>,
    /// Physical offset of buf[0].
    buf_base: u64,
    pending_index: Vec<IndexEntry>,
    /// Already-encoded index bytes whose append failed part-way: they
    /// must land (resumed, not duplicated) before anything newer.
    pending_encoded: Vec<u8>,
    /// Byte length of the index dropping on the store.
    index_cursor: u64,
    /// A data/index append failed and may have torn — the next append
    /// to that file must re-measure the tail before writing.
    data_tail_uncertain: bool,
    index_tail_uncertain: bool,
    stats: WriterStats,
    open_dropping: String,
    closed: bool,
}

impl Writer {
    pub(crate) fn new(
        backend: Arc<dyn Backend>,
        paths: ContainerPaths,
        cfg: WriterConfig,
        rank: u32,
        metrics: Arc<PlfsMetrics>,
        session: u64,
    ) -> io::Result<Self> {
        let open_dropping = paths.open_dropping(rank, session);
        cfg.retry.run(|| backend.create(&open_dropping))?;
        // A new writer session invalidates any flattened-index cache a
        // previous reader left behind (see `crate::canonical`). The
        // `exists` gate keeps this free for the common no-cache case;
        // a concurrent delete racing us is fine (NotFound == done).
        let canonical = paths.canonical_index();
        if backend.exists(&canonical) {
            cfg.retry.run(|| match backend.remove(&canonical) {
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                r => r,
            })?;
        }
        // Appending to an existing dropping resumes at its tail. The
        // length queries are retried: silently treating a transient
        // failure as "empty" would restart the cursor at 0 and corrupt
        // the log.
        let cursor = len_or_zero(backend.as_ref(), &cfg.retry, &paths.data_dropping(rank))?;
        let index_cursor = len_or_zero(backend.as_ref(), &cfg.retry, &paths.index_dropping(rank))?;
        Ok(Writer {
            backend,
            paths,
            cfg,
            rank,
            metrics,
            cursor,
            max_logical: 0,
            buf: Vec::new(),
            buf_base: cursor,
            pending_index: Vec::new(),
            pending_encoded: Vec::new(),
            index_cursor,
            data_tail_uncertain: false,
            index_tail_uncertain: false,
            stats: WriterStats::default(),
            open_dropping,
            closed: false,
        })
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn stats(&self) -> WriterStats {
        self.stats
    }

    /// Trace track naming this writer's logical thread.
    fn track(&self) -> String {
        if self.metrics.trace.enabled() {
            format!("rank.{}", self.rank)
        } else {
            String::new()
        }
    }

    /// Write `data` at logical offset `offset` — O(1) regardless of the
    /// logical layout: one log append plus one index record.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        assert!(!self.closed, "write on closed Writer");
        if data.is_empty() {
            return Ok(());
        }
        let op = self.metrics.trace.start("plfs.write_at", Phase::Compute, &self.track(), 0);
        let op_id = op.id();
        let ts = self.metrics.clock.stamp();
        let phys = self.cursor;
        self.pending_index.push(IndexEntry {
            logical_offset: offset,
            length: data.len() as u64,
            physical_offset: phys,
            writer: self.rank,
            timestamp: ts,
        });
        self.cursor += data.len() as u64;
        self.max_logical = self.max_logical.max(offset + data.len() as u64);
        self.stats.writes += 1;
        self.stats.bytes += data.len() as u64;
        self.metrics.write_ops.inc();
        self.metrics.write_bytes.add(data.len() as u64);

        if self.cfg.data_buffer == 0 {
            self.append_data(phys, data, op_id)?;
            self.buf_base = self.cursor;
            self.stats.data_appends += 1;
            self.metrics.data_appends.inc();
        } else {
            self.buf.extend_from_slice(data);
            if self.buf.len() >= self.cfg.data_buffer {
                self.flush_data(op_id)?;
            }
        }
        if self.pending_index.len() >= self.cfg.index_flush_every {
            self.flush_index(op_id)?;
        }
        Ok(())
    }

    /// Land `data` at exactly `base` in the data dropping, resuming any
    /// torn previous attempt. On a surfaced failure the tail is marked
    /// uncertain so the next attempt re-measures instead of duplicating.
    fn append_data(&mut self, base: u64, data: &[u8], parent: u64) -> io::Result<()> {
        let path = self.paths.data_dropping(self.rank);
        let track = self.track();
        let span = self.metrics.trace.start("plfs.data_append", Phase::Transfer, &track, parent);
        let res = append_at_reliable_traced(
            self.backend.as_ref(),
            &self.cfg.retry,
            &path,
            base,
            data,
            self.data_tail_uncertain,
            &self.metrics.trace,
            &track,
            span.id(),
        );
        span.end();
        self.data_tail_uncertain = res.is_err();
        res
    }

    fn flush_data(&mut self, parent: u64) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let base = self.buf_base;
        // `buf` is only appended to between attempts, so a torn prefix
        // left by a failed flush is still a prefix of the current buf
        // and the resume logic in `append_data` stays valid.
        let buf = std::mem::take(&mut self.buf);
        let res = self.append_data(base, &buf, parent);
        match res {
            Ok(()) => {
                self.buf_base += buf.len() as u64;
                self.stats.data_appends += 1;
                self.metrics.data_appends.inc();
                Ok(())
            }
            Err(e) => {
                self.buf = buf; // keep the bytes for the next attempt
                Err(e)
            }
        }
    }

    fn flush_index(&mut self, parent: u64) -> io::Result<()> {
        // First finish any encoded batch whose append previously failed:
        // its bytes may already partially be on the store, and nothing
        // newer may land before it.
        if !self.pending_encoded.is_empty() {
            let encoded = std::mem::take(&mut self.pending_encoded);
            if let Err(e) = self.append_index_bytes(&encoded, parent) {
                self.pending_encoded = encoded;
                return Err(e);
            }
        }
        if self.pending_index.is_empty() {
            return Ok(());
        }
        let encoded = if self.cfg.compress_index {
            encode_compressed(&self.pending_index)
        } else {
            encode_raw(&self.pending_index)
        };
        self.pending_index.clear();
        if let Err(e) = self.append_index_bytes(&encoded, parent) {
            // Keep the exact bytes: re-encoding later (after more
            // entries queued) would not be prefix-compatible with what
            // already landed.
            self.pending_encoded = encoded;
            return Err(e);
        }
        Ok(())
    }

    fn append_index_bytes(&mut self, encoded: &[u8], parent: u64) -> io::Result<()> {
        let path = self.paths.index_dropping(self.rank);
        let track = self.track();
        let span = self.metrics.trace.start("plfs.index_append", Phase::Transfer, &track, parent);
        let res = append_at_reliable_traced(
            self.backend.as_ref(),
            &self.cfg.retry,
            &path,
            self.index_cursor,
            encoded,
            self.index_tail_uncertain,
            &self.metrics.trace,
            &track,
            span.id(),
        );
        span.end();
        self.index_tail_uncertain = res.is_err();
        if res.is_ok() {
            self.index_cursor += encoded.len() as u64;
            self.stats.index_appends += 1;
            self.stats.index_bytes += encoded.len() as u64;
            self.metrics.index_appends.inc();
            self.metrics.index_bytes_written.add(encoded.len() as u64);
        }
        res
    }

    /// Flush everything to the backing store.
    pub fn sync(&mut self) -> io::Result<()> {
        let span = self.metrics.trace.start("plfs.sync", Phase::Compute, &self.track(), 0);
        let id = span.id();
        self.flush_data(id)?;
        self.flush_index(id)
    }

    /// Close the handle: flush, drop the openhosts dropping, and leave
    /// a metadata summary so later opens can shortcut stat calls.
    pub fn close(mut self) -> io::Result<WriterStats> {
        self.sync()?;
        let max_ts = self.metrics.clock.current();
        let meta = self.paths.meta_dropping(self.rank, self.max_logical, self.stats.bytes, max_ts);
        self.cfg.retry.run(|| self.backend.create(&meta))?;
        let _ = self.cfg.retry.run(|| self.backend.remove(&self.open_dropping));
        self.closed = true;
        Ok(self.stats)
    }
}

impl Drop for Writer {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort flush; errors surface on explicit sync/close.
            let _ = self.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::container::{create_container, ContainerPaths};
    use crate::index::decode;

    fn setup() -> (Arc<MemBackend>, ContainerPaths, Arc<PlfsMetrics>) {
        let b = Arc::new(MemBackend::new());
        let p = ContainerPaths::new("/f", 2);
        create_container(b.as_ref(), &p).unwrap();
        (b, p, PlfsMetrics::detached())
    }

    fn writer(
        b: &Arc<MemBackend>,
        p: &ContainerPaths,
        metrics: &Arc<PlfsMetrics>,
        rank: u32,
        cfg: WriterConfig,
    ) -> Writer {
        Writer::new(b.clone() as Arc<dyn Backend>, p.clone(), cfg, rank, metrics.clone(), 0)
            .unwrap()
    }

    #[test]
    fn writes_append_sequentially_to_log() {
        let (b, p, clock) = setup();
        let mut w =
            writer(&b, &p, &clock, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        // Wildly scattered logical offsets...
        w.write_at(1_000_000, b"aaa").unwrap();
        w.write_at(0, b"bb").unwrap();
        w.write_at(500, b"cccc").unwrap();
        w.sync().unwrap();
        // ...but the data dropping is a dense log.
        let log = b.read_all(&p.data_dropping(0)).unwrap();
        assert_eq!(log, b"aaabbcccc");
        let idx = decode(&b.read_all(&p.index_dropping(0)).unwrap()).unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[0].physical_offset, 0);
        assert_eq!(idx[1].physical_offset, 3);
        assert_eq!(idx[2].physical_offset, 5);
        assert_eq!(idx[2].logical_offset, 500);
    }

    #[test]
    fn buffered_writes_batch_appends() {
        let (b, p, clock) = setup();
        let cfg = WriterConfig {
            data_buffer: 1024,
            compress_index: false,
            index_flush_every: 1 << 30,
            ..Default::default()
        };
        let mut w = writer(&b, &p, &clock, 1, cfg);
        for i in 0..64u64 {
            w.write_at(i * 100, &[7u8; 100]).unwrap();
        }
        w.sync().unwrap();
        let st = w.stats();
        assert_eq!(st.writes, 64);
        assert_eq!(st.bytes, 6400);
        // 6400 bytes at 1 KiB buffer: 6 full flushes + 1 final = 7.
        assert!(st.data_appends <= 8, "batching failed: {} appends", st.data_appends);
        assert_eq!(b.len(&p.data_dropping(1)).unwrap(), 6400);
    }

    #[test]
    fn close_leaves_meta_and_clears_openhosts() {
        let (b, p, clock) = setup();
        let mut w = writer(&b, &p, &clock, 2, WriterConfig::default());
        w.write_at(0, &[1u8; 128]).unwrap();
        let stats = w.close().unwrap();
        assert_eq!(stats.bytes, 128);
        assert!(b.list(&p.openhosts_dir()).unwrap().is_empty());
        let metas = crate::container::read_meta(b.as_ref(), &p).unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].rank, 2);
        assert_eq!(metas[0].eof, 128);
    }

    #[test]
    fn compressed_index_is_smaller_for_strided_pattern() {
        let run = |compress: bool| {
            let (b, p, clock) = setup();
            let cfg = WriterConfig {
                data_buffer: 0,
                compress_index: compress,
                index_flush_every: 1 << 30,
                ..Default::default()
            };
            let mut w = writer(&b, &p, &clock, 0, cfg);
            for i in 0..1000u64 {
                w.write_at(i * 8192, &[0u8; 1024]).unwrap();
            }
            w.sync().unwrap();
            w.stats().index_bytes
        };
        let raw = run(false);
        let compressed = run(true);
        assert!(compressed * 20 < raw, "pattern compression ineffective: {compressed} vs {raw}");
    }

    #[test]
    fn reopen_resumes_at_log_tail() {
        let (b, p, clock) = setup();
        let mut w =
            writer(&b, &p, &clock, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        w.write_at(0, b"12345").unwrap();
        w.close().unwrap();
        let mut w2 =
            writer(&b, &p, &clock, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        w2.write_at(100, b"678").unwrap();
        w2.sync().unwrap();
        let idx = decode(&b.read_all(&p.index_dropping(0)).unwrap()).unwrap();
        assert_eq!(idx[1].physical_offset, 5, "second session must resume at tail");
        assert_eq!(b.read_all(&p.data_dropping(0)).unwrap(), b"12345678");
    }

    #[test]
    fn metrics_track_write_path_exactly() {
        let (b, p, m) = setup();
        let mut w = writer(&b, &p, &m, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        w.write_at(0, &[1u8; 100]).unwrap();
        w.write_at(100, &[2u8; 28]).unwrap();
        w.sync().unwrap();
        let reg = &m.registry;
        assert_eq!(reg.value("plfs.write.ops"), Some(2));
        assert_eq!(reg.value("plfs.write.bytes"), Some(128));
        assert_eq!(reg.value("plfs.write.data_appends"), Some(2));
        assert_eq!(reg.value("plfs.write.index_appends"), Some(1));
        let idx_bytes = reg.value("plfs.write.index_bytes").unwrap();
        assert_eq!(idx_bytes, w.stats().index_bytes);
        assert!(idx_bytes > 0);
    }

    #[test]
    fn drop_without_close_still_flushes() {
        let (b, p, clock) = setup();
        {
            let mut w = writer(&b, &p, &clock, 0, WriterConfig::default());
            w.write_at(0, &[9u8; 10]).unwrap();
            // dropped here
        }
        assert_eq!(b.len(&p.data_dropping(0)).unwrap(), 10);
        assert!(b.len(&p.index_dropping(0)).unwrap() > 0);
    }
}
