//! The PLFS write path.
//!
//! Each writing process gets a [`Writer`]: every `write_at` appends the
//! bytes to the rank's private data dropping and queues one index
//! entry. Nothing is ever overwritten and no two processes touch the
//! same backing file — the transformation that turns an N-1 strided
//! checkpoint into N independent sequential streams.
//!
//! Small-write batching (a post-PDSI PLFS extension, report §1.1 item 4)
//! is built in: data is staged in a local buffer and appended to the
//! backing store in large chunks; correctness is unaffected because
//! physical offsets are assigned from the writer's private cursor.

use crate::backend::Backend;
use crate::checksum::{chk_header, ChkBuilder, VERIFY_BLOCK};
use crate::container::ContainerPaths;
use crate::index::{encode_compressed, encode_raw, IndexEntry};
use crate::metrics::PlfsMetrics;
use crate::record::err_token;
use crate::retry::{append_at_reliable, append_at_reliable_traced, len_or_zero, RetryPolicy};
use obs::trace::Phase;
use std::io;
use std::sync::Arc;
use workloads::oplog::{OpKind, OpResult};

/// Writer-side knobs.
#[derive(Debug, Clone)]
pub struct WriterConfig {
    /// Stage data locally and append in chunks of this size (0 =
    /// write-through).
    pub data_buffer: usize,
    /// Use pattern compression when persisting the index.
    pub compress_index: bool,
    /// Flush the in-memory index every N entries (it always flushes on
    /// sync/close).
    pub index_flush_every: usize,
    /// How hard to mask transient backend errors (see [`crate::retry`]).
    pub retry: RetryPolicy,
    /// Maintain per-block checksum sidecars (`chk.R` / `chki.R`, see
    /// [`crate::checksum`]) alongside the droppings. Off produces a
    /// legacy container: readable everywhere, reported as "uncovered"
    /// by `fsck` and unverifiable by `scrub`.
    pub checksum: bool,
}

impl Default for WriterConfig {
    fn default() -> Self {
        WriterConfig {
            data_buffer: 1 << 20,
            compress_index: true,
            index_flush_every: 4096,
            retry: RetryPolicy::default(),
            checksum: true,
        }
    }
}

/// In-flight state of one checksum sidecar (`chk.R` or `chki.R`).
struct SidecarState {
    path: String,
    builder: ChkBuilder,
    /// Encoded sidecar bytes not yet on the store (header first, then
    /// completed-block CRC entries).
    pending: Vec<u8>,
    /// Byte length of the sidecar on the store.
    cursor: u64,
    /// Last sidecar append failed and may have torn.
    uncertain: bool,
}

/// Flush a sidecar's pending bytes, resuming any torn prior attempt.
fn flush_sidecar(
    backend: &dyn Backend,
    retry: &RetryPolicy,
    sc: &mut SidecarState,
) -> io::Result<()> {
    let completed = sc.builder.take_pending();
    sc.pending.extend_from_slice(&completed);
    if sc.pending.is_empty() {
        return Ok(());
    }
    let pending = std::mem::take(&mut sc.pending);
    match append_at_reliable(backend, retry, &sc.path, sc.cursor, &pending, sc.uncertain) {
        Ok(()) => {
            sc.cursor += pending.len() as u64;
            sc.uncertain = false;
            Ok(())
        }
        Err(e) => {
            sc.pending = pending;
            sc.uncertain = true;
            Err(e)
        }
    }
}

/// Per-writer cumulative counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriterStats {
    pub writes: u64,
    pub bytes: u64,
    pub data_appends: u64,
    pub index_appends: u64,
    pub index_bytes: u64,
}

/// An open write handle for one rank on one container.
pub struct Writer {
    backend: Arc<dyn Backend>,
    paths: ContainerPaths,
    cfg: WriterConfig,
    rank: u32,
    /// Shared instrumentation + monotone stamp source (one per `Plfs`
    /// instance).
    metrics: Arc<PlfsMetrics>,
    /// Next physical offset in the data dropping.
    cursor: u64,
    max_logical: u64,
    buf: Vec<u8>,
    /// Physical offset of buf[0].
    buf_base: u64,
    pending_index: Vec<IndexEntry>,
    /// Already-encoded index bytes whose append failed part-way: they
    /// must land (resumed, not duplicated) before anything newer.
    pending_encoded: Vec<u8>,
    /// Byte length of the index dropping on the store.
    index_cursor: u64,
    /// A data/index append failed and may have torn — the next append
    /// to that file must re-measure the tail before writing.
    data_tail_uncertain: bool,
    index_tail_uncertain: bool,
    /// Checksum sidecars (`None` when `cfg.checksum` is off): bytes are
    /// hashed the moment their append succeeds, sidecar entries land
    /// lazily on sync/close — so a sidecar may under-cover its file
    /// (crash artifact, reported as "uncovered") but never over-cover.
    chk: Option<SidecarState>,
    chki: Option<SidecarState>,
    stats: WriterStats,
    open_dropping: String,
    closed: bool,
}

impl Writer {
    pub(crate) fn new(
        backend: Arc<dyn Backend>,
        paths: ContainerPaths,
        cfg: WriterConfig,
        rank: u32,
        metrics: Arc<PlfsMetrics>,
        session: u64,
    ) -> io::Result<Self> {
        // A new writer session invalidates any flattened-index cache a
        // previous reader left behind (see `crate::canonical`), and the
        // removal must come *before* the session becomes visible (the
        // open dropping below): a reader racing this open must see
        // either no cache or a stamp mismatch, never a stale cache
        // whose stamp still matches. Unconditional (no `exists` gate —
        // an exists/remove pair reintroduces the window); a concurrent
        // delete racing us is fine (NotFound == done).
        let canonical = paths.canonical_index();
        cfg.retry.run(|| match backend.remove(&canonical) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            r => r,
        })?;
        let open_dropping = paths.open_dropping(rank, session);
        cfg.retry.run(|| backend.create(&open_dropping))?;
        // Appending to an existing dropping resumes at its tail. The
        // length queries are retried: silently treating a transient
        // failure as "empty" would restart the cursor at 0 and corrupt
        // the log.
        let cursor = len_or_zero(backend.as_ref(), &cfg.retry, &paths.data_dropping(rank))?;
        let index_cursor = len_or_zero(backend.as_ref(), &cfg.retry, &paths.index_dropping(rank))?;
        // A previous session's sidecars go stale the moment this session
        // appends to the covered files (their close-time tail CRC no
        // longer matches the grown tail block), so remove them *before*
        // any append — a reader must never see a stale sidecar next to
        // grown data. Done even with checksumming off: better an
        // uncovered dropping than a wrongly-covered one.
        for stale in [paths.chk_dropping(rank), paths.index_chk_dropping(rank)] {
            if backend.exists(&stale) {
                cfg.retry.run(|| match backend.remove(&stale) {
                    Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                    r => r,
                })?;
            }
        }
        let (chk, chki) = if cfg.checksum {
            // Resuming a session re-hashes the whole existing dropping:
            // the rank is the sole writer of its log, so the writer
            // trusts its own bytes (verification is the reader's and
            // scrub's job). This also invalidates a previous close's
            // tail CRC, which the resumed appends would outgrow.
            let mk =
                |path: String, covered_path: String, covered: u64| -> io::Result<SidecarState> {
                    let mut builder = ChkBuilder::new(VERIFY_BLOCK);
                    let mut pending = chk_header(VERIFY_BLOCK as u32);
                    if covered > 0 {
                        let existing = cfg.retry.run(|| backend.read_all(&covered_path))?;
                        builder.absorb(&existing);
                        pending.extend_from_slice(&builder.take_pending());
                    }
                    Ok(SidecarState { path, builder, pending, cursor: 0, uncertain: false })
                };
            (
                Some(mk(paths.chk_dropping(rank), paths.data_dropping(rank), cursor)?),
                Some(mk(paths.index_chk_dropping(rank), paths.index_dropping(rank), index_cursor)?),
            )
        } else {
            (None, None)
        };
        Ok(Writer {
            backend,
            paths,
            cfg,
            rank,
            metrics,
            cursor,
            max_logical: 0,
            buf: Vec::new(),
            buf_base: cursor,
            pending_index: Vec::new(),
            pending_encoded: Vec::new(),
            index_cursor,
            data_tail_uncertain: false,
            index_tail_uncertain: false,
            chk,
            chki,
            stats: WriterStats::default(),
            open_dropping,
            closed: false,
        })
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn stats(&self) -> WriterStats {
        self.stats
    }

    /// Trace track naming this writer's logical thread.
    fn track(&self) -> String {
        if self.metrics.trace.enabled() {
            format!("rank.{}", self.rank)
        } else {
            String::new()
        }
    }

    /// Write `data` at logical offset `offset` — O(1) regardless of the
    /// logical layout: one log append plus one index record.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.write_at_opt(offset, data, None)
    }

    /// [`Writer::write_at`] with a caller-supplied index timestamp
    /// instead of a fresh clock stamp. This is the replay entry point:
    /// re-issuing a captured write with its *recorded* stamp makes the
    /// read path resolve cross-rank overlaps exactly as the capture run
    /// did, regardless of replay mode or parallelism. Callers own stamp
    /// hygiene — replays use recorded capture stamps or the generated
    /// epoch well above any live clock value.
    pub fn write_at_stamped(&mut self, offset: u64, data: &[u8], ts: u64) -> io::Result<()> {
        self.write_at_opt(offset, data, Some(ts))
    }

    fn write_at_opt(&mut self, offset: u64, data: &[u8], ts: Option<u64>) -> io::Result<()> {
        let t0 = self.metrics.clock.now_nanos();
        let res = self.write_at_inner(offset, data, ts);
        let dt = self.metrics.clock.now_nanos().saturating_sub(t0);
        self.metrics.write_lat.observe(dt);
        if res.is_err() {
            self.metrics.write_errors.inc();
        }
        if let Some(m) = &self.metrics.meters {
            m.write_rate.mark(data.len() as u64);
            m.write_lat.observe(dt);
        }
        self.metrics.flight.maybe_sample();
        if let Some(rec) = &self.metrics.recorder {
            let result = match &res {
                Ok(used) => OpResult::Write { stamp: *used },
                Err(e) => err_token(e),
            };
            rec.record(
                self.paths.base(),
                self.rank,
                OpKind::Write,
                offset,
                data.len() as u64,
                result,
            );
        }
        res.map(|_| ())
    }

    /// Returns the index stamp the write used (caller-supplied, or
    /// freshly taken from the instance clock).
    fn write_at_inner(&mut self, offset: u64, data: &[u8], ts: Option<u64>) -> io::Result<u64> {
        assert!(!self.closed, "write on closed Writer");
        if data.is_empty() {
            return Ok(ts.unwrap_or(0));
        }
        let op = self.metrics.trace.start("plfs.write_at", Phase::Compute, &self.track(), 0);
        let op_id = op.id();
        // A fresh stamp is taken *inside* the span: on the logical
        // clock, span durations are measured in stamps.
        let ts = ts.unwrap_or_else(|| self.metrics.clock.stamp());
        let phys = self.cursor;
        self.pending_index.push(IndexEntry {
            logical_offset: offset,
            length: data.len() as u64,
            physical_offset: phys,
            writer: self.rank,
            timestamp: ts,
        });
        self.cursor += data.len() as u64;
        self.max_logical = self.max_logical.max(offset + data.len() as u64);
        self.stats.writes += 1;
        self.stats.bytes += data.len() as u64;
        self.metrics.write_ops.inc();
        self.metrics.write_bytes.add(data.len() as u64);

        if self.cfg.data_buffer == 0 {
            self.append_data(phys, data, op_id)?;
            self.buf_base = self.cursor;
            self.stats.data_appends += 1;
            self.metrics.data_appends.inc();
        } else {
            self.buf.extend_from_slice(data);
            if self.buf.len() >= self.cfg.data_buffer {
                self.flush_data(op_id)?;
            }
        }
        if self.pending_index.len() >= self.cfg.index_flush_every {
            self.flush_index(op_id)?;
        }
        Ok(ts)
    }

    /// Land `data` at exactly `base` in the data dropping, resuming any
    /// torn previous attempt. On a surfaced failure the tail is marked
    /// uncertain so the next attempt re-measures instead of duplicating.
    fn append_data(&mut self, base: u64, data: &[u8], parent: u64) -> io::Result<()> {
        let path = self.paths.data_dropping(self.rank);
        let track = self.track();
        let span = self.metrics.trace.start("plfs.data_append", Phase::Transfer, &track, parent);
        let res = append_at_reliable_traced(
            self.backend.as_ref(),
            &self.cfg.retry,
            &path,
            base,
            data,
            self.data_tail_uncertain,
            &self.metrics.trace,
            &track,
            span.id(),
        );
        span.end();
        self.data_tail_uncertain = res.is_err();
        if res.is_ok() {
            if let Some(sc) = &mut self.chk {
                sc.builder.absorb(data);
            }
        }
        res
    }

    fn flush_data(&mut self, parent: u64) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let base = self.buf_base;
        // `buf` is only appended to between attempts, so a torn prefix
        // left by a failed flush is still a prefix of the current buf
        // and the resume logic in `append_data` stays valid.
        let buf = std::mem::take(&mut self.buf);
        let res = self.append_data(base, &buf, parent);
        match res {
            Ok(()) => {
                self.buf_base += buf.len() as u64;
                self.stats.data_appends += 1;
                self.metrics.data_appends.inc();
                Ok(())
            }
            Err(e) => {
                self.buf = buf; // keep the bytes for the next attempt
                Err(e)
            }
        }
    }

    fn flush_index(&mut self, parent: u64) -> io::Result<()> {
        // First finish any encoded batch whose append previously failed:
        // its bytes may already partially be on the store, and nothing
        // newer may land before it.
        if !self.pending_encoded.is_empty() {
            let encoded = std::mem::take(&mut self.pending_encoded);
            if let Err(e) = self.append_index_bytes(&encoded, parent) {
                self.pending_encoded = encoded;
                return Err(e);
            }
        }
        if self.pending_index.is_empty() {
            return Ok(());
        }
        let encoded = if self.cfg.compress_index {
            encode_compressed(&self.pending_index)
        } else {
            encode_raw(&self.pending_index)
        };
        self.pending_index.clear();
        if let Err(e) = self.append_index_bytes(&encoded, parent) {
            // Keep the exact bytes: re-encoding later (after more
            // entries queued) would not be prefix-compatible with what
            // already landed.
            self.pending_encoded = encoded;
            return Err(e);
        }
        Ok(())
    }

    fn append_index_bytes(&mut self, encoded: &[u8], parent: u64) -> io::Result<()> {
        let path = self.paths.index_dropping(self.rank);
        let track = self.track();
        let span = self.metrics.trace.start("plfs.index_append", Phase::Transfer, &track, parent);
        let res = append_at_reliable_traced(
            self.backend.as_ref(),
            &self.cfg.retry,
            &path,
            self.index_cursor,
            encoded,
            self.index_tail_uncertain,
            &self.metrics.trace,
            &track,
            span.id(),
        );
        span.end();
        self.index_tail_uncertain = res.is_err();
        if res.is_ok() {
            self.index_cursor += encoded.len() as u64;
            self.stats.index_appends += 1;
            self.stats.index_bytes += encoded.len() as u64;
            self.metrics.index_appends.inc();
            self.metrics.index_bytes_written.add(encoded.len() as u64);
            if let Some(sc) = &mut self.chki {
                sc.builder.absorb(encoded);
            }
        }
        res
    }

    /// Land pending sidecar entries (completed-block CRCs) after the
    /// bytes they cover. Sidecar appends bypass the data/index append
    /// counters: they are integrity overhead, not workload I/O.
    fn flush_sidecars(&mut self, parent: u64) -> io::Result<()> {
        if self.chk.is_none() && self.chki.is_none() {
            return Ok(());
        }
        let span =
            self.metrics.trace.start("plfs.chk_append", Phase::Transfer, &self.track(), parent);
        let mut res = Ok(());
        for sc in [&mut self.chk, &mut self.chki].into_iter().flatten() {
            let r = flush_sidecar(self.backend.as_ref(), &self.cfg.retry, sc);
            if res.is_ok() {
                res = r;
            }
        }
        span.end();
        res
    }

    /// Close-time only: cover the final partial block of each dropping,
    /// so a cleanly closed container is checksummed to its last byte.
    fn seal_sidecars(&mut self) -> io::Result<()> {
        for sc in [&mut self.chk, &mut self.chki].into_iter().flatten() {
            if let Some(crc) = sc.builder.tail_crc() {
                let entry = crc.to_le_bytes();
                append_at_reliable(
                    self.backend.as_ref(),
                    &self.cfg.retry,
                    &sc.path,
                    sc.cursor,
                    &entry,
                    sc.uncertain,
                )?;
                sc.cursor += entry.len() as u64;
                sc.uncertain = false;
            }
        }
        Ok(())
    }

    /// Flush everything to the backing store.
    pub fn sync(&mut self) -> io::Result<()> {
        let span = self.metrics.trace.start("plfs.sync", Phase::Compute, &self.track(), 0);
        let id = span.id();
        let res = (|| {
            self.flush_data(id)?;
            self.flush_index(id)?;
            self.flush_sidecars(id)
        })();
        if let Some(rec) = &self.metrics.recorder {
            let result = match &res {
                Ok(()) => OpResult::Ok,
                Err(e) => err_token(e),
            };
            rec.record(self.paths.base(), self.rank, OpKind::Sync, 0, 0, result);
        }
        res
    }

    /// Close the handle: flush, drop the openhosts dropping, and leave
    /// a metadata summary so later opens can shortcut stat calls.
    pub fn close(mut self) -> io::Result<WriterStats> {
        let res = (|| {
            self.sync()?;
            self.seal_sidecars()?;
            let max_ts = self.metrics.clock.current();
            let meta =
                self.paths.meta_dropping(self.rank, self.max_logical, self.stats.bytes, max_ts);
            self.cfg.retry.run(|| self.backend.create(&meta))?;
            let _ = self.cfg.retry.run(|| self.backend.remove(&self.open_dropping));
            self.closed = true;
            Ok(())
        })();
        if let Some(rec) = &self.metrics.recorder {
            let result = match &res {
                Ok(()) => OpResult::Ok,
                Err(e) => err_token(e),
            };
            rec.record(self.paths.base(), self.rank, OpKind::CloseWriter, 0, 0, result);
        }
        res.map(|()| self.stats)
    }
}

impl Drop for Writer {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort flush; errors surface on explicit sync/close.
            let _ = self.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::container::{create_container, ContainerPaths};
    use crate::index::decode;

    fn setup() -> (Arc<MemBackend>, ContainerPaths, Arc<PlfsMetrics>) {
        let b = Arc::new(MemBackend::new());
        let p = ContainerPaths::new("/f", 2);
        create_container(b.as_ref(), &p).unwrap();
        (b, p, PlfsMetrics::detached())
    }

    fn writer(
        b: &Arc<MemBackend>,
        p: &ContainerPaths,
        metrics: &Arc<PlfsMetrics>,
        rank: u32,
        cfg: WriterConfig,
    ) -> Writer {
        Writer::new(b.clone() as Arc<dyn Backend>, p.clone(), cfg, rank, metrics.clone(), 0)
            .unwrap()
    }

    #[test]
    fn writes_append_sequentially_to_log() {
        let (b, p, clock) = setup();
        let mut w =
            writer(&b, &p, &clock, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        // Wildly scattered logical offsets...
        w.write_at(1_000_000, b"aaa").unwrap();
        w.write_at(0, b"bb").unwrap();
        w.write_at(500, b"cccc").unwrap();
        w.sync().unwrap();
        // ...but the data dropping is a dense log.
        let log = b.read_all(&p.data_dropping(0)).unwrap();
        assert_eq!(log, b"aaabbcccc");
        let idx = decode(&b.read_all(&p.index_dropping(0)).unwrap()).unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[0].physical_offset, 0);
        assert_eq!(idx[1].physical_offset, 3);
        assert_eq!(idx[2].physical_offset, 5);
        assert_eq!(idx[2].logical_offset, 500);
    }

    #[test]
    fn buffered_writes_batch_appends() {
        let (b, p, clock) = setup();
        let cfg = WriterConfig {
            data_buffer: 1024,
            compress_index: false,
            index_flush_every: 1 << 30,
            ..Default::default()
        };
        let mut w = writer(&b, &p, &clock, 1, cfg);
        for i in 0..64u64 {
            w.write_at(i * 100, &[7u8; 100]).unwrap();
        }
        w.sync().unwrap();
        let st = w.stats();
        assert_eq!(st.writes, 64);
        assert_eq!(st.bytes, 6400);
        // 6400 bytes at 1 KiB buffer: 6 full flushes + 1 final = 7.
        assert!(st.data_appends <= 8, "batching failed: {} appends", st.data_appends);
        assert_eq!(b.len(&p.data_dropping(1)).unwrap(), 6400);
    }

    #[test]
    fn close_leaves_meta_and_clears_openhosts() {
        let (b, p, clock) = setup();
        let mut w = writer(&b, &p, &clock, 2, WriterConfig::default());
        w.write_at(0, &[1u8; 128]).unwrap();
        let stats = w.close().unwrap();
        assert_eq!(stats.bytes, 128);
        assert!(b.list(&p.openhosts_dir()).unwrap().is_empty());
        let metas = crate::container::read_meta(b.as_ref(), &p).unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].rank, 2);
        assert_eq!(metas[0].eof, 128);
    }

    #[test]
    fn compressed_index_is_smaller_for_strided_pattern() {
        let run = |compress: bool| {
            let (b, p, clock) = setup();
            let cfg = WriterConfig {
                data_buffer: 0,
                compress_index: compress,
                index_flush_every: 1 << 30,
                ..Default::default()
            };
            let mut w = writer(&b, &p, &clock, 0, cfg);
            for i in 0..1000u64 {
                w.write_at(i * 8192, &[0u8; 1024]).unwrap();
            }
            w.sync().unwrap();
            w.stats().index_bytes
        };
        let raw = run(false);
        let compressed = run(true);
        assert!(compressed * 20 < raw, "pattern compression ineffective: {compressed} vs {raw}");
    }

    #[test]
    fn reopen_resumes_at_log_tail() {
        let (b, p, clock) = setup();
        let mut w =
            writer(&b, &p, &clock, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        w.write_at(0, b"12345").unwrap();
        w.close().unwrap();
        let mut w2 =
            writer(&b, &p, &clock, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        w2.write_at(100, b"678").unwrap();
        w2.sync().unwrap();
        let idx = decode(&b.read_all(&p.index_dropping(0)).unwrap()).unwrap();
        assert_eq!(idx[1].physical_offset, 5, "second session must resume at tail");
        assert_eq!(b.read_all(&p.data_dropping(0)).unwrap(), b"12345678");
    }

    #[test]
    fn metrics_track_write_path_exactly() {
        let (b, p, m) = setup();
        let mut w = writer(&b, &p, &m, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        w.write_at(0, &[1u8; 100]).unwrap();
        w.write_at(100, &[2u8; 28]).unwrap();
        w.sync().unwrap();
        let reg = &m.registry;
        assert_eq!(reg.value("plfs.write.ops"), Some(2));
        assert_eq!(reg.value("plfs.write.bytes"), Some(128));
        assert_eq!(reg.value("plfs.write.data_appends"), Some(2));
        assert_eq!(reg.value("plfs.write.index_appends"), Some(1));
        let idx_bytes = reg.value("plfs.write.index_bytes").unwrap();
        assert_eq!(idx_bytes, w.stats().index_bytes);
        assert!(idx_bytes > 0);
    }

    fn assert_sidecar_covers(b: &MemBackend, sidecar: &str, covered: &str) {
        let data = b.read_all(covered).unwrap();
        let (block, crcs) = crate::checksum::parse_chk(&b.read_all(sidecar).unwrap()).unwrap();
        assert_eq!(block, VERIFY_BLOCK);
        assert_eq!(crcs.len(), data.len().div_ceil(block as usize), "{sidecar} coverage");
        for (k, crc) in crcs.iter().enumerate() {
            let s = k * block as usize;
            let e = (s + block as usize).min(data.len());
            assert_eq!(*crc, crate::checksum::crc32(&data[s..e]), "{sidecar} block {k}");
        }
    }

    #[test]
    fn close_leaves_sidecars_covering_every_byte() {
        let (b, p, m) = setup();
        let mut w = writer(&b, &p, &m, 0, WriterConfig { data_buffer: 0, ..Default::default() });
        w.write_at(0, &vec![3u8; 5000]).unwrap(); // spans a block boundary
        w.write_at(5000, b"tail").unwrap();
        w.close().unwrap();
        assert_sidecar_covers(&b, &p.chk_dropping(0), &p.data_dropping(0));
        assert_sidecar_covers(&b, &p.index_chk_dropping(0), &p.index_dropping(0));
    }

    #[test]
    fn reopen_rebuilds_sidecars_over_all_sessions() {
        let (b, p, m) = setup();
        let mut w = writer(&b, &p, &m, 0, WriterConfig::default());
        w.write_at(0, &vec![1u8; 3000]).unwrap();
        w.close().unwrap();
        // Session two grows the same partial block the first close's
        // tail CRC covered — the sidecar must be rebuilt, not extended.
        let mut w2 = writer(&b, &p, &m, 0, WriterConfig::default());
        w2.write_at(3000, &vec![2u8; 3000]).unwrap();
        w2.close().unwrap();
        assert_sidecar_covers(&b, &p.chk_dropping(0), &p.data_dropping(0));
        assert_sidecar_covers(&b, &p.index_chk_dropping(0), &p.index_dropping(0));
    }

    #[test]
    fn checksum_off_writes_no_sidecars() {
        let (b, p, m) = setup();
        let mut w = writer(&b, &p, &m, 0, WriterConfig { checksum: false, ..Default::default() });
        w.write_at(0, &[1u8; 64]).unwrap();
        w.close().unwrap();
        assert!(!b.exists(&p.chk_dropping(0)));
        assert!(!b.exists(&p.index_chk_dropping(0)));
    }

    #[test]
    fn drop_without_close_still_flushes() {
        let (b, p, clock) = setup();
        {
            let mut w = writer(&b, &p, &clock, 0, WriterConfig::default());
            w.write_at(0, &[9u8; 10]).unwrap();
            // dropped here
        }
        assert_eq!(b.len(&p.data_dropping(0)).unwrap(), 10);
        assert!(b.len(&p.index_dropping(0)).unwrap() > 0);
    }
}
