//! Op-log capture: the recording half of workload capture & replay.
//!
//! An [`OpLogRecorder`] is attached to a [`crate::Plfs`] instance via
//! [`crate::PlfsConfig::record`]; every writer, reader, and metadata
//! operation the instance performs is appended as one
//! [`workloads::oplog::OpRecord`]. The recorder captures one logical
//! file per log (the op-log format is per-file); operations on other
//! logical paths are silently skipped, so an instance juggling many
//! files records a clean single-file log.
//!
//! What the result column captures is what makes the log replayable
//! byte-for-byte rather than merely op-for-op:
//!
//! - every write records the index timestamp it was stamped with, so a
//!   replay (via [`crate::Writer::write_at_stamped`]) resolves
//!   cross-rank overlaps exactly as the capture did, in any replay
//!   mode at any parallelism;
//! - every read records the delivered byte count plus a CRC32 of the
//!   delivered bytes, giving replays a per-op oracle and the log a
//!   delivered-bytes digest ([`workloads::oplog::OpLog::delivered_hash`]).
//!
//! Timestamps are nanoseconds since the recorder was created, taken
//! under the recorder lock at completion time — so the captured log is
//! timestamp-ordered by construction and always parses back.
//!
//! Failed data reads are not recorded (the error surfaces to the
//! caller); failed writes and metadata ops record an `err:<kind>`
//! result.

use std::io;
use std::sync::Mutex;
use std::time::Instant;
use workloads::oplog::{OpKind, OpLog, OpRecord, OpResult, Shape};

#[derive(Debug)]
struct RecorderInner {
    /// Logical path this log captures. `None` until the first op lands
    /// (unless pinned at construction). For N-N captures this is the
    /// *base* path; rank `r` operates on `<base>.<r>`.
    file: Option<String>,
    ops: Vec<OpRecord>,
    /// Monotonicity clamp: wall clocks can be coarse, and two ops
    /// completing within one tick must not go backwards in the log.
    last_t: u64,
}

/// Thread-safe op-log capture for one logical file.
#[derive(Debug)]
pub struct OpLogRecorder {
    start: Instant,
    shape: Shape,
    inner: Mutex<RecorderInner>,
}

impl Default for OpLogRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl OpLogRecorder {
    /// Record the first logical file touched (everything else skipped).
    pub fn new() -> Self {
        OpLogRecorder {
            start: Instant::now(),
            shape: Shape::N1,
            inner: Mutex::new(RecorderInner { file: None, ops: Vec::new(), last_t: 0 }),
        }
    }

    /// Record only operations on `logical`.
    pub fn for_file(logical: &str) -> Self {
        OpLogRecorder {
            start: Instant::now(),
            shape: Shape::N1,
            inner: Mutex::new(RecorderInner {
                file: Some(logical.to_string()),
                ops: Vec::new(),
                last_t: 0,
            }),
        }
    }

    /// N-N capture pinned to a base path: rank `r`'s operations on
    /// `<base>.<r>` are recorded; everything else is skipped. The
    /// snapshot carries [`Shape::NN`], so a replay reconstructs the
    /// same per-rank file family.
    pub fn for_file_nn(base: &str) -> Self {
        OpLogRecorder {
            start: Instant::now(),
            shape: Shape::NN,
            inner: Mutex::new(RecorderInner {
                file: Some(base.to_string()),
                ops: Vec::new(),
                last_t: 0,
            }),
        }
    }

    /// Append one op. Ops on a logical path outside the log's file
    /// (N-1: the file itself; N-N: `<base>.<rank>`) are skipped.
    pub fn record(
        &self,
        logical: &str,
        rank: u32,
        op: OpKind,
        offset: u64,
        len: u64,
        result: OpResult,
    ) {
        let t = self.start.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().unwrap();
        match (&inner.file, self.shape) {
            (None, _) => inner.file = Some(logical.to_string()),
            (Some(f), Shape::N1) if f != logical => return,
            (Some(base), Shape::NN) => {
                let matches_rank = logical
                    .strip_prefix(base.as_str())
                    .and_then(|rest| rest.strip_prefix('.'))
                    .and_then(|r| r.parse::<u32>().ok())
                    == Some(rank);
                if !matches_rank {
                    return;
                }
            }
            (Some(_), _) => {}
        }
        let t_ns = t.max(inner.last_t);
        inner.last_t = t_ns;
        inner.ops.push(OpRecord { t_ns, rank, op, offset, len, result });
    }

    /// Ops captured so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the captured log (capture may continue afterwards).
    pub fn snapshot(&self) -> OpLog {
        let inner = self.inner.lock().unwrap();
        let ops = inner.ops.clone();
        let ranks = ops.iter().map(|o| o.rank + 1).max().unwrap_or(0);
        OpLog { file: inner.file.clone().unwrap_or_default(), ranks, shape: self.shape, ops }
    }

    /// Drain the captured log, resetting the recorder for the next
    /// capture (the time origin is kept, so a multi-capture session
    /// stays monotone).
    pub fn take(&self) -> OpLog {
        let mut inner = self.inner.lock().unwrap();
        let ops = std::mem::take(&mut inner.ops);
        let file = inner.file.take().unwrap_or_default();
        let ranks = ops.iter().map(|o| o.rank + 1).max().unwrap_or(0);
        OpLog { file, ranks, shape: self.shape, ops }
    }
}

/// Render an `io::Error` as a compact single-token result kind.
pub(crate) fn err_token(e: &io::Error) -> OpResult {
    OpResult::Err(format!("{:?}", e.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_timestamp_ordered_and_parseable() {
        let rec = OpLogRecorder::new();
        rec.record("/f", 0, OpKind::OpenWriter, 0, 0, OpResult::Ok);
        rec.record("/f", 0, OpKind::Write, 0, 100, OpResult::Write { stamp: 9 });
        rec.record("/f", 1, OpKind::Write, 100, 50, OpResult::Write { stamp: 10 });
        let log = rec.snapshot();
        assert_eq!(log.file, "/f");
        assert_eq!(log.ranks, 2);
        assert_eq!(log.ops.len(), 3);
        assert!(log.ops.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let reparsed = OpLog::parse(&log.to_text()).unwrap();
        assert_eq!(reparsed, log);
    }

    #[test]
    fn other_files_are_skipped() {
        let rec = OpLogRecorder::new();
        rec.record("/a", 0, OpKind::Create, 0, 0, OpResult::Ok);
        rec.record("/b", 0, OpKind::Create, 0, 0, OpResult::Ok);
        rec.record("/a", 0, OpKind::Stat, 0, 0, OpResult::Ok);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.snapshot().file, "/a");
    }

    #[test]
    fn pinned_file_skips_everything_else() {
        let rec = OpLogRecorder::for_file("/target");
        rec.record("/other", 0, OpKind::Create, 0, 0, OpResult::Ok);
        assert!(rec.is_empty());
        rec.record("/target", 0, OpKind::Create, 0, 0, OpResult::Ok);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn nn_capture_accepts_only_the_rank_file_family() {
        let rec = OpLogRecorder::for_file_nn("/ckpt");
        rec.record("/ckpt.0", 0, OpKind::OpenWriter, 0, 0, OpResult::Ok);
        rec.record("/ckpt.1", 1, OpKind::OpenWriter, 0, 0, OpResult::Ok);
        rec.record("/ckpt.1", 0, OpKind::Write, 0, 10, OpResult::Ok); // wrong rank for file
        rec.record("/ckpt", 0, OpKind::Stat, 0, 0, OpResult::Ok); // base itself: not a member
        rec.record("/other.0", 0, OpKind::Create, 0, 0, OpResult::Ok);
        assert_eq!(rec.len(), 2);
        let log = rec.snapshot();
        assert_eq!(log.shape, Shape::NN);
        assert_eq!(log.file, "/ckpt");
        assert_eq!(log.ranks, 2);
    }

    #[test]
    fn take_drains_and_resets() {
        let rec = OpLogRecorder::new();
        rec.record("/f", 0, OpKind::Create, 0, 0, OpResult::Ok);
        let log = rec.take();
        assert_eq!(log.ops.len(), 1);
        assert!(rec.is_empty());
        rec.record("/g", 0, OpKind::Create, 0, 0, OpResult::Ok);
        assert_eq!(rec.snapshot().file, "/g");
    }
}
