//! Bounded worker pool for the read path.
//!
//! Index ingest (fetch + decode per rank) and the coalescing read
//! engine both want parallelism, but one OS thread per dropping melts
//! down at scale — a 1024-rank container would spawn 1024 decoder
//! threads. This pool runs any number of indexed jobs on at most `cap`
//! scoped worker threads (callers cap at [`available_parallelism`]) and
//! reports the peak number of jobs that actually ran concurrently, so
//! tests can assert the bound holds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// `std::thread::available_parallelism` with a sane fallback when the
/// platform cannot answer. Cached after the first call: the read
/// engine consults this on every `read_at`, and the underlying value
/// is a syscall on most platforms.
pub fn available_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

/// Run `jobs` closures (`f(0) .. f(jobs-1)`) on at most `cap` worker
/// threads. Returns the results in job order plus the peak number of
/// jobs observed running at once (always ≤ `cap`).
pub fn run_bounded<T, F>(jobs: usize, cap: usize, f: F) -> (Vec<T>, usize)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return (Vec::new(), 0);
    }
    let workers = cap.max(1).min(jobs);
    if workers == 1 {
        return ((0..jobs).map(&f).collect(), 1);
    }
    let next = AtomicUsize::new(0);
    let active = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= jobs {
                    break;
                }
                let running = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(running, Ordering::SeqCst);
                let out = f(i);
                active.fetch_sub(1, Ordering::SeqCst);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    let results =
        slots.into_iter().map(|m| m.into_inner().unwrap().expect("job completed")).collect();
    (results, peak.load(Ordering::SeqCst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn results_arrive_in_job_order() {
        let (out, peak) = run_bounded(100, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert!(peak <= 8);
        assert!(peak >= 1);
    }

    #[test]
    fn peak_concurrency_stays_within_cap() {
        // Many more jobs than workers, each slow enough that an
        // unbounded spawn would overlap them all.
        let cap = 4;
        let (out, peak) = run_bounded(64, cap, |i| {
            thread::sleep(Duration::from_millis(1));
            i
        });
        assert_eq!(out.len(), 64);
        assert!(peak <= cap, "peak {peak} exceeded cap {cap}");
    }

    #[test]
    fn single_worker_runs_inline() {
        let (out, peak) = run_bounded(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(peak, 1);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let (out, peak) = run_bounded(0, 8, |i| i);
        assert!(out.is_empty());
        assert_eq!(peak, 0);
    }
}
