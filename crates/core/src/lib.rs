//! # plfs — the Parallel Log-structured File System
//!
//! The PDSI report's flagship artifact (§1.1, §4.2.3, Fig. 8; published
//! as Bent et al., *PLFS: A Checkpoint Filesystem for Parallel
//! Applications*, SC'09): transparent middleware that decouples
//! concurrently-written shared files into per-process append-only logs,
//! deferring the resolution of "what does the file contain" to read
//! time via per-writer indices.
//!
//! Why it matters: parallel applications prefer writing one shared
//! checkpoint file with small, unaligned, strided records — a pattern
//! that collapses on deployed parallel file systems (lock false
//! sharing, non-sequential device traffic). PLFS converts that N-1
//! pattern into N sequential streams the backing store loves, with no
//! application changes; LANL measured 5×–28× on production codes and up
//! to two orders of magnitude on FLASH.
//!
//! Layered design, mirroring the original:
//!
//! - [`backend`]: the narrow store interface PLFS stacks on
//!   (in-memory, real local directory, or the `pfs` simulator);
//! - [`container`]: the on-store container layout (data/index
//!   droppings, hostdir spreading, metadata droppings);
//! - [`index`]: index records, pattern compression, and the
//!   overlap-resolving [`index::IndexMap`];
//! - [`write`] / [`read`]: the O(1) write path and the merge-at-open
//!   read path;
//! - [`filesystem`]: the POSIX-flavoured top API ([`Plfs`]);
//! - [`mpiio`]: collective (MPI-IO-like) adapter and the canonical
//!   checkpoint patterns;
//! - [`simadapter`]: replay patterns through the `pfs` cluster
//!   simulator, directly vs through PLFS (the Fig. 8 experiment).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use plfs::{Plfs, PlfsConfig};
//! use plfs::backend::{Backend, MemBackend};
//!
//! let store = Arc::new(MemBackend::new()) as Arc<dyn Backend>;
//! let fs = Plfs::new(store, PlfsConfig::default());
//!
//! // Two "ranks" write disjoint strided records of one logical file.
//! let mut r0 = fs.open_writer("/ckpt", 0).unwrap();
//! let mut r1 = fs.open_writer("/ckpt", 1).unwrap();
//! r0.write_at(0, b"AAAA").unwrap();
//! r1.write_at(4, b"BBBB").unwrap();
//! r0.write_at(8, b"CCCC").unwrap();
//! r0.close().unwrap();
//! r1.close().unwrap();
//!
//! let reader = fs.open_reader("/ckpt").unwrap();
//! assert_eq!(reader.read_all().unwrap(), b"AAAABBBBCCCC");
//! ```

pub mod backend;
pub mod canonical;
pub mod checksum;
pub mod container;
pub mod faults;
pub mod filesystem;
pub mod fsck;
pub mod index;
pub mod metrics;
pub mod mpiio;
pub mod pool;
pub mod read;
pub mod record;
pub mod replay;
pub mod retry;
pub mod service;
pub mod simadapter;
pub mod write;

pub use backend::{Backend, DirBackend, MemBackend};
pub use canonical::CanonicalIndex;
pub use checksum::{crc32, Crc32, VERIFY_BLOCK};
pub use container::ContainerPaths;
pub use faults::{FaultObs, FaultPlan, FaultStats, FaultyBackend};
pub use filesystem::{FileStat, Plfs, PlfsConfig};
pub use fsck::{
    fsck, repair, scrub, FsckError, FsckReport, RepairAction, RepairOptions, RepairReport,
    ScrubFinding, ScrubReport,
};
pub use index::{IndexEntry, IndexMap};
pub use metrics::{PlfsMeters, PlfsMetrics};
pub use mpiio::{segmented_n1_pattern, strided_n1_pattern, ParallelFile};
pub use read::{QuarantinePolicy, Reader, DEFAULT_READAHEAD, READ_CHUNK};
pub use record::OpLogRecorder;
pub use replay::{
    content_hash, differential, replay, DiffOutcome, ReplayMode, ReplayOptions, ReplayOutcome,
};
pub use retry::{is_integrity, IntegrityError, RetryObs, RetryPolicy};
pub use service::{IngestService, ServiceConfig, ServiceStats};
pub use simadapter::{
    compare, compare_restart, run_direct, run_direct_restart, run_plfs, run_plfs_restart,
    PlfsSimOptions,
};
pub use write::{Writer, WriterConfig, WriterStats};
