//! MPI-IO-flavoured collective interface.
//!
//! The original PLFS ships as an MPI-IO ADIO driver as well as a FUSE
//! layer. This module mirrors the ADIO shape for in-process "ranks":
//! a collective open that creates the container once, per-rank
//! `write_at` handles, and a collective close that synchronizes and
//! publishes metadata — so MPI applications' shared-file checkpoints
//! need no source changes.

use crate::filesystem::Plfs;
use crate::write::{Writer, WriterStats};
use std::io;
use std::sync::Arc;

/// A shared logical file opened collectively by `nranks` writers.
pub struct ParallelFile {
    plfs: Arc<Plfs>,
    logical: String,
    writers: Vec<Option<Writer>>,
}

impl ParallelFile {
    /// Collective create+open: rank 0 creates the container, all ranks
    /// obtain write handles.
    pub fn open_collective(plfs: Arc<Plfs>, logical: &str, nranks: u32) -> io::Result<Self> {
        assert!(nranks > 0);
        plfs.create(logical)?;
        let mut writers = Vec::with_capacity(nranks as usize);
        for rank in 0..nranks {
            writers.push(Some(plfs.open_writer(logical, rank)?));
        }
        Ok(ParallelFile { plfs, logical: logical.to_string(), writers })
    }

    pub fn nranks(&self) -> usize {
        self.writers.len()
    }

    pub fn logical(&self) -> &str {
        &self.logical
    }

    /// `MPI_File_write_at` equivalent for `rank`.
    pub fn write_at(&mut self, rank: u32, offset: u64, data: &[u8]) -> io::Result<()> {
        self.writers[rank as usize].as_mut().expect("rank already closed").write_at(offset, data)
    }

    /// `MPI_File_sync` equivalent: flush every rank's buffers.
    pub fn sync_all(&mut self) -> io::Result<()> {
        for w in self.writers.iter_mut().flatten() {
            w.sync()?;
        }
        Ok(())
    }

    /// Collective close: flush and close every rank, returning per-rank
    /// stats.
    pub fn close_collective(mut self) -> io::Result<Vec<WriterStats>> {
        let mut stats = Vec::with_capacity(self.writers.len());
        for w in self.writers.iter_mut() {
            let writer = w.take().expect("double close");
            stats.push(writer.close()?);
        }
        Ok(stats)
    }

    /// Convenience: read the file back through a fresh reader.
    pub fn read_back(&self) -> io::Result<Vec<u8>> {
        self.plfs.open_reader(&self.logical)?.read_all()
    }
}

/// Describe a strided N-1 checkpoint: each of `nranks` ranks owns
/// records `rank, rank+n, rank+2n, ...` of `record` bytes each.
/// Returns per-rank `(offset, len)` write lists — the pattern Fig. 15's
/// Ninjat visualization shows and the FLASH/Chombo benchmarks issue.
pub fn strided_n1_pattern(nranks: u32, records_per_rank: u32, record: u64) -> Vec<Vec<(u64, u64)>> {
    (0..nranks)
        .map(|rank| {
            (0..records_per_rank)
                .map(|i| {
                    let record_idx = i as u64 * nranks as u64 + rank as u64;
                    (record_idx * record, record)
                })
                .collect()
        })
        .collect()
}

/// Describe a segmented N-1 checkpoint: rank r owns one contiguous
/// region `[r * per_rank, (r+1) * per_rank)` written in `write`-byte
/// pieces.
pub fn segmented_n1_pattern(nranks: u32, per_rank: u64, write: u64) -> Vec<Vec<(u64, u64)>> {
    (0..nranks)
        .map(|rank| {
            let base = rank as u64 * per_rank;
            let mut ops = Vec::new();
            let mut pos = 0;
            while pos < per_rank {
                let len = write.min(per_rank - pos);
                ops.push((base + pos, len));
                pos += len;
            }
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, MemBackend};
    use crate::filesystem::PlfsConfig;

    fn fs() -> Arc<Plfs> {
        let b = Arc::new(MemBackend::new());
        Arc::new(Plfs::new(b as Arc<dyn Backend>, PlfsConfig::default()))
    }

    #[test]
    fn collective_strided_checkpoint_roundtrip() {
        let plfs = fs();
        let nranks = 16u32;
        let mut f = ParallelFile::open_collective(plfs, "/ckpt.0", nranks).unwrap();
        let pattern = strided_n1_pattern(nranks, 32, 517); // unaligned record size
        for (rank, ops) in pattern.iter().enumerate() {
            for &(off, len) in ops {
                let fill = (off % 253) as u8;
                f.write_at(rank as u32, off, &vec![fill; len as usize]).unwrap();
            }
        }
        let data = {
            f.sync_all().unwrap();
            f.read_back().unwrap()
        };
        assert_eq!(data.len(), 16 * 32 * 517);
        for (i, &byte) in data.iter().enumerate() {
            let off = (i as u64 / 517) * 517;
            assert_eq!(byte, (off % 253) as u8, "byte {i}");
        }
        let stats = f.close_collective().unwrap();
        assert_eq!(stats.len(), 16);
        assert!(stats.iter().all(|s| s.writes == 32));
    }

    #[test]
    fn segmented_pattern_covers_disjointly() {
        let p = segmented_n1_pattern(4, 1000, 300);
        let mut all: Vec<(u64, u64)> = p.concat();
        all.sort();
        let mut pos = 0;
        for (off, len) in all {
            assert_eq!(off, pos, "gap or overlap at {pos}");
            pos = off + len;
        }
        assert_eq!(pos, 4000);
    }

    #[test]
    fn strided_pattern_is_a_permutation_of_records() {
        let p = strided_n1_pattern(3, 4, 10);
        let mut offsets: Vec<u64> = p.iter().flatten().map(|&(o, _)| o).collect();
        offsets.sort();
        let expect: Vec<u64> = (0..12).map(|i| i * 10).collect();
        assert_eq!(offsets, expect);
    }

    #[test]
    fn sync_all_makes_data_visible_before_close() {
        let plfs = fs();
        let mut f = ParallelFile::open_collective(plfs, "/live", 2).unwrap();
        f.write_at(0, 0, b"AB").unwrap();
        f.write_at(1, 2, b"CD").unwrap();
        f.sync_all().unwrap();
        assert_eq!(f.read_back().unwrap(), b"ABCD");
        f.close_collective().unwrap();
    }
}
