//! The PLFS instrumentation bundle.
//!
//! One [`PlfsMetrics`] is created per [`crate::Plfs`] instance and
//! cloned (via `Arc`) into every writer and reader it hands out, so the
//! whole stack records into a single [`Registry`] and stamps from a
//! single [`Clock`] — the write path, read path, and retry layer share
//! one time source instead of threading ad-hoc `Arc<AtomicU64>`s.
//!
//! Series schema (all under the instance's registry):
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `plfs.write.ops` | counter | `write_at` calls |
//! | `plfs.write.bytes` | counter | logical bytes written |
//! | `plfs.write.errors` | counter | `write_at` calls that returned an error |
//! | `plfs.write.lat_ns` | histogram | `write_at` wall/logical duration |
//! | `plfs.write.data_appends` | counter | data-dropping appends issued |
//! | `plfs.write.index_appends` | counter | index-dropping appends issued |
//! | `plfs.write.index_bytes` | counter | encoded index bytes persisted |
//! | `plfs.read.ops` | counter | `read_at` calls |
//! | `plfs.read.bytes` | counter | logical bytes actually delivered (failed reads count nothing) |
//! | `plfs.read.errors` | counter | `read_at` calls that returned an error |
//! | `plfs.read.lat_ns` | histogram | `read_at` wall/logical duration |
//! | `plfs.read.batches` | counter | coalesced per-dropping read batches issued |
//! | `plfs.read.backend_ops` | counter | backend `read_at` calls the engine issued |
//! | `plfs.read.coalesced_bytes` | counter | bytes served by batches that merged ≥ 2 extents |
//! | `plfs.read.readahead_hits` | counter | batches served entirely from the readahead cache |
//! | `plfs.read.parallelism` | histogram | peak concurrent batch workers per `read_at` |
//! | `plfs.read.open_ns` | histogram | container-open (index merge) spans |
//! | `plfs.index.merge_fanin` | histogram | writers merged per open |
//! | `plfs.index.raw_entries` | counter | index entries decoded |
//! | `plfs.index.tail_entries` | counter | entries decoded from dropping tails past a cache stamp |
//! | `plfs.index.merged_extents` | counter | extents after overlap merge |
//! | `plfs.index.bytes_read` | counter | index-dropping bytes fetched |
//! | `plfs.index.merge_steps` | counter | logical merge cost (see [`crate::index::IndexMap::merge_steps`]) |
//! | `plfs.index.decode_concurrency` | histogram | peak concurrent fetch+decode workers per open |
//! | `plfs.index.canonical_hits` | counter | opens served from the flattened-index cache |
//! | `plfs.index.canonical_writes` | counter | flattened-index caches persisted |
//! | `plfs.verify.blocks` | counter | checksum blocks verified on the read path |
//! | `plfs.verify.bytes` | counter | bytes covered by read-path verification |
//! | `plfs.verify.failures` | counter | blocks whose checksum mismatched (first detection per reader) |
//! | `scrub.extents` | counter | checksum blocks walked by `fsck::scrub` |
//! | `scrub.corrupt` | counter | corrupt extents found by `fsck::scrub` |
//!
//! The retry layer adds `retry.*` (see [`crate::retry::RetryObs`]) and
//! fault injection adds `faults.*` (see
//! [`crate::faults::FaultyBackend::export_into`]).

use crate::record::OpLogRecorder;
use obs::recorder::Recorder;
use obs::timeseries::{RateMeter, WindowHistogram, WindowSpec};
use obs::trace::{TraceCtx, TraceSink};
use obs::{Clock, Counter, Histogram, Registry, Timer};
use std::sync::Arc;

/// Windowed live meters for the hot paths: "how fast *right now*", as
/// opposed to the cumulative registry series. One bundle per instance,
/// shared by every handle; all four meters rotate on the instance
/// clock, so in logical mode they window over logical ticks.
#[derive(Debug, Clone)]
pub struct PlfsMeters {
    /// Write ops (events) and bytes (weight) per window.
    pub write_rate: RateMeter,
    /// Read ops (events) and delivered bytes (weight) per window.
    pub read_rate: RateMeter,
    /// Windowed `write_at` latency (p50/p95/p99/p999 over the window).
    pub write_lat: WindowHistogram,
    /// Windowed `read_at` latency.
    pub read_lat: WindowHistogram,
}

impl PlfsMeters {
    pub fn new(clock: &Clock, spec: WindowSpec) -> Arc<Self> {
        Arc::new(PlfsMeters {
            write_rate: RateMeter::new(clock, spec),
            read_rate: RateMeter::new(clock, spec),
            write_lat: WindowHistogram::new(clock, spec),
            read_lat: WindowHistogram::new(clock, spec),
        })
    }
}

/// Counter/histogram handles for one PLFS instance.
#[derive(Debug, Clone)]
pub struct PlfsMetrics {
    /// The registry every series lives in (shared, clonable).
    pub registry: Registry,
    /// The instance-wide time source: logical by default (index
    /// timestamps are sequence numbers), wall if the caller wants real
    /// span durations.
    pub clock: Clock,
    /// Causal trace handle (disabled unless built via
    /// [`PlfsMetrics::new_traced`]); reads the clock without stamping,
    /// so enabling tracing never perturbs index timestamps.
    pub trace: TraceCtx,
    pub write_ops: Counter,
    pub write_bytes: Counter,
    pub write_errors: Counter,
    pub read_errors: Counter,
    pub data_appends: Counter,
    pub index_appends: Counter,
    pub index_bytes_written: Counter,
    pub read_ops: Counter,
    pub read_bytes: Counter,
    pub read_batches: Counter,
    pub read_backend_ops: Counter,
    pub read_coalesced_bytes: Counter,
    pub read_readahead_hits: Counter,
    pub index_bytes_read: Counter,
    pub raw_entries: Counter,
    pub tail_entries: Counter,
    pub merged_extents: Counter,
    pub merge_steps: Counter,
    pub canonical_hits: Counter,
    pub canonical_writes: Counter,
    pub verify_blocks: Counter,
    pub verify_bytes: Counter,
    pub verify_failures: Counter,
    pub scrub_extents: Counter,
    pub scrub_corrupt: Counter,
    pub merge_fanin: Histogram,
    pub decode_concurrency: Histogram,
    pub read_parallelism: Histogram,
    pub write_lat: Histogram,
    pub read_lat: Histogram,
    pub open_timer: Timer,
    /// Op-log capture hook (see [`crate::record`]); `None` = capture
    /// off, the default. Rides in the metrics bundle because writers
    /// and readers already receive exactly this bundle.
    pub recorder: Option<Arc<OpLogRecorder>>,
    /// Flight-recorder probe (see [`obs::recorder`]): the hot paths
    /// call `flight.maybe_sample()` once per op, which snapshots the
    /// registry onto the recorder's ring whenever a cadence deadline
    /// has passed. Disabled by default — the disabled probe is a single
    /// branch on `None`.
    pub flight: Recorder,
    /// Windowed live meters ("ops/s over the last second"); `None` = off,
    /// the default, costing one branch per op.
    pub meters: Option<Arc<PlfsMeters>>,
}

impl PlfsMetrics {
    /// Handles registered in `registry`, stamping from `clock`.
    pub fn new(registry: &Registry, clock: &Clock) -> Arc<Self> {
        PlfsMetrics::new_traced(registry, clock, TraceSink::disabled())
    }

    /// [`PlfsMetrics::new`] with a trace sink: spans are timed from the
    /// same `clock` the metrics stamp from.
    pub fn new_traced(registry: &Registry, clock: &Clock, sink: TraceSink) -> Arc<Self> {
        PlfsMetrics::new_full(registry, clock, sink, None)
    }

    /// The full bundle: trace sink plus optional op-log capture.
    pub fn new_full(
        registry: &Registry,
        clock: &Clock,
        sink: TraceSink,
        recorder: Option<Arc<OpLogRecorder>>,
    ) -> Arc<Self> {
        PlfsMetrics::new_configured(registry, clock, sink, recorder, Recorder::disabled(), None)
    }

    /// Everything: trace sink, op-log capture, flight recorder, and
    /// optional windowed meters (rotating on `clock`).
    pub fn new_configured(
        registry: &Registry,
        clock: &Clock,
        sink: TraceSink,
        recorder: Option<Arc<OpLogRecorder>>,
        flight: Recorder,
        meter_window: Option<WindowSpec>,
    ) -> Arc<Self> {
        Arc::new(PlfsMetrics {
            registry: registry.clone(),
            clock: clock.clone(),
            trace: TraceCtx::new(sink, clock.clone()),
            write_ops: registry.counter("plfs.write.ops"),
            write_bytes: registry.counter("plfs.write.bytes"),
            write_errors: registry.counter("plfs.write.errors"),
            read_errors: registry.counter("plfs.read.errors"),
            data_appends: registry.counter("plfs.write.data_appends"),
            index_appends: registry.counter("plfs.write.index_appends"),
            index_bytes_written: registry.counter("plfs.write.index_bytes"),
            read_ops: registry.counter("plfs.read.ops"),
            read_bytes: registry.counter("plfs.read.bytes"),
            read_batches: registry.counter("plfs.read.batches"),
            read_backend_ops: registry.counter("plfs.read.backend_ops"),
            read_coalesced_bytes: registry.counter("plfs.read.coalesced_bytes"),
            read_readahead_hits: registry.counter("plfs.read.readahead_hits"),
            index_bytes_read: registry.counter("plfs.index.bytes_read"),
            raw_entries: registry.counter("plfs.index.raw_entries"),
            tail_entries: registry.counter("plfs.index.tail_entries"),
            merged_extents: registry.counter("plfs.index.merged_extents"),
            merge_steps: registry.counter("plfs.index.merge_steps"),
            canonical_hits: registry.counter("plfs.index.canonical_hits"),
            canonical_writes: registry.counter("plfs.index.canonical_writes"),
            verify_blocks: registry.counter("plfs.verify.blocks"),
            verify_bytes: registry.counter("plfs.verify.bytes"),
            verify_failures: registry.counter("plfs.verify.failures"),
            scrub_extents: registry.counter("scrub.extents"),
            scrub_corrupt: registry.counter("scrub.corrupt"),
            merge_fanin: registry.histogram("plfs.index.merge_fanin"),
            decode_concurrency: registry.histogram("plfs.index.decode_concurrency"),
            read_parallelism: registry.histogram("plfs.read.parallelism"),
            write_lat: registry.histogram("plfs.write.lat_ns"),
            read_lat: registry.histogram("plfs.read.lat_ns"),
            open_timer: registry.timer("plfs.read.open_ns", clock),
            recorder,
            flight,
            meters: meter_window.map(|spec| PlfsMeters::new(clock, spec)),
        })
    }

    /// A standalone bundle with its own private registry and a logical
    /// clock starting at 0 — for tests and components used outside a
    /// [`crate::Plfs`] instance.
    pub fn detached() -> Arc<Self> {
        PlfsMetrics::new(&Registry::new(), &Clock::logical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_record_into_shared_registry() {
        let reg = Registry::new();
        let clock = Clock::logical_at(5);
        let m = PlfsMetrics::new(&reg, &clock);
        m.write_ops.inc();
        m.write_bytes.add(100);
        m.merge_fanin.observe(8);
        assert_eq!(reg.value("plfs.write.ops"), Some(1));
        assert_eq!(reg.value("plfs.write.bytes"), Some(100));
        assert_eq!(reg.histogram("plfs.index.merge_fanin").count(), 1);
        assert_eq!(m.clock.stamp(), 5, "clock is the one passed in");
    }

    #[test]
    fn detached_bundles_are_independent() {
        let a = PlfsMetrics::detached();
        let b = PlfsMetrics::detached();
        a.write_ops.inc();
        assert_eq!(a.registry.value("plfs.write.ops"), Some(1));
        assert_eq!(b.registry.value("plfs.write.ops"), Some(0));
    }
}
