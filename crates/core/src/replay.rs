//! Deterministic op-log replay: drive a captured or generated
//! [`OpLog`] against any [`crate::Plfs`] instance — and therefore any
//! backend (memory, local dir, faulty) — and prove the outcome matched.
//!
//! ## Determinism model
//!
//! Replay must produce identical container contents and identical
//! delivered read bytes in every mode at any parallelism. Three
//! mechanisms make that hold:
//!
//! 1. **Recorded write stamps.** Cross-rank overlap resolution in the
//!    index merge orders extents by `(timestamp, writer)`. Every write
//!    is re-issued via [`crate::Writer::write_at_stamped`] with the
//!    stamp from the log's result column (captured logs) or the
//!    pre-assigned generated stamp; a `-` write falls back to
//!    `GEN_STAMP_BASE + log index`. Physical append order becomes
//!    irrelevant.
//! 2. **Canonical payloads.** Write bytes are regenerated with
//!    [`fill_payload`] — a pure function of `(rank, offset)` — so two
//!    replays of one log lay down identical bytes, and a capture that
//!    used canonical payloads (all generated scenarios do) is
//!    reproduced byte-for-byte.
//! 3. **Epoch barriers.** The log is split into maximal runs of
//!    write-class and read-class ops (see [`OpKind::is_read_side`]).
//!    At each write→read transition every open writer is synced and
//!    stale read handles are dropped, so reads always observe
//!    everything written before them in log order. Within an epoch,
//!    per-rank op order is preserved; cross-rank order is free — which
//!    is exactly the freedom the stamps make harmless.
//!
//! ## Modes
//!
//! - `Sequential`: one op at a time in global log order — the
//!   reference interleaving.
//! - `Asap`: per-rank lanes fan out on the bounded worker pool, each
//!   lane issuing its ops back to back.
//! - `TimingFaithful`: like `Asap`, but each lane sleeps until the
//!   op's recorded timestamp (scaled by `speedup`), reproducing the
//!   capture's arrival process — Poisson gaps stay Poisson.
//!
//! Op failures don't abort the replay: the op records an `err:<kind>`
//! result and the run continues (the differential harness then shows
//! whether the failure changed observable behaviour). Infrastructure
//! failures (e.g. the final content walk) do surface as errors.
//!
//! The differential harness ([`differential`]) replays one log against
//! two engine configurations and reports whether delivered bytes,
//! final contents, and invariant metrics agree — the regression
//! backbone for engine changes.

use crate::backend::Backend;
use crate::checksum::crc32;
use crate::filesystem::{Plfs, PlfsConfig};
use crate::pool;
use crate::read::Reader;
use crate::write::Writer;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use workloads::gen::GEN_STAMP_BASE;
use workloads::oplog::{
    fill_payload, fold_delivered, OpKind, OpLog, OpRecord, OpResult, Shape, DELIVERED_HASH_SEED,
};

/// How replayed ops are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// Per-rank lanes on the bounded pool, each as fast as possible.
    #[default]
    Asap,
    /// Global log order, single-threaded — the reference interleaving.
    Sequential,
    /// Per-rank lanes paced to the recorded timestamps (divided by
    /// [`ReplayOptions::speedup`]), preserving the arrival process.
    TimingFaithful,
}

impl ReplayMode {
    /// CLI token table.
    pub fn by_name(name: &str) -> Option<ReplayMode> {
        Some(match name {
            "asap" => ReplayMode::Asap,
            "sequential" => ReplayMode::Sequential,
            "timing-faithful" | "timing" => ReplayMode::TimingFaithful,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ReplayMode::Asap => "asap",
            ReplayMode::Sequential => "sequential",
            ReplayMode::TimingFaithful => "timing-faithful",
        }
    }
}

/// Replay configuration: scheduling plus the reader-engine knobs the
/// differential harness varies.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    pub mode: ReplayMode,
    /// Wall-time compression for timing-faithful replay: recorded gaps
    /// are divided by this. 1.0 replays in captured real time.
    pub speedup: f64,
    /// Serve reads through the serial per-piece oracle
    /// ([`Reader::read_at_serial`]) instead of the coalescing engine.
    pub serial_reads: bool,
    /// Override the reader's readahead (bytes, 0 disables).
    pub readahead: Option<u64>,
    /// Override read-path checksum verification.
    pub verify: Option<bool>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            mode: ReplayMode::Asap,
            speedup: 1.0,
            serial_reads: false,
            readahead: None,
            verify: None,
        }
    }
}

/// What a replay run did and what it observed.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Ops executed (== the log's op count).
    pub ops: u64,
    /// Ops that surfaced an error (recorded as `err:`, run continued).
    pub errors: u64,
    /// Epoch barriers the log split into.
    pub epochs: u64,
    /// Logical bytes written successfully.
    pub write_bytes: u64,
    /// Logical bytes delivered to reads.
    pub read_bytes: u64,
    /// Reads whose `(got, crc)` differed from the log's recorded
    /// outcome (only counted where the log had one).
    pub read_mismatches: u64,
    /// Order-sensitive digest of all delivered read bytes, in log
    /// order ([`OpLog::delivered_hash`] of the replayed log).
    pub delivered_hash: u64,
    /// Digest of the final logical file contents (all ranks' files for
    /// N-N), read back through a fresh uninstrumented instance.
    pub content_hash: u64,
    pub wall_ns: u64,
    /// The input log with every op's result replaced by what this
    /// replay observed — itself a valid, re-replayable op log.
    pub log: OpLog,
}

/// Per-rank replay lane state.
#[derive(Default)]
struct Lane {
    writer: Option<Writer>,
    reader: Option<Reader>,
}

/// One maximal run of same-class ops (indices into the log).
struct Epoch {
    read_side: bool,
    ops: Vec<usize>,
}

fn split_epochs(ops: &[OpRecord]) -> Vec<Epoch> {
    let mut out: Vec<Epoch> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let rs = op.op.is_read_side();
        match out.last_mut() {
            Some(e) if e.read_side == rs => e.ops.push(i),
            _ => out.push(Epoch { read_side: rs, ops: vec![i] }),
        }
    }
    out
}

/// Logical path rank `rank` operates on: the shared file for N-1,
/// `<file>.<rank>` for N-N.
pub fn path_for(log: &OpLog, rank: u32) -> String {
    match log.shape {
        Shape::N1 => log.file.clone(),
        Shape::NN => format!("{}.{}", log.file, rank),
    }
}

fn ok_or_err<T>(res: io::Result<T>) -> OpResult {
    match res {
        Ok(_) => OpResult::Ok,
        Err(e) => OpResult::Err(format!("{:?}", e.kind())),
    }
}

fn open_reader_with_opts(
    fs: &Plfs,
    path: &str,
    rank: u32,
    opts: &ReplayOptions,
) -> io::Result<Reader> {
    let mut r = fs.open_reader_as(path, rank)?;
    if let Some(ra) = opts.readahead {
        r.set_readahead(ra);
    }
    if let Some(v) = opts.verify {
        r.set_verify(v);
    }
    Ok(r)
}

/// Execute one op against its lane. Never panics and never aborts the
/// replay: failures become `err:` results.
fn exec_op(
    fs: &Plfs,
    lane: &mut Lane,
    log: &OpLog,
    op: &OpRecord,
    idx: usize,
    opts: &ReplayOptions,
) -> OpResult {
    // Flight-recorder probe: replayed control ops (open/sync/stat/...)
    // never pass through the instrumented write/read hot paths, so the
    // replay loop polls once per op to keep frame cadence under
    // control-heavy logs. Free when the recorder is disabled.
    fs.metrics().flight.maybe_sample();
    let path = path_for(log, op.rank);
    match op.op {
        OpKind::Create => ok_or_err(fs.create(&path)),
        OpKind::OpenWriter => match fs.open_writer(&path, op.rank) {
            Ok(w) => {
                lane.writer = Some(w);
                OpResult::Ok
            }
            Err(e) => ok_or_err::<()>(Err(e)),
        },
        OpKind::Write => {
            if lane.writer.is_none() {
                // A log may start mid-session: open lazily.
                match fs.open_writer(&path, op.rank) {
                    Ok(w) => lane.writer = Some(w),
                    Err(e) => return ok_or_err::<()>(Err(e)),
                }
            }
            let stamp = match op.result {
                OpResult::Write { stamp } => stamp,
                // Pending/other: the deterministic fallback every mode
                // agrees on (position in the log, not issue order).
                _ => GEN_STAMP_BASE + idx as u64,
            };
            let mut payload = vec![0u8; op.len as usize];
            fill_payload(op.rank, op.offset, &mut payload);
            match lane.writer.as_mut().unwrap().write_at_stamped(op.offset, &payload, stamp) {
                Ok(()) => OpResult::Write { stamp },
                Err(e) => ok_or_err::<()>(Err(e)),
            }
        }
        OpKind::Sync => match lane.writer.as_mut() {
            Some(w) => ok_or_err(w.sync()),
            None => OpResult::Ok,
        },
        OpKind::CloseWriter => match lane.writer.take() {
            Some(w) => ok_or_err(w.close()),
            None => OpResult::Ok,
        },
        OpKind::OpenReader => match open_reader_with_opts(fs, &path, op.rank, opts) {
            Ok(r) => {
                lane.reader = Some(r);
                OpResult::Ok
            }
            Err(e) => ok_or_err::<()>(Err(e)),
        },
        OpKind::Read => {
            if lane.reader.is_none() {
                match open_reader_with_opts(fs, &path, op.rank, opts) {
                    Ok(r) => lane.reader = Some(r),
                    Err(e) => return ok_or_err::<()>(Err(e)),
                }
            }
            let r = lane.reader.as_ref().unwrap();
            let mut buf = vec![0u8; op.len as usize];
            let res = if opts.serial_reads {
                r.read_at_serial(op.offset, &mut buf)
            } else {
                r.read_at(op.offset, &mut buf)
            };
            match res {
                Ok(got) => OpResult::Read { got: got as u64, crc: crc32(&buf[..got]) },
                Err(e) => ok_or_err::<()>(Err(e)),
            }
        }
        OpKind::CloseReader => {
            lane.reader = None;
            OpResult::Ok
        }
        OpKind::Stat => ok_or_err(fs.stat(&path)),
        OpKind::Unlink => ok_or_err(fs.unlink(&path)),
    }
}

/// Sleep until the op's scaled capture time (timing-faithful lanes).
fn pace(start: Instant, t0: u64, t_ns: u64, speedup: f64) {
    let target = Duration::from_nanos((t_ns.saturating_sub(t0) as f64 / speedup.max(1e-9)) as u64);
    let elapsed = start.elapsed();
    if elapsed < target {
        std::thread::sleep(target - elapsed);
    }
}

/// Replay `log` against `fs`. See the module docs for the determinism
/// model; `replay.*` counters land in the instance registry alongside
/// the `plfs.*` series the replayed ops emit.
pub fn replay(fs: &Plfs, log: &OpLog, opts: &ReplayOptions) -> io::Result<ReplayOutcome> {
    let n = log.ops.len();
    let ranks = log.ranks.max(1) as usize;
    let lanes: Vec<Mutex<Lane>> = (0..ranks).map(|_| Mutex::new(Lane::default())).collect();
    let results: Vec<Mutex<Option<OpResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let t0 = log.ops.first().map(|o| o.t_ns).unwrap_or(0);
    let epochs = split_epochs(&log.ops);
    let start = Instant::now();

    for epoch in &epochs {
        if epoch.read_side {
            // Write→read barrier: land everything written so far and
            // drop read handles whose index predates it.
            for lane in &lanes {
                let mut lane = lane.lock().unwrap();
                lane.reader = None;
                if let Some(w) = lane.writer.as_mut() {
                    let _ = w.sync();
                }
            }
        }
        match opts.mode {
            ReplayMode::Sequential => {
                for &i in &epoch.ops {
                    let op = &log.ops[i];
                    let mut lane = lanes[op.rank as usize].lock().unwrap();
                    let r = exec_op(fs, &mut lane, log, op, i, opts);
                    *results[i].lock().unwrap() = Some(r);
                }
            }
            ReplayMode::Asap | ReplayMode::TimingFaithful => {
                // One lane per rank present in the epoch, per-rank op
                // order preserved, lanes fanned out on the bounded pool.
                let timed = opts.mode == ReplayMode::TimingFaithful;
                let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); ranks];
                let mut present: Vec<usize> = Vec::new();
                for &i in &epoch.ops {
                    let r = log.ops[i].rank as usize;
                    if per_rank[r].is_empty() {
                        present.push(r);
                    }
                    per_rank[r].push(i);
                }
                let cap = pool::available_parallelism();
                let (outs, _) = pool::run_bounded(present.len(), cap, |j| {
                    let rank = present[j];
                    let mut lane = lanes[rank].lock().unwrap();
                    for &i in &per_rank[rank] {
                        let op = &log.ops[i];
                        if timed {
                            pace(start, t0, op.t_ns, opts.speedup);
                        }
                        let r = exec_op(fs, &mut lane, log, op, i, opts);
                        *results[i].lock().unwrap() = Some(r);
                    }
                });
                drop(outs);
            }
        }
    }

    // Teardown: close every writer the log left open so the final
    // container state is clean and content-hashable.
    for lane in &lanes {
        let mut lane = lane.lock().unwrap();
        lane.reader = None;
        if let Some(w) = lane.writer.take() {
            let _ = w.close();
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;

    // Assemble the replayed log and aggregate.
    let mut replayed = log.clone();
    let mut errors = 0u64;
    let mut write_bytes = 0u64;
    let mut read_bytes = 0u64;
    let mut read_mismatches = 0u64;
    for (i, slot) in results.iter().enumerate() {
        let result = slot.lock().unwrap().take().unwrap_or(OpResult::Pending);
        match &result {
            OpResult::Err(_) => errors += 1,
            OpResult::Write { .. } => write_bytes += replayed.ops[i].len,
            OpResult::Read { got, crc } => {
                read_bytes += got;
                if let OpResult::Read { got: g0, crc: c0 } = &log.ops[i].result {
                    if (g0, c0) != (got, crc) {
                        read_mismatches += 1;
                    }
                }
            }
            _ => {}
        }
        replayed.ops[i].result = result;
    }
    let delivered_hash = replayed.delivered_hash();
    let content = content_hash(fs, log)?;

    let reg = &fs.config().metrics;
    reg.counter("replay.ops").add(n as u64);
    reg.counter("replay.errors").add(errors);
    reg.counter("replay.epochs").add(epochs.len() as u64);
    reg.counter("replay.write_bytes").add(write_bytes);
    reg.counter("replay.read_bytes").add(read_bytes);
    reg.counter("replay.read_mismatches").add(read_mismatches);
    reg.counter("replay.wall_ns").add(wall_ns);

    Ok(ReplayOutcome {
        ops: n as u64,
        errors,
        epochs: epochs.len() as u64,
        write_bytes,
        read_bytes,
        read_mismatches,
        delivered_hash,
        content_hash: content,
        wall_ns,
        log: replayed,
    })
}

/// Digest of the final logical contents of every file the log touches,
/// read back through a fresh, uninstrumented, capture-free instance on
/// the same backend (so the walk perturbs neither metrics nor any
/// active capture). Missing files fold a distinct marker — unlinked
/// and never-created states are distinguishable from empty.
pub fn content_hash(fs: &Plfs, log: &OpLog) -> io::Result<u64> {
    let clean = Plfs::new(
        Arc::clone(fs.backend()) as Arc<dyn Backend>,
        PlfsConfig { hostdirs: fs.config().hostdirs, ..Default::default() },
    );
    let mut h = DELIVERED_HASH_SEED ^ 0x636f_6e74; // "cont"
    let files: Vec<String> = match log.shape {
        Shape::N1 => vec![log.file.clone()],
        Shape::NN => (0..log.ranks).map(|r| path_for(log, r)).collect(),
    };
    for f in files {
        if !clean.exists(&f) {
            h = fold_delivered(h, u64::MAX, 0);
            continue;
        }
        let r = clean.open_reader(&f)?;
        h = fold_delivered(h, r.size(), 0);
        r.for_each_chunk(|_, chunk| {
            h = fold_delivered(h, chunk.len() as u64, crc32(chunk));
            Ok(())
        })?;
    }
    Ok(h)
}

/// Differential replay: one log, two engine configurations.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    pub a: ReplayOutcome,
    pub b: ReplayOutcome,
}

impl DiffOutcome {
    /// Both runs delivered byte-identical data to every read.
    pub fn delivered_match(&self) -> bool {
        self.a.delivered_hash == self.b.delivered_hash
    }

    /// Both runs left byte-identical logical file contents.
    pub fn content_match(&self) -> bool {
        self.a.content_hash == self.b.content_hash
    }

    /// Workload-shape invariants agree: same op count, same logical
    /// bytes moved, no surfaced errors on either side.
    pub fn invariants_match(&self) -> bool {
        self.a.ops == self.b.ops
            && self.a.write_bytes == self.b.write_bytes
            && self.a.read_bytes == self.b.read_bytes
            && self.a.errors == 0
            && self.b.errors == 0
    }

    /// The full byte-identity claim the harness pins.
    pub fn identical(&self) -> bool {
        self.delivered_match() && self.content_match() && self.invariants_match()
    }
}

/// Replay `log` against two engine configurations (instance + replay
/// options each) and report whether observable behaviour matched. The
/// two instances must be backed by *different* stores (each replay
/// builds its own container state).
pub fn differential(
    log: &OpLog,
    a: &Plfs,
    opts_a: &ReplayOptions,
    b: &Plfs,
    opts_b: &ReplayOptions,
) -> io::Result<DiffOutcome> {
    let ra = replay(a, log, opts_a)?;
    let rb = replay(b, log, opts_b)?;
    Ok(DiffOutcome { a: ra, b: rb })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use workloads::gen::{generate, GenConfig, Scenario};
    use workloads::sample::{ArrivalDist, SizeDist};

    fn mem_fs() -> Plfs {
        Plfs::new(
            Arc::new(MemBackend::new()) as Arc<dyn Backend>,
            PlfsConfig { hostdirs: 4, ..Default::default() },
        )
    }

    fn small_cfg() -> GenConfig {
        GenConfig {
            ranks: 3,
            ops_per_rank: 4,
            size: SizeDist::Uniform { min: 100, max: 2000 },
            arrival: ArrivalDist::Immediate,
            seed: 5,
        }
    }

    #[test]
    fn all_modes_agree_on_bytes() {
        let log = generate(Scenario::N1Strided, &small_cfg());
        let mut hashes = Vec::new();
        for mode in [ReplayMode::Sequential, ReplayMode::Asap, ReplayMode::TimingFaithful] {
            let fs = mem_fs();
            let opts = ReplayOptions { mode, speedup: 1e9, ..Default::default() };
            let out = replay(&fs, &log, &opts).unwrap();
            assert_eq!(out.errors, 0, "{mode:?}");
            hashes.push((out.delivered_hash, out.content_hash));
        }
        assert_eq!(hashes[0], hashes[1], "sequential vs asap");
        assert_eq!(hashes[1], hashes[2], "asap vs timing-faithful");
    }

    #[test]
    fn replayed_log_is_replayable_and_stable() {
        let log = generate(Scenario::Mixed, &small_cfg());
        let first = replay(&mem_fs(), &log, &ReplayOptions::default()).unwrap();
        // Replaying the *replayed* log (now carrying recorded read
        // results) reproduces the same outcomes with zero mismatches.
        let second = replay(&mem_fs(), &first.log, &ReplayOptions::default()).unwrap();
        assert_eq!(second.read_mismatches, 0);
        assert_eq!(second.delivered_hash, first.delivered_hash);
        assert_eq!(second.content_hash, first.content_hash);
    }

    #[test]
    fn sequential_is_the_reference_for_every_scenario() {
        for sc in workloads::gen::SCENARIOS.iter().map(|(_, s)| *s) {
            let log = generate(sc, &small_cfg());
            let seq = replay(
                &mem_fs(),
                &log,
                &ReplayOptions { mode: ReplayMode::Sequential, ..Default::default() },
            )
            .unwrap();
            let par = replay(&mem_fs(), &log, &ReplayOptions::default()).unwrap();
            assert_eq!(seq.delivered_hash, par.delivered_hash, "{sc:?} delivered");
            assert_eq!(seq.content_hash, par.content_hash, "{sc:?} content");
            assert_eq!(seq.errors, 0, "{sc:?}");
        }
    }

    #[test]
    fn differential_engine_vs_oracle_is_identical() {
        let log = generate(Scenario::ReadHeavyRestart, &small_cfg());
        let a = mem_fs();
        let b = mem_fs();
        let diff = differential(
            &log,
            &a,
            &ReplayOptions::default(),
            &b,
            &ReplayOptions { serial_reads: true, readahead: Some(0), ..Default::default() },
        )
        .unwrap();
        assert!(diff.identical(), "coalescing engine vs serial oracle diverged");
    }

    #[test]
    fn replay_emits_metrics_into_the_instance_registry() {
        let fs = mem_fs();
        let log = generate(Scenario::NN, &small_cfg());
        let out = replay(&fs, &log, &ReplayOptions::default()).unwrap();
        let reg = &fs.config().metrics;
        assert_eq!(reg.value("replay.ops"), Some(out.ops));
        assert_eq!(reg.value("replay.write_bytes"), Some(out.write_bytes));
        assert!(reg.value("plfs.write.bytes").unwrap() > 0, "replayed ops emit plfs.* too");
    }
}
