//! Std-only CRC32 (IEEE 802.3, polynomial `0xEDB88320`) and the
//! per-block checksum sidecar format used to detect silent corruption.
//!
//! Droppings stay dense append-only logs — checksums live in a sidecar
//! file per dropping (`chk.R` covering `data.R`, `chki.R` covering
//! `index.R`): a fixed header followed by one little-endian CRC32 per
//! [`VERIFY_BLOCK`]-byte block of the covered file. Entry `k` covers
//! bytes `[k·B, min((k+1)·B, len))`, where `len` is the covered file's
//! length when its final (possibly partial) block was hashed at close.
//! Block granularity is what lets the coalescing read engine verify
//! inside a single swept backend read, and lets `scrub` walk a
//! container without decoding it.
//!
//! The writer appends sidecar entries strictly *after* the bytes they
//! cover land (data → chk, index → chki), so a crash can leave a tail
//! uncovered but never covered-and-wrong. Files without a sidecar
//! (containers written before this format, or with checksumming
//! disabled) stay readable and are reported as "uncovered" by `fsck`
//! and `scrub` — the header's version byte is the format escape hatch.

use std::io;

/// Bytes covered by one sidecar CRC entry.
pub const VERIFY_BLOCK: u64 = 4096;

/// Sidecar header layout: magic (8) + format version (1) + covered
/// block size (u32 LE) = 13 bytes, then whole `u32` LE CRC entries.
pub const CHK_HEADER_BYTES: usize = 13;

const CHK_MAGIC: &[u8; 8] = b"PLFSCHK1";
const CHK_VERSION: u8 = 1;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC32 hasher (same digest as [`crc32`] over the
/// concatenated updates). The writer keeps one of these per dropping so
/// blocks are hashed as bytes land, never by re-reading the store.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The digest so far; the hasher remains usable.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// Encode a sidecar header for `block`-byte coverage.
pub fn chk_header(block: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(CHK_HEADER_BYTES);
    v.extend_from_slice(CHK_MAGIC);
    v.push(CHK_VERSION);
    v.extend_from_slice(&block.to_le_bytes());
    v
}

/// Parse a sidecar blob into `(block size, CRC entries)`.
///
/// Trailing bytes that do not form a whole entry are ignored — a torn
/// sidecar append is a crash artifact, and the whole entries before it
/// are still valid. A short or mangled header is an error: the sidecar
/// itself rotted, and nothing in it can be trusted.
pub fn parse_chk(blob: &[u8]) -> io::Result<(u64, Vec<u32>)> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, format!("chk sidecar: {why}"));
    if blob.len() < CHK_HEADER_BYTES {
        return Err(bad("short header"));
    }
    if &blob[..8] != CHK_MAGIC {
        return Err(bad("bad magic"));
    }
    if blob[8] != CHK_VERSION {
        return Err(bad("unknown format version"));
    }
    let block = u32::from_le_bytes(blob[9..13].try_into().unwrap()) as u64;
    if block == 0 {
        return Err(bad("zero block size"));
    }
    let body = &blob[CHK_HEADER_BYTES..];
    let crcs = body.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
    Ok((block, crcs))
}

/// Incrementally hashes an append-only stream into sidecar entries.
///
/// Feed every byte that *successfully landed* (in landing order)
/// through [`ChkBuilder::absorb`]; completed-block CRCs accumulate as
/// encoded sidecar bytes in `pending` for the caller to append to the
/// sidecar file. At close, [`ChkBuilder::tail_crc`] yields the CRC of
/// the final partial block, if any.
#[derive(Debug)]
pub struct ChkBuilder {
    block: u64,
    partial: Crc32,
    partial_len: u64,
    pending: Vec<u8>,
}

impl ChkBuilder {
    pub fn new(block: u64) -> Self {
        assert!(block > 0);
        ChkBuilder { block, partial: Crc32::new(), partial_len: 0, pending: Vec::new() }
    }

    /// Hash `data` as the next bytes of the covered stream.
    pub fn absorb(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let room = (self.block - self.partial_len) as usize;
            let take = data.len().min(room);
            self.partial.update(&data[..take]);
            self.partial_len += take as u64;
            data = &data[take..];
            if self.partial_len == self.block {
                self.pending.extend_from_slice(&self.partial.finish().to_le_bytes());
                self.partial = Crc32::new();
                self.partial_len = 0;
            }
        }
    }

    /// Encoded completed-block entries accumulated since the last take.
    pub fn take_pending(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.pending)
    }

    /// CRC of the current partial block (`None` on a block boundary).
    pub fn tail_crc(&self) -> Option<u32> {
        (self.partial_len > 0).then(|| self.partial.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_ieee_check_value() {
        // The canonical CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 4096];
        data[1234] = 7;
        let clean = crc32(&data);
        for bit in 0..8 {
            data[1234] ^= 1 << bit;
            assert_ne!(crc32(&data), clean, "flip of bit {bit} undetected");
            data[1234] ^= 1 << bit;
        }
    }

    #[test]
    fn header_roundtrips_and_rejects_garbage() {
        let hdr = chk_header(4096);
        assert_eq!(hdr.len(), CHK_HEADER_BYTES);
        let (block, crcs) = parse_chk(&hdr).unwrap();
        assert_eq!(block, 4096);
        assert!(crcs.is_empty());
        assert!(parse_chk(&hdr[..5]).is_err(), "short header");
        let mut bad = hdr.clone();
        bad[0] ^= 1;
        assert!(parse_chk(&bad).is_err(), "bad magic");
        let mut vers = hdr.clone();
        vers[8] = 9;
        assert!(parse_chk(&vers).is_err(), "unknown version");
    }

    #[test]
    fn parse_tolerates_torn_entry_tail() {
        let mut blob = chk_header(512);
        blob.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        blob.extend_from_slice(&[1, 2]); // torn second entry
        let (_, crcs) = parse_chk(&blob).unwrap();
        assert_eq!(crcs, vec![0xDEAD_BEEF]);
    }

    #[test]
    fn builder_matches_per_block_hashing() {
        let block = 256u64;
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut b = ChkBuilder::new(block);
        // Absorb in awkward chunk sizes crossing block boundaries.
        for chunk in data.chunks(37) {
            b.absorb(chunk);
        }
        let pending = b.take_pending();
        let crcs: Vec<u32> =
            pending.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(crcs.len(), 3, "three completed 256-byte blocks");
        for (k, crc) in crcs.iter().enumerate() {
            assert_eq!(*crc, crc32(&data[k * 256..(k + 1) * 256]));
        }
        assert_eq!(b.tail_crc(), Some(crc32(&data[768..])), "partial tail block");
        let mut aligned = ChkBuilder::new(250);
        aligned.absorb(&data);
        assert_eq!(aligned.tail_crc(), None, "no partial block at a boundary");
    }
}
