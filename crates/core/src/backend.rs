//! Storage backends PLFS stacks on.
//!
//! PLFS is *middleware*: it reorganizes the application's I/O and hands
//! the result to an underlying file system. The original ran over PanFS,
//! Lustre, and GPFS through FUSE or MPI-IO; here the underlying store is
//! anything implementing [`Backend`] — an in-memory map for tests, a
//! real local directory ([`DirBackend`]) for actual use, or the
//! `pfs`-simulated cluster for performance experiments (see
//! `simadapter`).
//!
//! The trait is deliberately narrow: PLFS only ever *creates*,
//! *appends*, *reads*, and *lists* — the whole point of the log-structured
//! container is that the backing store never sees an overwrite or a
//! concurrent shared-file write.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A minimal flat file-store interface.
pub trait Backend: Send + Sync {
    /// Create all directories along `path`.
    fn mkdir_all(&self, path: &str) -> io::Result<()>;

    /// Create an empty file (truncating any existing one).
    fn create(&self, path: &str) -> io::Result<()>;

    /// Create an empty file *only if it does not already exist*;
    /// `Err(AlreadyExists)` if it does. This is the one compare-and-swap
    /// primitive PLFS asks of the store: concurrent openers race their
    /// session reservations through it, so real implementations should
    /// override the default with something genuinely atomic (`O_EXCL`
    /// on a POSIX store). The default is a non-atomic exists-then-create
    /// fallback, acceptable only for backends without racing clients.
    fn create_new(&self, path: &str) -> io::Result<()> {
        if self.exists(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("path already exists: {path}"),
            ));
        }
        self.create(path)
    }

    /// Append `data` to `path` (creating it if missing); returns the
    /// offset at which the data landed.
    fn append(&self, path: &str, data: &[u8]) -> io::Result<u64>;

    /// Read up to `buf.len()` bytes at `off`.
    ///
    /// Partial-read contract (POSIX `pread` semantics):
    ///
    /// - A short-but-nonzero read (`0 < got < buf.len()`) is *legal*
    ///   anywhere in the file, exactly as `pread(2)` may deliver fewer
    ///   bytes than asked for. Callers that need the buffer filled must
    ///   loop at the advanced offset (the PLFS read engine and the
    ///   default [`Backend::read_all`] do).
    /// - `Ok(0)` means EOF — true end of data at `off`, never a
    ///   transient condition. This is what lets callers distinguish
    ///   "file is shorter than the index claims" from a slow read.
    /// - A missing file is `Err(NotFound)`, never `Ok(0)`.
    ///
    /// The in-repo implementations ([`MemBackend`], [`DirBackend`]) go
    /// further and fill `buf` completely below EOF, but callers must
    /// not rely on that: any backend is free to return short.
    fn read_at(&self, path: &str, off: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Length of a file.
    fn len(&self, path: &str) -> io::Result<u64>;

    /// Names (not paths) of entries directly under `dir`.
    fn list(&self, dir: &str) -> io::Result<Vec<String>>;

    fn exists(&self, path: &str) -> bool;

    /// Remove a file.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// Remove a directory tree.
    fn remove_dir_all(&self, path: &str) -> io::Result<()>;

    /// Read a whole file. Loops on short-but-nonzero reads, so it is
    /// correct over any `read_at` honouring the partial-read contract.
    fn read_all(&self, path: &str) -> io::Result<Vec<u8>> {
        let n = self.len(path)? as usize;
        let mut buf = vec![0u8; n];
        let mut filled = 0usize;
        while filled < n {
            match self.read_at(path, filled as u64, &mut buf[filled..])? {
                0 => break,
                got => filled += got,
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }
}

fn not_found(path: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such path: {path}"))
}

/// In-memory backend for tests and fast experiments.
#[derive(Default)]
pub struct MemBackend {
    inner: Mutex<MemState>,
}

#[derive(Default)]
struct MemState {
    files: HashMap<String, Vec<u8>>,
    dirs: HashMap<String, ()>,
}

fn norm(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for comp in path.split('/').filter(|c| !c.is_empty() && *c != ".") {
        out.push('/');
        out.push_str(comp);
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

impl MemBackend {
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// Total bytes stored (test introspection).
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().unwrap().files.values().map(|v| v.len() as u64).sum()
    }

    /// Number of files stored.
    pub fn file_count(&self) -> usize {
        self.inner.lock().unwrap().files.len()
    }
}

impl Backend for MemBackend {
    fn mkdir_all(&self, path: &str) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        let p = norm(path);
        let mut acc = String::new();
        for comp in p.split('/').filter(|c| !c.is_empty()) {
            acc.push('/');
            acc.push_str(comp);
            st.dirs.insert(acc.clone(), ());
        }
        Ok(())
    }

    fn create(&self, path: &str) -> io::Result<()> {
        self.inner.lock().unwrap().files.insert(norm(path), Vec::new());
        Ok(())
    }

    // Atomic: the single state mutex makes check-and-insert one step.
    fn create_new(&self, path: &str) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        let p = norm(path);
        if st.files.contains_key(&p) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("path already exists: {path}"),
            ));
        }
        st.files.insert(p, Vec::new());
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        let mut st = self.inner.lock().unwrap();
        let f = st.files.entry(norm(path)).or_default();
        let off = f.len() as u64;
        f.extend_from_slice(data);
        Ok(off)
    }

    fn read_at(&self, path: &str, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let st = self.inner.lock().unwrap();
        let f = st.files.get(&norm(path)).ok_or_else(|| not_found(path))?;
        let off = off as usize;
        if off >= f.len() {
            return Ok(0);
        }
        let n = buf.len().min(f.len() - off);
        buf[..n].copy_from_slice(&f[off..off + n]);
        Ok(n)
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        let st = self.inner.lock().unwrap();
        st.files.get(&norm(path)).map(|f| f.len() as u64).ok_or_else(|| not_found(path))
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let st = self.inner.lock().unwrap();
        let prefix = {
            let mut p = norm(dir);
            if !p.ends_with('/') {
                p.push('/');
            }
            p
        };
        let mut names: Vec<String> = st
            .files
            .keys()
            .chain(st.dirs.keys())
            .filter_map(|k| {
                let rest = k.strip_prefix(&prefix)?;
                let first = rest.split('/').next()?;
                if first.is_empty() {
                    None
                } else {
                    Some(first.to_string())
                }
            })
            .collect();
        names.sort();
        names.dedup();
        Ok(names)
    }

    fn exists(&self, path: &str) -> bool {
        let st = self.inner.lock().unwrap();
        let p = norm(path);
        st.files.contains_key(&p) || st.dirs.contains_key(&p)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        st.files.remove(&norm(path)).map(|_| ()).ok_or_else(|| not_found(path))
    }

    fn remove_dir_all(&self, path: &str) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        let p = norm(path);
        let prefix = format!("{p}/");
        st.files.retain(|k, _| k != &p && !k.starts_with(&prefix));
        st.dirs.retain(|k, _| k != &p && !k.starts_with(&prefix));
        Ok(())
    }
}

/// A backend over a real directory on the local file system — PLFS
/// actually running as middleware, as in the original FUSE deployment.
pub struct DirBackend {
    root: PathBuf,
    /// Serializes append length-lookups with the writes themselves.
    append_lock: Mutex<()>,
}

impl DirBackend {
    pub fn new<P: AsRef<Path>>(root: P) -> io::Result<Self> {
        fs::create_dir_all(root.as_ref())?;
        Ok(DirBackend { root: root.as_ref().to_path_buf(), append_lock: Mutex::new(()) })
    }

    fn abs(&self, path: &str) -> PathBuf {
        let rel = norm(path);
        self.root.join(rel.trim_start_matches('/'))
    }
}

impl Backend for DirBackend {
    fn mkdir_all(&self, path: &str) -> io::Result<()> {
        fs::create_dir_all(self.abs(path))
    }

    fn create(&self, path: &str) -> io::Result<()> {
        fs::File::create(self.abs(path)).map(|_| ())
    }

    // Atomic via O_EXCL: the kernel arbitrates racing creators.
    fn create_new(&self, path: &str) -> io::Result<()> {
        fs::OpenOptions::new().write(true).create_new(true).open(self.abs(path)).map(|_| ())
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        let _g = self.append_lock.lock().unwrap();
        let mut f = fs::OpenOptions::new().create(true).append(true).open(self.abs(path))?;
        let off = f.seek(SeekFrom::End(0))?;
        f.write_all(data)?;
        Ok(off)
    }

    fn read_at(&self, path: &str, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let mut f = fs::File::open(self.abs(path))?;
        f.seek(SeekFrom::Start(off))?;
        // Loop until the buffer is full or EOF: `File::read` may return
        // short mid-file, but the Backend contract reserves short reads
        // for EOF alone.
        let mut total = 0;
        while total < buf.len() {
            match f.read(&mut buf[total..])? {
                0 => break,
                n => total += n,
            }
        }
        Ok(total)
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.abs(path))?.len())
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for e in fs::read_dir(self.abs(dir))? {
            names.push(e?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &str) -> bool {
        self.abs(path).exists()
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        fs::remove_file(self.abs(path))
    }

    fn remove_dir_all(&self, path: &str) -> io::Result<()> {
        fs::remove_dir_all(self.abs(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(b: &dyn Backend) {
        b.mkdir_all("/cp/hostdir.0").unwrap();
        assert!(b.exists("/cp/hostdir.0"));
        let o1 = b.append("/cp/hostdir.0/data.0", b"hello ").unwrap();
        let o2 = b.append("/cp/hostdir.0/data.0", b"world").unwrap();
        assert_eq!((o1, o2), (0, 6));
        assert_eq!(b.len("/cp/hostdir.0/data.0").unwrap(), 11);
        let mut buf = [0u8; 5];
        let n = b.read_at("/cp/hostdir.0/data.0", 6, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"world");
        // Read past EOF.
        assert_eq!(b.read_at("/cp/hostdir.0/data.0", 100, &mut buf).unwrap(), 0);
        // Listing.
        b.append("/cp/hostdir.0/index.0", b"x").unwrap();
        let names = b.list("/cp/hostdir.0").unwrap();
        assert_eq!(names, vec!["data.0".to_string(), "index.0".to_string()]);
        // Whole-file read.
        assert_eq!(b.read_all("/cp/hostdir.0/data.0").unwrap(), b"hello world");
        // Exclusive create: first wins, second sees AlreadyExists.
        b.create_new("/cp/hostdir.0/excl").unwrap();
        let err = b.create_new("/cp/hostdir.0/excl").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        // Unlike `create`, it must never truncate existing content.
        b.append("/cp/hostdir.0/excl", b"kept").unwrap();
        assert!(b.create_new("/cp/hostdir.0/excl").is_err());
        assert_eq!(b.read_all("/cp/hostdir.0/excl").unwrap(), b"kept");
        // Removal.
        b.remove("/cp/hostdir.0/index.0").unwrap();
        assert!(!b.exists("/cp/hostdir.0/index.0"));
        b.remove_dir_all("/cp").unwrap();
        assert!(!b.exists("/cp/hostdir.0/data.0"));
    }

    /// The EOF half of the `read_at` contract, plus the stronger
    /// fill-completely behaviour the in-repo backends provide:
    /// straddling reads return the exact remainder, reads at/past EOF
    /// are `Ok(0)`, missing files error.
    fn exercise_read_at_eof(b: &dyn Backend) {
        b.mkdir_all("/eof").unwrap();
        b.append("/eof/f", b"0123456789").unwrap();
        // Entirely below EOF: buffer fills completely.
        let mut buf = [0u8; 4];
        assert_eq!(b.read_at("/eof/f", 2, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"2345");
        // Straddling EOF: exactly len - off bytes.
        let mut buf = [0u8; 8];
        assert_eq!(b.read_at("/eof/f", 7, &mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"789");
        // At EOF and past EOF: Ok(0), not an error.
        assert_eq!(b.read_at("/eof/f", 10, &mut buf).unwrap(), 0);
        assert_eq!(b.read_at("/eof/f", 1000, &mut buf).unwrap(), 0);
        // Empty file: any offset reads zero bytes.
        b.create("/eof/empty").unwrap();
        assert_eq!(b.read_at("/eof/empty", 0, &mut buf).unwrap(), 0);
        // Zero-length buffer never errors.
        assert_eq!(b.read_at("/eof/f", 0, &mut []).unwrap(), 0);
        // Missing file is NotFound, never Ok(0).
        let err = b.read_at("/eof/nope", 0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        b.remove_dir_all("/eof").unwrap();
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn mem_read_at_eof_contract() {
        exercise_read_at_eof(&MemBackend::new());
    }

    #[test]
    fn dir_read_at_eof_contract() {
        let dir = std::env::temp_dir().join(format!("plfs-eof-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise_read_at_eof(&DirBackend::new(&dir).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_backend_contract() {
        let dir = std::env::temp_dir().join(format!("plfs-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = DirBackend::new(&dir).unwrap();
        exercise(&b);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_path_normalization() {
        let b = MemBackend::new();
        b.append("a//b/./c", b"x").unwrap();
        assert_eq!(b.len("/a/b/c").unwrap(), 1);
        assert!(b.exists("a/b/c"));
    }

    #[test]
    fn list_is_direct_children_only() {
        let b = MemBackend::new();
        b.append("/d/x/deep", b"1").unwrap();
        b.append("/d/y", b"2").unwrap();
        b.mkdir_all("/d/z").unwrap();
        assert_eq!(b.list("/d").unwrap(), vec!["x", "y", "z"]);
    }

    /// The CAS primitive under an actual race: of N threads calling
    /// `create_new` on the same path, exactly one may win.
    #[test]
    fn create_new_is_won_by_exactly_one_thread() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let b = Arc::new(MemBackend::new());
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let b = Arc::clone(&b);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                if b.create_new("/race/marker").is_ok() {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_appends_do_not_interleave_within_a_call() {
        use std::sync::Arc;
        let b = Arc::new(MemBackend::new());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    b.append("/f", &[t; 16]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let data = b.read_all("/f").unwrap();
        assert_eq!(data.len(), 8 * 100 * 16);
        for chunk in data.chunks(16) {
            assert!(chunk.iter().all(|&x| x == chunk[0]), "append torn");
        }
    }
}
