//! PLFS container layout.
//!
//! A PLFS "file" is secretly a directory (the *container*) on the
//! backing store. Inside it:
//!
//! ```text
//! checkpoint1/                 <- logical file name
//!   access                     <- marker: this directory is a container
//!   openhosts/                 <- one dropping per open writer session
//!   meta/                      <- per-writer summaries written on close
//!   hostdir.0/                 <- data+index droppings, spread over
//!   hostdir.1/                    subdirs to dodge directory hotspots
//!     data.<rank>              <- that rank's write log (append-only)
//!     index.<rank>             <- that rank's index log (append-only)
//! ```
//!
//! `hostdir` spreading mirrors the original PLFS: backends whose
//! directories serialize concurrent creates (most parallel file
//! systems) see the container's per-rank file creates fan out over
//! several subdirectories.

use crate::backend::Backend;
use std::io;

/// Marker file name inside every container.
pub const ACCESS: &str = "access";
/// Flattened-index cache file name (see [`crate::canonical`]).
pub const CANONICAL: &str = "canonical.index";
/// Subdirectory holding open-session droppings.
pub const OPENHOSTS: &str = "openhosts";
/// Subdirectory holding close-time metadata droppings.
pub const META: &str = "meta";
/// Subdirectory holding session-reservation markers (see
/// [`reserve_session`]). Markers are never removed — unlike
/// `openhosts/` + `meta/` counts they form a *monotone* session ledger,
/// and fsck/repair/scrub leave the directory untouched (it holds no
/// data, so there is nothing to verify or clear).
pub const EPOCHS: &str = "epochs";

/// Static naming helpers for a container rooted at `base`.
#[derive(Debug, Clone)]
pub struct ContainerPaths {
    base: String,
    hostdirs: u32,
}

impl ContainerPaths {
    pub fn new(base: &str, hostdirs: u32) -> Self {
        assert!(hostdirs > 0, "need at least one hostdir");
        ContainerPaths { base: base.trim_end_matches('/').to_string(), hostdirs }
    }

    pub fn base(&self) -> &str {
        &self.base
    }

    pub fn hostdir_count(&self) -> u32 {
        self.hostdirs
    }

    pub fn access(&self) -> String {
        format!("{}/{ACCESS}", self.base)
    }

    pub fn openhosts_dir(&self) -> String {
        format!("{}/{OPENHOSTS}", self.base)
    }

    pub fn meta_dir(&self) -> String {
        format!("{}/{META}", self.base)
    }

    pub fn epochs_dir(&self) -> String {
        format!("{}/{EPOCHS}", self.base)
    }

    /// Reservation marker for session number `n`.
    pub fn epoch_marker(&self, n: u64) -> String {
        format!("{}/e.{n}", self.epochs_dir())
    }

    pub fn hostdir(&self, rank: u32) -> String {
        format!("{}/hostdir.{}", self.base, rank % self.hostdirs)
    }

    pub fn data_dropping(&self, rank: u32) -> String {
        format!("{}/data.{rank}", self.hostdir(rank))
    }

    pub fn index_dropping(&self, rank: u32) -> String {
        format!("{}/index.{rank}", self.hostdir(rank))
    }

    /// Checksum sidecar covering the rank's data dropping (see
    /// [`crate::checksum`]). The `chk.` prefix collides with neither
    /// the `index.` scan in [`discover_droppings`] nor the `data.`
    /// scans in `fsck`, so legacy tooling skips it cleanly.
    pub fn chk_dropping(&self, rank: u32) -> String {
        format!("{}/chk.{rank}", self.hostdir(rank))
    }

    /// Checksum sidecar covering the rank's index dropping.
    pub fn index_chk_dropping(&self, rank: u32) -> String {
        format!("{}/chki.{rank}", self.hostdir(rank))
    }

    pub fn open_dropping(&self, rank: u32, session: u64) -> String {
        format!("{}/host.{rank}.{session}", self.openhosts_dir())
    }

    pub fn meta_dropping(&self, rank: u32, eof: u64, bytes: u64, max_ts: u64) -> String {
        format!("{}/{rank}.{eof}.{bytes}.{max_ts}", self.meta_dir())
    }

    /// The flattened-index cache. Lives at the container root, outside
    /// the `hostdir.*` subtrees, so [`discover_droppings`] never
    /// mistakes it for a writer's dropping.
    pub fn canonical_index(&self) -> String {
        format!("{}/{CANONICAL}", self.base)
    }
}

/// Summary parsed back out of a metadata dropping's name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaDropping {
    pub rank: u32,
    pub eof: u64,
    pub bytes: u64,
    pub max_ts: u64,
}

impl MetaDropping {
    pub fn parse(name: &str) -> Option<Self> {
        let mut it = name.split('.');
        let rank = it.next()?.parse().ok()?;
        let eof = it.next()?.parse().ok()?;
        let bytes = it.next()?.parse().ok()?;
        let max_ts = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(MetaDropping { rank, eof, bytes, max_ts })
    }
}

/// Create a fresh container (idempotent).
pub fn create_container(backend: &dyn Backend, paths: &ContainerPaths) -> io::Result<()> {
    backend.mkdir_all(paths.base())?;
    backend.mkdir_all(&paths.openhosts_dir())?;
    backend.mkdir_all(&paths.meta_dir())?;
    backend.mkdir_all(&paths.epochs_dir())?;
    for h in 0..paths.hostdir_count() {
        backend.mkdir_all(&format!("{}/hostdir.{h}", paths.base()))?;
    }
    if !backend.exists(&paths.access()) {
        backend.create(&paths.access())?;
    }
    Ok(())
}

/// Is `base` a PLFS container?
pub fn is_container(backend: &dyn Backend, base: &str) -> bool {
    backend.exists(&format!("{}/{ACCESS}", base.trim_end_matches('/')))
}

/// Enumerate `(rank, index_path, data_path)` for every writer that left
/// droppings in the container.
pub fn discover_droppings(
    backend: &dyn Backend,
    paths: &ContainerPaths,
) -> io::Result<Vec<(u32, String, String)>> {
    let mut out = Vec::new();
    for entry in backend.list(paths.base())? {
        if !entry.starts_with("hostdir.") {
            continue;
        }
        let dir = format!("{}/{entry}", paths.base());
        for name in backend.list(&dir)? {
            if let Some(rank) = name.strip_prefix("index.").and_then(|r| r.parse::<u32>().ok()) {
                out.push((rank, format!("{dir}/{name}"), format!("{dir}/data.{rank}")));
            }
        }
    }
    out.sort_by_key(|(r, _, _)| *r);
    Ok(out)
}

/// Read all metadata droppings.
pub fn read_meta(backend: &dyn Backend, paths: &ContainerPaths) -> io::Result<Vec<MetaDropping>> {
    let mut out = Vec::new();
    if let Ok(names) = backend.list(&paths.meta_dir()) {
        for n in names {
            if let Some(m) = MetaDropping::parse(&n) {
                out.push(m);
            }
        }
    }
    out.sort_by_key(|m| m.rank);
    Ok(out)
}

/// Sessions recorded so far (open droppings + meta droppings).
///
/// **Not monotone** — a crashed-then-repaired container can report a
/// lower count than it ever handed out (repair clears stale open
/// droppings), and **not atomic** — two concurrent openers can read the
/// same count. It survives only as the legacy fallback inside
/// [`epoch_watermark`] for containers written before session markers
/// existed; new-session allocation goes through [`reserve_session`].
pub fn session_count(backend: &dyn Backend, paths: &ContainerPaths) -> u64 {
    let opens = backend.list(&paths.openhosts_dir()).map(|v| v.len()).unwrap_or(0);
    let metas = backend.list(&paths.meta_dir()).map(|v| v.len()).unwrap_or(0);
    (opens + metas) as u64
}

/// Highest session number ever reserved, or `None` for a container with
/// no markers (pre-marker legacy, or never opened for write).
fn max_reserved(backend: &dyn Backend, paths: &ContainerPaths) -> Option<u64> {
    backend
        .list(&paths.epochs_dir())
        .ok()?
        .iter()
        .filter_map(|n| n.strip_prefix("e.").and_then(|s| s.parse::<u64>().ok()))
        .max()
}

/// Atomically reserve the next session number via a CAS loop over
/// persistent marker files (`epochs/e.<n>`, created with the backend's
/// exclusive-create primitive). Of any number of concurrent callers,
/// each gets a distinct session: the marker is reserved *before* the
/// caller computes its stamp-epoch floor, which is what makes minted
/// epochs disjoint — the bug the old read-then-compute
/// `session_count` path allowed.
///
/// Markers are never removed, so the ledger is monotone across
/// crash/repair cycles: a recovered container can never re-issue an
/// epoch that older droppings already stamped.
pub fn reserve_session(backend: &dyn Backend, paths: &ContainerPaths) -> io::Result<u64> {
    // Start above both the marker ledger and the legacy count, so a
    // container upgraded mid-life (droppings stamped under the old
    // scheme) still gets a fresh epoch.
    let mut next = epoch_watermark(backend, paths);
    loop {
        match backend.create_new(&paths.epoch_marker(next)) {
            Ok(()) => return Ok(next),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                // Lost the race for `next`; someone reserved it first.
                next += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One past the highest session ever reserved — the freshness stamp
/// readers compare against (see [`crate::canonical`]). Monotone: unlike
/// [`session_count`] it never moves backwards when sessions close or
/// repair clears stale open droppings. Falls back to the legacy count
/// for marker-less containers so pre-marker stores stay readable.
pub fn epoch_watermark(backend: &dyn Backend, paths: &ContainerPaths) -> u64 {
    match max_reserved(backend, paths) {
        Some(hi) => (hi + 1).max(session_count(backend, paths)),
        None => session_count(backend, paths),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn create_then_detect() {
        let b = MemBackend::new();
        let p = ContainerPaths::new("/ckpt/step1", 4);
        create_container(&b, &p).unwrap();
        assert!(is_container(&b, "/ckpt/step1"));
        assert!(!is_container(&b, "/ckpt/step2"));
        // Idempotent.
        create_container(&b, &p).unwrap();
    }

    #[test]
    fn hostdir_spreading_is_stable() {
        let p = ContainerPaths::new("/f", 4);
        assert_eq!(p.data_dropping(0), "/f/hostdir.0/data.0");
        assert_eq!(p.data_dropping(5), "/f/hostdir.1/data.5");
        assert_eq!(p.index_dropping(5), "/f/hostdir.1/index.5");
    }

    #[test]
    fn discover_finds_all_writers() {
        let b = MemBackend::new();
        let p = ContainerPaths::new("/f", 3);
        create_container(&b, &p).unwrap();
        for rank in [0u32, 1, 2, 7, 9] {
            b.append(&p.index_dropping(rank), b"i").unwrap();
            b.append(&p.data_dropping(rank), b"d").unwrap();
        }
        let found = discover_droppings(&b, &p).unwrap();
        let ranks: Vec<u32> = found.iter().map(|(r, _, _)| *r).collect();
        assert_eq!(ranks, vec![0, 1, 2, 7, 9]);
        for (rank, idx, data) in &found {
            assert!(idx.contains(&format!("index.{rank}")));
            assert!(data.contains(&format!("data.{rank}")));
        }
    }

    #[test]
    fn meta_dropping_roundtrip() {
        let m = MetaDropping::parse("12.1048576.524288.99").unwrap();
        assert_eq!(m, MetaDropping { rank: 12, eof: 1048576, bytes: 524288, max_ts: 99 });
        assert!(MetaDropping::parse("garbage").is_none());
        assert!(MetaDropping::parse("1.2.3.4.5").is_none());
    }

    #[test]
    fn session_count_tracks_opens_and_closes() {
        let b = MemBackend::new();
        let p = ContainerPaths::new("/f", 2);
        create_container(&b, &p).unwrap();
        assert_eq!(session_count(&b, &p), 0);
        b.create(&p.open_dropping(0, 0)).unwrap();
        assert_eq!(session_count(&b, &p), 1);
        b.create(&p.meta_dropping(0, 10, 10, 5)).unwrap();
        assert_eq!(session_count(&b, &p), 2);
    }

    #[test]
    fn reserve_session_is_sequential_and_monotone() {
        let b = MemBackend::new();
        let p = ContainerPaths::new("/f", 2);
        create_container(&b, &p).unwrap();
        assert_eq!(reserve_session(&b, &p).unwrap(), 0);
        assert_eq!(reserve_session(&b, &p).unwrap(), 1);
        assert_eq!(epoch_watermark(&b, &p), 2);
        // The watermark survives what `session_count` cannot: clearing
        // the open droppings (what fsck repair does after a crash).
        b.create(&p.open_dropping(0, 0)).unwrap();
        b.remove(&p.open_dropping(0, 0)).unwrap();
        assert_eq!(session_count(&b, &p), 0, "the legacy count collapsed");
        assert_eq!(epoch_watermark(&b, &p), 2, "the marker ledger did not");
        assert_eq!(reserve_session(&b, &p).unwrap(), 2);
    }

    /// Upgrade path: a container whose sessions predate markers must
    /// hand out epochs above everything the legacy count ever covered.
    #[test]
    fn reserve_session_starts_above_legacy_sessions() {
        let b = MemBackend::new();
        let p = ContainerPaths::new("/f", 2);
        create_container(&b, &p).unwrap();
        b.create(&p.meta_dropping(0, 10, 10, 5)).unwrap();
        b.create(&p.meta_dropping(1, 10, 10, 5)).unwrap();
        b.create(&p.open_dropping(2, 0)).unwrap();
        assert_eq!(epoch_watermark(&b, &p), 3, "legacy fallback");
        assert_eq!(reserve_session(&b, &p).unwrap(), 3);
        assert_eq!(epoch_watermark(&b, &p), 4);
    }

    /// The CAS under a real race: concurrent reservations must come out
    /// pairwise distinct.
    #[test]
    fn concurrent_reservations_are_disjoint() {
        use std::sync::Arc;
        let b = Arc::new(MemBackend::new());
        let p = ContainerPaths::new("/f", 2);
        create_container(b.as_ref(), &p).unwrap();
        let mut handles = Vec::new();
        for _ in 0..16 {
            let b = Arc::clone(&b);
            let p = p.clone();
            handles.push(std::thread::spawn(move || reserve_session(b.as_ref(), &p).unwrap()));
        }
        let mut got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<u64>>());
    }
}
