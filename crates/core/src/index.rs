//! The PLFS index: mapping logical file extents to log-file extents.
//!
//! Every write a rank performs appends its bytes to that rank's *data
//! dropping* and appends one fixed-size record here describing where
//! those bytes logically belong. The "impact" of the concurrent writes
//! — what the single logical file actually contains — is resolved only
//! at read time by merging every rank's index (SC09 §3).
//!
//! Two encodings are implemented:
//! - **raw**: one 48-byte record per write;
//! - **pattern-compressed**: arithmetic-progression runs (the strided
//!   N-1 checkpoint pattern) collapse into one record per run — the
//!   index-compression extension the report lists among post-PDSI PLFS
//!   work (§1.1, item 5).

use std::io;

/// Minimal little-endian write cursor (replaces the `bytes` crate so
/// the workspace builds with no external dependencies).
trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl PutLe for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Minimal little-endian read cursor over a byte slice.
struct GetLe<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> GetLe<'a> {
    fn new(data: &'a [u8]) -> Self {
        GetLe { data, pos: 0 }
    }
    #[inline]
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
}

/// One write's worth of mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Offset in the logical file.
    pub logical_offset: u64,
    /// Length of the write.
    pub length: u64,
    /// Offset within the writer's data dropping.
    pub physical_offset: u64,
    /// Which writer (rank) produced it — identifies the data dropping.
    pub writer: u32,
    /// Global write ordering stamp; larger wins on overlap.
    pub timestamp: u64,
}

/// Size of one raw record on the wire.
pub const RAW_RECORD_BYTES: usize = 8 + 8 + 8 + 4 + 8;

/// Size of one pattern record on the wire (excluding the tag byte).
pub const PATTERN_RECORD_BYTES: usize = 8 + 8 + 8 + 4 + 8 + 4 + 8;

const TAG_RAW: u8 = 1;
const TAG_PATTERN: u8 = 2;

/// A compressed run: `count` writes of `length` bytes, logical offsets
/// advancing by `logical_stride`, physical offsets advancing by
/// `length` (logs are dense), timestamps advancing by 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternEntry {
    pub logical_start: u64,
    pub length: u64,
    pub logical_stride: u64,
    pub count: u32,
    pub physical_start: u64,
    pub writer: u32,
    pub timestamp_start: u64,
}

impl PatternEntry {
    /// Expand back into raw entries.
    pub fn expand(&self) -> impl Iterator<Item = IndexEntry> + '_ {
        (0..self.count as u64).map(move |i| IndexEntry {
            logical_offset: self.logical_start + i * self.logical_stride,
            length: self.length,
            physical_offset: self.physical_start + i * self.length,
            writer: self.writer,
            timestamp: self.timestamp_start + i,
        })
    }
}

/// Encode a batch of entries, raw.
pub fn encode_raw(entries: &[IndexEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(entries.len() * (RAW_RECORD_BYTES + 1));
    for e in entries {
        buf.put_u8(TAG_RAW);
        buf.put_u64_le(e.logical_offset);
        buf.put_u64_le(e.length);
        buf.put_u64_le(e.physical_offset);
        buf.put_u32_le(e.writer);
        buf.put_u64_le(e.timestamp);
    }
    buf
}

/// Encode a batch of entries with pattern compression: maximal
/// arithmetic-progression runs become [`PatternEntry`] records.
pub fn encode_compressed(entries: &[IndexEntry]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        // Try to grow a run starting at i.
        let run = run_length(&entries[i..]);
        if run >= 3 {
            let e0 = entries[i];
            let stride = entries[i + 1].logical_offset - e0.logical_offset;
            buf.put_u8(TAG_PATTERN);
            buf.put_u64_le(e0.logical_offset);
            buf.put_u64_le(e0.length);
            buf.put_u64_le(stride);
            buf.put_u32_le(run as u32);
            buf.put_u64_le(e0.physical_offset);
            buf.put_u32_le(e0.writer);
            buf.put_u64_le(e0.timestamp);
            i += run;
        } else {
            let e = entries[i];
            buf.put_u8(TAG_RAW);
            buf.put_u64_le(e.logical_offset);
            buf.put_u64_le(e.length);
            buf.put_u64_le(e.physical_offset);
            buf.put_u32_le(e.writer);
            buf.put_u64_le(e.timestamp);
            i += 1;
        }
    }
    buf
}

/// Longest prefix of `entries` forming a compressible run.
fn run_length(entries: &[IndexEntry]) -> usize {
    if entries.len() < 2 {
        return entries.len().min(1);
    }
    let e0 = entries[0];
    let e1 = entries[1];
    if e1.length != e0.length
        || e1.writer != e0.writer
        || e1.logical_offset <= e0.logical_offset
        || e1.physical_offset != e0.physical_offset + e0.length
        || e1.timestamp != e0.timestamp + 1
    {
        return 1;
    }
    let stride = e1.logical_offset - e0.logical_offset;
    let mut n = 2;
    while n < entries.len() {
        let prev = entries[n - 1];
        let cur = entries[n];
        let fits = cur.length == e0.length
            && cur.writer == e0.writer
            && cur.logical_offset == prev.logical_offset + stride
            && cur.physical_offset == prev.physical_offset + prev.length
            && cur.timestamp == prev.timestamp + 1;
        if !fits {
            break;
        }
        n += 1;
    }
    n
}

/// Decode a dropping (either encoding) back into raw entries.
pub fn decode(data: &[u8]) -> io::Result<Vec<IndexEntry>> {
    let (entries, consumed) = decode_prefix(data);
    if consumed < data.len() {
        // Re-derive the error for the first undecodable record.
        let mut cur = GetLe::new(&data[consumed..]);
        let tag = cur.get_u8();
        if tag == TAG_RAW || tag == TAG_PATTERN {
            return Err(truncated());
        }
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad index record tag {tag}"),
        ));
    }
    Ok(entries)
}

/// Decode as many whole records as possible from the front of `data`.
///
/// Returns the decoded entries plus the number of bytes consumed by
/// complete, valid records. `consumed == data.len()` means the blob is
/// fully intact; anything less is a torn or corrupt tail (the crash
/// signature `fsck::repair` truncates away).
pub fn decode_prefix(data: &[u8]) -> (Vec<IndexEntry>, usize) {
    let mut cur = GetLe::new(data);
    let mut out = Vec::new();
    let mut good = 0usize;
    while cur.remaining() >= 1 {
        let tag = cur.get_u8();
        match tag {
            TAG_RAW => {
                if cur.remaining() < RAW_RECORD_BYTES {
                    break;
                }
                out.push(IndexEntry {
                    logical_offset: cur.get_u64_le(),
                    length: cur.get_u64_le(),
                    physical_offset: cur.get_u64_le(),
                    writer: cur.get_u32_le(),
                    timestamp: cur.get_u64_le(),
                });
            }
            TAG_PATTERN => {
                if cur.remaining() < PATTERN_RECORD_BYTES {
                    break;
                }
                let p = PatternEntry {
                    logical_start: cur.get_u64_le(),
                    length: cur.get_u64_le(),
                    logical_stride: cur.get_u64_le(),
                    count: cur.get_u32_le(),
                    physical_start: cur.get_u64_le(),
                    writer: cur.get_u32_le(),
                    timestamp_start: cur.get_u64_le(),
                };
                out.extend(p.expand());
            }
            _ => break,
        }
        good = cur.pos;
    }
    (out, good)
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated index dropping")
}

/// An extent of the assembled logical file: `[start, end)` served from
/// `writer`'s dropping at `physical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    pub start: u64,
    pub end: u64,
    pub physical: u64,
    pub writer: u32,
}

/// The merged, overlap-resolved view of a container's index: a flat
/// sorted list of disjoint extents (last-writer-wins by timestamp).
#[derive(Debug, Clone, Default)]
pub struct IndexMap {
    extents: Vec<Extent>,
    entries_seen: usize,
}

impl IndexMap {
    /// Build from entries in any order; overlaps resolved by timestamp
    /// (ties by writer id, which cannot collide for distinct writes of
    /// the same writer since their timestamps differ).
    pub fn build(mut entries: Vec<IndexEntry>) -> Self {
        let n = entries.len();
        entries.sort_by_key(|e| (e.timestamp, e.writer));
        let mut map = IndexMap { extents: Vec::with_capacity(n), entries_seen: n };
        for e in entries {
            map.insert(e);
        }
        map
    }

    /// Overlay one entry (later call wins over earlier, so callers must
    /// insert in timestamp order — `build` does).
    fn insert(&mut self, e: IndexEntry) {
        if e.length == 0 {
            return;
        }
        let (start, end) = (e.logical_offset, e.logical_offset + e.length);
        // Find the range of existing extents overlapping [start, end).
        let lo = self.extents.partition_point(|x| x.end <= start);
        let mut hi = lo;
        while hi < self.extents.len() && self.extents[hi].start < end {
            hi += 1;
        }
        let mut replacement = Vec::with_capacity(2 + 1);
        if lo < hi {
            // Possibly keep a head fragment of the first overlapped
            // extent and a tail fragment of the last.
            let first = self.extents[lo];
            if first.start < start {
                replacement.push(Extent { start: first.start, end: start, ..first });
            }
        }
        replacement.push(Extent { start, end, physical: e.physical_offset, writer: e.writer });
        if lo < hi {
            let last = self.extents[hi - 1];
            if last.end > end {
                let delta = end - last.start;
                replacement.push(Extent {
                    start: end,
                    end: last.end,
                    physical: last.physical + delta,
                    writer: last.writer,
                });
            }
        }
        self.extents.splice(lo..hi, replacement);
    }

    /// Number of raw entries merged in.
    pub fn entries_seen(&self) -> usize {
        self.entries_seen
    }

    /// Disjoint extents in logical order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Logical EOF: one past the last mapped byte (0 if empty).
    pub fn eof(&self) -> u64 {
        self.extents.last().map(|e| e.end).unwrap_or(0)
    }

    /// Resolve `[offset, offset+len)` into `(logical_start, extent)`
    /// pieces plus implicit holes. Pieces are returned in logical
    /// order; holes are represented by `None` extents.
    pub fn lookup(&self, offset: u64, len: u64) -> Vec<(u64, u64, Option<Extent>)> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let end = offset + len;
        let mut pos = offset;
        let mut i = self.extents.partition_point(|x| x.end <= offset);
        while pos < end {
            if i >= self.extents.len() || self.extents[i].start >= end {
                out.push((pos, end - pos, None));
                break;
            }
            let x = self.extents[i];
            if x.start > pos {
                out.push((pos, x.start - pos, None));
                pos = x.start;
            }
            let take_end = x.end.min(end);
            let delta = pos - x.start;
            out.push((
                pos,
                take_end - pos,
                Some(Extent {
                    start: pos,
                    end: take_end,
                    physical: x.physical + delta,
                    writer: x.writer,
                }),
            ));
            pos = take_end;
            i += 1;
        }
        out
    }

    /// Self-check: extents sorted, disjoint, non-empty.
    pub fn check_invariants(&self) {
        for w in self.extents.windows(2) {
            assert!(w[0].start < w[0].end, "empty extent");
            assert!(w[0].end <= w[1].start, "overlapping extents");
        }
        if let Some(last) = self.extents.last() {
            assert!(last.start < last.end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(lo: u64, len: u64, phys: u64, writer: u32, ts: u64) -> IndexEntry {
        IndexEntry { logical_offset: lo, length: len, physical_offset: phys, writer, timestamp: ts }
    }

    #[test]
    fn raw_roundtrip() {
        let entries = vec![e(0, 10, 0, 0, 1), e(10, 20, 10, 1, 2), e(5, 5, 30, 2, 3)];
        let enc = encode_raw(&entries);
        assert_eq!(decode(&enc).unwrap(), entries);
    }

    #[test]
    fn compressed_roundtrip_strided() {
        // Classic N-1 strided pattern from one rank.
        let entries: Vec<_> =
            (0..100).map(|i| e(i * 4096 * 8, 4096, i * 4096, 3, 100 + i)).collect();
        let enc = encode_compressed(&entries);
        assert_eq!(decode(&enc).unwrap(), entries);
        // One pattern record instead of 100 raw: big compression.
        let raw = encode_raw(&entries);
        assert!(enc.len() * 10 < raw.len(), "compressed {} vs raw {}", enc.len(), raw.len());
    }

    #[test]
    fn compressed_handles_irregular_tail() {
        let mut entries: Vec<_> = (0..10).map(|i| e(i * 100, 10, i * 10, 0, i)).collect();
        entries.push(e(5000, 7, 100, 0, 50));
        entries.push(e(6000, 9, 107, 1, 51));
        let enc = encode_compressed(&entries);
        assert_eq!(decode(&enc).unwrap(), entries);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[9, 9, 9]).is_err());
        let good = encode_raw(&[e(0, 1, 0, 0, 0)]);
        assert!(decode(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn map_non_overlapping() {
        let m = IndexMap::build(vec![e(0, 10, 0, 0, 1), e(20, 10, 10, 1, 2)]);
        m.check_invariants();
        assert_eq!(m.eof(), 30);
        assert_eq!(m.extents().len(), 2);
    }

    #[test]
    fn later_write_wins_overlap() {
        let m = IndexMap::build(vec![e(0, 100, 0, 0, 1), e(25, 50, 0, 1, 2)]);
        m.check_invariants();
        let x = m.extents();
        assert_eq!(x.len(), 3);
        assert_eq!((x[0].start, x[0].end, x[0].writer), (0, 25, 0));
        assert_eq!((x[1].start, x[1].end, x[1].writer), (25, 75, 1));
        assert_eq!((x[2].start, x[2].end, x[2].writer), (75, 100, 0));
        // Tail fragment physical offset advanced by the cut.
        assert_eq!(x[2].physical, 75);
    }

    #[test]
    fn earlier_write_loses_even_if_inserted_later() {
        // build() sorts by timestamp, so insertion order must not matter.
        let m1 = IndexMap::build(vec![e(0, 100, 0, 0, 2), e(25, 50, 0, 1, 1)]);
        let m2 = IndexMap::build(vec![e(25, 50, 0, 1, 1), e(0, 100, 0, 0, 2)]);
        assert_eq!(m1.extents(), m2.extents());
        assert_eq!(m1.extents().len(), 1);
        assert_eq!(m1.extents()[0].writer, 0);
    }

    #[test]
    fn lookup_with_holes() {
        let m = IndexMap::build(vec![e(10, 10, 0, 0, 1), e(30, 10, 10, 0, 2)]);
        let pieces = m.lookup(0, 50);
        // hole [0,10), data [10,20), hole [20,30), data [30,40), hole [40,50)
        assert_eq!(pieces.len(), 5);
        assert!(pieces[0].2.is_none());
        assert_eq!(pieces[1].2.unwrap().physical, 0);
        assert!(pieces[2].2.is_none());
        assert_eq!(pieces[3].2.unwrap().physical, 10);
        assert!(pieces[4].2.is_none());
        let total: u64 = pieces.iter().map(|p| p.1).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn lookup_mid_extent_adjusts_physical() {
        let m = IndexMap::build(vec![e(0, 100, 1000, 7, 1)]);
        let pieces = m.lookup(40, 20);
        assert_eq!(pieces.len(), 1);
        let x = pieces[0].2.unwrap();
        assert_eq!(x.physical, 1040);
        assert_eq!(pieces[0].1, 20);
    }

    #[test]
    fn strided_interleaving_resolves_fully() {
        // 4 ranks, strided 1 KiB records: rank r writes records r, r+4, ...
        let mut entries = Vec::new();
        for rec in 0..64u64 {
            let rank = (rec % 4) as u32;
            let phys = (rec / 4) * 1024;
            entries.push(e(rec * 1024, 1024, phys, rank, rec));
        }
        let m = IndexMap::build(entries);
        m.check_invariants();
        assert_eq!(m.eof(), 64 * 1024);
        // Fully covered: single lookup has no holes.
        let pieces = m.lookup(0, 64 * 1024);
        assert!(pieces.iter().all(|p| p.2.is_some()));
    }
}
