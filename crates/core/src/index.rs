//! The PLFS index: mapping logical file extents to log-file extents.
//!
//! Every write a rank performs appends its bytes to that rank's *data
//! dropping* and appends one fixed-size record here describing where
//! those bytes logically belong. The "impact" of the concurrent writes
//! — what the single logical file actually contains — is resolved only
//! at read time by merging every rank's index (SC09 §3).
//!
//! Two encodings are implemented:
//! - **raw**: one fixed-size record per write;
//! - **pattern-compressed**: arithmetic-progression runs (the strided
//!   N-1 checkpoint pattern) collapse into one record per run — the
//!   index-compression extension the report lists among post-PDSI PLFS
//!   work (§1.1, item 5).
//!
//! Since the integrity work, records are *framed with a checksum*: the
//! encoder emits tags [`3`](TAG_RAW_C)/[`4`](TAG_PATTERN_C), whose body
//! is followed by a CRC32 of the tag byte plus body. The decoder still
//! accepts the legacy unchecksummed tags `1`/`2`, so containers written
//! before this format stay readable (they are merely reported as
//! "uncovered" by `fsck`); a checksum mismatch decodes as a corrupt
//! record, exactly like a bad tag — detected at open on the cold path,
//! or by `fsck::scrub` on warm (canonical-cache) opens.
//!
//! Merging is a sweep-line over write boundaries: O(n log n) in the
//! number of entries regardless of how pathologically they interleave.
//! The old splice-into-a-`Vec` algorithm ([`IndexMap::build_splice_baseline`])
//! is kept as a correctness oracle and cost baseline; both charge their
//! work to a logical step counter ([`IndexMap::merge_steps`]) so the
//! speedup is assertable without wall clocks.

use std::collections::{BTreeMap, BinaryHeap};
use std::io;

/// Minimal little-endian write cursor (replaces the `bytes` crate so
/// the workspace builds with no external dependencies).
pub(crate) trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl PutLe for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Minimal little-endian read cursor over a byte slice.
pub(crate) struct GetLe<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> GetLe<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        GetLe { data, pos: 0 }
    }
    #[inline]
    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    /// The unread tail of the slice.
    #[inline]
    pub(crate) fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }
    #[inline]
    pub(crate) fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }
    #[inline]
    pub(crate) fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }
    #[inline]
    pub(crate) fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
}

/// One write's worth of mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Offset in the logical file.
    pub logical_offset: u64,
    /// Length of the write.
    pub length: u64,
    /// Offset within the writer's data dropping.
    pub physical_offset: u64,
    /// Which writer (rank) produced it — identifies the data dropping.
    pub writer: u32,
    /// Global write ordering stamp; larger wins on overlap.
    pub timestamp: u64,
}

/// Size of one raw record body on the wire (excluding tag and CRC).
pub const RAW_RECORD_BYTES: usize = 8 + 8 + 8 + 4 + 8;

/// Size of one pattern record body on the wire (excluding tag and CRC).
pub const PATTERN_RECORD_BYTES: usize = 8 + 8 + 8 + 4 + 8 + 4 + 8;

/// Trailing CRC32 on every checksummed record.
pub const RECORD_CRC_BYTES: usize = 4;

/// Legacy unchecksummed tags — decoded, never emitted.
const TAG_RAW: u8 = 1;
const TAG_PATTERN: u8 = 2;
/// Checksummed framing: tag + body + CRC32(tag ‖ body).
const TAG_RAW_C: u8 = 3;
const TAG_PATTERN_C: u8 = 4;

/// A compressed run: `count` writes of `length` bytes, logical offsets
/// advancing by `logical_stride` (which may be negative — a rank
/// walking its region backwards), physical offsets advancing by
/// `length` (logs are dense), timestamps advancing by 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternEntry {
    pub logical_start: u64,
    pub length: u64,
    pub logical_stride: i64,
    pub count: u32,
    pub physical_start: u64,
    pub writer: u32,
    pub timestamp_start: u64,
}

impl PatternEntry {
    /// Expand back into raw entries. Callers must only expand patterns
    /// that pass [`pattern_in_range`] (decode does); arithmetic here is
    /// unchecked.
    pub fn expand(&self) -> impl Iterator<Item = IndexEntry> + '_ {
        (0..self.count as u64).map(move |i| IndexEntry {
            logical_offset: (self.logical_start as i128 + i as i128 * self.logical_stride as i128)
                as u64,
            length: self.length,
            physical_offset: self.physical_start + i * self.length,
            writer: self.writer,
            timestamp: self.timestamp_start + i,
        })
    }
}

/// Does every extent the entry describes fit in u64 space?
fn entry_in_range(e: &IndexEntry) -> bool {
    e.logical_offset.checked_add(e.length).is_some()
        && e.physical_offset.checked_add(e.length).is_some()
}

/// Does every extent the pattern expands to fit in u64 space?
fn pattern_in_range(p: &PatternEntry) -> bool {
    if p.count == 0 {
        return false;
    }
    let n1 = (p.count - 1) as i128;
    let first = p.logical_start as i128;
    let last = first + n1 * p.logical_stride as i128;
    let len = p.length as i128;
    let max = u64::MAX as i128;
    if last < 0 || last + len > max || first + len > max {
        return false;
    }
    if p.physical_start as i128 + n1 * len + len > max {
        return false;
    }
    p.timestamp_start.checked_add(n1 as u64).is_some()
}

/// Append `CRC32(tag ‖ body)` for the record that started at `start`.
fn seal_record(buf: &mut Vec<u8>, start: usize) {
    let crc = crate::checksum::crc32(&buf[start..]);
    buf.put_u32_le(crc);
}

/// Encode a batch of entries, raw.
pub fn encode_raw(entries: &[IndexEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(entries.len() * (RAW_RECORD_BYTES + 1 + RECORD_CRC_BYTES));
    for e in entries {
        let start = buf.len();
        buf.put_u8(TAG_RAW_C);
        buf.put_u64_le(e.logical_offset);
        buf.put_u64_le(e.length);
        buf.put_u64_le(e.physical_offset);
        buf.put_u32_le(e.writer);
        buf.put_u64_le(e.timestamp);
        seal_record(&mut buf, start);
    }
    buf
}

/// Encode a batch of entries with pattern compression: maximal
/// arithmetic-progression runs become [`PatternEntry`] records.
pub fn encode_compressed(entries: &[IndexEntry]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        // Try to grow a run starting at i.
        let run = run_length(&entries[i..]);
        if run >= 3 {
            let e0 = entries[i];
            let stride = (entries[i + 1].logical_offset as i128 - e0.logical_offset as i128) as i64;
            let start = buf.len();
            buf.put_u8(TAG_PATTERN_C);
            buf.put_u64_le(e0.logical_offset);
            buf.put_u64_le(e0.length);
            buf.put_u64_le(stride as u64);
            buf.put_u32_le(run as u32);
            buf.put_u64_le(e0.physical_offset);
            buf.put_u32_le(e0.writer);
            buf.put_u64_le(e0.timestamp);
            seal_record(&mut buf, start);
            i += run;
        } else {
            let e = entries[i];
            let start = buf.len();
            buf.put_u8(TAG_RAW_C);
            buf.put_u64_le(e.logical_offset);
            buf.put_u64_le(e.length);
            buf.put_u64_le(e.physical_offset);
            buf.put_u32_le(e.writer);
            buf.put_u64_le(e.timestamp);
            seal_record(&mut buf, start);
            i += 1;
        }
    }
    buf
}

/// Longest prefix of `entries` forming a compressible run. The logical
/// stride may be negative (reverse-strided checkpoints compress too)
/// but not zero, and must fit an i64.
fn run_length(entries: &[IndexEntry]) -> usize {
    if entries.len() < 2 {
        return entries.len().min(1);
    }
    let e0 = entries[0];
    let e1 = entries[1];
    let stride = e1.logical_offset as i128 - e0.logical_offset as i128;
    if e1.length != e0.length
        || e1.writer != e0.writer
        || stride == 0
        || i64::try_from(stride).is_err()
        || e1.physical_offset != e0.physical_offset + e0.length
        || e1.timestamp != e0.timestamp + 1
    {
        return 1;
    }
    let mut n = 2;
    while n < entries.len() {
        let prev = entries[n - 1];
        let cur = entries[n];
        let fits = cur.length == e0.length
            && cur.writer == e0.writer
            && cur.logical_offset as i128 == prev.logical_offset as i128 + stride
            && cur.physical_offset == prev.physical_offset + prev.length
            && cur.timestamp == prev.timestamp + 1;
        if !fits {
            break;
        }
        n += 1;
    }
    n
}

/// Why one record failed to decode.
enum RecordError {
    /// Tag seen but the record body is cut short.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Well-formed on the wire but describes extents outside u64 space
    /// (a corrupt dropping; accepting it would poison the merge).
    Invalid(&'static str),
}

/// Decode one record, appending its entries to `out`. On error the
/// cursor position is unspecified; callers rewind to their last good
/// offset.
fn decode_record(cur: &mut GetLe, out: &mut Vec<IndexEntry>) -> Result<(), RecordError> {
    let start = cur.pos;
    let tag = cur.get_u8();
    // Checksummed tags: verify CRC32(tag ‖ body) before parsing the
    // body, so a corrupt record can never parse into plausible entries.
    let check_crc = |cur: &mut GetLe, body: usize| -> Result<(), RecordError> {
        if cur.remaining() < body + RECORD_CRC_BYTES {
            return Err(RecordError::Truncated);
        }
        let stored = u32::from_le_bytes(
            cur.data[start + 1 + body..start + 1 + body + RECORD_CRC_BYTES].try_into().unwrap(),
        );
        if crate::checksum::crc32(&cur.data[start..start + 1 + body]) != stored {
            return Err(RecordError::Invalid("index record checksum mismatch"));
        }
        Ok(())
    };
    match tag {
        TAG_RAW_C => {
            check_crc(cur, RAW_RECORD_BYTES)?;
            let e = IndexEntry {
                logical_offset: cur.get_u64_le(),
                length: cur.get_u64_le(),
                physical_offset: cur.get_u64_le(),
                writer: cur.get_u32_le(),
                timestamp: cur.get_u64_le(),
            };
            cur.pos += RECORD_CRC_BYTES;
            if !entry_in_range(&e) {
                return Err(RecordError::Invalid("entry extent overflows u64"));
            }
            out.push(e);
            Ok(())
        }
        TAG_PATTERN_C => {
            check_crc(cur, PATTERN_RECORD_BYTES)?;
            let p = PatternEntry {
                logical_start: cur.get_u64_le(),
                length: cur.get_u64_le(),
                logical_stride: cur.get_u64_le() as i64,
                count: cur.get_u32_le(),
                physical_start: cur.get_u64_le(),
                writer: cur.get_u32_le(),
                timestamp_start: cur.get_u64_le(),
            };
            cur.pos += RECORD_CRC_BYTES;
            if !pattern_in_range(&p) {
                return Err(RecordError::Invalid("pattern extent overflows u64"));
            }
            out.extend(p.expand());
            Ok(())
        }
        TAG_RAW => {
            if cur.remaining() < RAW_RECORD_BYTES {
                return Err(RecordError::Truncated);
            }
            let e = IndexEntry {
                logical_offset: cur.get_u64_le(),
                length: cur.get_u64_le(),
                physical_offset: cur.get_u64_le(),
                writer: cur.get_u32_le(),
                timestamp: cur.get_u64_le(),
            };
            if !entry_in_range(&e) {
                return Err(RecordError::Invalid("entry extent overflows u64"));
            }
            out.push(e);
            Ok(())
        }
        TAG_PATTERN => {
            if cur.remaining() < PATTERN_RECORD_BYTES {
                return Err(RecordError::Truncated);
            }
            let p = PatternEntry {
                logical_start: cur.get_u64_le(),
                length: cur.get_u64_le(),
                logical_stride: cur.get_u64_le() as i64,
                count: cur.get_u32_le(),
                physical_start: cur.get_u64_le(),
                writer: cur.get_u32_le(),
                timestamp_start: cur.get_u64_le(),
            };
            if !pattern_in_range(&p) {
                return Err(RecordError::Invalid("pattern extent overflows u64"));
            }
            out.extend(p.expand());
            Ok(())
        }
        t => Err(RecordError::BadTag(t)),
    }
}

/// Decode a dropping (either encoding) back into raw entries.
pub fn decode(data: &[u8]) -> io::Result<Vec<IndexEntry>> {
    let (entries, consumed) = decode_prefix(data);
    if consumed < data.len() {
        // Re-derive the error for the first undecodable record.
        let mut cur = GetLe::new(&data[consumed..]);
        let mut scratch = Vec::new();
        return match decode_record(&mut cur, &mut scratch) {
            Err(RecordError::Truncated) => Err(truncated()),
            Err(RecordError::BadTag(tag)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad index record tag {tag}"),
            )),
            Err(RecordError::Invalid(why)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid index record: {why}"),
            )),
            Ok(()) => unreachable!("decode_prefix stopped at a decodable record"),
        };
    }
    Ok(entries)
}

/// Decode as many whole records as possible from the front of `data`.
///
/// Returns the decoded entries plus the number of bytes consumed by
/// complete, valid records. `consumed == data.len()` means the blob is
/// fully intact; anything less is a torn or corrupt tail (the crash
/// signature `fsck::repair` truncates away). Records whose extents
/// overflow u64 space count as corrupt.
pub fn decode_prefix(data: &[u8]) -> (Vec<IndexEntry>, usize) {
    let mut cur = GetLe::new(data);
    let mut out = Vec::new();
    let mut good = 0usize;
    while cur.remaining() >= 1 {
        let kept = out.len();
        if decode_record(&mut cur, &mut out).is_err() {
            out.truncate(kept);
            break;
        }
        good = cur.pos;
    }
    (out, good)
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated index dropping")
}

/// An extent of the assembled logical file: `[start, end)` served from
/// `writer`'s dropping at `physical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    pub start: u64,
    pub end: u64,
    pub physical: u64,
    pub writer: u32,
}

/// Charged for one binary search / heap operation over `len` elements —
/// the shared logical cost unit of both merge implementations.
#[inline]
fn search_cost(len: usize) -> u64 {
    (usize::BITS - len.leading_zeros()) as u64 + 1
}

/// Result of the sweep-line merge: disjoint fragments in logical order,
/// each keeping its source entry's writer/physical/timestamp, plus the
/// logical steps charged.
pub(crate) struct MergedFragments {
    pub frags: Vec<IndexEntry>,
    pub steps: u64,
}

/// O(n log n) last-writer-wins merge.
///
/// Sort boundary events by offset; at each boundary segment the live
/// entry with the greatest `(timestamp, writer)` wins (a lazy-deletion
/// max-heap keyed by post-sort position); adjacent segments won by the
/// same entry coalesce. Produces exactly the extents the old
/// splice-based insertion produced, in one pass.
pub(crate) fn sweep_merge(mut entries: Vec<IndexEntry>) -> MergedFragments {
    entries.retain(|e| e.length > 0);
    let n = entries.len();
    let mut steps = 0u64;

    // Fast path: already disjoint and sorted — e.g. a flattened
    // canonical index being reloaded. One linear scan, no sort.
    if entries.windows(2).all(|w| w[0].logical_offset + w[0].length <= w[1].logical_offset) {
        steps += n as u64;
        return MergedFragments { frags: entries, steps };
    }

    // Win priority = position after a stable sort by (timestamp,
    // writer): identical to the order the splice algorithm inserted in.
    entries.sort_by_key(|e| (e.timestamp, e.writer));
    steps += n as u64 * search_cost(n);

    let mut bounds: Vec<u64> = Vec::with_capacity(2 * n);
    for e in &entries {
        bounds.push(e.logical_offset);
        bounds.push(e.logical_offset + e.length);
    }
    bounds.sort_unstable();
    bounds.dedup();
    steps += bounds.len() as u64 * search_cost(bounds.len());

    // Admission order: entries by start offset.
    let mut by_start: Vec<u32> = (0..n as u32).collect();
    by_start.sort_by_key(|&i| entries[i as usize].logical_offset);
    steps += n as u64 * search_cost(n);

    let mut heap: BinaryHeap<u32> = BinaryHeap::new();
    let mut next = 0usize;
    let mut frags: Vec<IndexEntry> = Vec::new();
    let mut prev_src: Option<u32> = None;
    for win in bounds.windows(2) {
        let (lo, hi) = (win[0], win[1]);
        while next < n && entries[by_start[next] as usize].logical_offset == lo {
            heap.push(by_start[next]);
            next += 1;
            steps += search_cost(heap.len());
        }
        // Lazily expire entries that ended at or before this boundary.
        while let Some(&top) = heap.peek() {
            let e = &entries[top as usize];
            if e.logical_offset + e.length <= lo {
                heap.pop();
                steps += search_cost(heap.len() + 1);
            } else {
                break;
            }
        }
        steps += 1;
        let Some(&top) = heap.peek() else {
            prev_src = None;
            continue;
        };
        let e = entries[top as usize];
        let off = lo - e.logical_offset;
        if prev_src == Some(top) {
            if let Some(last) = frags.last_mut() {
                if last.logical_offset + last.length == lo {
                    last.length += hi - lo;
                    continue;
                }
            }
        }
        frags.push(IndexEntry {
            logical_offset: lo,
            length: hi - lo,
            physical_offset: e.physical_offset + off,
            writer: e.writer,
            timestamp: e.timestamp,
        });
        prev_src = Some(top);
    }
    MergedFragments { frags, steps }
}

/// The merged, overlap-resolved view of a container's index: a flat
/// sorted list of disjoint extents (last-writer-wins by timestamp).
#[derive(Debug, Clone, Default)]
pub struct IndexMap {
    extents: Vec<Extent>,
    /// Source-entry timestamp per extent (parallel to `extents`), kept
    /// so a merged map can round-trip through the flattened-index cache
    /// and later re-merge against newer entries.
    stamps: Vec<u64>,
    entries_seen: usize,
    merge_steps: u64,
}

impl IndexMap {
    /// Build from entries in any order; overlaps resolved by timestamp
    /// (ties by writer id, which cannot collide for distinct writes of
    /// the same writer since their timestamps differ). O(n log n).
    pub fn build(entries: Vec<IndexEntry>) -> Self {
        let n = entries.len();
        let merged = sweep_merge(entries);
        let mut extents = Vec::with_capacity(merged.frags.len());
        let mut stamps = Vec::with_capacity(merged.frags.len());
        for f in &merged.frags {
            extents.push(Extent {
                start: f.logical_offset,
                end: f.logical_offset + f.length,
                physical: f.physical_offset,
                writer: f.writer,
            });
            stamps.push(f.timestamp);
        }
        IndexMap { extents, stamps, entries_seen: n, merge_steps: merged.steps }
    }

    /// The original algorithm: sort by timestamp, splice each entry
    /// into a flat `Vec` — O(n²) worst case (every insert shifts the
    /// tail). Kept as the semantic oracle the sweep merge must match
    /// and as the cost baseline `repro openscale` reports against.
    pub fn build_splice_baseline(mut entries: Vec<IndexEntry>) -> Self {
        let n = entries.len();
        entries.sort_by_key(|e| (e.timestamp, e.writer));
        let mut map = IndexMap {
            extents: Vec::with_capacity(n),
            stamps: Vec::with_capacity(n),
            entries_seen: n,
            merge_steps: 0,
        };
        for e in entries {
            map.insert_splice(e);
        }
        map
    }

    /// Overlay one entry (later call wins over earlier, so callers must
    /// insert in timestamp order — `build_splice_baseline` does).
    fn insert_splice(&mut self, e: IndexEntry) {
        if e.length == 0 {
            return;
        }
        let (start, end) = (e.logical_offset, e.logical_offset + e.length);
        let len_before = self.extents.len();
        self.merge_steps += search_cost(len_before);
        // Find the range of existing extents overlapping [start, end).
        let lo = self.extents.partition_point(|x| x.end <= start);
        let mut hi = lo;
        while hi < self.extents.len() && self.extents[hi].start < end {
            hi += 1;
        }
        let mut replacement = Vec::with_capacity(2 + 1);
        let mut rep_stamps = Vec::with_capacity(2 + 1);
        if lo < hi {
            // Possibly keep a head fragment of the first overlapped
            // extent and a tail fragment of the last.
            let first = self.extents[lo];
            if first.start < start {
                replacement.push(Extent { start: first.start, end: start, ..first });
                rep_stamps.push(self.stamps[lo]);
            }
        }
        replacement.push(Extent { start, end, physical: e.physical_offset, writer: e.writer });
        rep_stamps.push(e.timestamp);
        if lo < hi {
            let last = self.extents[hi - 1];
            if last.end > end {
                let delta = end - last.start;
                replacement.push(Extent {
                    start: end,
                    end: last.end,
                    physical: last.physical + delta,
                    writer: last.writer,
                });
                rep_stamps.push(self.stamps[hi - 1]);
            }
        }
        // Splice cost: scan the overlapped range, write the
        // replacement, and shift the tail when lengths differ.
        self.merge_steps += (hi - lo) as u64 + replacement.len() as u64;
        if replacement.len() != hi - lo {
            self.merge_steps += (len_before - hi) as u64;
        }
        self.extents.splice(lo..hi, replacement);
        self.stamps.splice(lo..hi, rep_stamps);
    }

    /// Number of raw entries merged in.
    pub fn entries_seen(&self) -> usize {
        self.entries_seen
    }

    pub(crate) fn set_entries_seen(&mut self, n: usize) {
        self.entries_seen = n;
    }

    /// Logical work units the merge charged (comparisons, element
    /// moves, heap operations) — a deterministic, wall-clock-free cost.
    pub fn merge_steps(&self) -> u64 {
        self.merge_steps
    }

    /// Disjoint extents in logical order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// The merged map re-expressed as disjoint `IndexEntry` fragments
    /// (original timestamps preserved) — the payload of the
    /// flattened-index cache.
    pub fn fragments(&self) -> Vec<IndexEntry> {
        self.extents
            .iter()
            .zip(&self.stamps)
            .map(|(x, &ts)| IndexEntry {
                logical_offset: x.start,
                length: x.end - x.start,
                physical_offset: x.physical,
                writer: x.writer,
                timestamp: ts,
            })
            .collect()
    }

    /// Logical EOF: one past the last mapped byte (0 if empty).
    pub fn eof(&self) -> u64 {
        self.extents.last().map(|e| e.end).unwrap_or(0)
    }

    /// Resolve `[offset, offset+len)` into `(logical_start, extent)`
    /// pieces plus implicit holes. Pieces are returned in logical
    /// order; holes are represented by `None` extents.
    pub fn lookup(&self, offset: u64, len: u64) -> Vec<(u64, u64, Option<Extent>)> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let end = offset + len;
        let mut pos = offset;
        let mut i = self.extents.partition_point(|x| x.end <= offset);
        while pos < end {
            if i >= self.extents.len() || self.extents[i].start >= end {
                out.push((pos, end - pos, None));
                break;
            }
            let x = self.extents[i];
            if x.start > pos {
                out.push((pos, x.start - pos, None));
                pos = x.start;
            }
            let take_end = x.end.min(end);
            let delta = pos - x.start;
            out.push((
                pos,
                take_end - pos,
                Some(Extent {
                    start: pos,
                    end: take_end,
                    physical: x.physical + delta,
                    writer: x.writer,
                }),
            ));
            pos = take_end;
            i += 1;
        }
        out
    }

    /// Self-check: extents sorted, disjoint, non-empty.
    pub fn check_invariants(&self) {
        assert_eq!(self.extents.len(), self.stamps.len(), "stamp per extent");
        for w in self.extents.windows(2) {
            assert!(w[0].start < w[0].end, "empty extent");
            assert!(w[0].end <= w[1].start, "overlapping extents");
        }
        if let Some(last) = self.extents.last() {
            assert!(last.start < last.end);
        }
    }
}

/// Exact logical cost of [`IndexMap::build_splice_baseline`] on these
/// entries, computed in O(n log n) — a "ghost" run of the splice
/// algorithm that charges every step it *would* take without moving
/// gigabytes of extents. At the scales `repro openscale` sweeps, the
/// real baseline would shift ~10¹¹ elements; this simulation tracks
/// extent geometry in a BTreeMap plus a Fenwick tree over
/// coordinate-compressed boundaries and charges the identical formula
/// (`insert_splice`): one binary search over the live map, the
/// overlapped-range scan, the replacement write, and the tail shift.
pub fn splice_merge_cost(entries: &[IndexEntry]) -> u64 {
    struct Fenwick {
        t: Vec<i64>,
    }
    impl Fenwick {
        fn new(n: usize) -> Self {
            Fenwick { t: vec![0; n + 1] }
        }
        fn add(&mut self, i: usize, d: i64) {
            let mut i = i + 1;
            while i < self.t.len() {
                self.t[i] += d;
                i += i & i.wrapping_neg();
            }
        }
        /// Count of inserted positions with coordinate index < `i`.
        fn prefix(&self, mut i: usize) -> u64 {
            let mut s = 0i64;
            while i > 0 {
                s += self.t[i];
                i -= i & i.wrapping_neg();
            }
            s as u64
        }
    }

    let mut sorted: Vec<IndexEntry> = entries.iter().copied().filter(|e| e.length > 0).collect();
    sorted.sort_by_key(|e| (e.timestamp, e.writer));

    // Every extent start the ghost map can ever hold is an entry start
    // or an entry end (head fragments keep their start; tail fragments
    // start at the overwriting entry's end).
    let mut coords: Vec<u64> = Vec::with_capacity(sorted.len() * 2);
    for e in &sorted {
        coords.push(e.logical_offset);
        coords.push(e.logical_offset + e.length);
    }
    coords.sort_unstable();
    coords.dedup();
    let idx_of = |x: u64| coords.partition_point(|&c| c < x);

    let mut fen = Fenwick::new(coords.len());
    let mut map: BTreeMap<u64, u64> = BTreeMap::new(); // start -> end
    let mut steps = 0u64;
    for e in &sorted {
        let (s, en) = (e.logical_offset, e.logical_offset + e.length);
        let live = map.len();
        steps += search_cost(live);
        // Overlapped extents: possibly a predecessor spanning `s`, plus
        // every extent starting inside [s, en).
        let pred = map.range(..s).next_back().map(|(&a, &b)| (a, b));
        let pred_overlaps = matches!(pred, Some((_, pe)) if pe > s);
        let in_range: Vec<(u64, u64)> = map.range(s..en).map(|(&a, &b)| (a, b)).collect();
        let overlaps = in_range.len() + usize::from(pred_overlaps);
        let lt_s = fen.prefix(idx_of(s));
        let lo = lt_s - u64::from(pred_overlaps);
        let hi = lo + overlaps as u64;
        let first = if pred_overlaps { pred } else { in_range.first().copied() };
        let last = if in_range.is_empty() {
            if pred_overlaps {
                pred
            } else {
                None
            }
        } else {
            in_range.last().copied()
        };
        let mut repl = 1u64;
        if matches!(first, Some((fs, _)) if fs < s) {
            repl += 1;
        }
        let tail = matches!(last, Some((_, le)) if le > en);
        if tail {
            repl += 1;
        }
        steps += overlaps as u64 + repl;
        if repl != overlaps as u64 {
            steps += live as u64 - hi;
        }
        // Mutate the ghost geometry the way splice would.
        if pred_overlaps {
            let (ps, _) = pred.unwrap();
            map.insert(ps, s); // head fragment keeps [ps, s)
        }
        for (a, _) in &in_range {
            map.remove(a);
            fen.add(idx_of(*a), -1);
        }
        if tail {
            let (_, le) = last.unwrap();
            map.insert(en, le);
            fen.add(idx_of(en), 1);
        }
        map.insert(s, en);
        fen.add(idx_of(s), 1);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(lo: u64, len: u64, phys: u64, writer: u32, ts: u64) -> IndexEntry {
        IndexEntry { logical_offset: lo, length: len, physical_offset: phys, writer, timestamp: ts }
    }

    #[test]
    fn raw_roundtrip() {
        let entries = vec![e(0, 10, 0, 0, 1), e(10, 20, 10, 1, 2), e(5, 5, 30, 2, 3)];
        let enc = encode_raw(&entries);
        assert_eq!(decode(&enc).unwrap(), entries);
    }

    #[test]
    fn compressed_roundtrip_strided() {
        // Classic N-1 strided pattern from one rank.
        let entries: Vec<_> =
            (0..100).map(|i| e(i * 4096 * 8, 4096, i * 4096, 3, 100 + i)).collect();
        let enc = encode_compressed(&entries);
        assert_eq!(decode(&enc).unwrap(), entries);
        // One pattern record instead of 100 raw: big compression.
        let raw = encode_raw(&entries);
        assert!(enc.len() * 10 < raw.len(), "compressed {} vs raw {}", enc.len(), raw.len());
    }

    #[test]
    fn compressed_roundtrip_descending_stride() {
        // A rank walking its region backwards: logical offsets descend
        // while the log (physical offsets, timestamps) advances.
        let entries: Vec<_> =
            (0..100u64).map(|i| e((99 - i) * 8192, 4096, i * 4096, 5, 200 + i)).collect();
        let enc = encode_compressed(&entries);
        assert_eq!(decode(&enc).unwrap(), entries);
        let raw = encode_raw(&entries);
        assert!(enc.len() * 10 < raw.len(), "descending runs must compress too");
    }

    #[test]
    fn compressed_handles_irregular_tail() {
        let mut entries: Vec<_> = (0..10).map(|i| e(i * 100, 10, i * 10, 0, i)).collect();
        entries.push(e(5000, 7, 100, 0, 50));
        entries.push(e(6000, 9, 107, 1, 51));
        let enc = encode_compressed(&entries);
        assert_eq!(decode(&enc).unwrap(), entries);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[9, 9, 9]).is_err());
        let good = encode_raw(&[e(0, 1, 0, 0, 0)]);
        assert!(decode(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn decode_rejects_overflowing_raw_entry() {
        // logical_offset + length wraps u64: a corrupt dropping that
        // used to panic the merge in debug builds.
        let mut blob = encode_raw(&[e(0, 10, 0, 0, 1)]);
        blob.extend(encode_raw(&[e(u64::MAX - 4, 10, 0, 0, 2)]));
        let err = decode(&blob).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The good prefix is still salvageable.
        let (entries, consumed) = decode_prefix(&blob);
        assert_eq!(entries, vec![e(0, 10, 0, 0, 1)]);
        assert_eq!(consumed, RAW_RECORD_BYTES + 1 + RECORD_CRC_BYTES);
    }

    #[test]
    fn legacy_unchecksummed_tags_still_decode() {
        // Pre-integrity containers framed records without a CRC; the
        // decoder must keep reading them.
        let entries = [e(0, 10, 0, 0, 1), e(20, 5, 10, 0, 2)];
        let mut blob = Vec::new();
        for e in &entries {
            blob.put_u8(1); // legacy TAG_RAW
            blob.put_u64_le(e.logical_offset);
            blob.put_u64_le(e.length);
            blob.put_u64_le(e.physical_offset);
            blob.put_u32_le(e.writer);
            blob.put_u64_le(e.timestamp);
        }
        blob.put_u8(2); // legacy TAG_PATTERN
        blob.put_u64_le(100);
        blob.put_u64_le(4);
        blob.put_u64_le(8);
        blob.put_u32_le(3);
        blob.put_u64_le(40);
        blob.put_u32_le(7);
        blob.put_u64_le(9);
        let decoded = decode(&blob).unwrap();
        assert_eq!(&decoded[..2], &entries);
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded[2], e(100, 4, 40, 7, 9));
    }

    #[test]
    fn checksummed_records_detect_any_single_byte_corruption() {
        // Flip one bit in every byte of both encodings; every flip must
        // decode as an error (never as different-but-plausible entries).
        let entries: Vec<_> = (0..9).map(|i| e(i * 64, 32, i * 32, 2, 10 + i)).collect();
        for blob in [encode_raw(&entries), encode_compressed(&entries)] {
            assert_eq!(decode(&blob).unwrap(), entries);
            for pos in 0..blob.len() {
                let mut bad = blob.clone();
                bad[pos] ^= 0x10;
                assert!(
                    decode(&bad).is_err(),
                    "byte {pos} of {} corrupted yet decoded cleanly",
                    blob.len()
                );
            }
        }
    }

    #[test]
    fn decode_rejects_overflowing_pattern() {
        // Pattern whose later repetitions run past u64::MAX, and one
        // whose negative stride underflows 0.
        for p in [
            PatternEntry {
                logical_start: u64::MAX - 100,
                length: 10,
                logical_stride: 50,
                count: 5,
                physical_start: 0,
                writer: 0,
                timestamp_start: 1,
            },
            PatternEntry {
                logical_start: 100,
                length: 10,
                logical_stride: -60,
                count: 5,
                physical_start: 0,
                writer: 0,
                timestamp_start: 1,
            },
            PatternEntry {
                logical_start: 0,
                length: 10,
                logical_stride: 64,
                count: 0,
                physical_start: 0,
                writer: 0,
                timestamp_start: 1,
            },
        ] {
            let mut blob = Vec::new();
            blob.put_u8(2); // TAG_PATTERN
            blob.put_u64_le(p.logical_start);
            blob.put_u64_le(p.length);
            blob.put_u64_le(p.logical_stride as u64);
            blob.put_u32_le(p.count);
            blob.put_u64_le(p.physical_start);
            blob.put_u32_le(p.writer);
            blob.put_u64_le(p.timestamp_start);
            let err = decode(&blob).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{p:?}");
            assert_eq!(decode_prefix(&blob).1, 0, "no bytes of a corrupt record consumed");
        }
    }

    #[test]
    fn map_non_overlapping() {
        let m = IndexMap::build(vec![e(0, 10, 0, 0, 1), e(20, 10, 10, 1, 2)]);
        m.check_invariants();
        assert_eq!(m.eof(), 30);
        assert_eq!(m.extents().len(), 2);
    }

    #[test]
    fn later_write_wins_overlap() {
        let m = IndexMap::build(vec![e(0, 100, 0, 0, 1), e(25, 50, 0, 1, 2)]);
        m.check_invariants();
        let x = m.extents();
        assert_eq!(x.len(), 3);
        assert_eq!((x[0].start, x[0].end, x[0].writer), (0, 25, 0));
        assert_eq!((x[1].start, x[1].end, x[1].writer), (25, 75, 1));
        assert_eq!((x[2].start, x[2].end, x[2].writer), (75, 100, 0));
        // Tail fragment physical offset advanced by the cut.
        assert_eq!(x[2].physical, 75);
    }

    #[test]
    fn earlier_write_loses_even_if_inserted_later() {
        // build() sorts by timestamp, so insertion order must not matter.
        let m1 = IndexMap::build(vec![e(0, 100, 0, 0, 2), e(25, 50, 0, 1, 1)]);
        let m2 = IndexMap::build(vec![e(25, 50, 0, 1, 1), e(0, 100, 0, 0, 2)]);
        assert_eq!(m1.extents(), m2.extents());
        assert_eq!(m1.extents().len(), 1);
        assert_eq!(m1.extents()[0].writer, 0);
    }

    #[test]
    fn sweep_matches_splice_baseline_on_fixed_cases() {
        let cases: Vec<Vec<IndexEntry>> = vec![
            vec![],
            vec![e(0, 10, 0, 0, 1)],
            vec![e(0, 100, 0, 0, 1), e(25, 50, 0, 1, 2)],
            vec![e(0, 100, 0, 0, 2), e(25, 50, 0, 1, 1)],
            vec![e(0, 10, 0, 0, 1), e(0, 10, 0, 1, 2)],
            vec![e(0, 100, 0, 0, 1), e(10, 10, 0, 1, 2), e(10, 10, 0, 2, 3)],
            vec![e(0, 100, 0, 0, 3), e(200, 50, 100, 0, 4), e(50, 200, 0, 1, 5)],
            // Zero-length entries are dropped by both.
            vec![e(5, 0, 0, 0, 1), e(0, 10, 0, 1, 2)],
        ];
        for entries in cases {
            let sweep = IndexMap::build(entries.clone());
            let splice = IndexMap::build_splice_baseline(entries.clone());
            sweep.check_invariants();
            splice.check_invariants();
            assert_eq!(sweep.extents(), splice.extents(), "entries {entries:?}");
            assert_eq!(sweep.fragments(), splice.fragments(), "stamps {entries:?}");
        }
    }

    #[test]
    fn ghost_splice_cost_equals_real_baseline() {
        let mut rng = simkit::Rng::new(0xC0575);
        for _ in 0..50 {
            let n = rng.range_inclusive(1, 40) as usize;
            let entries: Vec<IndexEntry> = (0..n)
                .map(|i| {
                    e(
                        rng.below(5000),
                        rng.range_inclusive(1, 400),
                        rng.below(1 << 20),
                        rng.below(4) as u32,
                        i as u64,
                    )
                })
                .collect();
            let real = IndexMap::build_splice_baseline(entries.clone());
            assert_eq!(
                splice_merge_cost(&entries),
                real.merge_steps(),
                "ghost must charge exactly what the real splice charges: {entries:?}"
            );
        }
    }

    #[test]
    fn merge_steps_scale_near_linearithmic() {
        // The worst case for the splice: per-rank timestamp blocks of
        // strided records, each insert landing mid-map.
        let gen = |ranks: u64, per: u64| -> Vec<IndexEntry> {
            let mut v = Vec::new();
            for r in 0..ranks {
                for i in 0..per {
                    v.push(e((i * ranks + r) * 64, 64, i * 64, r as u32, r * per + i));
                }
            }
            v
        };
        let small = IndexMap::build(gen(8, 100));
        let big = IndexMap::build(gen(8, 400));
        small.check_invariants();
        big.check_invariants();
        // 4x the entries must cost far less than 16x the steps (the
        // quadratic signature); allow ~4 * log factor.
        assert!(
            big.merge_steps() < small.merge_steps() * 8,
            "sweep no longer n log n: {} -> {}",
            small.merge_steps(),
            big.merge_steps()
        );
        let splice = IndexMap::build_splice_baseline(gen(8, 400));
        assert_eq!(big.extents(), splice.extents());
        assert!(
            splice.merge_steps() > big.merge_steps() * 10,
            "splice {} vs sweep {}",
            splice.merge_steps(),
            big.merge_steps()
        );
    }

    #[test]
    fn fragments_roundtrip_through_build() {
        let m = IndexMap::build(vec![e(0, 100, 0, 0, 1), e(25, 50, 0, 1, 2), e(300, 7, 60, 2, 3)]);
        let again = IndexMap::build(m.fragments());
        assert_eq!(m.extents(), again.extents());
        // Disjoint input takes the linear fast path.
        assert!(again.merge_steps() <= m.fragments().len() as u64);
    }

    #[test]
    fn lookup_with_holes() {
        let m = IndexMap::build(vec![e(10, 10, 0, 0, 1), e(30, 10, 10, 0, 2)]);
        let pieces = m.lookup(0, 50);
        // hole [0,10), data [10,20), hole [20,30), data [30,40), hole [40,50)
        assert_eq!(pieces.len(), 5);
        assert!(pieces[0].2.is_none());
        assert_eq!(pieces[1].2.unwrap().physical, 0);
        assert!(pieces[2].2.is_none());
        assert_eq!(pieces[3].2.unwrap().physical, 10);
        assert!(pieces[4].2.is_none());
        let total: u64 = pieces.iter().map(|p| p.1).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn lookup_mid_extent_adjusts_physical() {
        let m = IndexMap::build(vec![e(0, 100, 1000, 7, 1)]);
        let pieces = m.lookup(40, 20);
        assert_eq!(pieces.len(), 1);
        let x = pieces[0].2.unwrap();
        assert_eq!(x.physical, 1040);
        assert_eq!(pieces[0].1, 20);
    }

    #[test]
    fn strided_interleaving_resolves_fully() {
        // 4 ranks, strided 1 KiB records: rank r writes records r, r+4, ...
        let mut entries = Vec::new();
        for rec in 0..64u64 {
            let rank = (rec % 4) as u32;
            let phys = (rec / 4) * 1024;
            entries.push(e(rec * 1024, 1024, phys, rank, rec));
        }
        let m = IndexMap::build(entries);
        m.check_invariants();
        assert_eq!(m.eof(), 64 * 1024);
        // Fully covered: single lookup has no holes.
        let pieces = m.lookup(0, 64 * 1024);
        assert!(pieces.iter().all(|p| p.2.is_some()));
    }
}
