//! The top-level PLFS interface: a POSIX-flavoured virtual file system.
//!
//! `Plfs` is the piece an interposition layer (FUSE in the original; any
//! caller here) talks to. Logical files are containers on the backing
//! store; `open_writer`/`open_reader` hand out the log-structured
//! handles; `flatten` materializes a container back into a flat file
//! (the offline conversion tool shipped with PLFS).

use crate::backend::Backend;
use crate::container::{
    create_container, discover_droppings, is_container, read_meta, reserve_session, ContainerPaths,
};
use crate::fsck::{scrub, ScrubReport};
use crate::metrics::PlfsMetrics;
use crate::read::Reader;
use crate::record::{err_token, OpLogRecorder};
use crate::retry::{append_at_reliable, RetriedBackend, RetryPolicy};
use crate::write::{Writer, WriterConfig};
use obs::recorder::Recorder;
use obs::timeseries::WindowSpec;
use obs::trace::TraceSink;
use obs::{Clock, Registry};
use std::io;
use std::sync::Arc;
use workloads::oplog::{OpKind, OpResult};

/// Global PLFS configuration.
#[derive(Debug, Clone)]
pub struct PlfsConfig {
    /// Subdirectories to spread droppings over within each container.
    pub hostdirs: u32,
    pub writer: WriterConfig,
    /// Retry policy for metadata and read-side backend operations
    /// (the write path uses `writer.retry`).
    pub retry: RetryPolicy,
    /// Registry this instance records into. Cloning a `Registry` shares
    /// it, so pass an experiment-wide registry to collect `plfs.*` and
    /// `retry.*` series alongside everything else; the default is a
    /// private one.
    pub metrics: Registry,
    /// Causal trace sink shared by every handle of this instance
    /// (disabled by default; spans are timed from the instance clock).
    pub trace: TraceSink,
    /// Op-log capture (see [`crate::record`]): when set, every
    /// operation this instance performs on the recorder's logical file
    /// is appended to the recorder. Off by default.
    pub record: Option<Arc<OpLogRecorder>>,
    /// Instance time source override. `None` (default) keeps the
    /// classic logical clock starting at 1; pass `Some(Clock::wall())`
    /// for live monitoring, where `plfs.*.lat_ns` and the windowed
    /// meters should measure real time. Index ordering only needs
    /// monotonicity, which both modes provide.
    pub clock: Option<Clock>,
    /// Flight-recorder probe shared by every handle (see
    /// [`obs::recorder::Recorder`]); the hot paths poll it once per op.
    /// Build it over this config's `metrics` registry (and the same
    /// clock) so frames see the instance's series. Disabled by default.
    pub flight: Recorder,
    /// Window geometry for the live [`crate::metrics::PlfsMeters`];
    /// `None` (default) disables windowed metering.
    pub meters: Option<WindowSpec>,
}

impl Default for PlfsConfig {
    fn default() -> Self {
        PlfsConfig {
            hostdirs: 32,
            writer: WriterConfig::default(),
            retry: RetryPolicy::default(),
            metrics: Registry::new(),
            trace: TraceSink::disabled(),
            record: None,
            clock: None,
            flight: Recorder::disabled(),
            meters: None,
        }
    }
}

/// Result of `stat` on a logical file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    pub size: u64,
    pub writers: usize,
    /// Whether the size came from close-time metadata droppings (fast
    /// path) rather than a full index merge.
    pub from_meta: bool,
}

/// The PLFS middleware instance.
pub struct Plfs {
    backend: Arc<dyn Backend>,
    cfg: PlfsConfig,
    /// Shared registry + clock + counter handles for every writer and
    /// reader this instance hands out.
    metrics: Arc<PlfsMetrics>,
}

impl Plfs {
    pub fn new(backend: Arc<dyn Backend>, mut cfg: PlfsConfig) -> Self {
        // Bind both retry policies to the instance registry so masked /
        // surfaced / backoff counts land next to the plfs.* series.
        cfg.retry = cfg.retry.bound_to(&cfg.metrics);
        cfg.writer.retry = cfg.writer.retry.bound_to(&cfg.metrics);
        // Index timestamps are sequence numbers by default, so the
        // shared clock is logical; it starts at 1 so stamp 0 stays
        // "never written". A wall clock (monotone too) may be swapped in
        // for live monitoring.
        let clock = cfg.clock.clone().unwrap_or_else(|| Clock::logical_at(1));
        let metrics = PlfsMetrics::new_configured(
            &cfg.metrics,
            &clock,
            cfg.trace.clone(),
            cfg.record.clone(),
            cfg.flight.clone(),
            cfg.meters,
        );
        Plfs { backend, cfg, metrics }
    }

    /// The instrumentation bundle (registry, clock, counters) shared by
    /// all handles of this instance.
    pub fn metrics(&self) -> &Arc<PlfsMetrics> {
        &self.metrics
    }

    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    pub fn config(&self) -> &PlfsConfig {
        &self.cfg
    }

    fn paths(&self, logical: &str) -> ContainerPaths {
        ContainerPaths::new(logical, self.cfg.hostdirs)
    }

    /// The backend with per-operation transient-fault masking. Retry
    /// must wrap individual operations: wrapping a multi-call helper
    /// compounds the per-call fault probability instead of masking it.
    fn retried(&self) -> RetriedBackend<'_> {
        RetriedBackend::new(self.backend.as_ref(), &self.cfg.retry)
    }

    /// Append one op to the capture log, if capture is on.
    fn record(
        &self,
        logical: &str,
        rank: u32,
        op: OpKind,
        offset: u64,
        len: u64,
        result: OpResult,
    ) {
        if let Some(rec) = &self.metrics.recorder {
            rec.record(logical, rank, op, offset, len, result);
        }
    }

    /// `Ok`/`err:<kind>` result of a metadata op, recorded pass-through.
    fn record_meta<T>(
        &self,
        logical: &str,
        op: OpKind,
        len: u64,
        res: io::Result<T>,
    ) -> io::Result<T> {
        match &res {
            Ok(_) => self.record(logical, 0, op, 0, len, OpResult::Ok),
            Err(e) => self.record(logical, 0, op, 0, len, err_token(e)),
        }
        res
    }

    /// Create a logical file (container). Idempotent.
    pub fn create(&self, logical: &str) -> io::Result<()> {
        let res = create_container(&self.retried(), &self.paths(logical));
        self.record_meta(logical, OpKind::Create, 0, res)
    }

    /// Does the logical file exist?
    pub fn exists(&self, logical: &str) -> bool {
        is_container(self.backend.as_ref(), logical)
    }

    /// Open a write handle for `rank`, creating the container if needed.
    pub fn open_writer(&self, logical: &str, rank: u32) -> io::Result<Writer> {
        let paths = self.paths(logical);
        if !self.exists(logical) {
            create_container(&self.retried(), &paths)?;
        }
        // Atomically reserve this session *before* computing its epoch
        // floor. The old read-then-compute over `session_count` let two
        // concurrent opens read the same count and mint colliding stamp
        // epochs, silently corrupting overwrite resolution; the CAS
        // marker makes every reservation globally unique.
        let session = reserve_session(&self.retried(), &paths)?;
        // A new session's stamps must exceed everything already stored:
        // reserve a fresh epoch in the high bits.
        let epoch_floor = (session + 1) << 40;
        self.metrics.clock.advance_to(epoch_floor);
        // Decorrelate this writer's retry backoff from its siblings: a
        // swarm stalled on the same group commit must not re-hit the
        // backend in lockstep.
        let mut wcfg = self.cfg.writer.clone();
        wcfg.retry = wcfg.retry.with_jitter_seed(session + 1);
        let res =
            Writer::new(self.backend.clone(), paths, wcfg, rank, self.metrics.clone(), session);
        match &res {
            Ok(_) => self.record(logical, rank, OpKind::OpenWriter, 0, 0, OpResult::Ok),
            Err(e) => self.record(logical, rank, OpKind::OpenWriter, 0, 0, err_token(e)),
        }
        res
    }

    /// Open a read handle (merges all indices).
    pub fn open_reader(&self, logical: &str) -> io::Result<Reader> {
        self.open_reader_as(logical, 0)
    }

    /// [`Plfs::open_reader`] attributed to `rank` in the capture log.
    /// Only readers opened through this API record their ops — internal
    /// reads (stat's slow path, flatten) stay out of the log.
    pub fn open_reader_as(&self, logical: &str, rank: u32) -> io::Result<Reader> {
        if !self.exists(logical) {
            let e = io::Error::new(io::ErrorKind::NotFound, format!("no such file: {logical}"));
            self.record(logical, rank, OpKind::OpenReader, 0, 0, err_token(&e));
            return Err(e);
        }
        let res = Reader::open(
            self.backend.clone(),
            self.paths(logical),
            self.cfg.retry.clone(),
            self.metrics.clone(),
        );
        match res {
            Ok(mut r) => {
                r.enable_recording(rank);
                self.record(logical, rank, OpKind::OpenReader, 0, 0, OpResult::Ok);
                Ok(r)
            }
            Err(e) => {
                self.record(logical, rank, OpKind::OpenReader, 0, 0, err_token(&e));
                Err(e)
            }
        }
    }

    /// `stat` without a full index merge when possible: closed
    /// containers answer from metadata droppings.
    pub fn stat(&self, logical: &str) -> io::Result<FileStat> {
        let res = self.stat_inner(logical);
        // `len` carries the observed size — stat's replay-checkable fact.
        let size = res.as_ref().map(|s| s.size).unwrap_or(0);
        self.record_meta(logical, OpKind::Stat, size, res)
    }

    fn stat_inner(&self, logical: &str) -> io::Result<FileStat> {
        if !self.exists(logical) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {logical}"),
            ));
        }
        let paths = self.paths(logical);
        let retried = self.retried();
        let metas = read_meta(&retried, &paths)?;
        let open_sessions =
            self.backend.list(&paths.openhosts_dir()).map(|v| !v.is_empty()).unwrap_or(false);
        let writers = discover_droppings(&retried, &paths)?.len();
        if !metas.is_empty() && !open_sessions && metas.len() == writers {
            // Fast path: every writer closed cleanly.
            return Ok(FileStat {
                size: metas.iter().map(|m| m.eof).max().unwrap_or(0),
                writers,
                from_meta: true,
            });
        }
        let reader = Reader::open(
            self.backend.clone(),
            paths,
            self.cfg.retry.clone(),
            self.metrics.clone(),
        )?;
        Ok(FileStat { size: reader.size(), writers, from_meta: false })
    }

    /// Remove a logical file and all its droppings.
    pub fn unlink(&self, logical: &str) -> io::Result<()> {
        let res = if !self.exists(logical) {
            Err(io::Error::new(io::ErrorKind::NotFound, format!("no such file: {logical}")))
        } else {
            self.cfg.retry.run(|| self.backend.remove_dir_all(logical.trim_end_matches('/')))
        };
        self.record_meta(logical, OpKind::Unlink, 0, res)
    }

    /// Checksum-walk a container's droppings on the bounded worker pool
    /// (see [`crate::fsck::scrub`]), recording `scrub.*` metrics into
    /// this instance's registry.
    pub fn scrub(&self, logical: &str) -> io::Result<ScrubReport> {
        let span =
            self.metrics.trace.start("plfs.scrub", obs::trace::Phase::Compute, "plfs.scrub", 0);
        let report = scrub(self.backend.as_ref(), logical, self.cfg.hostdirs);
        span.end();
        let report = report?;
        self.metrics.scrub_extents.add(report.checked_blocks);
        self.metrics.scrub_corrupt.add(report.findings.len() as u64);
        Ok(report)
    }

    /// Materialize the container into a flat file at `dest` on the same
    /// backing store, in `chunk`-byte pieces. Returns bytes written.
    pub fn flatten(&self, logical: &str, dest: &str, chunk: usize) -> io::Result<u64> {
        assert!(chunk > 0);
        let reader = self.open_reader(logical)?;
        self.cfg.retry.run(|| self.backend.create(dest))?;
        let size = reader.size();
        let mut buf = vec![0u8; chunk];
        let mut pos = 0u64;
        let mut tail_uncertain = false;
        while pos < size {
            let n = reader.read_at(pos, &mut buf)?;
            if n == 0 {
                break;
            }
            let res = append_at_reliable(
                self.backend.as_ref(),
                &self.cfg.retry,
                dest,
                pos,
                &buf[..n],
                tail_uncertain,
            );
            tail_uncertain = res.is_err();
            res?;
            pos += n as u64;
        }
        Ok(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn plfs() -> (Plfs, Arc<MemBackend>) {
        let b = Arc::new(MemBackend::new());
        (
            Plfs::new(
                b.clone() as Arc<dyn Backend>,
                PlfsConfig { hostdirs: 4, ..Default::default() },
            ),
            b,
        )
    }

    #[test]
    fn create_exists_unlink() {
        let (fs, _) = plfs();
        assert!(!fs.exists("/ckpt"));
        fs.create("/ckpt").unwrap();
        assert!(fs.exists("/ckpt"));
        fs.unlink("/ckpt").unwrap();
        assert!(!fs.exists("/ckpt"));
        assert!(fs.unlink("/ckpt").is_err());
    }

    #[test]
    fn write_read_roundtrip_via_fs() {
        let (fs, _) = plfs();
        let mut w = fs.open_writer("/data", 0).unwrap();
        w.write_at(0, b"top-level api").unwrap();
        w.close().unwrap();
        let r = fs.open_reader("/data").unwrap();
        assert_eq!(r.read_all().unwrap(), b"top-level api");
    }

    #[test]
    fn stat_fast_path_after_clean_close() {
        let (fs, _) = plfs();
        let mut w = fs.open_writer("/data", 0).unwrap();
        w.write_at(0, &[0u8; 4096]).unwrap();
        w.close().unwrap();
        let st = fs.stat("/data").unwrap();
        assert_eq!(st.size, 4096);
        assert!(st.from_meta, "clean close should stat from metadata");
    }

    #[test]
    fn stat_slow_path_while_open() {
        let (fs, _) = plfs();
        let mut w = fs.open_writer("/data", 0).unwrap();
        w.write_at(0, &[0u8; 100]).unwrap();
        w.sync().unwrap();
        let st = fs.stat("/data").unwrap();
        assert_eq!(st.size, 100);
        assert!(!st.from_meta, "open writer must force index merge");
        w.close().unwrap();
    }

    #[test]
    fn second_session_overwrites_first() {
        let (fs, _) = plfs();
        let mut w = fs.open_writer("/f", 0).unwrap();
        w.write_at(0, &[b'a'; 10]).unwrap();
        w.close().unwrap();
        // Re-open (new session) and overwrite the middle.
        let mut w2 = fs.open_writer("/f", 0).unwrap();
        w2.write_at(3, &[b'b'; 4]).unwrap();
        w2.close().unwrap();
        let data = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(&data, b"aaabbbbaaa");
    }

    #[test]
    fn flatten_produces_flat_copy() {
        let (fs, b) = plfs();
        let mut w0 = fs.open_writer("/f", 0).unwrap();
        let mut w1 = fs.open_writer("/f", 1).unwrap();
        for i in 0..50u64 {
            let (w, fill) = if i % 2 == 0 { (&mut w0, 0xAA) } else { (&mut w1, 0xBB) };
            w.write_at(i * 64, &[fill; 64]).unwrap();
        }
        w0.close().unwrap();
        w1.close().unwrap();
        let n = fs.flatten("/f", "/flat", 1000).unwrap();
        assert_eq!(n, 3200);
        let flat = b.read_all("/flat").unwrap();
        let logical = fs.open_reader("/f").unwrap().read_all().unwrap();
        assert_eq!(flat, logical);
    }

    #[test]
    fn open_reader_on_missing_file_errors() {
        let (fs, _) = plfs();
        assert!(fs.open_reader("/nope").is_err());
        assert!(fs.stat("/nope").is_err());
    }

    #[test]
    fn concurrent_writers_from_threads() {
        let (fs, _) = plfs();
        let fs = Arc::new(fs);
        fs.create("/par").unwrap();
        let mut handles = Vec::new();
        for rank in 0..8u32 {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                let mut w = fs.open_writer("/par", rank).unwrap();
                // Rank-segmented N-1: each rank owns a 1 KiB region.
                w.write_at(rank as u64 * 1024, &[rank as u8; 1024]).unwrap();
                w.close().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let data = fs.open_reader("/par").unwrap().read_all().unwrap();
        assert_eq!(data.len(), 8 * 1024);
        for rank in 0..8usize {
            assert!(data[rank * 1024..(rank + 1) * 1024].iter().all(|&x| x == rank as u8));
        }
    }
}
