//! The PLFS read path.
//!
//! Reading is where the deferred work happens: every writer's index
//! dropping is fetched and decoded on a bounded worker pool (the
//! "parallelize index redistribution" extension of report §1.1 item 5),
//! pre-merged per rank, k-way merged into one overlap-resolved
//! [`IndexMap`], and then `read_at` scatter-gathers from the per-rank
//! data droppings. Unwritten holes read as zeros, POSIX-style.
//!
//! After a successful merge the reader persists the flattened extent
//! list as a `canonical.index` dropping (see [`crate::canonical`]); a
//! warm re-open loads it and decodes zero raw entries, or just the
//! tails of droppings that grew since. The cache is best-effort both
//! ways: failing to write it never fails the open, and anything
//! suspicious about it falls back to a full rebuild.

use crate::backend::Backend;
use crate::canonical::{freshness, CanonicalIndex, Tail};
use crate::container::{discover_droppings, session_count, ContainerPaths};
use crate::index::{decode, IndexEntry, IndexMap};
use crate::metrics::PlfsMetrics;
use crate::pool;
use crate::retry::{RetriedBackend, RetryPolicy};
use obs::trace::Phase;
use std::io;
use std::sync::Arc;

/// Statistics about an assembled container index.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadStats {
    pub writers: usize,
    /// Raw index entries decoded by this open. A warm open served
    /// entirely from the flattened-index cache decodes zero.
    pub raw_entries: usize,
    pub merged_extents: usize,
    pub index_bytes: u64,
    /// Whether a valid `canonical.index` seeded the merge.
    pub from_canonical: bool,
    /// Entries decoded from dropping tails newer than the cache stamp.
    pub tail_entries: usize,
    /// Logical merge cost (see [`IndexMap::merge_steps`]).
    pub merge_steps: u64,
}

/// An open read handle on a container.
pub struct Reader {
    backend: Arc<dyn Backend>,
    paths: ContainerPaths,
    retry: RetryPolicy,
    map: IndexMap,
    stats: ReadStats,
    metrics: Arc<PlfsMetrics>,
}

/// What the ingest stage produced for the merge.
struct Ingest {
    /// Per-source pre-merged fragments (canonical cache and/or ranks).
    fragment_lists: Vec<Vec<IndexEntry>>,
    raw_entries: usize,
    tail_entries: usize,
    index_bytes: u64,
    from_canonical: bool,
    /// Peak concurrently-running fetch+decode jobs.
    peak_workers: usize,
    /// Cache stamps to persist after the merge (`None`: don't persist —
    /// the cache is already exactly current).
    persist: Option<(u64, Vec<(u32, u64)>)>,
}

impl Reader {
    /// Open the container: discover droppings, fetch + decode every
    /// index concurrently (bounded by the host's parallelism), merge.
    /// Transient backend errors during discovery and index fetch are
    /// masked per `retry`.
    pub(crate) fn open(
        backend: Arc<dyn Backend>,
        paths: ContainerPaths,
        retry: RetryPolicy,
        metrics: Arc<PlfsMetrics>,
    ) -> io::Result<Self> {
        let span = metrics.open_timer.start();
        let root = metrics.trace.start("plfs.open", Phase::Compute, "plfs.read", 0);
        let root_id = root.id();
        // Per-operation retry: wrapping the whole discovery (dozens of
        // backend calls) in one retry unit would compound the per-call
        // fault probability instead of masking it.
        let retried = RetriedBackend::new(backend.as_ref(), &retry);
        let droppings = discover_droppings(&retried, &paths)?;
        let writers = droppings.len();

        let ingest = ingest(&retried, &paths, &droppings, &metrics, root_id)?;

        let merge_span = metrics.trace.start("index.merge", Phase::Compute, "plfs.read", root_id);
        let total_fragments: usize = ingest.fragment_lists.iter().map(Vec::len).sum();
        let mut all = Vec::with_capacity(total_fragments);
        for list in &ingest.fragment_lists {
            all.extend_from_slice(list);
        }
        let mut map = IndexMap::build(all);
        map.set_entries_seen(ingest.raw_entries);
        merge_span.end();

        // Persist the flattened view for the next open (best-effort:
        // the cache is never load-bearing).
        if let Some((session, covered)) = ingest.persist {
            let canon =
                CanonicalIndex { session_count: session, covered, fragments: map.fragments() };
            if write_canonical(&retried, &paths, &canon).is_ok() {
                metrics.canonical_writes.inc();
            }
        }

        metrics.merge_fanin.observe(writers as u64);
        metrics.raw_entries.add(ingest.raw_entries as u64);
        metrics.tail_entries.add(ingest.tail_entries as u64);
        metrics.merged_extents.add(map.extents().len() as u64);
        metrics.index_bytes_read.add(ingest.index_bytes);
        metrics.merge_steps.add(map.merge_steps());
        metrics.decode_concurrency.observe(ingest.peak_workers as u64);
        if ingest.from_canonical {
            metrics.canonical_hits.inc();
        }
        root.end();
        span.stop();
        Ok(Reader {
            backend,
            paths,
            retry,
            stats: ReadStats {
                writers,
                raw_entries: ingest.raw_entries,
                merged_extents: map.extents().len(),
                index_bytes: ingest.index_bytes,
                from_canonical: ingest.from_canonical,
                tail_entries: ingest.tail_entries,
                merge_steps: map.merge_steps(),
            },
            map,
            metrics,
        })
    }

    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    /// Logical file size.
    pub fn size(&self) -> u64 {
        self.map.eof()
    }

    /// The merged index (for flattening and analysis).
    pub fn index(&self) -> &IndexMap {
        &self.map
    }

    /// Read into `buf` at `offset`. Returns bytes read (short at EOF);
    /// holes within the file read as zeros.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let eof = self.map.eof();
        self.metrics.read_ops.inc();
        if offset >= eof {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(eof - offset);
        self.metrics.read_bytes.add(want);
        for (piece_off, piece_len, extent) in self.map.lookup(offset, want) {
            let dst = (piece_off - offset) as usize;
            let dst_end = dst + piece_len as usize;
            match extent {
                None => {
                    buf[dst..dst_end].fill(0);
                }
                Some(x) => {
                    let data_path = self.paths.data_dropping(x.writer);
                    let got = self.retry.run(|| {
                        self.backend.read_at(&data_path, x.physical, &mut buf[dst..dst_end])
                    })?;
                    if got < piece_len as usize {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!(
                                "data dropping {data_path} truncated: wanted {piece_len} at {}, got {got}",
                                x.physical
                            ),
                        ));
                    }
                }
            }
        }
        Ok(want as usize)
    }

    /// Read the whole logical file (convenience for flatten/tests).
    pub fn read_all(&self) -> io::Result<Vec<u8>> {
        let mut out = vec![0u8; self.size() as usize];
        let n = self.read_at(0, &mut out)?;
        out.truncate(n);
        Ok(out)
    }
}

/// Load, validate, fetch, and decode everything the merge needs:
/// the canonical cache if fresh, plus whole droppings (cold) or just
/// grown tails (warm-with-appends) on the bounded pool.
fn ingest(
    retried: &RetriedBackend<'_>,
    paths: &ContainerPaths,
    droppings: &[(u32, String, String)],
    metrics: &Arc<PlfsMetrics>,
    root_id: u64,
) -> io::Result<Ingest> {
    // Try the flattened-index cache first.
    if let Some((canon, tails)) = load_canonical(retried, paths) {
        if tails.is_empty() {
            return Ok(Ingest {
                index_bytes: canon.covered.iter().map(|&(_, l)| l).sum(),
                fragment_lists: vec![canon.fragments],
                raw_entries: 0,
                tail_entries: 0,
                from_canonical: true,
                peak_workers: 0,
                persist: None, // exactly current already
            });
        }
        if let Some(mut ingest) = ingest_tails(retried, paths, &canon, &tails, metrics, root_id) {
            // Stamp the refreshed cache with the grown lengths.
            let mut covered: std::collections::HashMap<u32, u64> =
                canon.covered.iter().copied().collect();
            for t in &tails {
                covered.insert(t.rank, t.len);
            }
            let mut covered: Vec<(u32, u64)> = covered.into_iter().collect();
            covered.sort_unstable();
            ingest.persist = Some((canon.session_count, covered));
            ingest.fragment_lists.push(canon.fragments);
            ingest.from_canonical = true;
            ingest.index_bytes += canon.covered.iter().map(|&(_, l)| l).sum::<u64>();
            return Ok(ingest);
        }
        // A torn or undecodable tail: fall through to a cold rebuild.
    }

    // Cold path: fetch + decode + pre-merge every rank concurrently.
    let session = session_count(retried, paths);
    let cap = pool::available_parallelism();
    let results: Vec<io::Result<(Vec<IndexEntry>, usize, u64)>>;
    let peak;
    (results, peak) = pool::run_bounded(droppings.len(), cap, |i| {
        let (_, idx_path, _) = &droppings[i];
        let fetch = metrics.trace.start("index.fetch", Phase::Transfer, "plfs.read", root_id);
        let blob = retried.read_all(idx_path)?;
        fetch.end();
        let span = metrics.trace.start("index.decode", Phase::Compute, "plfs.read", root_id);
        let entries = decode(&blob)?;
        span.end();
        let raw = entries.len();
        // Pre-merge this rank's entries so the global merge is a k-way
        // merge of already-disjoint runs.
        let pre = crate::index::sweep_merge(entries);
        Ok((pre.frags, raw, blob.len() as u64))
    });
    let mut fragment_lists = Vec::with_capacity(droppings.len());
    let mut raw_entries = 0usize;
    let mut index_bytes = 0u64;
    let mut covered = Vec::with_capacity(droppings.len());
    for (r, (rank, ..)) in results.into_iter().zip(droppings) {
        let (frags, raw, bytes) = r?;
        raw_entries += raw;
        index_bytes += bytes;
        covered.push((*rank, bytes));
        fragment_lists.push(frags);
    }
    Ok(Ingest {
        fragment_lists,
        raw_entries,
        tail_entries: 0,
        index_bytes,
        from_canonical: false,
        peak_workers: peak,
        persist: Some((session, covered)),
    })
}

/// Fetch + decode just the grown tails listed by [`freshness`].
/// `None` means a tail was unreadable — caller rebuilds cold.
fn ingest_tails(
    retried: &RetriedBackend<'_>,
    _paths: &ContainerPaths,
    canon: &CanonicalIndex,
    tails: &[Tail],
    metrics: &Arc<PlfsMetrics>,
    root_id: u64,
) -> Option<Ingest> {
    let cap = pool::available_parallelism();
    let (results, peak) = pool::run_bounded(tails.len(), cap, |i| {
        let t = &tails[i];
        let fetch = metrics.trace.start("index.fetch", Phase::Transfer, "plfs.read", root_id);
        let mut buf = vec![0u8; (t.len - t.covered) as usize];
        let got = retried.read_at(&t.index_path, t.covered, &mut buf).ok()?;
        buf.truncate(got);
        fetch.end();
        let span = metrics.trace.start("index.decode", Phase::Compute, "plfs.read", root_id);
        // The covered stamp always ends on a record boundary (it was a
        // whole dropping when stamped), so the tail decodes standalone.
        let entries = decode(&buf).ok()?;
        span.end();
        Some((entries, buf.len() as u64))
    });
    let mut fragment_lists = Vec::with_capacity(tails.len() + 1);
    let mut raw_entries = 0usize;
    let mut index_bytes = 0u64;
    for r in results {
        let (entries, bytes) = r?;
        raw_entries += entries.len();
        index_bytes += bytes;
        fragment_lists.push(entries);
    }
    let _ = canon;
    Some(Ingest {
        fragment_lists,
        raw_entries,
        tail_entries: raw_entries,
        index_bytes,
        from_canonical: false, // caller flips after attaching fragments
        peak_workers: peak,
        persist: None, // caller stamps
    })
}

/// Load and validate `canonical.index`; `None` covers every failure
/// mode (absent, torn, undecodable, stale) — callers just rebuild.
fn load_canonical(
    retried: &RetriedBackend<'_>,
    paths: &ContainerPaths,
) -> Option<(CanonicalIndex, Vec<Tail>)> {
    let path = paths.canonical_index();
    if !retried.exists(&path) {
        return None;
    }
    let blob = retried.read_all(&path).ok()?;
    let canon = CanonicalIndex::decode(&blob).ok()?;
    let tails = freshness(retried, paths, &canon).ok()?;
    Some((canon, tails))
}

/// Persist a canonical index (create truncates any stale one first).
fn write_canonical(
    retried: &RetriedBackend<'_>,
    paths: &ContainerPaths,
    canon: &CanonicalIndex,
) -> io::Result<()> {
    let path = paths.canonical_index();
    retried.create(&path)?;
    retried.append(&path, &canon.encode())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::container::{create_container, ContainerPaths};
    use crate::write::{Writer, WriterConfig};

    fn setup(hostdirs: u32) -> (Arc<MemBackend>, ContainerPaths, Arc<PlfsMetrics>) {
        let b = Arc::new(MemBackend::new());
        let p = ContainerPaths::new("/f", hostdirs);
        create_container(b.as_ref(), &p).unwrap();
        (b, p, PlfsMetrics::detached())
    }

    fn mkwriter(
        b: &Arc<MemBackend>,
        p: &ContainerPaths,
        metrics: &Arc<PlfsMetrics>,
        rank: u32,
    ) -> Writer {
        Writer::new(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            WriterConfig::default(),
            rank,
            metrics.clone(),
            0,
        )
        .unwrap()
    }

    fn reader(b: &Arc<MemBackend>, p: &ContainerPaths) -> Reader {
        Reader::open(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            RetryPolicy::none(),
            PlfsMetrics::detached(),
        )
        .unwrap()
    }

    #[test]
    fn single_writer_roundtrip() {
        let (b, p, clock) = setup(2);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(0, b"hello ").unwrap();
        w.write_at(6, b"world").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.size(), 11);
        assert_eq!(r.read_all().unwrap(), b"hello world");
    }

    #[test]
    fn n1_strided_reassembles() {
        // 8 ranks write a strided N-1 checkpoint of 64 records.
        let (b, p, clock) = setup(4);
        let ranks = 8u32;
        let rec = 1000usize;
        let total_recs = 64u64;
        let mut writers: Vec<Writer> = (0..ranks).map(|r| mkwriter(&b, &p, &clock, r)).collect();
        for record in 0..total_recs {
            let rank = (record % ranks as u64) as usize;
            let fill = (record % 251) as u8;
            writers[rank].write_at(record * rec as u64, &vec![fill; rec]).unwrap();
        }
        for w in writers {
            w.close().unwrap();
        }
        let r = reader(&b, &p);
        assert_eq!(r.size(), total_recs * rec as u64);
        let data = r.read_all().unwrap();
        for record in 0..total_recs {
            let fill = (record % 251) as u8;
            let s = record as usize * rec;
            assert!(data[s..s + rec].iter().all(|&x| x == fill), "record {record} corrupt");
        }
        assert_eq!(r.stats().writers, ranks as usize);
        assert_eq!(r.stats().raw_entries, total_recs as usize);
    }

    #[test]
    fn holes_read_as_zeros() {
        let (b, p, clock) = setup(1);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(100, b"xx").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.size(), 102);
        let data = r.read_all().unwrap();
        assert!(data[..100].iter().all(|&x| x == 0));
        assert_eq!(&data[100..], b"xx");
    }

    #[test]
    fn read_past_eof_is_short() {
        let (b, p, clock) = setup(1);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(0, b"abc").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        let mut buf = [0u8; 10];
        assert_eq!(r.read_at(0, &mut buf).unwrap(), 3);
        assert_eq!(r.read_at(3, &mut buf).unwrap(), 0);
        assert_eq!(r.read_at(999, &mut buf).unwrap(), 0);
    }

    #[test]
    fn overwrite_last_writer_wins() {
        let (b, p, clock) = setup(2);
        let mut w0 = mkwriter(&b, &p, &clock, 0);
        let mut w1 = mkwriter(&b, &p, &clock, 1);
        w0.write_at(0, &[b'a'; 100]).unwrap();
        w1.write_at(50, &[b'b'; 100]).unwrap();
        w0.close().unwrap();
        w1.close().unwrap();
        let r = reader(&b, &p);
        let data = r.read_all().unwrap();
        assert_eq!(data.len(), 150);
        assert!(data[..50].iter().all(|&x| x == b'a'));
        assert!(data[50..].iter().all(|&x| x == b'b'));
    }

    #[test]
    fn many_writers_parallel_decode_path() {
        let (b, p, clock) = setup(8);
        for rank in 0..16u32 {
            let mut w = mkwriter(&b, &p, &clock, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let r = reader(&b, &p);
        assert_eq!(r.stats().writers, 16);
        let data = r.read_all().unwrap();
        for rank in 0..16usize {
            assert!(data[rank * 10..(rank + 1) * 10].iter().all(|&x| x == rank as u8));
        }
    }

    #[test]
    fn decoder_concurrency_stays_bounded() {
        let (b, p, clock) = setup(8);
        let ranks = (pool::available_parallelism() * 3).max(12) as u32;
        for rank in 0..ranks {
            let mut w = mkwriter(&b, &p, &clock, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        assert_eq!(r.stats().writers, ranks as usize);
        let h = rm.registry.histogram("plfs.index.decode_concurrency");
        assert_eq!(h.count(), 1);
        assert!(
            h.max() <= pool::available_parallelism() as u64,
            "peak decoder concurrency {} exceeds available parallelism {}",
            h.max(),
            pool::available_parallelism()
        );
    }

    #[test]
    fn unaligned_reads_cross_extents() {
        let (b, p, clock) = setup(2);
        let mut w0 = mkwriter(&b, &p, &clock, 0);
        let mut w1 = mkwriter(&b, &p, &clock, 1);
        // Alternating 10-byte records from two ranks.
        for i in 0..10u64 {
            let (w, fill) = if i % 2 == 0 { (&mut w0, b'e') } else { (&mut w1, b'o') };
            w.write_at(i * 10, &[fill; 10]).unwrap();
        }
        w0.close().unwrap();
        w1.close().unwrap();
        let r = reader(&b, &p);
        let mut buf = [0u8; 25];
        let n = r.read_at(5, &mut buf).unwrap();
        assert_eq!(n, 25);
        assert_eq!(&buf[..5], b"eeeee");
        assert_eq!(&buf[5..15], b"oooooooooo");
        assert_eq!(&buf[15..25], b"eeeeeeeeee");
    }

    #[test]
    fn metrics_record_merge_fanin_and_read_bytes() {
        let (b, p, m) = setup(4);
        for rank in 0..6u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        let reg = &rm.registry;
        let fanin = reg.histogram("plfs.index.merge_fanin");
        assert_eq!(fanin.count(), 1);
        assert_eq!(fanin.max(), 6, "six writers merged");
        assert_eq!(reg.value("plfs.index.raw_entries"), Some(6));
        assert!(reg.value("plfs.index.bytes_read").unwrap() > 0);
        let data = r.read_all().unwrap();
        assert_eq!(reg.value("plfs.read.ops"), Some(1));
        assert_eq!(reg.value("plfs.read.bytes"), Some(data.len() as u64));
    }

    #[test]
    fn warm_open_decodes_zero_raw_entries() {
        let (b, p, m) = setup(4);
        for rank in 0..6u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        // Cold open builds and persists the flattened index.
        let cold = reader(&b, &p);
        assert!(!cold.stats().from_canonical);
        assert_eq!(cold.stats().raw_entries, 6);
        assert!(b.exists(&p.canonical_index()), "cold open persists the cache");

        // Warm open: everything from the cache, zero raw decodes.
        let rm = PlfsMetrics::detached();
        let warm =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        assert!(warm.stats().from_canonical);
        assert_eq!(warm.stats().raw_entries, 0);
        assert_eq!(rm.registry.value("plfs.index.raw_entries"), Some(0));
        assert_eq!(rm.registry.value("plfs.index.canonical_hits"), Some(1));
        assert_eq!(warm.read_all().unwrap(), cold.read_all().unwrap());
        assert_eq!(warm.size(), cold.size());
        assert_eq!(warm.stats().merged_extents, cold.stats().merged_extents);
    }

    #[test]
    fn canonical_tail_merge_after_midsession_appends() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[b'a'; 100]).unwrap();
        w.sync().unwrap();
        // Reader opens mid-session: cache stamped at the current index
        // length, session still open.
        let r1 = reader(&b, &p);
        assert_eq!(r1.size(), 100);
        // The same session appends more (session count unchanged!).
        w.write_at(50, &[b'b'; 100]).unwrap();
        w.sync().unwrap();
        let rm = PlfsMetrics::detached();
        let r2 =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        assert!(r2.stats().from_canonical, "cache plus tail, not a rebuild");
        assert_eq!(r2.stats().tail_entries, 1);
        assert_eq!(r2.stats().raw_entries, 1, "only the tail is decoded");
        let data = r2.read_all().unwrap();
        assert_eq!(data.len(), 150);
        assert!(data[..50].iter().all(|&x| x == b'a'));
        assert!(data[50..].iter().all(|&x| x == b'b'));
        // The refreshed cache covers the tail: a third open is fully warm.
        let r3 = reader(&b, &p);
        assert!(r3.stats().from_canonical);
        assert_eq!(r3.stats().raw_entries, 0);
        w.close().unwrap();
    }

    #[test]
    fn new_writer_session_invalidates_canonical() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[b'a'; 10]).unwrap();
        w.close().unwrap();
        let _ = reader(&b, &p); // persists the cache
        assert!(b.exists(&p.canonical_index()));
        // A new session must not see stale cached extents.
        let mut w2 = Writer::new(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            WriterConfig::default(),
            0,
            m.clone(),
            1,
        )
        .unwrap();
        assert!(!b.exists(&p.canonical_index()), "writer open deletes the cache");
        w2.write_at(3, &[b'b'; 4]).unwrap();
        w2.close().unwrap();
        let r = reader(&b, &p);
        assert!(!r.stats().from_canonical);
        assert_eq!(r.read_all().unwrap(), b"aaabbbbaaa");
    }

    #[test]
    fn corrupt_canonical_falls_back_to_rebuild() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, b"payload").unwrap();
        w.close().unwrap();
        let _ = reader(&b, &p);
        // Tear the cache mid-file.
        let blob = b.read_all(&p.canonical_index()).unwrap();
        b.remove(&p.canonical_index()).unwrap();
        b.append(&p.canonical_index(), &blob[..blob.len() / 2]).unwrap();
        let r = reader(&b, &p);
        assert!(!r.stats().from_canonical, "torn cache ignored");
        assert_eq!(r.read_all().unwrap(), b"payload");
    }

    #[test]
    fn open_emits_causal_spans() {
        use obs::trace::TraceSink;
        let (b, p, m) = setup(4);
        for rank in 0..4u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 8, &[rank as u8; 8]).unwrap();
            w.close().unwrap();
        }
        let sink = TraceSink::bounded(4096);
        let rm =
            PlfsMetrics::new_traced(&obs::Registry::new(), &obs::Clock::logical(), sink.clone());
        let _ = Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm)
            .unwrap();
        let spans = sink.snapshot();
        obs::trace::validate(&spans).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"plfs.open"));
        assert!(names.contains(&"index.fetch"));
        assert!(names.contains(&"index.decode"));
        assert!(names.contains(&"index.merge"));
        let root = spans.iter().find(|s| s.name == "plfs.open").unwrap();
        for child in spans.iter().filter(|s| s.name.starts_with("index.")) {
            assert_eq!(child.parent, root.id, "{} hangs off plfs.open", child.name);
        }
    }
}
