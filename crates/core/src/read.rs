//! The PLFS read path.
//!
//! Reading is where the deferred work happens: every writer's index
//! dropping is fetched and decoded on a bounded worker pool (the
//! "parallelize index redistribution" extension of report §1.1 item 5),
//! pre-merged per rank, k-way merged into one overlap-resolved
//! [`IndexMap`], and then `read_at` scatter-gathers from the per-rank
//! data droppings. Unwritten holes read as zeros, POSIX-style.
//!
//! `read_at` is a parallel, coalescing engine: the extent pieces a
//! request maps to are grouped per data dropping, physically-adjacent
//! runs are coalesced into single backend reads (one open batch
//! per writer, built in a single pass over the pieces), and the
//! per-dropping batches fan out onto the bounded worker pool with
//! results scattered straight into the caller's buffer. A
//! per-reader dropping cache keeps the resolved dropping paths and a
//! readahead block per writer, so sequential [`Reader::read_all`]-style
//! scans stream instead of paying per-piece path resolution and one
//! backend op per extent. The serial per-piece path survives as
//! [`Reader::read_at_serial`] — the differential-testing oracle and the
//! baseline `repro readscale` measures the engine against.
//!
//! After a successful merge the reader persists the flattened extent
//! list as a `canonical.index` dropping (see [`crate::canonical`]); a
//! warm re-open loads it and decodes zero raw entries, or just the
//! tails of droppings that grew since. The cache is best-effort both
//! ways: failing to write it never fails the open, and anything
//! suspicious about it falls back to a full rebuild.

use crate::backend::Backend;
use crate::canonical::{freshness, CanonicalIndex, Tail};
use crate::checksum::{crc32, parse_chk};
use crate::container::{discover_droppings, epoch_watermark, ContainerPaths};
use crate::index::{decode, IndexEntry, IndexMap};
use crate::metrics::PlfsMetrics;
use crate::pool;
use crate::retry::{IntegrityError, RetriedBackend, RetryPolicy};
use obs::trace::Phase;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use workloads::oplog::{OpKind, OpResult};

/// Upper bound on bytes buffered at once by whole-file reads
/// ([`Reader::read_all`] / [`Reader::for_each_chunk`]). A sparse file
/// with one byte at a multi-GB offset streams through a scratch buffer
/// of at most this size instead of materializing `eof` bytes up front.
pub const READ_CHUNK: usize = 8 << 20;

/// Default per-dropping readahead for sequential scans: when a batch
/// continues exactly where the previous read of that dropping ended,
/// the engine over-reads by up to this much and serves the follow-on
/// batch from memory.
pub const DEFAULT_READAHEAD: u64 = 128 * 1024;

/// Statistics about an assembled container index.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadStats {
    pub writers: usize,
    /// Raw index entries decoded by this open. A warm open served
    /// entirely from the flattened-index cache decodes zero.
    pub raw_entries: usize,
    pub merged_extents: usize,
    pub index_bytes: u64,
    /// Whether a valid `canonical.index` seeded the merge.
    pub from_canonical: bool,
    /// Entries decoded from dropping tails newer than the cache stamp.
    pub tail_entries: usize,
    /// Logical merge cost (see [`IndexMap::merge_steps`]).
    pub merge_steps: u64,
}

/// What a reader does upon detecting corrupt (checksum-mismatched)
/// data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuarantinePolicy {
    /// Surface an [`IntegrityError`] — no corrupt byte ever reaches the
    /// caller. The right default for checkpoint restart: a silently
    /// wrong restart is worse than a failed one.
    #[default]
    FailStop,
    /// Serve zeros for the bad block, count the failure, keep going —
    /// graceful degradation for bulk analysis over mostly-good data.
    /// Bytes from an *unverifiable* dropping (corrupt sidecar) are
    /// served raw under this policy.
    ZeroFill,
}

/// Verification state of one writer's data dropping, loaded at open.
enum ChkState {
    /// No sidecar (legacy container or checksumming disabled).
    Uncovered,
    /// Sidecar loaded; per-block verification runs lazily on first
    /// touch, memoized in the bitmaps.
    Covered(ChkTable),
    /// The sidecar itself is unreadable/inconsistent: nothing about the
    /// dropping can be trusted.
    Corrupt(String),
}

/// Per-block CRCs plus verify-once memoization. Entry `k` covers bytes
/// `[k·block, min((k+1)·block, data_len))`; bytes past the last entry's
/// coverage are uncovered (a crash or mid-session tail).
struct ChkTable {
    block: u64,
    crcs: Vec<u32>,
    /// Dropping length at open; coverage never extends past it.
    data_len: u64,
    verified: Vec<AtomicU64>,
    corrupt: Vec<AtomicU64>,
}

impl ChkTable {
    fn new(block: u64, crcs: Vec<u32>, data_len: u64) -> Self {
        let words = crcs.len().div_ceil(64);
        ChkTable {
            block,
            crcs,
            data_len,
            verified: (0..words).map(|_| AtomicU64::new(0)).collect(),
            corrupt: (0..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn get(bits: &[AtomicU64], k: u64) -> bool {
        bits[(k / 64) as usize].load(Ordering::Relaxed) >> (k % 64) & 1 == 1
    }

    fn set(bits: &[AtomicU64], k: u64) {
        bits[(k / 64) as usize].fetch_or(1 << (k % 64), Ordering::Relaxed);
    }
}

/// An open read handle on a container.
pub struct Reader {
    backend: Arc<dyn Backend>,
    paths: ContainerPaths,
    retry: RetryPolicy,
    map: IndexMap,
    stats: ReadStats,
    metrics: Arc<PlfsMetrics>,
    /// Per-dropping handle/readahead cache (see [`DropState`]). The
    /// index is immutable for the reader's lifetime and droppings are
    /// append-only, so cached bytes can never go stale.
    drops: Mutex<HashMap<u32, DropState>>,
    readahead: u64,
    /// Per-writer checksum tables, loaded once at open (droppings and
    /// sidecars are append-only; the table never goes stale for the
    /// bytes it covers).
    chk: HashMap<u32, ChkState>,
    verify: bool,
    quarantine: QuarantinePolicy,
    /// `Some(rank)` when this handle's reads go into the capture log
    /// attributed to `rank` (set by [`crate::Plfs::open_reader_as`]);
    /// internal readers (stat, flatten) stay `None` and record nothing.
    record_rank: Option<u32>,
}

/// Cached per-dropping state: the resolved path (the "handle" — path
/// formatting is the per-piece cost the cache exists to kill) plus the
/// most recent readahead surplus.
struct DropState {
    path: Arc<str>,
    /// Physical offset the cached block starts at.
    cache_phys: u64,
    /// Bytes `[cache_phys, cache_phys + cache.len())` of the dropping.
    cache: Vec<u8>,
    /// Physical offset one past the last read — the sequential-scan
    /// detector that arms readahead.
    next_phys: u64,
}

/// One coalesced backend read: a contiguous physical run of one
/// writer's data dropping, scattered into (possibly many) disjoint
/// segments of the caller's buffer. Built by [`Reader::read_at`] in a
/// single pass over the lookup pieces — each writer keeps one open
/// batch, and a piece continuing that batch's physical run is appended
/// instead of starting a new backend read. No sorting: the pieces tile
/// the buffer in logical order, which is also per-writer physical
/// order for append-only droppings, so the common N-1 strided restart
/// collapses to one batch per dropping.
struct Batch<'a> {
    writer: u32,
    physical: u64,
    len: u64,
    /// `(offset within the run, destination slice of the caller's buf)`.
    segs: Vec<(u64, &'a mut [u8])>,
}

/// Read at least `need` bytes of `buf` starting at `off`, looping at
/// the advanced offset on short-but-nonzero reads (POSIX `pread` may
/// deliver fewer bytes than asked anywhere in the file; only `Ok(0)`
/// means EOF). Each backend call is individually retried per `retry`.
/// Returns the total bytes read (may exceed `need` up to `buf.len()` —
/// the readahead surplus); errors with `UnexpectedEof` only when true
/// EOF arrives before `need` bytes.
fn read_at_least(
    backend: &dyn Backend,
    retry: &RetryPolicy,
    path: &str,
    off: u64,
    buf: &mut [u8],
    need: usize,
    backend_ops: &mut u64,
) -> io::Result<usize> {
    let mut filled = 0usize;
    while filled < need {
        *backend_ops += 1;
        let got = retry.run(|| backend.read_at(path, off + filled as u64, &mut buf[filled..]))?;
        if got == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("data dropping {path} truncated: wanted {need} at {off}, got {filled}"),
            ));
        }
        filled += got;
    }
    Ok(filled)
}

/// Load the checksum sidecar for one writer's data dropping (at open).
/// Absent sidecar → [`ChkState::Uncovered`]; unparseable, unreadable,
/// or inconsistent with the dropping → [`ChkState::Corrupt`].
fn load_chk_state(
    backend: &dyn Backend,
    paths: &ContainerPaths,
    rank: u32,
    data_path: &str,
) -> ChkState {
    let path = paths.chk_dropping(rank);
    if !backend.exists(&path) {
        return ChkState::Uncovered;
    }
    let blob = match backend.read_all(&path) {
        Ok(b) => b,
        Err(e) => return ChkState::Corrupt(format!("sidecar unreadable: {e}")),
    };
    let (block, crcs) = match parse_chk(&blob) {
        Ok(p) => p,
        Err(e) => return ChkState::Corrupt(e.to_string()),
    };
    if crcs.is_empty() {
        // Header-only sidecar: a session that never completed a block.
        return ChkState::Uncovered;
    }
    let data_len = backend.len(data_path).unwrap_or(0);
    if (crcs.len() as u64 - 1) * block >= data_len {
        // An entry starts at/after EOF: the sidecar claims coverage of
        // bytes that don't exist. Trust nothing about this dropping.
        return ChkState::Corrupt(format!(
            "sidecar covers {} blocks but dropping holds {data_len} bytes",
            crcs.len()
        ));
    }
    ChkState::Covered(ChkTable::new(block, crcs, data_len))
}

/// What the ingest stage produced for the merge.
struct Ingest {
    /// Per-source pre-merged fragments (canonical cache and/or ranks).
    fragment_lists: Vec<Vec<IndexEntry>>,
    raw_entries: usize,
    tail_entries: usize,
    index_bytes: u64,
    from_canonical: bool,
    /// Peak concurrently-running fetch+decode jobs.
    peak_workers: usize,
    /// Cache stamps to persist after the merge (`None`: don't persist —
    /// the cache is already exactly current).
    persist: Option<(u64, Vec<(u32, u64)>)>,
}

impl Reader {
    /// Open the container: discover droppings, fetch + decode every
    /// index concurrently (bounded by the host's parallelism), merge.
    /// Transient backend errors during discovery and index fetch are
    /// masked per `retry`.
    pub(crate) fn open(
        backend: Arc<dyn Backend>,
        paths: ContainerPaths,
        retry: RetryPolicy,
        metrics: Arc<PlfsMetrics>,
    ) -> io::Result<Self> {
        let span = metrics.open_timer.start();
        let root = metrics.trace.start("plfs.open", Phase::Compute, "plfs.read", 0);
        let root_id = root.id();
        // Per-operation retry: wrapping the whole discovery (dozens of
        // backend calls) in one retry unit would compound the per-call
        // fault probability instead of masking it.
        let retried = RetriedBackend::new(backend.as_ref(), &retry);
        let droppings = discover_droppings(&retried, &paths)?;
        let writers = droppings.len();

        let ingest = ingest(&retried, &paths, &droppings, &metrics, root_id)?;

        let merge_span = metrics.trace.start("index.merge", Phase::Compute, "plfs.read", root_id);
        let total_fragments: usize = ingest.fragment_lists.iter().map(Vec::len).sum();
        let mut all = Vec::with_capacity(total_fragments);
        for list in &ingest.fragment_lists {
            all.extend_from_slice(list);
        }
        let mut map = IndexMap::build(all);
        map.set_entries_seen(ingest.raw_entries);
        merge_span.end();

        // Persist the flattened view for the next open (best-effort:
        // the cache is never load-bearing).
        if let Some((session, covered)) = ingest.persist {
            let canon =
                CanonicalIndex { session_count: session, covered, fragments: map.fragments() };
            if write_canonical(&retried, &paths, &canon).is_ok() {
                metrics.canonical_writes.inc();
            }
        }

        metrics.merge_fanin.observe(writers as u64);
        metrics.raw_entries.add(ingest.raw_entries as u64);
        metrics.tail_entries.add(ingest.tail_entries as u64);
        metrics.merged_extents.add(map.extents().len() as u64);
        metrics.index_bytes_read.add(ingest.index_bytes);
        metrics.merge_steps.add(map.merge_steps());
        metrics.decode_concurrency.observe(ingest.peak_workers as u64);
        if ingest.from_canonical {
            metrics.canonical_hits.inc();
        }
        // Load checksum sidecars (verify-on-read). Droppings and
        // sidecars are append-only and a new writer session deletes its
        // rank's sidecars before touching data, so a table loaded here
        // stays valid for every byte it covers.
        let mut chk = HashMap::new();
        for (rank, _, data_path) in &droppings {
            chk.insert(*rank, load_chk_state(&retried, &paths, *rank, data_path));
        }

        root.end();
        span.stop();
        Ok(Reader {
            backend,
            paths,
            retry,
            stats: ReadStats {
                writers,
                raw_entries: ingest.raw_entries,
                merged_extents: map.extents().len(),
                index_bytes: ingest.index_bytes,
                from_canonical: ingest.from_canonical,
                tail_entries: ingest.tail_entries,
                merge_steps: map.merge_steps(),
            },
            map,
            metrics,
            drops: Mutex::new(HashMap::new()),
            readahead: DEFAULT_READAHEAD,
            chk,
            verify: true,
            quarantine: QuarantinePolicy::default(),
            record_rank: None,
        })
    }

    /// Attribute this handle's ops to `rank` in the instance capture
    /// log. Only [`crate::Plfs::open_reader_as`] calls this — internal
    /// readers never record.
    pub(crate) fn enable_recording(&mut self, rank: u32) {
        self.record_rank = rank.into();
    }

    /// Capture one delivered read: requested length in the len column,
    /// delivered count + CRC32 of the delivered bytes in the result.
    fn record_read(&self, offset: u64, requested: usize, delivered: &[u8]) {
        if let Some(rank) = self.record_rank {
            if let Some(rec) = &self.metrics.recorder {
                rec.record(
                    self.paths.base(),
                    rank,
                    OpKind::Read,
                    offset,
                    requested as u64,
                    OpResult::Read { got: delivered.len() as u64, crc: crc32(delivered) },
                );
            }
        }
    }

    /// Tune the per-dropping readahead (bytes; 0 disables over-reads).
    /// Benchmarks use this to isolate coalescing from readahead.
    pub fn set_readahead(&mut self, bytes: u64) {
        self.readahead = bytes;
    }

    /// Enable/disable checksum verification on reads (default on).
    /// Disabling is for benchmarking the verification overhead; data
    /// from unchecksummed (legacy) droppings is served either way.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Choose what happens when verification detects corruption.
    pub fn set_quarantine(&mut self, policy: QuarantinePolicy) {
        self.quarantine = policy;
    }

    /// Verify the checksummed blocks overlapping `buf`, which holds the
    /// bytes at physical `[phys, phys + buf.len())` of `writer`'s data
    /// dropping. Each covered block is CRC-checked once per reader
    /// (memoized in the table's bitmaps); blocks only partially inside
    /// `buf` are re-read in full from the backend (counted in `ops`).
    /// On mismatch: `FailStop` surfaces an [`IntegrityError`];
    /// `ZeroFill` zeroes the block's overlap with `buf` and continues.
    fn verify_span(&self, writer: u32, phys: u64, buf: &mut [u8], ops: &mut u64) -> io::Result<()> {
        if !self.verify || buf.is_empty() {
            return Ok(());
        }
        let table = match self.chk.get(&writer) {
            None | Some(ChkState::Uncovered) => return Ok(()),
            Some(ChkState::Corrupt(detail)) => {
                return match self.quarantine {
                    QuarantinePolicy::FailStop => Err(IntegrityError {
                        path: self.paths.chk_dropping(writer),
                        offset: 0,
                        detail: detail.clone(),
                    }
                    .into_io()),
                    // Nothing provably bad, nothing verifiable: serve
                    // the bytes raw. `fsck::scrub` reports the sidecar.
                    QuarantinePolicy::ZeroFill => Ok(()),
                };
            }
            Some(ChkState::Covered(t)) => t,
        };
        let bsz = table.block;
        let span_end = phys + buf.len() as u64;
        for k in phys / bsz..=(span_end - 1) / bsz {
            if k as usize >= table.crcs.len() {
                break; // uncovered tail (crash or mid-session bytes)
            }
            let bstart = k * bsz;
            let bend = ((k + 1) * bsz).min(table.data_len);
            if bend <= bstart {
                break;
            }
            let mut bad = ChkTable::get(&table.corrupt, k);
            if !bad && !ChkTable::get(&table.verified, k) {
                let crc = if bstart >= phys && bend <= span_end {
                    crc32(&buf[(bstart - phys) as usize..(bend - phys) as usize])
                } else {
                    // Block straddles the span: verify a full re-read.
                    let mut whole = vec![0u8; (bend - bstart) as usize];
                    let need = whole.len();
                    read_at_least(
                        self.backend.as_ref(),
                        &self.retry,
                        &self.paths.data_dropping(writer),
                        bstart,
                        &mut whole,
                        need,
                        ops,
                    )?;
                    crc32(&whole)
                };
                self.metrics.verify_blocks.inc();
                self.metrics.verify_bytes.add(bend - bstart);
                if crc == table.crcs[k as usize] {
                    ChkTable::set(&table.verified, k);
                } else {
                    ChkTable::set(&table.corrupt, k);
                    self.metrics.verify_failures.inc();
                    bad = true;
                }
            }
            if bad {
                match self.quarantine {
                    QuarantinePolicy::FailStop => {
                        return Err(IntegrityError {
                            path: self.paths.data_dropping(writer),
                            offset: bstart,
                            detail: format!(
                                "block {k} checksum mismatch ({} bytes)",
                                bend - bstart
                            ),
                        }
                        .into_io());
                    }
                    QuarantinePolicy::ZeroFill => {
                        let zs = (bstart.max(phys) - phys) as usize;
                        let ze = (bend.min(span_end) - phys) as usize;
                        buf[zs..ze].fill(0);
                    }
                }
            }
        }
        Ok(())
    }

    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    /// Logical file size.
    pub fn size(&self) -> u64 {
        self.map.eof()
    }

    /// The merged index (for flattening and analysis).
    pub fn index(&self) -> &IndexMap {
        &self.map
    }

    /// Read into `buf` at `offset`. Returns bytes read (short at EOF);
    /// holes within the file read as zeros.
    ///
    /// This is the parallel coalescing engine: extent pieces are
    /// grouped per data dropping, physically-adjacent runs become one
    /// backend read each, and the batches fan out
    /// onto the bounded worker pool with results scattered straight
    /// into `buf`. `plfs.read.bytes` counts only bytes actually
    /// delivered: a failed read contributes nothing.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let t0 = self.metrics.clock.now_nanos();
        let res = self.read_at_uninstrumented(offset, buf);
        let dt = self.metrics.clock.now_nanos().saturating_sub(t0);
        self.metrics.read_lat.observe(dt);
        match &res {
            Ok(n) => {
                if let Some(m) = &self.metrics.meters {
                    m.read_rate.mark(*n as u64);
                    m.read_lat.observe(dt);
                }
            }
            Err(_) => self.metrics.read_errors.inc(),
        }
        self.metrics.flight.maybe_sample();
        res
    }

    fn read_at_uninstrumented(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let eof = self.map.eof();
        let requested = buf.len();
        self.metrics.read_ops.inc();
        if offset >= eof {
            self.record_read(offset, requested, &[]);
            return Ok(0);
        }
        let want = (buf.len() as u64).min(eof - offset) as usize;
        let mut rest = &mut buf[..want];
        let pieces = self.map.lookup(offset, want as u64);
        let root = self.metrics.trace.start("plfs.read", Phase::Transfer, "plfs.read", 0);
        let root_id = root.id();

        // One pass over the pieces — they tile `[offset, offset+want)`
        // in logical order, so the caller's buffer is peeled into
        // disjoint per-piece slices as we go: holes are zero-filled
        // immediately, data slices attach to the writer's open batch
        // when they continue its physical run, else start a new one.
        let mut batches: Vec<Batch> = Vec::new();
        let mut open: HashMap<u32, usize> = HashMap::new();
        for (_, piece_len, extent) in pieces {
            let tail = std::mem::take(&mut rest);
            let (seg, tail) = tail.split_at_mut(piece_len as usize);
            rest = tail;
            let Some(x) = extent else {
                seg.fill(0);
                continue;
            };
            match open.get(&x.writer) {
                Some(&j) if batches[j].physical + batches[j].len == x.physical => {
                    let b = &mut batches[j];
                    b.segs.push((b.len, seg));
                    b.len += piece_len;
                }
                _ => {
                    open.insert(x.writer, batches.len());
                    batches.push(Batch {
                        writer: x.writer,
                        physical: x.physical,
                        len: piece_len,
                        segs: vec![(0, seg)],
                    });
                }
            }
        }

        // Fan out, one job per batch. Each batch sits in a Mutex so the
        // shared `Fn` closure can hand its worker exclusive access.
        let coalesced: u64 = batches.iter().filter(|b| b.segs.len() >= 2).map(|b| b.len).sum();
        let n_batches = batches.len();
        let jobs: Vec<Mutex<Batch>> = batches.into_iter().map(Mutex::new).collect();
        let cap = pool::available_parallelism();
        let (results, peak) = pool::run_bounded(n_batches, cap, |i| {
            self.serve_batch(&mut jobs[i].lock().unwrap(), root_id)
        });
        let mut backend_ops = 0u64;
        for r in results {
            backend_ops += r?;
        }

        if n_batches > 0 {
            self.metrics.read_batches.add(n_batches as u64);
            self.metrics.read_backend_ops.add(backend_ops);
            self.metrics.read_parallelism.observe(peak as u64);
            self.metrics.read_coalesced_bytes.add(coalesced);
        }
        self.metrics.read_bytes.add(want as u64);
        root.end();
        // The batch borrows end here; capture sees the delivered bytes.
        drop(jobs);
        self.record_read(offset, requested, &buf[..want]);
        Ok(want)
    }

    /// [`Reader::verify_span`] under a `read.verify` trace span
    /// parented to the batch that fetched the bytes.
    fn verify_traced(
        &self,
        writer: u32,
        phys: u64,
        buf: &mut [u8],
        ops: &mut u64,
        parent: u64,
    ) -> io::Result<()> {
        if !self.verify {
            return Ok(());
        }
        let span = self.metrics.trace.start("read.verify", Phase::Compute, "plfs.read", parent);
        let res = self.verify_span(writer, phys, buf, ops);
        span.end();
        res
    }

    /// Serve one coalesced batch: one contiguous physical run of one
    /// dropping, scattered into its routed buffer segments. Returns the
    /// number of backend reads issued (0 on a readahead-cache hit).
    fn serve_batch(&self, b: &mut Batch<'_>, root_id: u64) -> io::Result<u64> {
        let span = self.metrics.trace.start("read.batch", Phase::Transfer, "plfs.read", root_id);
        let blen = b.len as usize;
        let mut ops = 0u64;

        let mut drops = self.drops.lock().unwrap();
        let st = drops.entry(b.writer).or_insert_with(|| DropState {
            path: Arc::from(self.paths.data_dropping(b.writer).as_str()),
            cache_phys: 0,
            cache: Vec::new(),
            next_phys: 0,
        });
        // Served entirely from the readahead block?
        if b.physical >= st.cache_phys
            && b.physical + b.len <= st.cache_phys + st.cache.len() as u64
        {
            let base = (b.physical - st.cache_phys) as usize;
            for (run_off, seg) in b.segs.iter_mut() {
                let s = base + *run_off as usize;
                seg.copy_from_slice(&st.cache[s..s + seg.len()]);
            }
            st.next_phys = b.physical + b.len;
            self.metrics.read_readahead_hits.inc();
            span.end();
            return Ok(0);
        }
        // A batch continuing exactly where the last one ended is a
        // sequential scan: over-read so the next batch hits the cache.
        let sequential = st.next_phys == b.physical && self.readahead > 0;
        let path = st.path.clone();
        st.next_phys = b.physical + b.len;
        // Never hold the dropping-map lock across backend I/O — other
        // batches of this read would serialize behind it.
        drop(drops);

        let ext = if sequential { self.readahead as usize } else { 0 };
        if ext == 0 && b.segs.len() == 1 && b.segs[0].1.len() == blen {
            // Single-segment batch, no over-read: straight into `buf`.
            let (_, seg) = &mut b.segs[0];
            read_at_least(
                self.backend.as_ref(),
                &self.retry,
                &path,
                b.physical,
                seg,
                blen,
                &mut ops,
            )?;
            self.verify_traced(b.writer, b.physical, seg, &mut ops, span.id())?;
            span.end();
            return Ok(ops);
        }
        let mut scratch = vec![0u8; blen + ext];
        let got = read_at_least(
            self.backend.as_ref(),
            &self.retry,
            &path,
            b.physical,
            &mut scratch,
            blen,
            &mut ops,
        )?;
        // Verify everything fetched — including readahead surplus — so
        // the cache only ever holds verified (or quarantine-zeroed)
        // bytes; the cache-hit path above serves without re-checking.
        self.verify_traced(b.writer, b.physical, &mut scratch[..got], &mut ops, span.id())?;
        for (run_off, seg) in b.segs.iter_mut() {
            let s = *run_off as usize;
            seg.copy_from_slice(&scratch[s..s + seg.len()]);
        }
        if got > blen {
            // Stash the over-read surplus for the follow-on batch.
            let mut drops = self.drops.lock().unwrap();
            if let Some(st) = drops.get_mut(&b.writer) {
                scratch.copy_within(blen..got, 0);
                scratch.truncate(got - blen);
                st.cache = scratch;
                st.cache_phys = b.physical + b.len;
            }
        }
        span.end();
        Ok(ops)
    }

    /// The serial per-piece read path: one backend read per extent, no
    /// coalescing, no fan-out, no readahead. Kept as the differential-
    /// testing oracle for the engine and the baseline `repro readscale`
    /// measures against. Same POSIX semantics as [`Reader::read_at`]
    /// (short reads looped, holes zeroed, bytes counted on delivery).
    pub fn read_at_serial(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let eof = self.map.eof();
        let requested = buf.len();
        self.metrics.read_ops.inc();
        if offset >= eof {
            self.record_read(offset, requested, &[]);
            return Ok(0);
        }
        let want = (buf.len() as u64).min(eof - offset) as usize;
        let mut ops = 0u64;
        for (piece_off, piece_len, extent) in self.map.lookup(offset, want as u64) {
            let dst = (piece_off - offset) as usize;
            let dst_end = dst + piece_len as usize;
            match extent {
                None => buf[dst..dst_end].fill(0),
                Some(x) => {
                    let data_path = self.paths.data_dropping(x.writer);
                    read_at_least(
                        self.backend.as_ref(),
                        &self.retry,
                        &data_path,
                        x.physical,
                        &mut buf[dst..dst_end],
                        piece_len as usize,
                        &mut ops,
                    )?;
                    self.verify_span(x.writer, x.physical, &mut buf[dst..dst_end], &mut ops)?;
                }
            }
        }
        self.metrics.read_backend_ops.add(ops);
        self.metrics.read_bytes.add(want as u64);
        self.record_read(offset, requested, &buf[..want]);
        Ok(want)
    }

    /// Stream the whole logical file through `f(offset, chunk)` in
    /// chunks of at most [`READ_CHUNK`] bytes. Peak buffering is one
    /// chunk regardless of EOF — a sparse file with one byte at a
    /// multi-GB offset never materializes the hole.
    pub fn for_each_chunk<F>(&self, mut f: F) -> io::Result<()>
    where
        F: FnMut(u64, &[u8]) -> io::Result<()>,
    {
        let eof = self.size();
        let mut scratch = vec![0u8; eof.min(READ_CHUNK as u64) as usize];
        let mut off = 0u64;
        while off < eof {
            let n = ((eof - off) as usize).min(READ_CHUNK);
            let got = self.read_at(off, &mut scratch[..n])?;
            debug_assert_eq!(got, n, "mid-file reads are never short");
            f(off, &scratch[..got])?;
            off += got as u64;
        }
        Ok(())
    }

    /// Read the whole logical file (convenience for flatten/tests).
    /// Streams via [`Reader::for_each_chunk`], so transient buffering
    /// stays bounded even though the returned vector is the full file.
    pub fn read_all(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.size() as usize);
        self.for_each_chunk(|_, chunk| {
            out.extend_from_slice(chunk);
            Ok(())
        })?;
        Ok(out)
    }
}

impl Drop for Reader {
    fn drop(&mut self) {
        // Capture-visible readers bracket their reads with rclose so a
        // replayed log tears down read handles where the capture did.
        if let Some(rank) = self.record_rank {
            if let Some(rec) = &self.metrics.recorder {
                rec.record(self.paths.base(), rank, OpKind::CloseReader, 0, 0, OpResult::Ok);
            }
        }
    }
}

/// Load, validate, fetch, and decode everything the merge needs:
/// the canonical cache if fresh, plus whole droppings (cold) or just
/// grown tails (warm-with-appends) on the bounded pool.
fn ingest(
    retried: &RetriedBackend<'_>,
    paths: &ContainerPaths,
    droppings: &[(u32, String, String)],
    metrics: &Arc<PlfsMetrics>,
    root_id: u64,
) -> io::Result<Ingest> {
    // Try the flattened-index cache first.
    if let Some((canon, tails)) = load_canonical(retried, paths) {
        if tails.is_empty() {
            return Ok(Ingest {
                index_bytes: canon.covered.iter().map(|&(_, l)| l).sum(),
                fragment_lists: vec![canon.fragments],
                raw_entries: 0,
                tail_entries: 0,
                from_canonical: true,
                peak_workers: 0,
                persist: None, // exactly current already
            });
        }
        if let Some(mut ingest) = ingest_tails(retried, paths, &canon, &tails, metrics, root_id) {
            // Stamp the refreshed cache with the grown lengths.
            let mut covered: std::collections::HashMap<u32, u64> =
                canon.covered.iter().copied().collect();
            for t in &tails {
                covered.insert(t.rank, t.len);
            }
            let mut covered: Vec<(u32, u64)> = covered.into_iter().collect();
            covered.sort_unstable();
            ingest.persist = Some((canon.session_count, covered));
            ingest.fragment_lists.push(canon.fragments);
            ingest.from_canonical = true;
            ingest.index_bytes += canon.covered.iter().map(|&(_, l)| l).sum::<u64>();
            return Ok(ingest);
        }
        // A torn or undecodable tail: fall through to a cold rebuild.
    }

    // Cold path: fetch + decode + pre-merge every rank concurrently.
    // Stamp with the epoch watermark *before* reading the droppings: a
    // writer session that lands mid-merge advances the watermark, so
    // the stale stamp invalidates whatever this merge saw.
    let session = epoch_watermark(retried, paths);
    let cap = pool::available_parallelism();
    let results: Vec<io::Result<(Vec<IndexEntry>, usize, u64)>>;
    let peak;
    (results, peak) = pool::run_bounded(droppings.len(), cap, |i| {
        let (_, idx_path, _) = &droppings[i];
        let fetch = metrics.trace.start("index.fetch", Phase::Transfer, "plfs.read", root_id);
        let blob = retried.read_all(idx_path)?;
        fetch.end();
        let span = metrics.trace.start("index.decode", Phase::Compute, "plfs.read", root_id);
        let entries = decode(&blob)?;
        span.end();
        let raw = entries.len();
        // Pre-merge this rank's entries so the global merge is a k-way
        // merge of already-disjoint runs.
        let pre = crate::index::sweep_merge(entries);
        Ok((pre.frags, raw, blob.len() as u64))
    });
    let mut fragment_lists = Vec::with_capacity(droppings.len());
    let mut raw_entries = 0usize;
    let mut index_bytes = 0u64;
    let mut covered = Vec::with_capacity(droppings.len());
    for (r, (rank, ..)) in results.into_iter().zip(droppings) {
        let (frags, raw, bytes) = r?;
        raw_entries += raw;
        index_bytes += bytes;
        covered.push((*rank, bytes));
        fragment_lists.push(frags);
    }
    Ok(Ingest {
        fragment_lists,
        raw_entries,
        tail_entries: 0,
        index_bytes,
        from_canonical: false,
        peak_workers: peak,
        persist: Some((session, covered)),
    })
}

/// Fetch + decode just the grown tails listed by [`freshness`].
/// `None` means a tail was unreadable — caller rebuilds cold.
fn ingest_tails(
    retried: &RetriedBackend<'_>,
    _paths: &ContainerPaths,
    canon: &CanonicalIndex,
    tails: &[Tail],
    metrics: &Arc<PlfsMetrics>,
    root_id: u64,
) -> Option<Ingest> {
    let cap = pool::available_parallelism();
    let (results, peak) = pool::run_bounded(tails.len(), cap, |i| {
        let t = &tails[i];
        let fetch = metrics.trace.start("index.fetch", Phase::Transfer, "plfs.read", root_id);
        let mut buf = vec![0u8; (t.len - t.covered) as usize];
        let got = retried.read_at(&t.index_path, t.covered, &mut buf).ok()?;
        buf.truncate(got);
        fetch.end();
        let span = metrics.trace.start("index.decode", Phase::Compute, "plfs.read", root_id);
        // The covered stamp always ends on a record boundary (it was a
        // whole dropping when stamped), so the tail decodes standalone.
        let entries = decode(&buf).ok()?;
        span.end();
        Some((entries, buf.len() as u64))
    });
    let mut fragment_lists = Vec::with_capacity(tails.len() + 1);
    let mut raw_entries = 0usize;
    let mut index_bytes = 0u64;
    for r in results {
        let (entries, bytes) = r?;
        raw_entries += entries.len();
        index_bytes += bytes;
        fragment_lists.push(entries);
    }
    let _ = canon;
    Some(Ingest {
        fragment_lists,
        raw_entries,
        tail_entries: raw_entries,
        index_bytes,
        from_canonical: false, // caller flips after attaching fragments
        peak_workers: peak,
        persist: None, // caller stamps
    })
}

/// Load and validate `canonical.index`; `None` covers every failure
/// mode (absent, torn, undecodable, stale) — callers just rebuild.
fn load_canonical(
    retried: &RetriedBackend<'_>,
    paths: &ContainerPaths,
) -> Option<(CanonicalIndex, Vec<Tail>)> {
    let path = paths.canonical_index();
    if !retried.exists(&path) {
        return None;
    }
    let blob = retried.read_all(&path).ok()?;
    let canon = CanonicalIndex::decode(&blob).ok()?;
    let tails = freshness(retried, paths, &canon).ok()?;
    Some((canon, tails))
}

/// Persist a canonical index (create truncates any stale one first).
fn write_canonical(
    retried: &RetriedBackend<'_>,
    paths: &ContainerPaths,
    canon: &CanonicalIndex,
) -> io::Result<()> {
    let path = paths.canonical_index();
    retried.create(&path)?;
    retried.append(&path, &canon.encode())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::container::{create_container, ContainerPaths};
    use crate::write::{Writer, WriterConfig};

    fn setup(hostdirs: u32) -> (Arc<MemBackend>, ContainerPaths, Arc<PlfsMetrics>) {
        let b = Arc::new(MemBackend::new());
        let p = ContainerPaths::new("/f", hostdirs);
        create_container(b.as_ref(), &p).unwrap();
        (b, p, PlfsMetrics::detached())
    }

    fn mkwriter(
        b: &Arc<MemBackend>,
        p: &ContainerPaths,
        metrics: &Arc<PlfsMetrics>,
        rank: u32,
    ) -> Writer {
        Writer::new(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            WriterConfig::default(),
            rank,
            metrics.clone(),
            0,
        )
        .unwrap()
    }

    fn reader(b: &Arc<MemBackend>, p: &ContainerPaths) -> Reader {
        Reader::open(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            RetryPolicy::none(),
            PlfsMetrics::detached(),
        )
        .unwrap()
    }

    #[test]
    fn single_writer_roundtrip() {
        let (b, p, clock) = setup(2);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(0, b"hello ").unwrap();
        w.write_at(6, b"world").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.size(), 11);
        assert_eq!(r.read_all().unwrap(), b"hello world");
    }

    #[test]
    fn n1_strided_reassembles() {
        // 8 ranks write a strided N-1 checkpoint of 64 records.
        let (b, p, clock) = setup(4);
        let ranks = 8u32;
        let rec = 1000usize;
        let total_recs = 64u64;
        let mut writers: Vec<Writer> = (0..ranks).map(|r| mkwriter(&b, &p, &clock, r)).collect();
        for record in 0..total_recs {
            let rank = (record % ranks as u64) as usize;
            let fill = (record % 251) as u8;
            writers[rank].write_at(record * rec as u64, &vec![fill; rec]).unwrap();
        }
        for w in writers {
            w.close().unwrap();
        }
        let r = reader(&b, &p);
        assert_eq!(r.size(), total_recs * rec as u64);
        let data = r.read_all().unwrap();
        for record in 0..total_recs {
            let fill = (record % 251) as u8;
            let s = record as usize * rec;
            assert!(data[s..s + rec].iter().all(|&x| x == fill), "record {record} corrupt");
        }
        assert_eq!(r.stats().writers, ranks as usize);
        assert_eq!(r.stats().raw_entries, total_recs as usize);
    }

    #[test]
    fn holes_read_as_zeros() {
        let (b, p, clock) = setup(1);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(100, b"xx").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.size(), 102);
        let data = r.read_all().unwrap();
        assert!(data[..100].iter().all(|&x| x == 0));
        assert_eq!(&data[100..], b"xx");
    }

    #[test]
    fn read_past_eof_is_short() {
        let (b, p, clock) = setup(1);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(0, b"abc").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        let mut buf = [0u8; 10];
        assert_eq!(r.read_at(0, &mut buf).unwrap(), 3);
        assert_eq!(r.read_at(3, &mut buf).unwrap(), 0);
        assert_eq!(r.read_at(999, &mut buf).unwrap(), 0);
    }

    #[test]
    fn overwrite_last_writer_wins() {
        let (b, p, clock) = setup(2);
        let mut w0 = mkwriter(&b, &p, &clock, 0);
        let mut w1 = mkwriter(&b, &p, &clock, 1);
        w0.write_at(0, &[b'a'; 100]).unwrap();
        w1.write_at(50, &[b'b'; 100]).unwrap();
        w0.close().unwrap();
        w1.close().unwrap();
        let r = reader(&b, &p);
        let data = r.read_all().unwrap();
        assert_eq!(data.len(), 150);
        assert!(data[..50].iter().all(|&x| x == b'a'));
        assert!(data[50..].iter().all(|&x| x == b'b'));
    }

    #[test]
    fn many_writers_parallel_decode_path() {
        let (b, p, clock) = setup(8);
        for rank in 0..16u32 {
            let mut w = mkwriter(&b, &p, &clock, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let r = reader(&b, &p);
        assert_eq!(r.stats().writers, 16);
        let data = r.read_all().unwrap();
        for rank in 0..16usize {
            assert!(data[rank * 10..(rank + 1) * 10].iter().all(|&x| x == rank as u8));
        }
    }

    #[test]
    fn decoder_concurrency_stays_bounded() {
        let (b, p, clock) = setup(8);
        let ranks = (pool::available_parallelism() * 3).max(12) as u32;
        for rank in 0..ranks {
            let mut w = mkwriter(&b, &p, &clock, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        assert_eq!(r.stats().writers, ranks as usize);
        let h = rm.registry.histogram("plfs.index.decode_concurrency");
        assert_eq!(h.count(), 1);
        assert!(
            h.max() <= pool::available_parallelism() as u64,
            "peak decoder concurrency {} exceeds available parallelism {}",
            h.max(),
            pool::available_parallelism()
        );
    }

    #[test]
    fn unaligned_reads_cross_extents() {
        let (b, p, clock) = setup(2);
        let mut w0 = mkwriter(&b, &p, &clock, 0);
        let mut w1 = mkwriter(&b, &p, &clock, 1);
        // Alternating 10-byte records from two ranks.
        for i in 0..10u64 {
            let (w, fill) = if i % 2 == 0 { (&mut w0, b'e') } else { (&mut w1, b'o') };
            w.write_at(i * 10, &[fill; 10]).unwrap();
        }
        w0.close().unwrap();
        w1.close().unwrap();
        let r = reader(&b, &p);
        let mut buf = [0u8; 25];
        let n = r.read_at(5, &mut buf).unwrap();
        assert_eq!(n, 25);
        assert_eq!(&buf[..5], b"eeeee");
        assert_eq!(&buf[5..15], b"oooooooooo");
        assert_eq!(&buf[15..25], b"eeeeeeeeee");
    }

    #[test]
    fn metrics_record_merge_fanin_and_read_bytes() {
        let (b, p, m) = setup(4);
        for rank in 0..6u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        let reg = &rm.registry;
        let fanin = reg.histogram("plfs.index.merge_fanin");
        assert_eq!(fanin.count(), 1);
        assert_eq!(fanin.max(), 6, "six writers merged");
        assert_eq!(reg.value("plfs.index.raw_entries"), Some(6));
        assert!(reg.value("plfs.index.bytes_read").unwrap() > 0);
        let data = r.read_all().unwrap();
        assert_eq!(reg.value("plfs.read.ops"), Some(1));
        assert_eq!(reg.value("plfs.read.bytes"), Some(data.len() as u64));
    }

    #[test]
    fn warm_open_decodes_zero_raw_entries() {
        let (b, p, m) = setup(4);
        for rank in 0..6u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        // Cold open builds and persists the flattened index.
        let cold = reader(&b, &p);
        assert!(!cold.stats().from_canonical);
        assert_eq!(cold.stats().raw_entries, 6);
        assert!(b.exists(&p.canonical_index()), "cold open persists the cache");

        // Warm open: everything from the cache, zero raw decodes.
        let rm = PlfsMetrics::detached();
        let warm =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        assert!(warm.stats().from_canonical);
        assert_eq!(warm.stats().raw_entries, 0);
        assert_eq!(rm.registry.value("plfs.index.raw_entries"), Some(0));
        assert_eq!(rm.registry.value("plfs.index.canonical_hits"), Some(1));
        assert_eq!(warm.read_all().unwrap(), cold.read_all().unwrap());
        assert_eq!(warm.size(), cold.size());
        assert_eq!(warm.stats().merged_extents, cold.stats().merged_extents);
    }

    #[test]
    fn canonical_tail_merge_after_midsession_appends() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[b'a'; 100]).unwrap();
        w.sync().unwrap();
        // Reader opens mid-session: cache stamped at the current index
        // length, session still open.
        let r1 = reader(&b, &p);
        assert_eq!(r1.size(), 100);
        // The same session appends more (session count unchanged!).
        w.write_at(50, &[b'b'; 100]).unwrap();
        w.sync().unwrap();
        let rm = PlfsMetrics::detached();
        let r2 =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        assert!(r2.stats().from_canonical, "cache plus tail, not a rebuild");
        assert_eq!(r2.stats().tail_entries, 1);
        assert_eq!(r2.stats().raw_entries, 1, "only the tail is decoded");
        let data = r2.read_all().unwrap();
        assert_eq!(data.len(), 150);
        assert!(data[..50].iter().all(|&x| x == b'a'));
        assert!(data[50..].iter().all(|&x| x == b'b'));
        // The refreshed cache covers the tail: a third open is fully warm.
        let r3 = reader(&b, &p);
        assert!(r3.stats().from_canonical);
        assert_eq!(r3.stats().raw_entries, 0);
        w.close().unwrap();
    }

    #[test]
    fn new_writer_session_invalidates_canonical() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[b'a'; 10]).unwrap();
        w.close().unwrap();
        let _ = reader(&b, &p); // persists the cache
        assert!(b.exists(&p.canonical_index()));
        // A new session must not see stale cached extents.
        let mut w2 = Writer::new(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            WriterConfig::default(),
            0,
            m.clone(),
            1,
        )
        .unwrap();
        assert!(!b.exists(&p.canonical_index()), "writer open deletes the cache");
        w2.write_at(3, &[b'b'; 4]).unwrap();
        w2.close().unwrap();
        let r = reader(&b, &p);
        assert!(!r.stats().from_canonical);
        assert_eq!(r.read_all().unwrap(), b"aaabbbbaaa");
    }

    #[test]
    fn corrupt_canonical_falls_back_to_rebuild() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, b"payload").unwrap();
        w.close().unwrap();
        let _ = reader(&b, &p);
        // Tear the cache mid-file.
        let blob = b.read_all(&p.canonical_index()).unwrap();
        b.remove(&p.canonical_index()).unwrap();
        b.append(&p.canonical_index(), &blob[..blob.len() / 2]).unwrap();
        let r = reader(&b, &p);
        assert!(!r.stats().from_canonical, "torn cache ignored");
        assert_eq!(r.read_all().unwrap(), b"payload");
    }

    /// A pathological but POSIX-legal backend: every `read_at` delivers
    /// exactly one byte. The old read path treated any short-but-
    /// nonzero read as `UnexpectedEof`; the engine must loop at the
    /// advanced offset instead.
    struct ShortReadBackend(Arc<MemBackend>);

    impl Backend for ShortReadBackend {
        fn mkdir_all(&self, path: &str) -> io::Result<()> {
            self.0.mkdir_all(path)
        }
        fn create(&self, path: &str) -> io::Result<()> {
            self.0.create(path)
        }
        fn append(&self, path: &str, data: &[u8]) -> io::Result<u64> {
            self.0.append(path, data)
        }
        fn read_at(&self, path: &str, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read_at(path, offset, &mut buf[..n])
        }
        fn len(&self, path: &str) -> io::Result<u64> {
            self.0.len(path)
        }
        fn list(&self, dir: &str) -> io::Result<Vec<String>> {
            self.0.list(dir)
        }
        fn exists(&self, path: &str) -> bool {
            self.0.exists(path)
        }
        fn remove(&self, path: &str) -> io::Result<()> {
            self.0.remove(path)
        }
        fn remove_dir_all(&self, path: &str) -> io::Result<()> {
            self.0.remove_dir_all(path)
        }
    }

    #[test]
    fn short_read_backend_roundtrips_byte_at_a_time() {
        // Regression: a backend delivering 1 byte per read is legal
        // POSIX behaviour, not EOF. Before the fix this errored with
        // UnexpectedEof on any multi-byte piece.
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, b"hello world, short reads are legal").unwrap();
        w.close().unwrap();
        let short = Arc::new(ShortReadBackend(b));
        let r = Reader::open(
            short as Arc<dyn Backend>,
            p,
            RetryPolicy::none(),
            PlfsMetrics::detached(),
        )
        .unwrap();
        assert_eq!(r.read_all().unwrap(), b"hello world, short reads are legal");
        let mut buf = [0u8; 9];
        assert_eq!(r.read_at(6, &mut buf).unwrap(), 9);
        assert_eq!(&buf, b"world, sh");
        assert_eq!(r.read_at_serial(6, &mut buf).unwrap(), 9);
        assert_eq!(&buf, b"world, sh");
    }

    #[test]
    fn sparse_multi_gb_file_streams_bounded() {
        // Regression: read_all used to allocate `vec![0; eof]` up
        // front, so one byte at an 8 GiB offset OOMed the reader.
        // for_each_chunk must buffer at most READ_CHUNK at a time.
        let (b, p, m) = setup(1);
        let eof: u64 = 8 << 30;
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(eof - 1, b"z").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.size(), eof);
        let mut seen = 0u64;
        let mut last = Vec::new();
        r.for_each_chunk(|off, chunk| {
            assert_eq!(off, seen);
            assert!(chunk.len() <= READ_CHUNK, "chunk {} exceeds bound", chunk.len());
            // Spot-check hole bytes without scanning 8 GiB per-byte.
            if off + (chunk.len() as u64) < eof {
                assert_eq!(chunk[0], 0);
            }
            seen += chunk.len() as u64;
            if seen == eof {
                last = chunk.to_vec();
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, eof);
        assert_eq!(*last.last().unwrap(), b'z');
        assert!(last[..last.len() - 1].iter().rev().take(64).all(|&x| x == 0));
    }

    #[test]
    fn engine_coalesces_and_matches_serial_oracle() {
        // 4 ranks × 64 strided records: the engine should need ~1
        // coalesced backend read per dropping where the serial path
        // pays one per record.
        let (b, p, m) = setup(2);
        let ranks = 4u32;
        let rec = 100usize;
        let total = 64u64;
        let mut writers: Vec<Writer> = (0..ranks).map(|r| mkwriter(&b, &p, &m, r)).collect();
        for i in 0..total {
            let rank = (i % ranks as u64) as usize;
            writers[rank].write_at(i * rec as u64, &vec![(i % 251) as u8; rec]).unwrap();
        }
        for w in writers {
            w.close().unwrap();
        }
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        let mut fast = vec![0u8; (total as usize) * rec];
        let mut slow = vec![1u8; (total as usize) * rec];
        assert_eq!(r.read_at(0, &mut fast).unwrap(), fast.len());
        let engine_ops = rm.registry.value("plfs.read.backend_ops").unwrap();
        assert_eq!(r.read_at_serial(0, &mut slow).unwrap(), slow.len());
        let serial_ops = rm.registry.value("plfs.read.backend_ops").unwrap() - engine_ops;
        assert_eq!(fast, slow, "engine and serial oracle must agree byte-for-byte");
        assert_eq!(engine_ops, ranks as u64, "one coalesced read per dropping");
        assert_eq!(serial_ops, total, "serial pays one read per record");
        assert_eq!(rm.registry.value("plfs.read.batches"), Some(ranks as u64));
        assert_eq!(
            rm.registry.value("plfs.read.coalesced_bytes"),
            Some(total * rec as u64),
            "every batch merged ≥ 2 extents"
        );
        let par = rm.registry.histogram("plfs.read.parallelism");
        assert_eq!(par.count(), 1);
        assert!(par.max() >= 1 && par.max() <= pool::available_parallelism() as u64);
    }

    #[test]
    fn readahead_serves_sequential_scans_from_cache() {
        let (b, p, m) = setup(1);
        let mut w = mkwriter(&b, &p, &m, 0);
        let total = 64 * 1024;
        for i in 0..(total / 1024) as u64 {
            w.write_at(i * 1024, &[(i % 7) as u8 + 1; 1024]).unwrap();
        }
        w.close().unwrap();
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        // Sequential 4 KiB reads: the first read arms readahead (the
        // scan starts at physical 0) and over-reads DEFAULT_READAHEAD,
        // so follow-on reads hit the cache with zero backend ops.
        let mut buf = vec![0u8; 4096];
        let mut off = 0u64;
        while off < total as u64 {
            assert_eq!(r.read_at(off, &mut buf).unwrap(), 4096);
            for (j, block) in buf.chunks(1024).enumerate() {
                let rec = off / 1024 + j as u64;
                assert!(block.iter().all(|&x| x == (rec % 7) as u8 + 1), "record {rec} corrupt");
            }
            off += 4096;
        }
        let hits = rm.registry.value("plfs.read.readahead_hits").unwrap();
        let ops = rm.registry.value("plfs.read.backend_ops").unwrap();
        assert!(hits >= 12, "most sequential reads served from readahead, got {hits}");
        assert!(ops <= 2, "sequential scan needs almost no backend reads, got {ops}");
    }

    #[test]
    fn readahead_can_be_disabled() {
        let (b, p, m) = setup(1);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[7u8; 8192]).unwrap();
        w.close().unwrap();
        let rm = PlfsMetrics::detached();
        let mut r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        r.set_readahead(0);
        let mut buf = vec![0u8; 4096];
        assert_eq!(r.read_at(0, &mut buf).unwrap(), 4096);
        assert_eq!(r.read_at(4096, &mut buf).unwrap(), 4096);
        assert_eq!(rm.registry.value("plfs.read.readahead_hits"), Some(0));
        assert_eq!(rm.registry.value("plfs.read.backend_ops"), Some(2));
    }

    #[test]
    fn failed_read_counts_no_delivered_bytes() {
        // Regression: read_bytes used to be incremented with `want`
        // before the backend was ever touched, so failed reads inflated
        // the delivered-bytes counter.
        let (b, p, m) = setup(1);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[1u8; 512]).unwrap();
        w.close().unwrap();
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        // Truncate the data dropping behind the reader's back so the
        // read fails with UnexpectedEof.
        let data_path = p.data_dropping(0);
        b.remove(&data_path).unwrap();
        b.create(&data_path).unwrap();
        b.append(&data_path, &[1u8; 100]).unwrap();
        let mut buf = vec![0u8; 512];
        assert!(r.read_at(0, &mut buf).is_err());
        assert_eq!(rm.registry.value("plfs.read.bytes"), Some(0), "no bytes delivered");
        // A successful read after healing counts exactly what arrived.
        b.append(&data_path, &[1u8; 412]).unwrap();
        let fresh = PlfsMetrics::detached();
        let r2 = Reader::open(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            RetryPolicy::none(),
            fresh.clone(),
        )
        .unwrap();
        assert_eq!(r2.read_at(0, &mut buf).unwrap(), 512);
        assert_eq!(fresh.registry.value("plfs.read.bytes"), Some(512));
    }

    #[test]
    fn read_emits_batch_spans() {
        use obs::trace::TraceSink;
        let (b, p, m) = setup(2);
        for rank in 0..3u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 16, &[rank as u8; 16]).unwrap();
            w.close().unwrap();
        }
        let sink = TraceSink::bounded(4096);
        let rm =
            PlfsMetrics::new_traced(&obs::Registry::new(), &obs::Clock::logical(), sink.clone());
        let r = Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm)
            .unwrap();
        let _ = r.read_all().unwrap();
        let spans = sink.snapshot();
        obs::trace::validate(&spans).unwrap();
        let root = spans.iter().find(|s| s.name == "plfs.read").expect("plfs.read span");
        let kids: Vec<_> = spans.iter().filter(|s| s.name == "read.batch").collect();
        assert_eq!(kids.len(), 3, "one batch span per dropping");
        for k in &kids {
            assert_eq!(k.parent, root.id, "read.batch hangs off plfs.read");
        }
    }

    #[test]
    fn open_emits_causal_spans() {
        use obs::trace::TraceSink;
        let (b, p, m) = setup(4);
        for rank in 0..4u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 8, &[rank as u8; 8]).unwrap();
            w.close().unwrap();
        }
        let sink = TraceSink::bounded(4096);
        let rm =
            PlfsMetrics::new_traced(&obs::Registry::new(), &obs::Clock::logical(), sink.clone());
        let _ = Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm)
            .unwrap();
        let spans = sink.snapshot();
        obs::trace::validate(&spans).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"plfs.open"));
        assert!(names.contains(&"index.fetch"));
        assert!(names.contains(&"index.decode"));
        assert!(names.contains(&"index.merge"));
        let root = spans.iter().find(|s| s.name == "plfs.open").unwrap();
        for child in spans.iter().filter(|s| s.name.starts_with("index.")) {
            assert_eq!(child.parent, root.id, "{} hangs off plfs.open", child.name);
        }
    }

    // ----------------------------------------------------- verify-on-read

    /// Corrupt one byte of a file out from under the container.
    fn rot(b: &MemBackend, path: &str, offset: usize, mask: u8) {
        let mut blob = b.read_all(path).unwrap();
        blob[offset] ^= mask;
        b.remove(path).unwrap();
        b.create(path).unwrap();
        b.append(path, &blob).unwrap();
    }

    #[test]
    fn clean_reads_verify_every_covered_block_without_failures() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[5u8; 9000]).unwrap(); // 3 blocks: 2 full + tail
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.read_all().unwrap(), vec![5u8; 9000]);
        let reg = &r.metrics.registry;
        assert_eq!(reg.value("plfs.verify.blocks"), Some(3));
        assert_eq!(reg.value("plfs.verify.bytes"), Some(9000));
        assert_eq!(reg.value("plfs.verify.failures"), Some(0));
        // Verify-once: a second pass re-checks nothing.
        assert_eq!(r.read_all().unwrap().len(), 9000);
        assert_eq!(reg.value("plfs.verify.blocks"), Some(3));
    }

    #[test]
    fn failstop_surfaces_integrity_error_from_both_paths() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[7u8; 6000]).unwrap();
        w.close().unwrap();
        rot(&b, &p.data_dropping(0), 4500, 0x08); // block 1
        let r = reader(&b, &p);
        let err = r.read_all().unwrap_err();
        assert!(crate::retry::is_integrity(&err), "typed error survives: {err}");
        // The engine delivered nothing for the failed read.
        assert_eq!(r.metrics.registry.value("plfs.read.bytes"), Some(0));
        // The serial oracle detects the same corruption.
        let r2 = reader(&b, &p);
        let mut buf = vec![0u8; 6000];
        assert!(crate::retry::is_integrity(&r2.read_at_serial(0, &mut buf).unwrap_err()));
        // Bytes fully inside the clean block still read (serial path
        // touches only the pieces asked for).
        let mut head = vec![0u8; 1000];
        assert_eq!(r2.read_at_serial(0, &mut head).unwrap(), 1000);
        assert_eq!(head, vec![7u8; 1000]);
    }

    #[test]
    fn zero_fill_quarantine_zeroes_bad_block_and_counts_it() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[9u8; 6000]).unwrap();
        w.close().unwrap();
        rot(&b, &p.data_dropping(0), 100, 0x01); // block 0
        let mut r = reader(&b, &p);
        r.set_quarantine(QuarantinePolicy::ZeroFill);
        let data = r.read_all().unwrap();
        assert_eq!(&data[..4096], &vec![0u8; 4096][..], "bad block zeroed");
        assert_eq!(&data[4096..], &vec![9u8; 6000 - 4096][..], "good tail intact");
        let reg = &r.metrics.registry;
        assert_eq!(reg.value("plfs.verify.failures"), Some(1));
        // The corrupt-block bitmap memoizes: re-reads stay zeroed and
        // don't recount the failure.
        assert_eq!(&r.read_all().unwrap()[..4096], &vec![0u8; 4096][..]);
        assert_eq!(reg.value("plfs.verify.failures"), Some(1));
    }

    #[test]
    fn verify_off_serves_corrupt_bytes_raw() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[3u8; 1000]).unwrap();
        w.close().unwrap();
        rot(&b, &p.data_dropping(0), 10, 0xFF);
        let mut r = reader(&b, &p);
        r.set_verify(false);
        let data = r.read_all().unwrap();
        assert_eq!(data[10], 3u8 ^ 0xFF);
        assert_eq!(r.metrics.registry.value("plfs.verify.blocks"), Some(0));
    }

    #[test]
    fn unchecksummed_legacy_container_reads_without_verification() {
        let (b, p, m) = setup(2);
        let mut w = Writer::new(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            WriterConfig { checksum: false, ..Default::default() },
            0,
            m.clone(),
            0,
        )
        .unwrap();
        w.write_at(0, &[4u8; 2000]).unwrap();
        w.close().unwrap();
        assert!(!b.exists(&p.chk_dropping(0)));
        let r = reader(&b, &p);
        assert_eq!(r.read_all().unwrap(), vec![4u8; 2000]);
        assert_eq!(r.metrics.registry.value("plfs.verify.blocks"), Some(0));
        assert_eq!(r.metrics.registry.value("plfs.verify.failures"), Some(0));
    }

    #[test]
    fn corrupt_sidecar_failstops_but_zero_fill_serves_raw() {
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[6u8; 1000]).unwrap();
        w.close().unwrap();
        rot(&b, &p.chk_dropping(0), 2, 0x40); // break the magic
        let r = reader(&b, &p);
        assert!(crate::retry::is_integrity(&r.read_all().unwrap_err()));
        let mut r2 = reader(&b, &p);
        r2.set_quarantine(QuarantinePolicy::ZeroFill);
        assert_eq!(r2.read_all().unwrap(), vec![6u8; 1000], "unverifiable ≠ provably bad");
        assert_eq!(r2.metrics.registry.value("plfs.verify.failures"), Some(0));
    }

    #[test]
    fn verification_covers_readahead_cache_stash() {
        // The surplus stashed by readahead must be verified at stash
        // time: a later cache hit serves it without re-checking.
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        let data: Vec<u8> = (0..65536u32).map(|i| (i % 241) as u8).collect();
        w.write_at(0, &data).unwrap();
        w.close().unwrap();
        rot(&b, &p.data_dropping(0), 40_000, 0x10); // lands in readahead surplus
        let r = reader(&b, &p);
        let mut head = vec![0u8; 4096];
        // Sequential scan: first batch over-reads 128 KiB — the whole
        // file — and verification must catch the rot in the surplus
        // before it is stashed, even though the caller only asked for
        // the (clean) first block.
        let err = r.read_at(0, &mut head).unwrap_err();
        assert!(crate::retry::is_integrity(&err), "{err}");
    }

    #[test]
    fn read_emits_verify_spans_under_batches() {
        use obs::trace::TraceSink;
        let (b, p, m) = setup(2);
        let mut w = mkwriter(&b, &p, &m, 0);
        w.write_at(0, &[8u8; 2000]).unwrap();
        w.close().unwrap();
        let sink = TraceSink::bounded(4096);
        let rm =
            PlfsMetrics::new_traced(&obs::Registry::new(), &obs::Clock::logical(), sink.clone());
        let r = Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm)
            .unwrap();
        let mut buf = vec![0u8; 2000];
        r.read_at(0, &mut buf).unwrap();
        let spans = sink.snapshot();
        obs::trace::validate(&spans).unwrap();
        let batch = spans.iter().find(|s| s.name == "read.batch").expect("batch span");
        let verify = spans.iter().find(|s| s.name == "read.verify").expect("verify span");
        assert_eq!(verify.parent, batch.id, "verify hangs off its batch");
    }
}
