//! The PLFS read path.
//!
//! Reading is where the deferred work happens: every writer's index
//! dropping is fetched and decoded (in parallel — the "parallelize index
//! redistribution" extension of report §1.1 item 5), merged into one
//! overlap-resolved [`IndexMap`], and then `read_at` scatter-gathers
//! from the per-rank data droppings. Unwritten holes read as zeros,
//! POSIX-style.

use crate::backend::Backend;
use crate::container::{discover_droppings, ContainerPaths};
use crate::index::{decode, IndexEntry, IndexMap};
use crate::metrics::PlfsMetrics;
use crate::retry::{RetriedBackend, RetryPolicy};
use std::io;
use std::sync::Arc;

/// Statistics about an assembled container index.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadStats {
    pub writers: usize,
    pub raw_entries: usize,
    pub merged_extents: usize,
    pub index_bytes: u64,
}

/// An open read handle on a container.
pub struct Reader {
    backend: Arc<dyn Backend>,
    paths: ContainerPaths,
    retry: RetryPolicy,
    map: IndexMap,
    stats: ReadStats,
    metrics: Arc<PlfsMetrics>,
}

impl Reader {
    /// Open the container: discover droppings, decode all indices
    /// (parallel when more than one), merge. Transient backend errors
    /// during discovery and index fetch are masked per `retry`.
    pub(crate) fn open(
        backend: Arc<dyn Backend>,
        paths: ContainerPaths,
        retry: RetryPolicy,
        metrics: Arc<PlfsMetrics>,
    ) -> io::Result<Self> {
        let span = metrics.open_timer.start();
        // Per-operation retry: wrapping the whole discovery (dozens of
        // backend calls) in one retry unit would compound the per-call
        // fault probability instead of masking it.
        let retried = RetriedBackend::new(backend.as_ref(), &retry);
        let droppings = discover_droppings(&retried, &paths)?;
        let mut index_bytes = 0u64;
        let blobs: Vec<(u32, Vec<u8>)> = droppings
            .iter()
            .map(|(rank, idx_path, _)| {
                let blob = retried.read_all(idx_path)?;
                index_bytes += blob.len() as u64;
                Ok((*rank, blob))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let entries = decode_all(&blobs)?;
        let raw_entries = entries.len();
        let map = IndexMap::build(entries);
        metrics.merge_fanin.observe(droppings.len() as u64);
        metrics.raw_entries.add(raw_entries as u64);
        metrics.merged_extents.add(map.extents().len() as u64);
        metrics.index_bytes_read.add(index_bytes);
        span.stop();
        Ok(Reader {
            backend,
            paths,
            retry,
            stats: ReadStats {
                writers: droppings.len(),
                raw_entries,
                merged_extents: map.extents().len(),
                index_bytes,
            },
            map,
            metrics,
        })
    }

    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    /// Logical file size.
    pub fn size(&self) -> u64 {
        self.map.eof()
    }

    /// The merged index (for flattening and analysis).
    pub fn index(&self) -> &IndexMap {
        &self.map
    }

    /// Read into `buf` at `offset`. Returns bytes read (short at EOF);
    /// holes within the file read as zeros.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let eof = self.map.eof();
        self.metrics.read_ops.inc();
        if offset >= eof {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(eof - offset);
        self.metrics.read_bytes.add(want);
        for (piece_off, piece_len, extent) in self.map.lookup(offset, want) {
            let dst = (piece_off - offset) as usize;
            let dst_end = dst + piece_len as usize;
            match extent {
                None => {
                    buf[dst..dst_end].fill(0);
                }
                Some(x) => {
                    let data_path = self.paths.data_dropping(x.writer);
                    let got = self.retry.run(|| {
                        self.backend.read_at(&data_path, x.physical, &mut buf[dst..dst_end])
                    })?;
                    if got < piece_len as usize {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!(
                                "data dropping {data_path} truncated: wanted {piece_len} at {}, got {got}",
                                x.physical
                            ),
                        ));
                    }
                }
            }
        }
        Ok(want as usize)
    }

    /// Read the whole logical file (convenience for flatten/tests).
    pub fn read_all(&self) -> io::Result<Vec<u8>> {
        let mut out = vec![0u8; self.size() as usize];
        let n = self.read_at(0, &mut out)?;
        out.truncate(n);
        Ok(out)
    }
}

/// Decode many index droppings, using scoped threads when there are
/// enough to benefit.
fn decode_all(blobs: &[(u32, Vec<u8>)]) -> io::Result<Vec<IndexEntry>> {
    if blobs.len() <= 2 {
        let mut all = Vec::new();
        for (_, blob) in blobs {
            all.extend(decode(blob)?);
        }
        return Ok(all);
    }
    let results: Vec<io::Result<Vec<IndexEntry>>> = std::thread::scope(|s| {
        let handles: Vec<_> = blobs.iter().map(|(_, blob)| s.spawn(move || decode(blob))).collect();
        handles.into_iter().map(|h| h.join().expect("decoder panicked")).collect()
    });
    let mut all = Vec::new();
    for r in results {
        all.extend(r?);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::container::{create_container, ContainerPaths};
    use crate::write::{Writer, WriterConfig};

    fn setup(hostdirs: u32) -> (Arc<MemBackend>, ContainerPaths, Arc<PlfsMetrics>) {
        let b = Arc::new(MemBackend::new());
        let p = ContainerPaths::new("/f", hostdirs);
        create_container(b.as_ref(), &p).unwrap();
        (b, p, PlfsMetrics::detached())
    }

    fn mkwriter(
        b: &Arc<MemBackend>,
        p: &ContainerPaths,
        metrics: &Arc<PlfsMetrics>,
        rank: u32,
    ) -> Writer {
        Writer::new(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            WriterConfig::default(),
            rank,
            metrics.clone(),
            0,
        )
        .unwrap()
    }

    fn reader(b: &Arc<MemBackend>, p: &ContainerPaths) -> Reader {
        Reader::open(
            b.clone() as Arc<dyn Backend>,
            p.clone(),
            RetryPolicy::none(),
            PlfsMetrics::detached(),
        )
        .unwrap()
    }

    #[test]
    fn single_writer_roundtrip() {
        let (b, p, clock) = setup(2);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(0, b"hello ").unwrap();
        w.write_at(6, b"world").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.size(), 11);
        assert_eq!(r.read_all().unwrap(), b"hello world");
    }

    #[test]
    fn n1_strided_reassembles() {
        // 8 ranks write a strided N-1 checkpoint of 64 records.
        let (b, p, clock) = setup(4);
        let ranks = 8u32;
        let rec = 1000usize;
        let total_recs = 64u64;
        let mut writers: Vec<Writer> = (0..ranks).map(|r| mkwriter(&b, &p, &clock, r)).collect();
        for record in 0..total_recs {
            let rank = (record % ranks as u64) as usize;
            let fill = (record % 251) as u8;
            writers[rank].write_at(record * rec as u64, &vec![fill; rec]).unwrap();
        }
        for w in writers {
            w.close().unwrap();
        }
        let r = reader(&b, &p);
        assert_eq!(r.size(), total_recs * rec as u64);
        let data = r.read_all().unwrap();
        for record in 0..total_recs {
            let fill = (record % 251) as u8;
            let s = record as usize * rec;
            assert!(data[s..s + rec].iter().all(|&x| x == fill), "record {record} corrupt");
        }
        assert_eq!(r.stats().writers, ranks as usize);
        assert_eq!(r.stats().raw_entries, total_recs as usize);
    }

    #[test]
    fn holes_read_as_zeros() {
        let (b, p, clock) = setup(1);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(100, b"xx").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        assert_eq!(r.size(), 102);
        let data = r.read_all().unwrap();
        assert!(data[..100].iter().all(|&x| x == 0));
        assert_eq!(&data[100..], b"xx");
    }

    #[test]
    fn read_past_eof_is_short() {
        let (b, p, clock) = setup(1);
        let mut w = mkwriter(&b, &p, &clock, 0);
        w.write_at(0, b"abc").unwrap();
        w.close().unwrap();
        let r = reader(&b, &p);
        let mut buf = [0u8; 10];
        assert_eq!(r.read_at(0, &mut buf).unwrap(), 3);
        assert_eq!(r.read_at(3, &mut buf).unwrap(), 0);
        assert_eq!(r.read_at(999, &mut buf).unwrap(), 0);
    }

    #[test]
    fn overwrite_last_writer_wins() {
        let (b, p, clock) = setup(2);
        let mut w0 = mkwriter(&b, &p, &clock, 0);
        let mut w1 = mkwriter(&b, &p, &clock, 1);
        w0.write_at(0, &[b'a'; 100]).unwrap();
        w1.write_at(50, &[b'b'; 100]).unwrap();
        w0.close().unwrap();
        w1.close().unwrap();
        let r = reader(&b, &p);
        let data = r.read_all().unwrap();
        assert_eq!(data.len(), 150);
        assert!(data[..50].iter().all(|&x| x == b'a'));
        assert!(data[50..].iter().all(|&x| x == b'b'));
    }

    #[test]
    fn many_writers_parallel_decode_path() {
        let (b, p, clock) = setup(8);
        for rank in 0..16u32 {
            let mut w = mkwriter(&b, &p, &clock, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let r = reader(&b, &p);
        assert_eq!(r.stats().writers, 16);
        let data = r.read_all().unwrap();
        for rank in 0..16usize {
            assert!(data[rank * 10..(rank + 1) * 10].iter().all(|&x| x == rank as u8));
        }
    }

    #[test]
    fn unaligned_reads_cross_extents() {
        let (b, p, clock) = setup(2);
        let mut w0 = mkwriter(&b, &p, &clock, 0);
        let mut w1 = mkwriter(&b, &p, &clock, 1);
        // Alternating 10-byte records from two ranks.
        for i in 0..10u64 {
            let (w, fill) = if i % 2 == 0 { (&mut w0, b'e') } else { (&mut w1, b'o') };
            w.write_at(i * 10, &[fill; 10]).unwrap();
        }
        w0.close().unwrap();
        w1.close().unwrap();
        let r = reader(&b, &p);
        let mut buf = [0u8; 25];
        let n = r.read_at(5, &mut buf).unwrap();
        assert_eq!(n, 25);
        assert_eq!(&buf[..5], b"eeeee");
        assert_eq!(&buf[5..15], b"oooooooooo");
        assert_eq!(&buf[15..25], b"eeeeeeeeee");
    }

    #[test]
    fn metrics_record_merge_fanin_and_read_bytes() {
        let (b, p, m) = setup(4);
        for rank in 0..6u32 {
            let mut w = mkwriter(&b, &p, &m, rank);
            w.write_at(rank as u64 * 10, &[rank as u8; 10]).unwrap();
            w.close().unwrap();
        }
        let rm = PlfsMetrics::detached();
        let r =
            Reader::open(b.clone() as Arc<dyn Backend>, p.clone(), RetryPolicy::none(), rm.clone())
                .unwrap();
        let reg = &rm.registry;
        let fanin = reg.histogram("plfs.index.merge_fanin");
        assert_eq!(fanin.count(), 1);
        assert_eq!(fanin.max(), 6, "six writers merged");
        assert_eq!(reg.value("plfs.index.raw_entries"), Some(6));
        assert!(reg.value("plfs.index.bytes_read").unwrap() > 0);
        let data = r.read_all().unwrap();
        assert_eq!(reg.value("plfs.read.ops"), Some(1));
        assert_eq!(reg.value("plfs.read.bytes"), Some(data.len() as u64));
    }
}
