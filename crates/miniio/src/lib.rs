//! # miniio — collective I/O middleware and the formatted-I/O
//! optimization stack (report §5.2.1 Fig. 13, §5.4.2)
//!
//! The layer between applications and the parallel file system:
//! ROMIO-style request transforms (data sieving, two-phase collective
//! buffering, stripe alignment, layout-aware aggregation) and `h5lite`,
//! a real miniature self-describing container format standing in for
//! HDF5/NetCDF, whose metadata dribble reproduces the small unaligned
//! writes that formatted output inflicts on parallel file systems.
//!
//! - [`pattern`]: the transforms, as pure functions on per-rank
//!   request lists;
//! - [`h5lite`]: the container format (round-trippable over any
//!   `plfs::Backend`) with write-traffic capture;
//! - [`experiment`]: the Fig. 13 ladder — each optimization stage
//!   replayed through the `pfs` cluster simulator.

pub mod experiment;
pub mod h5lite;
pub mod pattern;

pub use experiment::{optimization_ladder, run_stage, FormattedWorkload, Stage};
pub use h5lite::{H5Reader, H5Writer};
pub use pattern::{data_sieve, layout_aware, two_phase, CollectivePlan, Pattern};
