//! I/O pattern transforms: the ROMIO-style optimization stack.
//!
//! Each transform takes the per-rank `(offset, len)` request lists an
//! application emits and returns the lists that actually reach the
//! parallel file system after the optimization — the machinery behind
//! the stacked gains of report Fig. 13:
//!
//! 1. **data sieving** — merge a rank's nearby requests into one larger
//!    window access (extra bytes moved, far fewer operations);
//! 2. **two-phase collective buffering** — shuffle data between ranks
//!    so a few aggregators write large contiguous file domains;
//! 3. **stripe alignment** — round aggregator domain boundaries to
//!    stripe units so no two aggregators ever share a lock unit;
//! 4. **layout-aware aggregation** (ORNL close-out, §5.4.2) — assign
//!    each aggregator exactly the stripes one server stores, giving
//!    pure per-server sequential streams (~24%+ in the report).

/// Per-rank request lists.
pub type Pattern = Vec<Vec<(u64, u64)>>;

/// Total application bytes in a pattern.
pub fn pattern_bytes(p: &Pattern) -> u64 {
    p.iter().flatten().map(|&(_, l)| l).sum()
}

/// Total request count.
pub fn pattern_ops(p: &Pattern) -> usize {
    p.iter().map(|v| v.len()).sum()
}

/// Data sieving: per rank, coalesce requests whose gap is below
/// `max_gap` into single window accesses (holes are covered by a
/// read-modify-write, so the op count shrinks while bytes grow
/// slightly). Returns the transformed pattern.
pub fn data_sieve(p: &Pattern, max_gap: u64) -> Pattern {
    p.iter()
        .map(|ops| {
            let mut sorted = ops.clone();
            sorted.sort_unstable();
            let mut out: Vec<(u64, u64)> = Vec::new();
            for &(off, len) in &sorted {
                match out.last_mut() {
                    Some(last) if off <= last.0 + last.1 + max_gap => {
                        let end = (off + len).max(last.0 + last.1);
                        last.1 = end - last.0;
                    }
                    _ => out.push((off, len)),
                }
            }
            out
        })
        .collect()
}

/// Result of a collective transform: the aggregator write pattern plus
/// the shuffle volume that must cross the interconnect first.
#[derive(Debug, Clone)]
pub struct CollectivePlan {
    /// Per-aggregator write lists (aggregators are the first
    /// `aggregators` ranks).
    pub pattern: Pattern,
    /// Bytes exchanged rank->aggregator during phase one.
    pub exchange_bytes: u64,
    pub aggregators: usize,
}

/// Two-phase collective buffering: the file range covered by the
/// pattern is split into `aggregators` contiguous domains; each
/// aggregator writes its domain in `chunk`-sized contiguous pieces.
/// If `align` is nonzero, domain boundaries are rounded to it.
pub fn two_phase(p: &Pattern, aggregators: usize, chunk: u64, align: u64) -> CollectivePlan {
    assert!(aggregators > 0 && chunk > 0);
    let bytes = pattern_bytes(p);
    let lo = p.iter().flatten().map(|&(o, _)| o).min().unwrap_or(0);
    let hi = p.iter().flatten().map(|&(o, l)| o + l).max().unwrap_or(0);
    let span = hi - lo;
    let raw_domain = span.div_ceil(aggregators as u64).max(1);
    let domain = if align > 0 { raw_domain.div_ceil(align) * align } else { raw_domain };
    let mut pattern = Vec::with_capacity(aggregators);
    for a in 0..aggregators as u64 {
        let start = lo + a * domain;
        let end = (start + domain).min(hi);
        let mut ops = Vec::new();
        let mut pos = start;
        while pos < end {
            let len = chunk.min(end - pos);
            ops.push((pos, len));
            pos += len;
        }
        pattern.push(ops);
    }
    // Phase-one shuffle: a rank's data lands at its aggregator; on
    // average (aggregators-1)/aggregators of all bytes move.
    let exchange = bytes - bytes / aggregators as u64;
    CollectivePlan { pattern, exchange_bytes: exchange, aggregators }
}

/// Layout-aware collective I/O: aggregator `a` writes exactly the
/// stripes that the round-robin layout stores on server
/// `a % servers`, in ascending order — single-server sequential
/// streams.
pub fn layout_aware(
    p: &Pattern,
    aggregators: usize,
    servers: usize,
    stripe: u64,
) -> CollectivePlan {
    assert!(aggregators > 0 && servers > 0 && stripe > 0);
    let bytes = pattern_bytes(p);
    let lo = p.iter().flatten().map(|&(o, _)| o).min().unwrap_or(0);
    let hi = p.iter().flatten().map(|&(o, l)| o + l).max().unwrap_or(0);
    let first_stripe = lo / stripe;
    let last_stripe = if hi == 0 { 0 } else { (hi - 1) / stripe };
    let mut pattern: Pattern = vec![Vec::new(); aggregators];
    for s in first_stripe..=last_stripe {
        // Round-robin placement: stripe s lives on server s % servers;
        // that server's aggregator is s % aggregators when aggregators
        // == servers, else the aggregator covering that server.
        let server = (s % servers as u64) as usize;
        let agg = server % aggregators;
        let start = (s * stripe).max(lo);
        let end = ((s + 1) * stripe).min(hi);
        if start < end {
            pattern[agg].push((start, end - start));
        }
    }
    let exchange = bytes - bytes / aggregators as u64;
    CollectivePlan { pattern, exchange_bytes: exchange, aggregators }
}

/// Check a pattern covers exactly the byte range `[lo, hi)` with no
/// gaps or overlaps (test helper for collective plans).
pub fn covers_exactly(p: &Pattern, lo: u64, hi: u64) -> bool {
    let mut all: Vec<(u64, u64)> = p.iter().flatten().copied().collect();
    all.sort_unstable();
    let mut pos = lo;
    for (o, l) in all {
        if o != pos {
            return false;
        }
        pos = o + l;
    }
    pos == hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strided(ranks: u32, per_rank: u32, rec: u64) -> Pattern {
        (0..ranks)
            .map(|r| {
                (0..per_rank).map(|i| (((i as u64 * ranks as u64) + r as u64) * rec, rec)).collect()
            })
            .collect()
    }

    #[test]
    fn sieving_reduces_ops_for_clustered_requests() {
        // Requests 1 KiB apart: a 4 KiB gap tolerance merges runs.
        let p: Pattern = vec![(0..100).map(|i| (i * 2048, 1024)).collect()];
        let sieved = data_sieve(&p, 4096);
        assert_eq!(pattern_ops(&sieved), 1, "all should merge into one window");
        assert_eq!(sieved[0][0], (0, 99 * 2048 + 1024));
    }

    #[test]
    fn sieving_respects_large_gaps() {
        let p: Pattern = vec![vec![(0, 100), (1_000_000, 100)]];
        let sieved = data_sieve(&p, 4096);
        assert_eq!(pattern_ops(&sieved), 2);
    }

    #[test]
    fn two_phase_covers_span_with_large_contiguous_ops() {
        let p = strided(16, 32, 47 * 1024);
        let bytes = pattern_bytes(&p);
        let plan = two_phase(&p, 4, 4 << 20, 0);
        let hi = 16 * 32 * 47 * 1024;
        assert!(covers_exactly(&plan.pattern, 0, hi));
        assert!(pattern_ops(&plan.pattern) < pattern_ops(&p) / 8);
        // Most bytes shuffle in phase one.
        assert_eq!(plan.exchange_bytes, bytes - bytes / 4);
    }

    #[test]
    fn aligned_two_phase_has_stripe_aligned_domains() {
        let p = strided(16, 32, 47 * 1024);
        let stripe = 1 << 20;
        let plan = two_phase(&p, 4, 4 << 20, stripe);
        for (a, ops) in plan.pattern.iter().enumerate() {
            if let Some(&(first, _)) = ops.first() {
                assert_eq!(first % stripe, 0, "aggregator {a} domain unaligned: {first}");
            }
        }
        let hi = 16 * 32 * 47 * 1024;
        assert!(covers_exactly(&plan.pattern, 0, hi));
    }

    #[test]
    fn layout_aware_covers_and_stays_per_server() {
        let p = strided(16, 32, 47 * 1024);
        let stripe = 1u64 << 20;
        let servers = 4;
        let plan = layout_aware(&p, servers, servers, stripe);
        let hi = 16 * 32 * 47 * 1024;
        assert!(covers_exactly(&plan.pattern, 0, hi));
        // Every op of aggregator a must land on server a under
        // round-robin placement of a file starting at server 0.
        for (a, ops) in plan.pattern.iter().enumerate() {
            for &(off, _) in ops {
                let stripe_idx = off / stripe;
                assert_eq!((stripe_idx % servers as u64) as usize, a);
            }
        }
    }

    #[test]
    fn layout_aware_ops_ascend_per_aggregator() {
        let p = strided(8, 16, 100_000);
        let plan = layout_aware(&p, 4, 4, 1 << 20);
        for ops in &plan.pattern {
            for w in ops.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn pattern_accounting() {
        let p = strided(4, 8, 1000);
        assert_eq!(pattern_bytes(&p), 32_000);
        assert_eq!(pattern_ops(&p), 32);
    }
}
