//! The Fig. 13 experiment: stacked I/O-middleware optimizations.
//!
//! NERSC's HDF5 tuning collaboration (report §5.2.1) took Chombo and
//! GCRM from a baseline of small unaligned formatted writes to "up to
//! 33×" by layering optimizations. We replay an h5lite-shaped workload
//! through the `pfs` cluster simulator at each rung of the same ladder:
//! baseline → data sieving → two-phase collective buffering → stripe
//! alignment → layout-aware aggregation.

use crate::pattern::{data_sieve, layout_aware, pattern_bytes, two_phase, Pattern};
use pfs::{Cluster, ClusterConfig, Op};
use simkit::SimDuration;

/// One rung of the optimization ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Baseline,
    Sieving,
    Collective,
    Aligned,
    LayoutAware,
}

impl Stage {
    pub const ALL: [Stage; 5] =
        [Stage::Baseline, Stage::Sieving, Stage::Collective, Stage::Aligned, Stage::LayoutAware];

    pub fn name(&self) -> &'static str {
        match self {
            Stage::Baseline => "baseline (independent, unaligned)",
            Stage::Sieving => "+ data sieving",
            Stage::Collective => "+ two-phase collective buffering",
            Stage::Aligned => "+ stripe-aligned domains",
            Stage::LayoutAware => "+ layout-aware aggregation",
        }
    }
}

/// An h5lite-shaped application workload: every rank writes `chunks`
/// records of `chunk_bytes` into a shared dataset, interleaved
/// round-robin (block-cyclic hyperslabs), and rank 0 dribbles the
/// format's metadata as small unaligned writes.
#[derive(Debug, Clone)]
pub struct FormattedWorkload {
    pub ranks: u32,
    pub chunks_per_rank: u32,
    pub chunk_bytes: u64,
    /// Metadata writes rank 0 issues (object headers, attributes).
    pub metadata_writes: u32,
    pub metadata_bytes: u64,
}

impl FormattedWorkload {
    /// Chombo-like: AMR boxes — many modest unaligned chunks.
    pub fn chombo(ranks: u32) -> Self {
        FormattedWorkload {
            ranks,
            chunks_per_rank: 48,
            chunk_bytes: 37 * 1024,
            metadata_writes: 200,
            metadata_bytes: 512,
        }
    }

    /// GCRM-like: geodesic-grid columns — more data, slightly larger
    /// chunks.
    pub fn gcrm(ranks: u32) -> Self {
        FormattedWorkload {
            ranks,
            chunks_per_rank: 32,
            chunk_bytes: 96 * 1024,
            metadata_writes: 120,
            metadata_bytes: 768,
        }
    }

    /// The raw per-rank pattern (rank 0 carries the metadata dribble).
    pub fn pattern(&self) -> Pattern {
        let data_base = 1 << 16; // metadata region below
        let mut p: Pattern = (0..self.ranks)
            .map(|r| {
                (0..self.chunks_per_rank)
                    .map(|i| {
                        let idx = i as u64 * self.ranks as u64 + r as u64;
                        (data_base + idx * self.chunk_bytes, self.chunk_bytes)
                    })
                    .collect()
            })
            .collect();
        for m in 0..self.metadata_writes {
            p[0].push((m as u64 * self.metadata_bytes, self.metadata_bytes));
        }
        p
    }
}

/// Bandwidth of one stage, bytes/sec.
pub fn run_stage(stage: Stage, workload: &FormattedWorkload, cfg: &ClusterConfig) -> f64 {
    let raw = workload.pattern();
    let stripe = cfg.layout.stripe_size;
    let servers = cfg.layout.servers;
    let app_bytes = pattern_bytes(&raw);
    let (pattern, exchange) = match stage {
        Stage::Baseline => (raw, 0),
        Stage::Sieving => (data_sieve(&raw, stripe / 4), 0),
        Stage::Collective => {
            let plan = two_phase(&raw, servers, 4 << 20, 0);
            (plan.pattern, plan.exchange_bytes)
        }
        Stage::Aligned => {
            let plan = two_phase(&raw, servers, 4 << 20, stripe);
            (plan.pattern, plan.exchange_bytes)
        }
        Stage::LayoutAware => {
            let plan = layout_aware(&raw, servers, servers, stripe);
            (plan.pattern, plan.exchange_bytes)
        }
    };
    let exchange_per_writer = SimDuration::for_bytes(exchange / pattern.len().max(1) as u64, 2.0e9);
    let streams: Vec<Vec<Op>> = pattern
        .iter()
        .map(|ops| {
            let mut v = Vec::with_capacity(ops.len() + 2);
            v.push(Op::Open(0));
            if !exchange_per_writer.is_zero() {
                // Phase one: shuffle over the interconnect.
                v.push(Op::Compute(exchange_per_writer));
            }
            v.extend(ops.iter().map(|&(offset, len)| Op::Write { file: 0, offset, len }));
            v
        })
        .collect();
    let mut cluster = Cluster::new(cfg.clone());
    let rep = cluster.run_phase(&streams);
    // Rate the *application's* bytes, not sieving's extra traffic.
    rep.makespan.throughput(app_bytes)
}

/// Run the whole ladder; returns `(stage, bandwidth_bps)` rows.
pub fn optimization_ladder(workload: &FormattedWorkload, cfg: &ClusterConfig) -> Vec<(Stage, f64)> {
    Stage::ALL.iter().map(|&s| (s, run_stage(s, workload, cfg))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::MIB;

    fn cfg() -> ClusterConfig {
        ClusterConfig::lustre_like(8, MIB)
    }

    #[test]
    fn ladder_improves_overall() {
        let w = FormattedWorkload::chombo(64);
        let rows = optimization_ladder(&w, &cfg());
        let base = rows[0].1;
        let best = rows.last().unwrap().1;
        assert!(
            best > 4.0 * base,
            "optimization stack should be a multi-x win: {:.1} -> {:.1} MB/s",
            base / 1e6,
            best / 1e6
        );
    }

    #[test]
    fn collective_beats_sieving_alone() {
        let w = FormattedWorkload::chombo(64);
        let c = cfg();
        let sieve = run_stage(Stage::Sieving, &w, &c);
        let coll = run_stage(Stage::Collective, &w, &c);
        assert!(coll > sieve, "collective {coll} vs sieving {sieve}");
    }

    #[test]
    fn alignment_not_worse_than_unaligned_collective() {
        let w = FormattedWorkload::gcrm(64);
        let c = cfg();
        let coll = run_stage(Stage::Collective, &w, &c);
        let aligned = run_stage(Stage::Aligned, &w, &c);
        assert!(aligned >= 0.95 * coll, "alignment regressed: {aligned} vs {coll}");
    }

    #[test]
    fn layout_aware_not_worse_than_aligned() {
        let w = FormattedWorkload::gcrm(64);
        let c = cfg();
        let aligned = run_stage(Stage::Aligned, &w, &c);
        let la = run_stage(Stage::LayoutAware, &w, &c);
        assert!(la >= 0.95 * aligned, "layout-aware regressed: {la} vs {aligned}");
    }

    #[test]
    fn both_app_profiles_run() {
        let c = cfg();
        for w in [FormattedWorkload::chombo(32), FormattedWorkload::gcrm(32)] {
            let rows = optimization_ladder(&w, &c);
            assert_eq!(rows.len(), 5);
            assert!(rows.iter().all(|&(_, bw)| bw > 0.0));
        }
    }
}
