//! `h5lite` — a miniature self-describing scientific container format.
//!
//! Stands in for HDF5/NetCDF in the reproduction: applications like
//! Chombo, FLASH, and GCRM do not write raw bytes, they write datasets
//! through a formatting library whose *metadata traffic* — superblock,
//! object headers, attribute updates — is exactly the small unaligned
//! write stream that hurts on parallel file systems (report §4.2.3,
//! §5.2.1). h5lite is a real format (round-trippable over any
//! [`plfs::Backend`]) whose write pattern can be recorded and fed to
//! the cluster simulator.
//!
//! Layout (all little-endian):
//! ```text
//! [0..8)    magic "H5LITE\0\0"
//! [8..16)   dataset count
//! then per dataset, a 64-byte header at 16 + 64*i:
//!   name[32], element_size u64, elements u64, data_offset u64, reserved
//! data region: element payloads
//! ```

use plfs::backend::Backend;
use std::io;

const MAGIC: &[u8; 8] = b"H5LITE\0\0";
const HEADER_BASE: u64 = 16;
const DATASET_HEADER: u64 = 64;

/// Description of one dataset in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    pub name: String,
    pub element_size: u64,
    pub elements: u64,
    pub data_offset: u64,
}

impl DatasetInfo {
    pub fn byte_len(&self) -> u64 {
        self.element_size * self.elements
    }
}

/// A write recorded against the container (offset, len) — captured so
/// experiments can replay the exact traffic through the simulator.
pub type WriteLog = Vec<(u64, u64)>;

/// Writer for one h5lite container file on a backend.
pub struct H5Writer<'a> {
    backend: &'a dyn Backend,
    path: String,
    datasets: Vec<DatasetInfo>,
    next_data: u64,
    log: WriteLog,
    file: Vec<u8>,
}

impl<'a> H5Writer<'a> {
    pub fn create(backend: &'a dyn Backend, path: &str, max_datasets: u64) -> Self {
        let next_data = HEADER_BASE + DATASET_HEADER * max_datasets;
        H5Writer {
            backend,
            path: path.to_string(),
            datasets: Vec::new(),
            next_data,
            log: Vec::new(),
            file: Vec::new(),
        }
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        let end = offset as usize + data.len();
        if self.file.len() < end {
            self.file.resize(end, 0);
        }
        self.file[offset as usize..end].copy_from_slice(data);
        self.log.push((offset, data.len() as u64));
    }

    /// Declare a dataset and return its index. Writes the object header
    /// (a small unaligned metadata write) immediately, as HDF5 does.
    pub fn add_dataset(&mut self, name: &str, element_size: u64, elements: u64) -> usize {
        assert!(name.len() <= 32, "dataset name too long");
        let idx = self.datasets.len();
        let info = DatasetInfo {
            name: name.to_string(),
            element_size,
            elements,
            data_offset: self.next_data,
        };
        self.next_data += info.byte_len();
        let mut hdr = [0u8; DATASET_HEADER as usize];
        hdr[..name.len()].copy_from_slice(name.as_bytes());
        hdr[32..40].copy_from_slice(&element_size.to_le_bytes());
        hdr[40..48].copy_from_slice(&elements.to_le_bytes());
        hdr[48..56].copy_from_slice(&info.data_offset.to_le_bytes());
        self.write_at(HEADER_BASE + DATASET_HEADER * idx as u64, &hdr);
        self.datasets.push(info);
        idx
    }

    /// Write `count` elements of dataset `ds` starting at element
    /// `first` — the per-rank hyperslab write.
    pub fn write_elements(&mut self, ds: usize, first: u64, data: &[u8]) {
        let info = &self.datasets[ds];
        assert_eq!(data.len() as u64 % info.element_size, 0);
        assert!(first * info.element_size + data.len() as u64 <= info.byte_len());
        let off = info.data_offset + first * info.element_size;
        self.write_at(off, data);
    }

    /// Finalize: write the superblock and flush everything to the
    /// backend. Returns the recorded write log.
    pub fn close(mut self) -> io::Result<WriteLog> {
        let mut sb = [0u8; HEADER_BASE as usize];
        sb[..8].copy_from_slice(MAGIC);
        sb[8..16].copy_from_slice(&(self.datasets.len() as u64).to_le_bytes());
        self.write_at(0, &sb);
        self.backend.create(&self.path)?;
        self.backend.append(&self.path, &self.file)?;
        Ok(self.log)
    }
}

/// Reader for an h5lite container.
pub struct H5Reader<'a> {
    backend: &'a dyn Backend,
    path: String,
    datasets: Vec<DatasetInfo>,
}

impl<'a> H5Reader<'a> {
    pub fn open(backend: &'a dyn Backend, path: &str) -> io::Result<Self> {
        let mut sb = [0u8; HEADER_BASE as usize];
        let n = backend.read_at(path, 0, &mut sb)?;
        if n < sb.len() || &sb[..8] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an h5lite file"));
        }
        let count = u64::from_le_bytes(sb[8..16].try_into().unwrap());
        let mut datasets = Vec::with_capacity(count as usize);
        for i in 0..count {
            let mut hdr = [0u8; DATASET_HEADER as usize];
            backend.read_at(path, HEADER_BASE + DATASET_HEADER * i, &mut hdr)?;
            let name_end = hdr[..32].iter().position(|&b| b == 0).unwrap_or(32);
            let name = String::from_utf8_lossy(&hdr[..name_end]).into_owned();
            datasets.push(DatasetInfo {
                name,
                element_size: u64::from_le_bytes(hdr[32..40].try_into().unwrap()),
                elements: u64::from_le_bytes(hdr[40..48].try_into().unwrap()),
                data_offset: u64::from_le_bytes(hdr[48..56].try_into().unwrap()),
            });
        }
        Ok(H5Reader { backend, path: path.to_string(), datasets })
    }

    pub fn datasets(&self) -> &[DatasetInfo] {
        &self.datasets
    }

    pub fn find(&self, name: &str) -> Option<usize> {
        self.datasets.iter().position(|d| d.name == name)
    }

    /// Read `count` elements starting at `first`.
    pub fn read_elements(&self, ds: usize, first: u64, count: u64) -> io::Result<Vec<u8>> {
        let info = &self.datasets[ds];
        let len = (count * info.element_size) as usize;
        let mut buf = vec![0u8; len];
        let off = info.data_offset + first * info.element_size;
        let n = self.backend.read_at(&self.path, off, &mut buf)?;
        if n < len {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short dataset read"));
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plfs::backend::MemBackend;

    #[test]
    fn roundtrip_two_datasets() {
        let b = MemBackend::new();
        let mut w = H5Writer::create(&b, "/out.h5l", 4);
        let temp = w.add_dataset("temperature", 8, 100);
        let pres = w.add_dataset("pressure", 4, 50);
        let tdata: Vec<u8> = (0..800).map(|i| (i % 251) as u8).collect();
        let pdata: Vec<u8> = (0..200).map(|i| (i % 7) as u8).collect();
        w.write_elements(temp, 0, &tdata);
        w.write_elements(pres, 0, &pdata);
        w.close().unwrap();

        let r = H5Reader::open(&b, "/out.h5l").unwrap();
        assert_eq!(r.datasets().len(), 2);
        assert_eq!(r.find("pressure"), Some(1));
        assert_eq!(r.read_elements(0, 0, 100).unwrap(), tdata);
        assert_eq!(r.read_elements(1, 0, 50).unwrap(), pdata);
    }

    #[test]
    fn partial_hyperslab_writes_compose() {
        let b = MemBackend::new();
        let mut w = H5Writer::create(&b, "/f", 1);
        let ds = w.add_dataset("grid", 4, 100);
        // Four ranks write disjoint 25-element hyperslabs.
        for rank in 0..4u8 {
            let data = vec![rank; 100];
            w.write_elements(ds, rank as u64 * 25, &data);
        }
        w.close().unwrap();
        let r = H5Reader::open(&b, "/f").unwrap();
        for rank in 0..4u8 {
            let got = r.read_elements(0, rank as u64 * 25, 25).unwrap();
            assert!(got.iter().all(|&x| x == rank));
        }
    }

    #[test]
    fn write_log_captures_metadata_and_data_traffic() {
        let b = MemBackend::new();
        let mut w = H5Writer::create(&b, "/f", 2);
        let ds = w.add_dataset("x", 8, 1000);
        w.write_elements(ds, 0, &vec![0u8; 8000]);
        let log = w.close().unwrap();
        // header write (64 B), data write (8000 B), superblock (16 B).
        assert_eq!(log.len(), 3);
        assert!(log.iter().any(|&(o, l)| l == 64 && o == HEADER_BASE));
        assert!(log.iter().any(|&(_, l)| l == 8000));
        assert!(log.iter().any(|&(o, _)| o == 0));
    }

    #[test]
    fn open_rejects_garbage() {
        let b = MemBackend::new();
        b.append("/junk", b"this is not a container").unwrap();
        assert!(H5Reader::open(&b, "/junk").is_err());
    }

    #[test]
    fn data_regions_do_not_overlap_headers() {
        let b = MemBackend::new();
        let mut w = H5Writer::create(&b, "/f", 8);
        let a = w.add_dataset("a", 1, 10);
        let c = w.add_dataset("b", 1, 10);
        let infos = w.datasets.clone();
        assert!(infos[a].data_offset >= HEADER_BASE + 8 * DATASET_HEADER);
        assert_eq!(infos[c].data_offset, infos[a].data_offset + 10);
        w.close().unwrap();
    }
}
