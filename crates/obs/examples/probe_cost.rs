use obs::trace::{Phase, TraceCtx, TraceSink};
use std::hint::black_box;
use std::time::Instant;
fn main() {
    let off = TraceSink::disabled();
    let ctx = TraceCtx::disabled();
    let n: u64 = 10_000_000;
    let t = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        acc ^= off.record("op", Phase::Other, "track", i, i + 1, 0);
    }
    black_box(acc);
    println!("record: {:.2} ns/call", t.elapsed().as_secs_f64() * 1e9 / n as f64);
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc ^= off.alloc() ^ (off.enabled() as u64);
    }
    black_box(acc);
    println!("alloc+enabled: {:.2} ns/pair", t.elapsed().as_secs_f64() * 1e9 / n as f64);
    let t = Instant::now();
    for _ in 0..n {
        black_box(off.clone());
    }
    println!("clone: {:.2} ns/call", t.elapsed().as_secs_f64() * 1e9 / n as f64);
    let t = Instant::now();
    for _ in 0..n {
        black_box(ctx.start("op", Phase::Other, "track", 0));
    }
    println!("start: {:.2} ns/call", t.elapsed().as_secs_f64() * 1e9 / n as f64);
}
