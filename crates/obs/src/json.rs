//! Minimal JSON: enough to emit metric dumps and parse committed
//! fixtures, with zero dependencies. Objects preserve insertion order.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as f64 (accepts both Int and Float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ensure a round-trippable representation that stays a
                // JSON number (never NaN/inf, always has enough digits).
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_into(val, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_into(self, &mut s);
        f.write_str(&s)
    }
}

/// Pretty-print with two-space indentation (for committed fixtures).
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    pretty_into(v, 0, &mut out);
    out.push('\n');
    out
}

fn pretty_into(v: &Value, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    let close = "  ".repeat(depth);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty_into(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(": ");
                pretty_into(val, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push('}');
        }
        other => write_into(other, out),
    }
}

/// Parse a JSON document. Returns a description of the first error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for our dumps;
                            // map unpaired surrogates to the replacement char.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| e.to_string())
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Value::Int(v)),
                // Integers beyond i64 fall back to f64, as in most parsers.
                Err(_) => text.parse::<f64>().map(Value::Float).map_err(|e| e.to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Int(-3)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Float(1.5)),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"k\" : [ 1 , 2.5 , { \"n\" : null } ] } ").unwrap();
        let arr = v.get("k").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("n"), Some(&Value::Null));
    }

    #[test]
    fn floats_always_write_as_numbers() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
        assert_eq!(parse("2.0").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("n1_vs_nn".into())),
            ("value".into(), Value::Float(13.7)),
            ("tags".into(), Value::Arr(vec![Value::Str("sim".into())])),
        ]);
        let text = pretty(&v);
        assert!(text.contains("\n"));
        assert_eq!(parse(&text).unwrap(), v);
    }
}
