//! Deterministic observability for the PDSI reproduction.
//!
//! Every claim in the source report is a measured number, so the
//! reproduction needs to expose its *mechanics* — not just its outputs —
//! as numbers tests can assert against. This crate provides the three
//! pieces the rest of the workspace instruments itself with:
//!
//! * [`Registry`] — a thread-safe, clonable (shared) registry of named,
//!   labeled series: monotone [`Counter`]s, signed [`Gauge`]s, and
//!   log2-bucketed [`Histogram`]s.
//! * [`Clock`] — one time source that runs off either wall time or a
//!   logical (simulator) tick counter, so instrumented code does not
//!   care which world it lives in.
//! * [`Timer`]/[`Span`] — scoped duration measurement feeding a
//!   histogram.
//! * [`trace`] — causal span trees collected into a bounded
//!   [`trace::TraceSink`], with Chrome/Perfetto export and
//!   critical-path latency attribution.
//!
//! Everything is std-only: no external crates, no global state. A
//! registry is passed explicitly (usually inside a config struct), which
//! keeps tests hermetic — each test owns its registry and asserts exact
//! counter values.
//!
//! Snapshots serialize to JSON via the in-tree [`json`] module and to a
//! human table via [`Registry::render_table`].

pub mod json;
pub mod prom;
pub mod recorder;
pub mod slo;
pub mod tail;
pub mod timeseries;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log2 histogram buckets: bucket `i` covers values `v` with
/// `bucket_index(v) == i`, i.e. upper bound `2^i` (exclusive), except the
/// last which absorbs everything.
pub const HIST_BUCKETS: usize = 65;

pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive-ish upper bound label for bucket `i` (values `< 2^i`).
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Lower bound of the bucket whose upper bound is `upper`: bucket
/// `upper=1` holds only the value 0, bucket `upper=2^i` covers
/// `[2^(i-1), 2^i)`, and the overflow bucket starts at `2^63`.
pub(crate) fn bucket_lower(upper: u64) -> u64 {
    match upper {
        0 | 1 => 0,
        u64::MAX => 1u64 << 63,
        u => u / 2,
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotone counter. Cheap to clone (shared atomic).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed gauge: set/add, last-write-wins.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `n` if it is below (peak tracking).
    pub fn raise_to(&self, n: i64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    fn new() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed histogram of u64 samples (durations, sizes, fan-in).
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { core: Arc::new(HistCore::new()) }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    pub fn observe(&self, v: u64) {
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Approximate quantile of everything observed so far; see
    /// [`HistSnapshot::quantile`] for the estimator's semantics.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// Point-in-time copy of the bucket contents.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets = (0..HIST_BUCKETS)
            .filter_map(|i| {
                let c = self.core.buckets[i].load(Ordering::Relaxed);
                if c == 0 {
                    None
                } else {
                    Some((bucket_upper(i), c))
                }
            })
            .collect();
        HistSnapshot { count: self.count(), sum: self.sum(), max: self.max(), buckets }
    }

    fn merge(&self, snap: &HistSnapshot) {
        for &(upper, c) in &snap.buckets {
            // Invert bucket_upper: upper is 2^i (or MAX for the last bucket).
            let i = if upper == u64::MAX { 64 } else { upper.trailing_zeros() as usize };
            self.core.buckets[i].fetch_add(c, Ordering::Relaxed);
        }
        self.core.count.fetch_add(snap.count, Ordering::Relaxed);
        self.core.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.core.max.fetch_max(snap.max, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Sorted `(key, value)` label pairs identifying one series of a name.
pub type Labels = Vec<(String, String)>;

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time copy of one series, for export and merging.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub name: String,
    pub labels: Labels,
    pub value: SeriesValue,
}

#[derive(Clone, Debug, PartialEq)]
pub enum SeriesValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistSnapshot),
}

#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// `(bucket_upper, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile by linear interpolation inside the log2
    /// bucket holding rank `q * count` — the shared estimator behind
    /// both cumulative histograms and the windowed
    /// [`timeseries::WindowHistogram`].
    ///
    /// Semantics (exact at bucket boundaries):
    /// * an empty snapshot returns 0,
    /// * `q = 0` returns the lower bound of the first non-empty bucket,
    /// * a rank landing exactly on a bucket's cumulative count returns
    ///   that bucket's upper bound,
    /// * the tracked `max` clamps the estimate (so the last bucket
    ///   interpolates toward the largest value actually observed, and
    ///   `q = 1` returns it exactly).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0)) * self.count as f64;
        let mut cum_before = 0u64;
        for &(upper, c) in &self.buckets {
            let cum = cum_before + c;
            if (cum as f64) >= rank {
                let lower = bucket_lower(upper);
                if upper <= 1 {
                    return 0.0; // the zero bucket holds only zeros
                }
                // Interpolate toward max inside the last non-empty
                // bucket; toward the bucket edge everywhere else.
                let hi = if upper == self.buckets.last().unwrap().0 {
                    (self.max.max(lower)) as f64
                } else {
                    upper as f64
                };
                let f = ((rank - cum_before as f64) / c as f64).clamp(0.0, 1.0);
                let est = lower as f64 + (hi - lower as f64) * f;
                return est.min(self.max as f64);
            }
            cum_before = cum;
        }
        self.max as f64
    }
}

/// Thread-safe metrics registry. `Clone` shares the underlying map, so a
/// registry stored in a config struct and cloned into components keeps a
/// single set of series.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<(String, Labels), Instrument>>>,
}

fn norm_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or create the counter `name` with the given labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_string(), norm_labels(labels));
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert_with(|| Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c.clone(),
            other => panic!("series {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_string(), norm_labels(labels));
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert_with(|| Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g.clone(),
            other => panic!("series {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = (name.to_string(), norm_labels(labels));
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert_with(|| Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h.clone(),
            other => panic!("series {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// A timer whose spans observe into histogram `name` using `clock`.
    pub fn timer(&self, name: &str, clock: &Clock) -> Timer {
        Timer { hist: self.histogram(name), clock: clock.clone() }
    }

    /// Current value of the unlabeled counter `name`, if present.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.value_with(name, &[])
    }

    /// Current value of counter `name` with `labels`, if present.
    pub fn value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = (name.to_string(), norm_labels(labels));
        let map = self.inner.lock().unwrap();
        match map.get(&key) {
            Some(Instrument::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Point-in-time copy of every series, sorted by (name, labels).
    pub fn snapshot(&self) -> Vec<Series> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|((name, labels), inst)| Series {
                name: name.clone(),
                labels: labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => SeriesValue::Counter(c.get()),
                    Instrument::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Number of distinct series (name + label combinations).
    pub fn series_count(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Merge a snapshot into this registry, appending `extra` labels to
    /// every series. Counters and gauges accumulate; histograms merge
    /// bucket-wise. Used to roll per-experiment registries into one dump
    /// under an `exp=<id>` label.
    pub fn absorb(&self, series: &[Series], extra: &[(&str, &str)]) {
        for s in series {
            let mut labels: Vec<(&str, &str)> =
                s.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            labels.extend_from_slice(extra);
            match &s.value {
                SeriesValue::Counter(v) => self.counter_with(&s.name, &labels).add(*v),
                SeriesValue::Gauge(v) => self.gauge_with(&s.name, &labels).add(*v),
                SeriesValue::Histogram(h) => self.histogram_with(&s.name, &labels).merge(h),
            }
        }
    }

    /// Serialize the current snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        snapshot_to_json(&self.snapshot()).to_string()
    }

    /// Render the current snapshot as an aligned text table.
    pub fn render_table(&self) -> String {
        render_table(&self.snapshot())
    }
}

/// Build the canonical JSON value for a snapshot:
/// `{"version":1,"series":[{name,labels,type,...}]}`.
pub fn snapshot_to_json(series: &[Series]) -> json::Value {
    use json::Value;
    let rows = series
        .iter()
        .map(|s| {
            let labels = Value::Obj(
                s.labels.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect(),
            );
            let mut obj = vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("labels".to_string(), labels),
            ];
            match &s.value {
                SeriesValue::Counter(v) => {
                    obj.push(("type".to_string(), Value::Str("counter".into())));
                    obj.push(("value".to_string(), Value::Int(*v as i64)));
                }
                SeriesValue::Gauge(v) => {
                    obj.push(("type".to_string(), Value::Str("gauge".into())));
                    obj.push(("value".to_string(), Value::Int(*v)));
                }
                SeriesValue::Histogram(h) => {
                    obj.push(("type".to_string(), Value::Str("histogram".into())));
                    obj.push(("count".to_string(), Value::Int(h.count as i64)));
                    obj.push(("sum".to_string(), Value::Int(h.sum as i64)));
                    obj.push(("max".to_string(), Value::Int(h.max as i64)));
                    obj.push((
                        "buckets".to_string(),
                        Value::Arr(
                            h.buckets
                                .iter()
                                .map(|&(u, c)| {
                                    Value::Arr(vec![Value::Int(u as i64), Value::Int(c as i64)])
                                })
                                .collect(),
                        ),
                    ));
                }
            }
            Value::Obj(obj)
        })
        .collect();
    Value::Obj(vec![
        ("version".to_string(), Value::Int(1)),
        ("series".to_string(), Value::Arr(rows)),
    ])
}

/// Render a snapshot as an aligned text table.
pub fn render_table(series: &[Series]) -> String {
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for s in series {
        let mut id = s.name.clone();
        if !s.labels.is_empty() {
            let inner: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            id.push('{');
            id.push_str(&inner.join(","));
            id.push('}');
        }
        let (ty, val) = match &s.value {
            SeriesValue::Counter(v) => ("counter", v.to_string()),
            SeriesValue::Gauge(v) => ("gauge", v.to_string()),
            SeriesValue::Histogram(h) => (
                "histogram",
                format!(
                    "count={} sum={} max={} mean={:.1} p50={:.0} p99={:.0}",
                    h.count,
                    h.sum,
                    h.max,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99)
                ),
            ),
        };
        rows.push((id, ty.to_string(), val));
    }
    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(6).max(6);
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    out.push_str(&format!("{:<w0$}  {:<w1$}  value\n", "series", "type"));
    out.push_str(&format!("{}  {}  {}\n", "-".repeat(w0), "-".repeat(w1), "-".repeat(5)));
    for (id, ty, val) in rows {
        out.push_str(&format!("{id:<w0$}  {ty:<w1$}  {val}\n"));
    }
    out
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum ClockMode {
    /// Real time; `now_nanos` is the elapsed wall time since creation.
    Wall(Instant),
    /// Logical time: a monotone tick counter driven by `stamp` /
    /// `advance_to` (the simulator or the PLFS timestamp sequencer).
    Logical,
}

#[derive(Debug)]
struct ClockInner {
    mode: ClockMode,
    ticks: AtomicU64,
}

/// One time source for instrumented code: either wall time or a logical
/// tick counter. Clones share state, so every component handed a clone
/// of the same clock observes one monotone sequence.
#[derive(Clone, Debug)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

impl Clock {
    /// A wall clock; `now_nanos` is nanoseconds since creation.
    pub fn wall() -> Self {
        Clock {
            inner: Arc::new(ClockInner {
                mode: ClockMode::Wall(Instant::now()),
                ticks: AtomicU64::new(0),
            }),
        }
    }

    /// A logical clock starting at tick 0.
    pub fn logical() -> Self {
        Clock::logical_at(0)
    }

    /// A logical clock starting at `start`.
    pub fn logical_at(start: u64) -> Self {
        Clock {
            inner: Arc::new(ClockInner { mode: ClockMode::Logical, ticks: AtomicU64::new(start) }),
        }
    }

    pub fn is_wall(&self) -> bool {
        matches!(self.inner.mode, ClockMode::Wall(_))
    }

    /// Take the next logical tick (post-increment). On a wall clock this
    /// still advances the tick counter, which keeps sequence numbers
    /// usable regardless of mode.
    pub fn stamp(&self) -> u64 {
        self.inner.ticks.fetch_add(1, Ordering::Relaxed)
    }

    /// Raise the tick counter to at least `floor` (epoch reservation).
    pub fn advance_to(&self, floor: u64) {
        self.inner.ticks.fetch_max(floor, Ordering::Relaxed);
    }

    /// Current tick counter without advancing it.
    pub fn current(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Nanoseconds for span timing: elapsed wall time, or the logical
    /// tick counter when in logical mode.
    pub fn now_nanos(&self) -> u64 {
        match self.inner.mode {
            ClockMode::Wall(origin) => origin.elapsed().as_nanos() as u64,
            ClockMode::Logical => self.current(),
        }
    }
}

/// Factory for spans observing into one histogram.
#[derive(Clone, Debug)]
pub struct Timer {
    hist: Histogram,
    clock: Clock,
}

impl Timer {
    pub fn start(&self) -> Span {
        Span {
            hist: self.hist.clone(),
            clock: self.clock.clone(),
            start: self.clock.now_nanos(),
            armed: true,
        }
    }
}

/// An in-flight span; records its duration on `stop` or drop.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    clock: Clock,
    start: u64,
    armed: bool,
}

impl Span {
    /// Stop the span, record it, and return the elapsed nanos/ticks.
    pub fn stop(mut self) -> u64 {
        self.armed = false;
        let d = self.clock.now_nanos().saturating_sub(self.start);
        self.hist.observe(d);
        d
    }

    /// Abandon the span without recording.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            let d = self.clock.now_nanos().saturating_sub(self.start);
            self.hist.observe(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.value("x"), Some(3));
    }

    #[test]
    fn labels_distinguish_series() {
        let reg = Registry::new();
        reg.counter_with("ops", &[("osd", "0")]).add(5);
        reg.counter_with("ops", &[("osd", "1")]).add(7);
        assert_eq!(reg.value_with("ops", &[("osd", "0")]), Some(5));
        assert_eq!(reg.value_with("ops", &[("osd", "1")]), Some(7));
        assert_eq!(reg.series_count(), 2);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let reg = Registry::new();
        reg.counter_with("ops", &[("a", "1"), ("b", "2")]).inc();
        reg.counter_with("ops", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.series_count(), 1);
        assert_eq!(reg.value_with("ops", &[("a", "1"), ("b", "2")]), Some(2));
    }

    #[test]
    fn histogram_buckets_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let h = Histogram::new();
        for v in [0, 1, 3, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.4).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert!(!h.mean().is_nan());
        let snap = h.snapshot();
        assert_eq!(snap.mean(), 0.0);
        assert!(!snap.mean().is_nan());
        // And the rendered table stays finite for empty histograms.
        let reg = Registry::new();
        reg.histogram("empty");
        assert!(reg.render_table().contains("mean=0.0"));
    }

    #[test]
    fn quantile_is_exact_at_bucket_boundaries() {
        // 50 samples of 2 (bucket [2,4)) and 50 of 1000 (bucket
        // [512,1024), max 1000). Rank 50 lands exactly on the first
        // bucket's cumulative count, so p50 is exactly its upper bound.
        let h = Histogram::new();
        for _ in 0..50 {
            h.observe(2);
            h.observe(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 4.0, "boundary rank returns the bucket's upper bound");
        assert_eq!(s.quantile(0.0), 2.0, "q=0 returns the first bucket's lower bound");
        assert_eq!(s.quantile(1.0), 1000.0, "q=1 returns the observed max exactly");
        // Interior ranks interpolate linearly toward max inside the
        // last bucket: rank 99 is 49/50 of the way through [512, 1000].
        let p99 = s.quantile(0.99);
        assert!((p99 - (512.0 + 488.0 * 49.0 / 50.0)).abs() < 1e-9, "p99={p99}");
    }

    #[test]
    fn quantile_degenerate_cases() {
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        let zeros = Histogram::new();
        zeros.observe(0);
        zeros.observe(0);
        assert_eq!(zeros.quantile(0.99), 0.0, "the zero bucket holds only zeros");
        // All samples equal to a power of two: every quantile is that
        // value, because max clamps the last-bucket interpolation.
        let flat = Histogram::new();
        for _ in 0..10 {
            flat.observe(1024);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(flat.quantile(q), 1024.0, "q={q}");
        }
    }

    #[test]
    fn table_shows_histogram_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for _ in 0..100 {
            h.observe(1024);
        }
        let t = reg.render_table();
        assert!(t.contains("p50=1024"), "table has a p50 column: {t}");
        assert!(t.contains("p99=1024"), "table has a p99 column: {t}");
    }

    #[test]
    fn json_dump_is_deterministic_across_insertion_order() {
        // Two registries populated in opposite orders (and with label
        // pairs given in different orders) must serialize byte-for-byte
        // identically: series sort by (name, labels), labels sort by
        // key.
        let a = Registry::new();
        a.counter_with("ops", &[("osd", "1"), ("kind", "w")]).add(3);
        a.counter_with("ops", &[("osd", "0"), ("kind", "w")]).add(2);
        a.gauge("depth").set(4);
        a.histogram("lat").observe(9);

        let b = Registry::new();
        b.histogram("lat").observe(9);
        b.gauge("depth").set(4);
        b.counter_with("ops", &[("kind", "w"), ("osd", "0")]).add(2);
        b.counter_with("ops", &[("kind", "w"), ("osd", "1")]).add(3);

        assert_eq!(a.to_json(), b.to_json());
        let names: Vec<String> = a
            .snapshot()
            .iter()
            .map(|s| {
                let l: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{}{{{}}}", s.name, l.join(","))
            })
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "series must come out sorted by (name, labels)");
    }

    #[test]
    fn snapshot_merge_roundtrip() {
        let src = Registry::new();
        src.counter("c").add(4);
        src.gauge("g").set(-2);
        let h = src.histogram("h");
        h.observe(10);
        h.observe(1000);

        let dst = Registry::new();
        dst.absorb(&src.snapshot(), &[("exp", "t")]);
        dst.absorb(&src.snapshot(), &[("exp", "t")]);
        assert_eq!(dst.value_with("c", &[("exp", "t")]), Some(8));
        let snap = dst.snapshot();
        let hist = snap
            .iter()
            .find(|s| s.name == "h")
            .map(|s| match &s.value {
                SeriesValue::Histogram(h) => h.clone(),
                _ => panic!("wrong type"),
            })
            .unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 2020);
        assert_eq!(hist.max, 1000);
    }

    #[test]
    fn logical_clock_stamps_monotone() {
        let c = Clock::logical_at(10);
        assert_eq!(c.stamp(), 10);
        assert_eq!(c.stamp(), 11);
        c.advance_to(100);
        c.advance_to(50); // no-op: fetch_max
        assert_eq!(c.current(), 100);
        assert_eq!(c.stamp(), 100);
        let c2 = c.clone();
        c2.stamp();
        assert_eq!(c.current(), 102);
    }

    #[test]
    fn spans_record_into_histogram() {
        let reg = Registry::new();
        let clock = Clock::logical();
        let timer = reg.timer("op_ns", &clock);
        let span = timer.start();
        clock.advance_to(64);
        assert_eq!(span.stop(), 64);
        let h = reg.histogram("op_ns");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 64);

        // Drop also records.
        {
            let _s = timer.start();
            clock.advance_to(128);
        }
        assert_eq!(h.count(), 2);

        // Cancel does not.
        {
            let s = timer.start();
            s.cancel();
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let c = Clock::wall();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
        assert!(c.is_wall());
    }

    #[test]
    fn json_snapshot_parses_back() {
        let reg = Registry::new();
        reg.counter_with("ops", &[("kind", "read")]).add(3);
        reg.histogram("lat").observe(7);
        let text = reg.to_json();
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("version").and_then(|v| v.as_i64()), Some(1));
        let series = doc.get("series").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(series.len(), 2);
        let names: Vec<_> =
            series.iter().filter_map(|s| s.get("name").and_then(|n| n.as_str())).collect();
        assert_eq!(names, vec!["lat", "ops"]);
    }

    #[test]
    fn table_renders_every_series() {
        let reg = Registry::new();
        reg.counter_with("ops", &[("osd", "3")]).add(9);
        reg.gauge("depth").set(4);
        let t = reg.render_table();
        assert!(t.contains("ops{osd=3}"));
        assert!(t.contains("depth"));
        assert!(t.contains("gauge"));
        assert!(t.lines().count() >= 4);
    }
}
