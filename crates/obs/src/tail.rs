//! Tail-based trace sampling: keep the full span tree only for the
//! operations that breached a latency threshold.
//!
//! Head sampling (keep 1-in-N) almost never catches the op you care
//! about — the p99.9 straggler. The [`TailSampler`] instead drains a
//! staging [`TraceSink`], reassembles complete span trees (children
//! record before their root, so a tree is complete once its root
//! appears), and keeps a tree only when its root duration crosses the
//! threshold for that root's name. Sampled roots also land in the
//! [`ExemplarStore`] as `(trace id, duration)` exemplars, which is the
//! link an SLO alert carries so "p99 is burning" points at a concrete
//! Perfetto-openable trace ([`crate::trace::to_chrome`]).

use crate::trace::{SpanRecord, TraceSink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One slow-op exemplar: the root span's trace id and duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Root span id — the `args.id` of the root event in the Chrome
    /// export of the sampled spans.
    pub trace_id: u64,
    /// Root duration (clock units).
    pub value_ns: u64,
    /// When the op finished (clock units).
    pub at_ns: u64,
}

/// Worst-K exemplars per series key (usually the root span name).
/// `Clone` shares the store.
#[derive(Clone, Debug)]
pub struct ExemplarStore {
    keep: usize,
    inner: Arc<Mutex<BTreeMap<String, Vec<Exemplar>>>>,
}

impl ExemplarStore {
    /// Keep the `keep` slowest exemplars per key.
    pub fn new(keep: usize) -> Self {
        assert!(keep > 0, "an exemplar store must keep at least one entry");
        ExemplarStore { keep, inner: Arc::new(Mutex::new(BTreeMap::new())) }
    }

    /// Record an exemplar under `key`, evicting the fastest once more
    /// than `keep` accumulate.
    pub fn note(&self, key: &str, ex: Exemplar) {
        let mut map = self.inner.lock().unwrap();
        let v = map.entry(key.to_string()).or_default();
        v.push(ex);
        v.sort_by(|a, b| b.value_ns.cmp(&a.value_ns).then(a.trace_id.cmp(&b.trace_id)));
        v.truncate(self.keep);
    }

    /// Exemplars for `key`, slowest first.
    pub fn get(&self, key: &str) -> Vec<Exemplar> {
        self.inner.lock().unwrap().get(key).cloned().unwrap_or_default()
    }

    pub fn keys(&self) -> Vec<String> {
        self.inner.lock().unwrap().keys().cloned().collect()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

impl Default for ExemplarStore {
    fn default() -> Self {
        ExemplarStore::new(4)
    }
}

#[derive(Debug, Default)]
struct TailState {
    /// Spans whose root has not been recorded yet.
    pending: Vec<SpanRecord>,
    /// Sampled trees, oldest first (each kept whole).
    kept: Vec<Vec<SpanRecord>>,
    kept_spans: usize,
    sampled: u64,
    discarded: u64,
    dropped_trees: u64,
    dropped_pending: u64,
}

#[derive(Debug)]
struct TailShared {
    source: TraceSink,
    default_threshold_ns: u64,
    /// `(root-name prefix, threshold)` overrides, first match wins.
    thresholds: Vec<(String, u64)>,
    cap_spans: usize,
    exemplars: ExemplarStore,
    state: Mutex<TailState>,
}

/// The threshold sampler. `Clone` shares state; feed it by letting
/// instrumented code record into `source` and calling
/// [`TailSampler::drain`] at convenient points.
#[derive(Clone, Debug)]
pub struct TailSampler {
    shared: Arc<TailShared>,
}

impl TailSampler {
    /// Sample trees whose root lasted at least `threshold_ns`, keeping
    /// at most `cap_spans` spans of sampled trees (oldest trees evicted
    /// whole). Exemplars for sampled roots land in `exemplars` under
    /// the root span's name.
    pub fn new(
        source: TraceSink,
        threshold_ns: u64,
        cap_spans: usize,
        exemplars: ExemplarStore,
    ) -> Self {
        assert!(cap_spans > 0, "tail sampler span budget must be nonzero");
        TailSampler {
            shared: Arc::new(TailShared {
                source,
                default_threshold_ns: threshold_ns,
                thresholds: Vec::new(),
                cap_spans,
                exemplars,
                state: Mutex::new(TailState::default()),
            }),
        }
    }

    /// Override the threshold for roots whose name starts with
    /// `prefix` (builder-style, before the first drain).
    pub fn with_threshold(mut self, prefix: &str, threshold_ns: u64) -> Self {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("with_threshold must be called before the sampler is cloned");
        shared.thresholds.push((prefix.to_string(), threshold_ns));
        self
    }

    fn threshold_for(&self, name: &str) -> u64 {
        self.shared
            .thresholds
            .iter()
            .find(|(p, _)| name.starts_with(p.as_str()))
            .map(|&(_, t)| t)
            .unwrap_or(self.shared.default_threshold_ns)
    }

    /// Pull everything out of the staging sink, reassemble complete
    /// trees, and keep the breaching ones. Returns how many trees were
    /// sampled by this call.
    pub fn drain(&self) -> u64 {
        let fresh = self.shared.source.take();
        let mut st = self.shared.state.lock().unwrap();
        if fresh.is_empty() && st.pending.is_empty() {
            return 0;
        }
        let mut spans: Vec<SpanRecord> = std::mem::take(&mut st.pending);
        spans.extend(fresh);

        // Resolve each span to its root (parent chains stay within the
        // set once the root has been recorded — children finish first).
        let index: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut root_of: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for s in &spans {
            let mut chain = Vec::new();
            let mut cur = s.id;
            let resolved = loop {
                if let Some(&r) = root_of.get(&cur) {
                    break r;
                }
                chain.push(cur);
                let Some(&i) = index.get(&cur) else { break None };
                if spans[i].parent == 0 {
                    break Some(cur);
                }
                cur = spans[i].parent;
            };
            for id in chain {
                root_of.insert(id, resolved);
            }
        }

        let mut trees: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
        let mut pending = Vec::new();
        for s in spans {
            match root_of.get(&s.id).copied().flatten() {
                Some(root) => trees.entry(root).or_default().push(s),
                None => pending.push(s),
            }
        }
        // Bound the orphan buffer: a span whose root never records
        // (dropped by the staging ring) must not pin memory forever.
        let pending_cap = self.shared.cap_spans.max(1024);
        if pending.len() > pending_cap {
            let excess = pending.len() - pending_cap;
            pending.drain(..excess);
            st.dropped_pending += excess as u64;
        }
        st.pending = pending;

        let mut newly_sampled = 0u64;
        for (root_id, mut tree) in trees {
            let root = tree.iter().find(|s| s.id == root_id).expect("root is in its tree");
            let dur = root.end.saturating_sub(root.begin);
            if dur < self.threshold_for(&root.name) {
                st.discarded += 1;
                continue;
            }
            self.shared
                .exemplars
                .note(&root.name, Exemplar { trace_id: root_id, value_ns: dur, at_ns: root.end });
            tree.sort_by_key(|s| (s.begin, s.id));
            st.kept_spans += tree.len();
            st.kept.push(tree);
            st.sampled += 1;
            newly_sampled += 1;
            while st.kept_spans > self.shared.cap_spans && st.kept.len() > 1 {
                let evicted = st.kept.remove(0);
                st.kept_spans -= evicted.len();
                st.dropped_trees += 1;
            }
        }
        newly_sampled
    }

    /// Every span of every sampled tree, sorted by `(begin, id)` —
    /// ready for [`crate::trace::to_chrome`] / validation.
    pub fn kept(&self) -> Vec<SpanRecord> {
        let st = self.shared.state.lock().unwrap();
        let mut all: Vec<SpanRecord> = st.kept.iter().flatten().cloned().collect();
        all.sort_by_key(|s| (s.begin, s.id));
        all
    }

    /// The shared exemplar store.
    pub fn exemplars(&self) -> ExemplarStore {
        self.shared.exemplars.clone()
    }

    /// Trees kept so far (including later-evicted ones).
    pub fn sampled(&self) -> u64 {
        self.shared.state.lock().unwrap().sampled
    }

    /// Complete trees below threshold, thrown away.
    pub fn discarded(&self) -> u64 {
        self.shared.state.lock().unwrap().discarded
    }

    /// Sampled trees evicted by the span budget.
    pub fn dropped_trees(&self) -> u64 {
        self.shared.state.lock().unwrap().dropped_trees
    }

    /// Spans still waiting for their root.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::trace::{to_chrome, validate, Phase};

    fn record_tree(sink: &TraceSink, begin: u64, dur: u64, name: &str) -> u64 {
        let root = sink.alloc();
        // Children record before the root, like guard-based tracing.
        sink.record("child.step", Phase::Queue, "t", begin, begin + dur / 2, root);
        sink.push(SpanRecord {
            id: root,
            parent: 0,
            name: name.to_string(),
            phase: Phase::Compute,
            track: "t".to_string(),
            begin,
            end: begin + dur,
            labels: Vec::new(),
        });
        root
    }

    #[test]
    fn keeps_only_breaching_trees_with_their_children() {
        let sink = TraceSink::bounded(1024);
        let fast = record_tree(&sink, 0, 10, "pfs.write");
        let slow = record_tree(&sink, 100, 5000, "pfs.write");
        let sampler = TailSampler::new(sink, 1000, 4096, ExemplarStore::new(4));
        assert_eq!(sampler.drain(), 1);
        assert_eq!(sampler.discarded(), 1);
        let kept = sampler.kept();
        assert_eq!(kept.len(), 2, "root plus child of the slow tree");
        assert!(kept.iter().any(|s| s.id == slow));
        assert!(kept.iter().all(|s| s.id != fast));
        validate(&kept).expect("sampled spans form a valid tree");
    }

    #[test]
    fn exemplars_link_alerts_to_chrome_traces() {
        let sink = TraceSink::bounded(1024);
        let slow = record_tree(&sink, 0, 9000, "pfs.write");
        let sampler = TailSampler::new(sink, 1000, 4096, ExemplarStore::new(4));
        sampler.drain();
        let exemplars = sampler.exemplars().get("pfs.write");
        assert_eq!(exemplars.len(), 1);
        assert_eq!(exemplars[0].trace_id, slow);
        assert_eq!(exemplars[0].value_ns, 9000);
        // The exemplar's trace id resolves inside the Chrome export.
        let doc = json::parse(&to_chrome(&sampler.kept()).to_string()).unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let hit = events.iter().any(|e| {
            e.get("args").and_then(|a| a.get("id")).and_then(|v| v.as_i64()) == Some(slow as i64)
        });
        assert!(hit, "exemplar trace id must resolve in the Chrome export");
    }

    #[test]
    fn incomplete_trees_wait_for_their_root() {
        let sink = TraceSink::bounded(1024);
        let root = sink.alloc();
        sink.record("child.early", Phase::Queue, "t", 0, 50, root);
        let sampler = TailSampler::new(sink.clone(), 10, 4096, ExemplarStore::new(2));
        assert_eq!(sampler.drain(), 0, "root not recorded yet");
        assert_eq!(sampler.pending(), 1);
        sink.push(SpanRecord {
            id: root,
            parent: 0,
            name: "op".into(),
            phase: Phase::Compute,
            track: "t".into(),
            begin: 0,
            end: 100,
            labels: Vec::new(),
        });
        assert_eq!(sampler.drain(), 1, "tree completes once the root lands");
        assert_eq!(sampler.pending(), 0);
        assert_eq!(sampler.kept().len(), 2);
    }

    #[test]
    fn per_name_thresholds_override_the_default() {
        let sink = TraceSink::bounded(1024);
        record_tree(&sink, 0, 500, "pfs.read");
        record_tree(&sink, 1000, 500, "pfs.write");
        let sampler = TailSampler::new(sink, 10_000, 4096, ExemplarStore::new(2))
            .with_threshold("pfs.read", 100);
        sampler.drain();
        assert_eq!(sampler.sampled(), 1, "only the read crossed its (lower) threshold");
        assert!(sampler.exemplars().get("pfs.write").is_empty());
        assert_eq!(sampler.exemplars().get("pfs.read").len(), 1);
    }

    #[test]
    fn span_budget_evicts_oldest_trees_whole() {
        let sink = TraceSink::bounded(4096);
        for i in 0..10 {
            record_tree(&sink, i * 100, 5000, "pfs.write");
        }
        let sampler = TailSampler::new(sink, 1000, 6, ExemplarStore::new(16));
        sampler.drain();
        assert_eq!(sampler.sampled(), 10);
        assert!(sampler.dropped_trees() >= 7, "budget of 6 spans holds 3 two-span trees");
        assert!(sampler.kept().len() <= 6);
        validate(&sampler.kept()).expect("eviction never splits a tree");
    }

    #[test]
    fn worst_k_exemplars_survive() {
        let store = ExemplarStore::new(2);
        for (id, v) in [(1u64, 100u64), (2, 900), (3, 500), (4, 700)] {
            store.note("op", Exemplar { trace_id: id, value_ns: v, at_ns: v });
        }
        let kept = store.get("op");
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].trace_id, 2, "slowest first");
        assert_eq!(kept[1].trace_id, 4);
    }
}
