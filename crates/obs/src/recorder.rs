//! The flight recorder: periodic [`Registry`] snapshots in a bounded
//! in-memory ring.
//!
//! A recorder samples the registry at a configurable cadence on the
//! shared [`Clock`] — wall nanoseconds in live runs, ticks/sim-nanos in
//! deterministic ones — keeping the last `capacity` frames. After an
//! injected crash-stop the surviving ring is the black box: the final
//! frames show exactly which counters were moving (and which stopped)
//! when the system died.
//!
//! Sampling is pull-based: instrumented code calls
//! [`Recorder::maybe_sample`] from convenient points (per op, per
//! wave); the call is a branch on a disabled recorder and an atomic
//! compare against the next deadline otherwise, so hot paths can carry
//! it unconditionally. Frames export as a JSONL timeline (one frame per
//! line, with per-counter deltas against the previous frame) and as
//! Prometheus text exposition of the newest frame.

use crate::{json, prom, Clock, HistSnapshot, Registry, Series, SeriesValue};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One sampled frame: a full registry snapshot at `t_ns`.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Monotone frame number (keeps counting across ring eviction).
    pub seq: u64,
    /// Clock reading when the frame was captured.
    pub t_ns: u64,
    /// Sorted point-in-time copy of every series.
    pub series: Vec<Series>,
}

impl Frame {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name && labels_match(&s.labels, labels))
    }

    /// Value of the unlabeled counter `name` in this frame.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_with(name, &[])
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SeriesValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name, &[])?.value {
            SeriesValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram snapshot of the unlabeled series `name`.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        match &self.find(name, &[])?.value {
            SeriesValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && want.iter().all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

/// `cur - prev` for the unlabeled counter `name` (0 when absent; a
/// missing previous frame means "since zero").
pub fn counter_delta(prev: Option<&Frame>, cur: &Frame, name: &str) -> u64 {
    let now = cur.counter(name).unwrap_or(0);
    let before = prev.and_then(|f| f.counter(name)).unwrap_or(0);
    now.saturating_sub(before)
}

/// Bucket-wise `cur - prev` for the unlabeled histogram `name`: what
/// landed in the histogram between the two frames. `max` carries the
/// cumulative max (per-window maxima are not recoverable from
/// cumulative buckets), which upper-bounds the window and keeps
/// [`HistSnapshot::quantile`]'s clamp safe.
pub fn hist_delta(prev: Option<&Frame>, cur: &Frame, name: &str) -> HistSnapshot {
    let empty = HistSnapshot { count: 0, sum: 0, max: 0, buckets: Vec::new() };
    let Some(now) = cur.hist(name) else { return empty };
    let Some(before) = prev.and_then(|f| f.hist(name)) else { return now.clone() };
    let mut buckets = Vec::with_capacity(now.buckets.len());
    for &(upper, c) in &now.buckets {
        let prev_c =
            before.buckets.iter().find(|&&(u, _)| u == upper).map(|&(_, c)| c).unwrap_or(0);
        if c > prev_c {
            buckets.push((upper, c - prev_c));
        }
    }
    HistSnapshot {
        count: now.count.saturating_sub(before.count),
        sum: now.sum.saturating_sub(before.sum),
        max: now.max,
        buckets,
    }
}

#[derive(Debug)]
struct RecState {
    frames: VecDeque<Frame>,
    seq: u64,
    evicted: u64,
}

#[derive(Debug)]
struct RecShared {
    registry: Registry,
    clock: Clock,
    cadence_ns: u64,
    capacity: usize,
    /// Next sampling deadline, kept outside the mutex so the not-due
    /// fast path is one clock read plus one atomic load.
    next_due: AtomicU64,
    state: Mutex<RecState>,
}

/// The flight recorder handle. `Clone` shares the ring; the
/// [`Recorder::disabled`] variant costs one branch per probe.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    shared: Option<Arc<RecShared>>,
}

impl Recorder {
    /// The no-op recorder: every probe is a branch on `None`.
    pub fn disabled() -> Self {
        Recorder { shared: None }
    }

    /// A recorder sampling `registry` every `cadence_ns` clock units,
    /// retaining the newest `capacity` frames.
    pub fn new(registry: &Registry, clock: &Clock, cadence_ns: u64, capacity: usize) -> Self {
        assert!(cadence_ns > 0, "recorder cadence must be nonzero");
        assert!(capacity > 0, "recorder ring must hold at least one frame");
        Recorder {
            shared: Some(Arc::new(RecShared {
                registry: registry.clone(),
                clock: clock.clone(),
                cadence_ns,
                capacity,
                next_due: AtomicU64::new(clock.now_nanos()),
                state: Mutex::new(RecState { frames: VecDeque::new(), seq: 0, evicted: 0 }),
            })),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Sample if the cadence deadline has passed. The probe hot paths
    /// carry: a branch when disabled, a clock read and an atomic
    /// compare when not yet due. Returns whether a frame was captured.
    #[inline]
    pub fn maybe_sample(&self) -> bool {
        match &self.shared {
            None => false,
            Some(s) => {
                let now = s.clock.now_nanos();
                if now < s.next_due.load(Ordering::Relaxed) {
                    false
                } else {
                    Self::capture(s, now);
                    true
                }
            }
        }
    }

    /// Capture a frame right now, cadence or not (run boundaries,
    /// crash handlers). No-op on a disabled recorder.
    pub fn sample_now(&self) -> bool {
        match &self.shared {
            None => false,
            Some(s) => {
                let now = s.clock.now_nanos();
                Self::capture(s, now);
                true
            }
        }
    }

    fn capture(s: &RecShared, now: u64) {
        let mut st = s.state.lock().unwrap();
        let frame = Frame { seq: st.seq, t_ns: now, series: s.registry.snapshot() };
        st.seq += 1;
        if st.frames.len() >= s.capacity {
            st.frames.pop_front();
            st.evicted += 1;
        }
        st.frames.push_back(frame);
        // Align the next deadline to the cadence grid so frame times
        // are stable regardless of when probes happen to fire.
        let next = (now / s.cadence_ns + 1) * s.cadence_ns;
        s.next_due.store(next, Ordering::Relaxed);
    }

    /// Every retained frame, oldest first.
    pub fn frames(&self) -> Vec<Frame> {
        match &self.shared {
            None => Vec::new(),
            Some(s) => s.state.lock().unwrap().frames.iter().cloned().collect(),
        }
    }

    /// The newest `n` frames, oldest of them first — "what was the
    /// system doing just before it stopped".
    pub fn last_frames(&self, n: usize) -> Vec<Frame> {
        let frames = self.frames();
        let skip = frames.len().saturating_sub(n);
        frames.into_iter().skip(skip).collect()
    }

    /// Retained frame count.
    pub fn len(&self) -> usize {
        self.shared.as_ref().map_or(0, |s| s.state.lock().unwrap().frames.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.state.lock().unwrap().evicted)
    }

    /// The JSONL timeline: one frame per line,
    /// `{"seq","t_ns","series":[...],"deltas":{...}}` where `deltas`
    /// holds every counter that moved since the previous retained
    /// frame (`name{k=v,...}` keys for labeled series).
    pub fn to_jsonl(&self) -> String {
        let frames = self.frames();
        let mut out = String::new();
        for (i, f) in frames.iter().enumerate() {
            let prev = if i == 0 { None } else { Some(&frames[i - 1]) };
            out.push_str(&frame_to_json(prev, f).to_string());
            out.push('\n');
        }
        out
    }

    /// Prometheus text exposition of the newest frame (empty string
    /// when no frame was captured yet).
    pub fn to_prometheus(&self) -> String {
        match self.frames().last() {
            None => String::new(),
            Some(f) => prom::render(&f.series),
        }
    }
}

/// Series key for delta maps: `name` or `name{k=v,...}`.
fn series_key(s: &Series) -> String {
    if s.labels.is_empty() {
        s.name.clone()
    } else {
        let inner: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", s.name, inner.join(","))
    }
}

/// One frame as a JSON object (the JSONL line's value).
pub fn frame_to_json(prev: Option<&Frame>, f: &Frame) -> json::Value {
    use json::Value;
    let series = match crate::snapshot_to_json(&f.series) {
        Value::Obj(fields) => fields
            .into_iter()
            .find(|(k, _)| k == "series")
            .map(|(_, v)| v)
            .unwrap_or(Value::Arr(Vec::new())),
        _ => Value::Arr(Vec::new()),
    };
    let mut deltas = Vec::new();
    for s in &f.series {
        if let SeriesValue::Counter(now) = s.value {
            let before = prev
                .and_then(|p| p.series.iter().find(|ps| ps.name == s.name && ps.labels == s.labels))
                .and_then(|ps| match ps.value {
                    SeriesValue::Counter(v) => Some(v),
                    _ => None,
                })
                .unwrap_or(0);
            let d = now.saturating_sub(before);
            if d > 0 {
                deltas.push((series_key(s), Value::Int(d as i64)));
            }
        }
    }
    Value::Obj(vec![
        ("seq".to_string(), Value::Int(f.seq as i64)),
        ("t_ns".to_string(), Value::Int(f.t_ns as i64)),
        ("series".to_string(), series),
        ("deltas".to_string(), Value::Obj(deltas)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        assert!(!r.maybe_sample());
        assert!(!r.sample_now());
        assert!(r.frames().is_empty());
        assert_eq!(r.to_jsonl(), "");
        assert_eq!(r.to_prometheus(), "");
    }

    #[test]
    fn samples_on_the_cadence_grid() {
        let reg = Registry::new();
        let clock = Clock::logical();
        let r = Recorder::new(&reg, &clock, 100, 64);
        let ops = reg.counter("ops");

        assert!(r.maybe_sample(), "first probe captures the baseline frame");
        assert!(!r.maybe_sample(), "not due again until the next grid point");
        ops.add(3);
        clock.advance_to(99);
        assert!(!r.maybe_sample());
        clock.advance_to(100);
        assert!(r.maybe_sample());
        ops.add(4);
        clock.advance_to(350);
        assert!(r.maybe_sample(), "one frame fires even after skipping grid points");
        assert!(!r.maybe_sample());

        let frames = r.frames();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].t_ns, 0);
        assert_eq!(frames[1].t_ns, 100);
        assert_eq!(frames[2].t_ns, 350);
        assert_eq!(frames[0].counter("ops"), Some(0));
        assert_eq!(frames[1].counter("ops"), Some(3));
        assert_eq!(counter_delta(Some(&frames[1]), &frames[2], "ops"), 4);
    }

    #[test]
    fn ring_keeps_only_the_newest_frames() {
        let reg = Registry::new();
        let clock = Clock::logical();
        let r = Recorder::new(&reg, &clock, 1, 4);
        for t in 1..=10 {
            clock.advance_to(t * 10);
            assert!(r.maybe_sample());
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.evicted(), 6);
        let last = r.last_frames(2);
        assert_eq!(last.len(), 2);
        assert_eq!(last[1].seq, 9, "seq keeps counting across eviction");
        assert!(last[0].seq < last[1].seq);
    }

    #[test]
    fn jsonl_lines_carry_counter_deltas() {
        let reg = Registry::new();
        let clock = Clock::logical();
        let r = Recorder::new(&reg, &clock, 10, 8);
        let ops = reg.counter_with("faults.injected", &[("kind", "transient")]);
        r.sample_now();
        ops.add(7);
        clock.advance_to(20);
        r.sample_now();
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let second = json::parse(lines[1]).expect("each line is a JSON document");
        let deltas = second.get("deltas").expect("deltas object");
        assert_eq!(
            deltas.get("faults.injected{kind=transient}").and_then(|v| v.as_i64()),
            Some(7),
            "the injected spike shows in the frame where it happened"
        );
        assert_eq!(second.get("seq").and_then(|v| v.as_i64()), Some(1));
    }

    #[test]
    fn hist_delta_subtracts_buckets() {
        let reg = Registry::new();
        let clock = Clock::logical();
        let r = Recorder::new(&reg, &clock, 10, 8);
        let h = reg.histogram("lat");
        h.observe(5);
        r.sample_now();
        h.observe(5);
        h.observe(1000);
        clock.advance_to(10);
        r.sample_now();
        let frames = r.frames();
        let d = hist_delta(Some(&frames[0]), &frames[1], "lat");
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 1005);
        assert_eq!(d.buckets, vec![(8, 1), (1024, 1)]);
    }

    #[test]
    fn prometheus_export_is_the_newest_frame() {
        let reg = Registry::new();
        let clock = Clock::logical();
        let r = Recorder::new(&reg, &clock, 10, 8);
        reg.counter("plfs.write.ops").add(5);
        r.sample_now();
        reg.counter("plfs.write.ops").add(1);
        clock.advance_to(10);
        r.sample_now();
        let text = r.to_prometheus();
        let samples = prom::parse(&text).unwrap();
        let s = samples.iter().find(|s| s.name == "plfs_write_ops").unwrap();
        assert_eq!(s.value, 6.0);
    }
}
